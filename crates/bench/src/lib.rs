//! Shared helpers for the benchmark harness.
//!
//! Every bench prints the paper-style data series it regenerates (levels,
//! atom counts, who-wins summaries) before timing, so `cargo bench`
//! output doubles as the experiment log recorded in EXPERIMENTS.md.

use gsls_ground::{GroundAtomId, GroundProgram, Grounder};
use gsls_lang::{parse_goal, Program, TermStore};

/// Grounds a program with default options, panicking on budget failure
/// (bench workloads are sized to fit).
pub fn ground(store: &mut TermStore, program: &Program) -> GroundProgram {
    Grounder::ground(store, program).expect("bench workload grounds")
}

/// Finds a ground atom by its source text: parses the atom and does one
/// interning-table lookup, instead of rendering every interned atom.
pub fn atom_named(store: &mut TermStore, gp: &GroundProgram, name: &str) -> GroundAtomId {
    let goal = parse_goal(store, &format!("?- {name}."))
        .unwrap_or_else(|e| panic!("atom {name} does not parse: {e}"));
    let atom = &goal.literals()[0].atom;
    gp.lookup_atom(atom)
        .unwrap_or_else(|| panic!("atom {name} not found"))
}

/// Standard sweep sizes for the scaling benches.
pub const SWEEP: &[usize] = &[16, 64, 256, 1024];

#[cfg(test)]
mod tests {
    use super::*;
    use gsls_lang::parse_program;

    #[test]
    fn helpers_work() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "p(a).").unwrap();
        let gp = ground(&mut s, &p);
        let a = atom_named(&mut s, &gp, "p(a)");
        assert_eq!(gp.display_atom(&s, a), "p(a)");
    }

    #[test]
    #[should_panic(expected = "not found")]
    fn atom_named_rejects_unknown() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "p(a).").unwrap();
        let gp = ground(&mut s, &p);
        let _ = atom_named(&mut s, &gp, "p(zzz)");
    }
}
