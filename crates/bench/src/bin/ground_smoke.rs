//! Grounder microbench smoke target: small-N workloads grounded with
//! both join strategies, asserting the planned path and the naive
//! oracle produce identical clause sets — so the join planner cannot
//! silently rot between perf runs. Wired into `scripts/check.sh`.
//!
//! Run: `cargo run --release -p gsls-bench --bin ground_smoke`.

use gsls_ground::testutil::sorted_clauses;
use gsls_ground::{Grounder, GrounderOpts, HerbrandOpts, JoinStrategy};
use gsls_lang::{Program, TermStore};
use gsls_workloads::{negated_reachability, odd_even_chain, van_gelder_program, win_grid};
use std::time::Instant;

fn check(name: &str, mk: impl Fn(&mut TermStore) -> Program, opts: GrounderOpts) {
    let mut s1 = TermStore::new();
    let p1 = mk(&mut s1);
    let t = Instant::now();
    let (planned, stats) = Grounder::ground_with_stats(&mut s1, &p1, opts)
        .unwrap_or_else(|e| panic!("{name}: planned grounding failed: {e}"));
    let planned_ns = t.elapsed().as_nanos() as u64;

    let mut s2 = TermStore::new();
    let p2 = mk(&mut s2);
    let t = Instant::now();
    let naive = Grounder::ground_with(
        &mut s2,
        &p2,
        GrounderOpts {
            strategy: JoinStrategy::Naive,
            ..opts
        },
    )
    .unwrap_or_else(|e| panic!("{name}: naive grounding failed: {e}"));
    let naive_ns = t.elapsed().as_nanos() as u64;

    assert_eq!(
        sorted_clauses(&s1, &planned),
        sorted_clauses(&s2, &naive),
        "{name}: planned and naive clause sets diverge"
    );
    println!(
        "{name}: atoms={} clauses={} plans={} indexes={} candidates={} probes={} \
         planned={:.2}ms naive={:.2}ms ({:.1}x)",
        planned.atom_count(),
        planned.clause_count(),
        stats.plans,
        stats.indexes,
        stats.join_candidates,
        stats.index_probes,
        planned_ns as f64 / 1e6,
        naive_ns as f64 / 1e6,
        naive_ns as f64 / planned_ns.max(1) as f64,
    );
}

fn main() {
    println!("# ground_smoke — join-plan vs naive-join differential");
    check(
        "win_grid 16x16",
        |s| win_grid(s, 16, 16),
        GrounderOpts::default(),
    );
    check(
        "negated_reachability 12",
        |s| negated_reachability(s, 12),
        GrounderOpts::default(),
    );
    check(
        "odd_even_chain 48",
        |s| odd_even_chain(s, 48),
        GrounderOpts::default(),
    );
    check(
        "van_gelder depth=8",
        van_gelder_program,
        GrounderOpts {
            universe: HerbrandOpts {
                max_depth: 8,
                max_terms: 10_000,
            },
            ..GrounderOpts::default()
        },
    );
    println!("ground_smoke: planned path and naive oracle agree on all workloads");
}
