//! Emits `BENCH_10.json`: the perf trajectory record for PR 10
//! (gsls-serve: the concurrent multi-session network server with the
//! group-commit write path).
//!
//! New in PR 10:
//!
//! * **`serving`** — the network front end under concurrent mixed
//!   load: an in-process `Server` on an ephemeral port fronting a
//!   durable win_grid 200×200 session, stormed by 8 writer clients
//!   (single-fact commits through the session's one writer thread)
//!   and 4 reader clients (point queries on `Arc`'d snapshots across
//!   the reader pool) at once. Records end-to-end commit and query
//!   p50/p99 exactly as the clients saw them — frame encode, socket,
//!   queue wait, group commit, fsync, reply — plus the WAL's own
//!   `wal.group_records`/`wal.group_syncs` counters read back off the
//!   Prometheus scrape. The acceptance assertion demands the group
//!   path amortized ≥ 2 journaled batches per fsync under this
//!   contention, and that a commit carrying an already-expired
//!   deadline came back `Interrupted` to exactly that client while
//!   the session kept serving (and acking, and publishing) everyone
//!   else's work.
//! * **`durability` records both reopens** now: the first
//!   `Session::open` after a long WAL tail replays it through the
//!   full commit pipeline *and folds it into a fresh checkpoint*
//!   (PR 10's fix), so the second reopen decodes one image instead of
//!   re-paying the replay. `reopen_replay_ns` vs
//!   `reopen_after_fold_ns`, with the assertion that the fold made
//!   the second reopen cheaper.
//!
//! Carried from PR 9:
//!
//! * **`observability`** — the per-phase commit breakdown of the warm
//!   win_grid 200×200 single-fact commit, read **from the session's
//!   metrics registry** (`commit.validate` … `commit.index` latency
//!   histograms — no bench-side stopwatches), plus the cost of the
//!   always-on instrumentation itself: p50 of the identical warm
//!   commit with the bundle enabled vs. `Obs::set_enabled(false)`,
//!   alternated on the same session so drift lands on both sample
//!   sets alike, asserted ≤ 3% at p50. `--obs-gate` runs only this
//!   sweep (a fast CI mode `check.sh` uses).
//!
//! Carried from PR 8:
//!
//! * **`governance`** — what governing a commit costs and how fast a
//!   cancel lands: p50/p99 of the warm win_grid 200×200 single-fact
//!   commit through `Session::commit_with` with every guard branch
//!   armed (far-future deadline + memory budget, checked every
//!   `TICK_INTERVAL` work units) against the identical commit through
//!   the ungoverned path, asserted ≤ 5% overhead at p50; plus p50/p99
//!   cancel-to-return latency of a cross-thread
//!   `InterruptHandle::cancel` fired 10ms into a full-board commit.
//!
//! Carried from PR 7:
//!
//! * **`analysis`** — full-program static analysis (safety,
//!   stratification witness, reachability, cost lints) of the win_grid
//!   200×200 rule set, with the < 5ms acceptance assertion: the gate
//!   must stay invisible next to the ~4ms commit it fronts.
//!
//! Carried from PR 6:
//!
//! * **`durability`** — the cost of crash safety on win_grid 200×200:
//!   p50/p99 of a single-fact durable commit (WAL append + fsync before
//!   the in-memory apply) against the same commit on an in-memory
//!   session; explicit `Session::checkpoint()` wall time (atomic
//!   temp-file + rename snapshot of the full ground state); and
//!   `Session::open` recovery time — checkpoint restore plus WAL-tail
//!   replay — against the `Session::from_parts` full rebuild baseline.
//!
//! Carried forward from PR 5:
//!
//! * **`update_latency`** — the headline acceptance metric: p50/p99 of
//!   a *single-fact update + re-query* on the live win_grid 200×200
//!   session, in two flavours — `insert` (a brand-new fact is
//!   delta-grounded through `IncrementalGrounder::extend` and the model
//!   repaired on warm chains) and `reassert` (retract/assert toggles of
//!   an existing fact, pure clause switching) — against the
//!   `full_rebuild` baseline (`Solver::new` + query from scratch). The
//!   acceptance assertion demands ≥ 10× on the insert path.
//! * **`snapshot_read`** — point-query throughput against one immutable
//!   `Session::snapshot()` from 1/2/4 `gsls-par` worker threads
//!   (readers share an `Arc`'d state; the session could keep
//!   committing meanwhile).
//!
//! And from earlier PRs, for the trajectory: the
//! van_gelder and engine_scaling sweeps plus the grid boards measure
//!
//! * ground program size (atoms, clauses), alternating-fixpoint
//!   `reduct_calls`, and the incremental path's total clause re-checks;
//! * wall-time of the incremental `well_founded_model` vs the PR 1
//!   full-recompute propagator baseline (`well_founded_model_scratch`)
//!   and the PR 0 rebuild-per-call baseline
//!   (`well_founded_model_rebuild`), with speedups;
//! * **per-stage grounding metrics** for the grid boards (PR 3's hot
//!   path): total `ground_ns` (median of 3) plus the planner's stage
//!   split (`seed`/`plan`/`join`/`finalize`), `join_candidates`, and
//!   `index_probes` from `Grounder::ground_with_stats`;
//! * **the PR 4 `threads` column** (`par_report`): end-to-end
//!   ground+solve wall time at 1, 2 and 4 worker threads — sharded
//!   parallel seed round plus wavefront-parallel tabled SCC evaluation
//!   — for win_grid 200×200, van_gelder N=1024 and (under `--stress`)
//!   the 600×600 board. Speedups are only meaningful where the host
//!   actually has cores: the report records
//!   `available_parallelism` alongside, and the ≥1.5× acceptance
//!   assertion arms only on hosts with ≥4 CPUs;
//! * heap allocations per warm call for both the propagator's
//!   `lfp_into` and the incremental engine's `evaluate`, counted by a
//!   wrapping global allocator (the substrate's contract is zero).
//!
//! Run from the workspace root: `cargo run --release -p gsls-bench --bin
//! perf_report`. Pass `--stress` to add the 10^6-atom 600×600 board
//! (kept off the default run so it stays fast), or `--obs-gate` for
//! the observability-only fast mode. Earlier trajectory records stay
//! in `BENCH_<n>.json`.

use gsls_analyze::{analyze, AnalyzerOpts};
use gsls_core::{CommitOpts, Engine, Session, SessionError, Solver, TabledEngine};
use gsls_durable::DurableOpts;
use gsls_ground::{GroundStats, Grounder, GrounderOpts, HerbrandOpts};
use gsls_lang::{parse_goal, Atom, GovernOpts, TermStore};
use gsls_serve::{expect_interrupted, Client, Server, ServerConfig};
use gsls_wfs::{
    well_founded_model_rebuild, well_founded_model_scratch, well_founded_model_with_stats, BitSet,
    IncrementalLfp, NegMode, Propagator,
};
use gsls_workloads::{van_gelder_program, win_grid, win_grid_stress, win_random};
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Counts every allocation so the zero-allocation contract is checked,
/// not assumed.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Median wall-time of `runs` executions, in nanoseconds.
fn median_ns<T>(runs: usize, mut f: impl FnMut() -> T) -> u64 {
    let mut samples: Vec<u64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct SweepPoint {
    label: String,
    atoms: usize,
    clauses: usize,
    reduct_calls: u32,
    clause_checks: u64,
    wfm_ns: u64,
    scratch_ns: u64,
    rebuild_ns: u64,
}

impl SweepPoint {
    fn speedup_vs_scratch(&self) -> f64 {
        self.scratch_ns as f64 / self.wfm_ns.max(1) as f64
    }

    fn speedup_vs_rebuild(&self) -> f64 {
        self.rebuild_ns as f64 / self.wfm_ns.max(1) as f64
    }

    fn json(&self, key: &str) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "    {{\"{key}\": {}, \"atoms\": {}, \"clauses\": {}, \
             \"reduct_calls\": {}, \"clause_checks\": {}, \"wfm_ns\": {}, \
             \"wfm_scratch_ns\": {}, \"wfm_rebuild_ns\": {}, \
             \"speedup_vs_scratch\": {:.2}, \"speedup_vs_rebuild\": {:.2}}}",
            self.label,
            self.atoms,
            self.clauses,
            self.reduct_calls,
            self.clause_checks,
            self.wfm_ns,
            self.scratch_ns,
            self.rebuild_ns,
            self.speedup_vs_scratch(),
            self.speedup_vs_rebuild()
        );
        s
    }

    fn print(&self, family: &str) {
        println!(
            "{family} {}: atoms={} clauses={} reduct_calls={} checks={} \
             wfm={:.3}ms scratch={:.3}ms rebuild={:.3}ms \
             speedup={:.2}x/{:.2}x",
            self.label,
            self.atoms,
            self.clauses,
            self.reduct_calls,
            self.clause_checks,
            self.wfm_ns as f64 / 1e6,
            self.scratch_ns as f64 / 1e6,
            self.rebuild_ns as f64 / 1e6,
            self.speedup_vs_scratch(),
            self.speedup_vs_rebuild()
        );
    }
}

fn measure(gp: &gsls_ground::GroundProgram, label: String, runs: usize) -> SweepPoint {
    measure_with(gp, label, runs, runs)
}

/// `baseline_runs` lets the big boards sample the (much slower)
/// baselines once while still taking a median for the incremental path.
fn measure_with(
    gp: &gsls_ground::GroundProgram,
    label: String,
    runs: usize,
    baseline_runs: usize,
) -> SweepPoint {
    let (_, stats) = well_founded_model_with_stats(gp);
    let wfm_ns = median_ns(runs, || well_founded_model_with_stats(gp).0);
    let scratch_ns = median_ns(baseline_runs, || well_founded_model_scratch(gp));
    let rebuild_ns = median_ns(baseline_runs, || well_founded_model_rebuild(gp));
    SweepPoint {
        label,
        atoms: gp.atom_count(),
        clauses: gp.clause_count(),
        reduct_calls: stats.reduct_calls,
        clause_checks: stats.clause_checks,
        wfm_ns,
        scratch_ns,
        rebuild_ns,
    }
}

fn van_gelder_sweep() -> Vec<SweepPoint> {
    [64u32, 256, 1024]
        .iter()
        .map(|&depth| {
            let mut store = TermStore::new();
            let program = van_gelder_program(&mut store);
            let gp = Grounder::ground_with(
                &mut store,
                &program,
                GrounderOpts {
                    universe: HerbrandOpts {
                        max_depth: depth,
                        max_terms: 1_000_000,
                    },
                    ..GrounderOpts::default()
                },
            )
            .expect("van_gelder grounds");
            let runs = if depth >= 1024 { 5 } else { 9 };
            let p = measure(&gp, depth.to_string(), runs);
            p.print("van_gelder N=");
            p
        })
        .collect()
}

fn engine_scaling_sweep() -> Vec<SweepPoint> {
    gsls_bench::SWEEP
        .iter()
        .map(|&n| {
            let mut store = TermStore::new();
            let program = win_random(&mut store, n, 3, 11);
            let gp = gsls_bench::ground(&mut store, &program);
            let p = measure(&gp, n.to_string(), 9);
            p.print("engine_scaling n=");
            p
        })
        .collect()
}

/// One grounding measurement: median total wall time over `runs` plus
/// the per-stage split and join counters of the final run.
struct GroundPoint {
    ground_ns: u64,
    stats: GroundStats,
}

fn measure_grounding(
    mk: impl Fn(&mut TermStore) -> gsls_lang::Program,
    runs: usize,
) -> (gsls_ground::GroundProgram, GroundPoint) {
    let mut samples = Vec::with_capacity(runs);
    let mut last = None;
    for _ in 0..runs {
        let mut store = TermStore::new();
        let program = mk(&mut store);
        let t = Instant::now();
        let (gp, stats) =
            Grounder::ground_with_stats(&mut store, &program, GrounderOpts::default())
                .expect("grid board grounds within budget");
        samples.push(t.elapsed().as_nanos() as u64);
        last = Some((gp, stats));
    }
    samples.sort_unstable();
    let (gp, stats) = last.expect("at least one run");
    (
        gp,
        GroundPoint {
            ground_ns: samples[samples.len() / 2],
            stats,
        },
    )
}

fn ground_json(g: &GroundPoint) -> String {
    format!(
        "\"ground_ns\": {}, \"ground_seed_ns\": {}, \"ground_plan_ns\": {}, \
         \"ground_join_ns\": {}, \"ground_finalize_ns\": {}, \"join_candidates\": {}, \
         \"index_probes\": {}, \"plans\": {}, \"indexes\": {}",
        g.ground_ns,
        g.stats.seed_ns,
        g.stats.plan_ns,
        g.stats.join_ns,
        g.stats.finalize_ns,
        g.stats.join_candidates,
        g.stats.index_probes,
        g.stats.plans,
        g.stats.indexes,
    )
}

/// The ROADMAP's 10^5-atom-class win/move boards (grid workload), with
/// PR 3's per-stage grounding metrics.
fn grid_sweep() -> Vec<(SweepPoint, GroundPoint)> {
    [(64usize, 64usize), (200, 200)]
        .iter()
        .map(|&(w, h)| {
            let (gp, g) = measure_grounding(|s| win_grid(s, w, h), 3);
            let p = measure_with(&gp, format!("\"{w}x{h}\""), 3, 1);
            println!(
                "grid {w}x{h}: ground={:.1}ms (seed={:.1} plan={:.1} join={:.1} finalize={:.1}) \
                 candidates={} probes={}",
                g.ground_ns as f64 / 1e6,
                g.stats.seed_ns as f64 / 1e6,
                g.stats.plan_ns as f64 / 1e6,
                g.stats.join_ns as f64 / 1e6,
                g.stats.finalize_ns as f64 / 1e6,
                g.stats.join_candidates,
                g.stats.index_probes,
            );
            p.print("grid ");
            (p, g)
        })
        .collect()
}

/// The 10^6-atom 600×600 stress board (behind `--stress`): grounds
/// end-to-end within the default clause budget and solves once.
fn stress_sweep() -> (SweepPoint, GroundPoint) {
    let (gp, g) = measure_grounding(win_grid_stress, 1);
    println!(
        "stress 600x600: atoms={} clauses={} ground={:.1}ms candidates={}",
        gp.atom_count(),
        gp.clause_count(),
        g.ground_ns as f64 / 1e6,
        g.stats.join_candidates,
    );
    let p = measure_with(&gp, "\"600x600\"".to_owned(), 1, 1);
    p.print("stress ");
    (p, g)
}

/// One `threads`-column measurement: end-to-end ground+solve at a
/// given worker count.
struct ParPoint {
    workload: &'static str,
    threads: usize,
    ground_ns: u64,
    solve_ns: u64,
}

impl ParPoint {
    fn total_ns(&self) -> u64 {
        self.ground_ns + self.solve_ns
    }

    fn json(&self) -> String {
        format!(
            "    {{\"workload\": \"{}\", \"threads\": {}, \"ground_ns\": {}, \
             \"solve_ns\": {}, \"total_ns\": {}}}",
            self.workload,
            self.threads,
            self.ground_ns,
            self.solve_ns,
            self.total_ns()
        )
    }
}

/// How many samples each `threads`-column point takes; the point keeps
/// the sample with the median total. Single samples made the ≥1.5×
/// acceptance assertion flaky under background load — every asserted
/// metric in this file is a median.
const PAR_RUNS: usize = 3;

/// The sample with the median total of `PAR_RUNS` runs of `f`.
fn median_par_point(mut f: impl FnMut() -> ParPoint) -> ParPoint {
    let mut samples: Vec<ParPoint> = (0..PAR_RUNS).map(|_| f()).collect();
    samples.sort_unstable_by_key(ParPoint::total_ns);
    samples.swap_remove(samples.len() / 2)
}

/// Grounds a grid board at `threads` workers and solves it with one
/// parallel tabled query from the top-left corner (which reaches the
/// whole board: every position is a right/down successor of `n0`).
fn par_grid_point(workload: &'static str, w: usize, h: usize, threads: usize) -> ParPoint {
    median_par_point(|| {
        let mut store = TermStore::new();
        let program = win_grid(&mut store, w, h);
        let t = Instant::now();
        let gp = Grounder::ground_with(
            &mut store,
            &program,
            GrounderOpts {
                threads,
                ..GrounderOpts::default()
            },
        )
        .expect("grid board grounds");
        let ground_ns = t.elapsed().as_nanos() as u64;
        let win = store.intern_symbol("win");
        let n0 = store.constant("n0");
        let root = gp
            .lookup_atom(&Atom::new(win, vec![n0]))
            .expect("win(n0) interned");
        let mut engine = TabledEngine::new(gp);
        let t = Instant::now();
        let _ = std::hint::black_box(engine.truth_parallel(root, threads));
        let solve_ns = t.elapsed().as_nanos() as u64;
        ParPoint {
            workload,
            threads,
            ground_ns,
            solve_ns,
        }
    })
}

/// van_gelder ground+solve at `threads` workers (all atoms queried —
/// the program is small, so this exercises the memo across roots).
fn par_van_gelder_point(threads: usize) -> ParPoint {
    median_par_point(|| {
        let mut store = TermStore::new();
        let program = van_gelder_program(&mut store);
        let t = Instant::now();
        let gp = Grounder::ground_with(
            &mut store,
            &program,
            GrounderOpts {
                universe: HerbrandOpts {
                    max_depth: 1024,
                    max_terms: 1_000_000,
                },
                threads,
                ..GrounderOpts::default()
            },
        )
        .expect("van_gelder grounds");
        let ground_ns = t.elapsed().as_nanos() as u64;
        let ids: Vec<_> = gp.atom_ids().collect();
        let mut engine = TabledEngine::new(gp);
        let t = Instant::now();
        for a in ids {
            let _ = std::hint::black_box(engine.truth_parallel(a, threads));
        }
        let solve_ns = t.elapsed().as_nanos() as u64;
        ParPoint {
            workload: "van_gelder_1024",
            threads,
            ground_ns,
            solve_ns,
        }
    })
}

/// The PR 4 `threads` column: 1/2/4-worker ground+solve sweeps.
fn par_sweep(stress: bool) -> Vec<ParPoint> {
    let mut out = Vec::new();
    for threads in [1usize, 2, 4] {
        out.push(par_grid_point("win_grid_200x200", 200, 200, threads));
    }
    for threads in [1usize, 2, 4] {
        out.push(par_van_gelder_point(threads));
    }
    if stress {
        for threads in [1usize, 2, 4] {
            out.push(par_grid_point("win_grid_600x600", 600, 600, threads));
        }
    }
    for p in &out {
        println!(
            "par {} threads={}: ground={:.1}ms solve={:.1}ms total={:.1}ms",
            p.workload,
            p.threads,
            p.ground_ns as f64 / 1e6,
            p.solve_ns as f64 / 1e6,
            p.total_ns() as f64 / 1e6,
        );
    }
    out
}

/// The PR 5 update-latency record: per-commit latency percentiles on a
/// live session vs. the from-scratch rebuild baseline.
struct UpdateLatency {
    /// p50/p99 of fresh-fact assert + re-query (delta grounding path).
    insert_p50_ns: u64,
    insert_p99_ns: u64,
    /// p50/p99 of retract/assert toggles of an existing fact (clause
    /// switching path; the assert half is a re-enable).
    reassert_p50_ns: u64,
    reassert_p99_ns: u64,
    /// Median of `Solver::new` + query from scratch.
    rebuild_ns: u64,
    /// One-time session construction (ground + prime) cost.
    session_build_ns: u64,
}

impl UpdateLatency {
    fn insert_speedup(&self) -> f64 {
        self.rebuild_ns as f64 / self.insert_p50_ns.max(1) as f64
    }

    fn reassert_speedup(&self) -> f64 {
        self.rebuild_ns as f64 / self.reassert_p50_ns.max(1) as f64
    }
}

fn percentile(sorted: &[u64], p: usize) -> u64 {
    sorted[(sorted.len() * p / 100).min(sorted.len() - 1)]
}

/// Measures single-fact update → re-query latency on win_grid 200×200.
fn update_latency_sweep() -> UpdateLatency {
    let (w, h) = (200usize, 200usize);
    let mut store = TermStore::new();
    let program = win_grid(&mut store, w, h);
    let t = Instant::now();
    let mut session = Session::from_parts(store, program).expect("grid is function-free");
    let session_build_ns = t.elapsed().as_nanos() as u64;
    let mut q = session.prepare("?- win(n0).").expect("query compiles");

    // Toggle an existing edge: each iteration is one commit (retract or
    // re-assert — both clause switches) plus the re-query.
    let edge = "move(n0, n1).";
    let mut reassert: Vec<u64> = (0..60)
        .map(|i| {
            let t = Instant::now();
            if i % 2 == 0 {
                session.retract_facts(edge).expect("retract");
            } else {
                session.assert_facts(edge).expect("assert");
            }
            let r = q.execute(&mut session).expect("query").collect_result();
            std::hint::black_box(r.truth);
            t.elapsed().as_nanos() as u64
        })
        .collect();
    reassert.sort_unstable();

    // Fresh inserts: each commit delta-grounds one genuinely new fact
    // (new atom, new clause, new win-rule instance) and repairs the
    // model before the re-query.
    let mut insert: Vec<u64> = (0..60)
        .map(|i| {
            let fact = format!("move(u{i}, n0).");
            let t = Instant::now();
            session.assert_facts(&fact).expect("assert");
            let r = q.execute(&mut session).expect("query").collect_result();
            std::hint::black_box(r.truth);
            t.elapsed().as_nanos() as u64
        })
        .collect();
    insert.sort_unstable();

    // Baseline: the batch path from scratch, per query.
    let mut rebuild: Vec<u64> = (0..5)
        .map(|_| {
            let mut store = TermStore::new();
            let program = win_grid(&mut store, w, h);
            let t = Instant::now();
            let mut solver = Solver::new(program);
            let goal = parse_goal(&mut store, "?- win(n0).").expect("goal parses");
            let r = solver
                .query(&mut store, &goal, Engine::Tabled)
                .expect("rebuild query");
            std::hint::black_box(r.truth);
            t.elapsed().as_nanos() as u64
        })
        .collect();
    rebuild.sort_unstable();

    let out = UpdateLatency {
        insert_p50_ns: percentile(&insert, 50),
        insert_p99_ns: percentile(&insert, 99),
        reassert_p50_ns: percentile(&reassert, 50),
        reassert_p99_ns: percentile(&reassert, 99),
        rebuild_ns: rebuild[rebuild.len() / 2],
        session_build_ns,
    };
    println!(
        "update_latency win_grid_200x200: insert p50={:.2}ms p99={:.2}ms | \
         reassert p50={:.2}ms p99={:.2}ms | rebuild={:.1}ms | \
         speedup {:.1}x (insert) / {:.1}x (reassert) | session build {:.1}ms",
        out.insert_p50_ns as f64 / 1e6,
        out.insert_p99_ns as f64 / 1e6,
        out.reassert_p50_ns as f64 / 1e6,
        out.reassert_p99_ns as f64 / 1e6,
        out.rebuild_ns as f64 / 1e6,
        out.insert_speedup(),
        out.reassert_speedup(),
        out.session_build_ns as f64 / 1e6,
    );
    out
}

/// The PR 8 governance record: what the per-tick guard checks cost on
/// the hot commit path, and how fast a cross-thread cancel lands.
struct GovernancePoint {
    /// p50/p99 of the warm single-fact commit through `commit_with`
    /// with a far-future deadline and a memory budget — every guard
    /// branch armed, every tick taken through the full check.
    governed_p50_ns: u64,
    governed_p99_ns: u64,
    /// p50/p99 of the identical commit through the ungoverned path.
    ungoverned_p50_ns: u64,
    ungoverned_p99_ns: u64,
    /// p50/p99 of cancel-to-return latency: a second thread fires
    /// `InterruptHandle::cancel` mid-commit; measured from the cancel
    /// store to `commit_with` returning `Interrupted`.
    cancel_p50_ns: u64,
    cancel_p99_ns: u64,
    cancel_runs: usize,
}

impl GovernancePoint {
    fn overhead_pct(&self) -> f64 {
        (self.governed_p50_ns as f64 / self.ungoverned_p50_ns.max(1) as f64 - 1.0) * 100.0
    }
}

/// Measures governed-commit overhead and cancellation latency on
/// win_grid 200×200.
fn governance_sweep() -> GovernancePoint {
    let (w, h) = (200usize, 200usize);

    // Tick-check overhead: the same warm single-fact insert commit
    // update_latency_sweep measures, alternating between the ungoverned
    // and governed paths so drift from the growing program lands on
    // both sample sets alike.
    let mut store = TermStore::new();
    let program = win_grid(&mut store, w, h);
    let mut session = Session::from_parts(store, program).expect("grid is function-free");
    let far = CommitOpts {
        max_memory_bytes: Some(usize::MAX),
        ..CommitOpts::none().with_timeout(Duration::from_secs(3600))
    };
    let mut governed: Vec<u64> = Vec::with_capacity(60);
    let mut ungoverned: Vec<u64> = Vec::with_capacity(60);
    for i in 0..120 {
        let fact = format!("move(g{i}, n0).");
        let t = Instant::now();
        session.begin().expect("begin");
        session.assert_facts(&fact).expect("stage fact");
        if i % 2 == 0 {
            session.commit().expect("ungoverned commit");
        } else {
            session.commit_with(&far).expect("governed commit");
        }
        let ns = t.elapsed().as_nanos() as u64;
        if i % 2 == 0 {
            ungoverned.push(ns);
        } else {
            governed.push(ns);
        }
    }
    governed.sort_unstable();
    ungoverned.sort_unstable();

    // Cancellation latency: stage the full board into an empty session,
    // fire a cross-thread cancel 10ms into the (multi-hundred-ms)
    // commit, and measure from the cancel store to commit_with
    // returning. The interrupted commit unwinds to the empty epoch, so
    // one session serves every run.
    let mut store = TermStore::new();
    let program = win_grid(&mut store, w, h);
    let mut rules = String::new();
    let mut facts = String::with_capacity(32 * program.len());
    for c in program.clauses() {
        let line = c.display(&store);
        if c.body.is_empty() {
            facts.push_str(&line);
            facts.push('\n');
        } else {
            rules.push_str(&line);
            rules.push('\n');
        }
    }
    let cancel_runs = 9usize;
    let mut s = Session::from_source("").expect("empty session");
    let mut cancel: Vec<u64> = (0..cancel_runs)
        .map(|_| {
            s.begin().expect("begin");
            s.add_rules(&rules).expect("stage rules");
            s.assert_facts(&facts).expect("stage facts");
            let handle = s.interrupt_handle();
            let (started_tx, started_rx) = std::sync::mpsc::channel::<()>();
            let (cancelled_tx, cancelled_rx) = std::sync::mpsc::channel::<Instant>();
            let canceller = std::thread::spawn(move || {
                started_rx.recv().expect("commit started");
                std::thread::sleep(Duration::from_millis(10));
                let t = Instant::now();
                handle.cancel();
                cancelled_tx.send(t).expect("report cancel time");
            });
            started_tx.send(()).expect("signal start");
            let r = s.commit_with(&CommitOpts::none());
            let returned = Instant::now();
            canceller.join().expect("canceller joins");
            let cancelled_at = cancelled_rx.recv().expect("cancel timestamp");
            assert!(
                matches!(r, Err(SessionError::Interrupted { .. })),
                "the 10ms cancel must land inside the full-board commit"
            );
            assert!(!s.is_poisoned(), "a cancelled commit must not poison");
            returned.duration_since(cancelled_at).as_nanos() as u64
        })
        .collect();
    cancel.sort_unstable();

    let out = GovernancePoint {
        governed_p50_ns: percentile(&governed, 50),
        governed_p99_ns: percentile(&governed, 99),
        ungoverned_p50_ns: percentile(&ungoverned, 50),
        ungoverned_p99_ns: percentile(&ungoverned, 99),
        cancel_p50_ns: percentile(&cancel, 50),
        cancel_p99_ns: percentile(&cancel, 99),
        cancel_runs,
    };
    println!(
        "governance win_grid_200x200: governed commit p50={:.2}ms p99={:.2}ms | \
         ungoverned p50={:.2}ms p99={:.2}ms (overhead {:+.1}%) | \
         cancel latency p50={:.2}ms p99={:.2}ms over {} mid-commit cancels",
        out.governed_p50_ns as f64 / 1e6,
        out.governed_p99_ns as f64 / 1e6,
        out.ungoverned_p50_ns as f64 / 1e6,
        out.ungoverned_p99_ns as f64 / 1e6,
        out.overhead_pct(),
        out.cancel_p50_ns as f64 / 1e6,
        out.cancel_p99_ns as f64 / 1e6,
        out.cancel_runs,
    );
    out
}

/// One snapshot-read throughput point: `queries` point lookups spread
/// over `threads` workers against one shared snapshot.
struct SnapPoint {
    threads: usize,
    queries: usize,
    wall_ns: u64,
}

impl SnapPoint {
    fn qps(&self) -> f64 {
        self.queries as f64 / (self.wall_ns as f64 / 1e9)
    }
}

/// Measures multi-threaded snapshot-read throughput on win_grid
/// 200×200. All workers share one `Snapshot` (an `Arc`'d immutable
/// state); the atoms are pre-parsed so the loop measures pure reads.
fn snapshot_read_sweep() -> Vec<SnapPoint> {
    let (w, h) = (200usize, 200usize);
    let mut store = TermStore::new();
    let program = win_grid(&mut store, w, h);
    let mut session = Session::from_parts(store, program).expect("grid is function-free");
    let snapshot = session.snapshot();
    let queries = 200_000usize;
    let atoms: Vec<Atom> = {
        let mut s = snapshot.store().clone();
        let win = s.intern_symbol("win");
        (0..w * h)
            .map(|i| {
                let node = s.constant(&format!("n{i}"));
                Atom::new(win, vec![node])
            })
            .collect()
    };
    [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            let t = Instant::now();
            let verdicts = gsls_par::par_map(threads, queries, |i| {
                snapshot.truth_of_atom(&atoms[i % atoms.len()])
            });
            let wall_ns = t.elapsed().as_nanos() as u64;
            std::hint::black_box(verdicts.len());
            let p = SnapPoint {
                threads,
                queries,
                wall_ns,
            };
            println!(
                "snapshot_read win_grid_200x200: {} queries at {} thread(s) in {:.1}ms \
                 ({:.2}M q/s)",
                p.queries,
                p.threads,
                p.wall_ns as f64 / 1e6,
                p.qps() / 1e6,
            );
            p
        })
        .collect()
}

/// The PR 6 durability record: what crash safety costs on the live
/// win_grid 200×200 session.
struct DurabilityPoint {
    /// p50/p99 of one fresh-fact durable commit: validate + WAL append
    /// + fsync + delta-ground + model repair.
    commit_durable_p50_ns: u64,
    commit_durable_p99_ns: u64,
    /// p50 of the identical commit on an in-memory session (no WAL).
    commit_memory_p50_ns: u64,
    /// Explicit `Session::checkpoint()`: full-state snapshot written
    /// atomically (temp file + rename) plus WAL rotation.
    checkpoint_ns: u64,
    /// The *first* `Session::open` on a directory holding the initial
    /// checkpoint plus `replayed_records` WAL records: restore + tail
    /// replay + the post-replay checkpoint fold (the tail exceeds
    /// `REPLAY_CHECKPOINT_THRESHOLD`, so this open also writes a fresh
    /// image).
    reopen_replay_ns: u64,
    /// The *second* `Session::open` on the same directory: thanks to
    /// the fold above it decodes the fresh checkpoint and replays
    /// nothing. This is the reopen every later restart pays.
    reopen_after_fold_ns: u64,
    /// `Session::open` right after an explicit checkpoint (empty WAL):
    /// pure checkpoint restore.
    reopen_checkpoint_ns: u64,
    /// `Session::from_parts` on the same final program: ground + solve
    /// from scratch, the non-durable baseline recovery would replace.
    full_rebuild_ns: u64,
    replayed_records: usize,
}

impl DurabilityPoint {
    fn fsync_overhead_ns(&self) -> i64 {
        self.commit_durable_p50_ns as i64 - self.commit_memory_p50_ns as i64
    }

    fn replay_speedup(&self) -> f64 {
        self.full_rebuild_ns as f64 / self.reopen_replay_ns.max(1) as f64
    }

    /// How much the post-replay checkpoint fold saves the next reopen.
    fn fold_speedup(&self) -> f64 {
        self.reopen_replay_ns as f64 / self.reopen_after_fold_ns.max(1) as f64
    }
}

/// Measures durable-commit latency, checkpoint cost, and recovery time
/// on win_grid 200×200 rooted in a scratch directory under the OS temp
/// dir.
fn durability_sweep() -> DurabilityPoint {
    let (w, h) = (200usize, 200usize);
    let commits = 40usize;
    let dir = std::env::temp_dir().join(format!("gsls_bench_durable_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Thresholds pushed out of reach so auto-checkpointing never
    // interleaves with the measurements.
    let dopts = DurableOpts {
        checkpoint_records: usize::MAX,
        checkpoint_bytes: u64::MAX,
        ..DurableOpts::default()
    };

    let mut store = TermStore::new();
    let program = win_grid(&mut store, w, h);
    let mut session =
        Session::open_with_parts(&dir, store, program, GrounderOpts::default(), dopts)
            .expect("durable session opens");

    // Fresh-fact durable commits: each one is validated, journaled
    // (append + fsync) and then delta-grounded — the same insert path
    // update_latency_sweep measures, plus the WAL.
    let mut durable: Vec<u64> = (0..commits)
        .map(|i| {
            let fact = format!("move(d{i}, n0).");
            let t = Instant::now();
            session.assert_facts(&fact).expect("durable assert");
            t.elapsed().as_nanos() as u64
        })
        .collect();
    durable.sort_unstable();
    let live_truth = session.truth("?- win(n0).").expect("live query");
    drop(session);

    // Recovery: the first reopen restores the initial checkpoint,
    // replays all `commits` WAL records through the normal commit
    // path, and — the tail being long — folds them into a fresh
    // checkpoint on the way out. It can only be measured once: the
    // fold changes what the next open finds.
    let t = Instant::now();
    let first = Session::open(&dir).expect("reopen with WAL tail");
    let reopen_replay_ns = t.elapsed().as_nanos() as u64;
    drop(first);
    // The second reopen decodes the freshly folded image and replays
    // nothing; this one is stable, so take a median.
    let reopen_after_fold_ns = median_ns(3, || Session::open(&dir).expect("reopen after the fold"));
    let mut reopened = Session::open(&dir).expect("reopen");
    assert_eq!(
        reopened.truth("?- win(n0).").expect("recovered query"),
        live_truth,
        "recovered session disagrees with the live one"
    );

    let t = Instant::now();
    reopened.checkpoint().expect("explicit checkpoint");
    let checkpoint_ns = t.elapsed().as_nanos() as u64;
    drop(reopened);
    let reopen_checkpoint_ns =
        median_ns(3, || Session::open(&dir).expect("reopen from checkpoint"));

    // Baselines on an in-memory session over the same program.
    let full_rebuild_ns = median_ns(3, || {
        let mut store = TermStore::new();
        let program = win_grid(&mut store, w, h);
        Session::from_parts(store, program).expect("grid is function-free")
    });
    let mut store = TermStore::new();
    let program = win_grid(&mut store, w, h);
    let mut mem = Session::from_parts(store, program).expect("grid is function-free");
    let mut memory: Vec<u64> = (0..commits)
        .map(|i| {
            let fact = format!("move(d{i}, n0).");
            let t = Instant::now();
            mem.assert_facts(&fact).expect("in-memory assert");
            t.elapsed().as_nanos() as u64
        })
        .collect();
    memory.sort_unstable();
    let _ = std::fs::remove_dir_all(&dir);

    let out = DurabilityPoint {
        commit_durable_p50_ns: percentile(&durable, 50),
        commit_durable_p99_ns: percentile(&durable, 99),
        commit_memory_p50_ns: percentile(&memory, 50),
        checkpoint_ns,
        reopen_replay_ns,
        reopen_after_fold_ns,
        reopen_checkpoint_ns,
        full_rebuild_ns,
        replayed_records: commits,
    };
    println!(
        "durability win_grid_200x200: durable commit p50={:.2}ms p99={:.2}ms | \
         in-memory p50={:.2}ms (fsync overhead {:+.2}ms) | checkpoint={:.1}ms | \
         reopen: replay+fold({} records)={:.1}ms, after-fold={:.1}ms ({:.1}x), \
         checkpoint-only={:.1}ms | rebuild={:.1}ms ({:.1}x vs replay)",
        out.commit_durable_p50_ns as f64 / 1e6,
        out.commit_durable_p99_ns as f64 / 1e6,
        out.commit_memory_p50_ns as f64 / 1e6,
        out.fsync_overhead_ns() as f64 / 1e6,
        out.checkpoint_ns as f64 / 1e6,
        out.replayed_records,
        out.reopen_replay_ns as f64 / 1e6,
        out.reopen_after_fold_ns as f64 / 1e6,
        out.fold_speedup(),
        out.reopen_checkpoint_ns as f64 / 1e6,
        out.full_rebuild_ns as f64 / 1e6,
        out.replay_speedup(),
    );
    out
}

/// The PR 10 serving record: the network front end under concurrent
/// mixed load, measured end-to-end from the clients' side of the
/// socket.
struct ServingPoint {
    writers: usize,
    readers: usize,
    commits: usize,
    queries: usize,
    /// End-to-end single-fact commit latency as a storm client saw it:
    /// parse + frame encode + socket + writer-queue wait + group
    /// commit + fsync + typed reply.
    commit_p50_ns: u64,
    commit_p99_ns: u64,
    /// End-to-end point-query latency: socket + reader-pool dispatch +
    /// snapshot prepare/execute + reply.
    query_p50_ns: u64,
    query_p99_ns: u64,
    /// WAL batches journaled through the group-commit path and the
    /// fsync groups that covered them, read back off the server's own
    /// Prometheus scrape.
    group_records: u64,
    group_syncs: u64,
    /// The expired-deadline commit came back `Interrupted` to its own
    /// client — and the session kept serving everyone else after.
    deadline_interrupted: bool,
}

impl ServingPoint {
    fn records_per_fsync(&self) -> f64 {
        self.group_records as f64 / self.group_syncs.max(1) as f64
    }
}

/// Boots an in-process `Server` over a durable win_grid 200×200
/// session and storms it with concurrent writer and reader clients.
fn serving_sweep() -> ServingPoint {
    let (w, h) = (200usize, 200usize);
    let (writers, readers) = (8usize, 4usize);
    let commits_per_writer = 12usize;
    let queries_per_reader = 12usize;
    let dir = std::env::temp_dir().join(format!("gsls_bench_serve_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Seed the board straight into the server's session directory;
    // the server's `Session::open` then restores it from the
    // checkpoint instead of shipping 80k facts over the wire.
    {
        let mut store = TermStore::new();
        let program = win_grid(&mut store, w, h);
        let seed = Session::open_with_parts(
            dir.join("default"),
            store,
            program,
            GrounderOpts::default(),
            DurableOpts::default(),
        )
        .expect("seed session");
        drop(seed);
    }

    let mut server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    // The mixed storm: every writer commits its own fresh facts (all
    // funnelled through the session's one writer thread, where the
    // backed-up queue is what group commit amortizes) while the
    // readers hammer point queries on the published snapshots.
    let write_handles: Vec<_> = (0..writers)
        .map(|i| {
            std::thread::spawn(move || -> Vec<u64> {
                let mut c = Client::connect(addr).expect("writer connects");
                (0..commits_per_writer)
                    .map(|j| {
                        let fact = format!("move(w{i}_{j}, n0).");
                        let t = Instant::now();
                        c.commit("", &fact, "", GovernOpts::default())
                            .expect("storm commit");
                        t.elapsed().as_nanos() as u64
                    })
                    .collect()
            })
        })
        .collect();
    let read_handles: Vec<_> = (0..readers)
        .map(|_| {
            std::thread::spawn(move || -> Vec<u64> {
                let mut c = Client::connect(addr).expect("reader connects");
                (0..queries_per_reader)
                    .map(|_| {
                        let t = Instant::now();
                        c.query("?- win(n0).", GovernOpts::default())
                            .expect("storm query");
                        t.elapsed().as_nanos() as u64
                    })
                    .collect()
            })
        })
        .collect();
    let mut commit_ns: Vec<u64> = write_handles
        .into_iter()
        .flat_map(|h| h.join().expect("writer thread"))
        .collect();
    let mut query_ns: Vec<u64> = read_handles
        .into_iter()
        .flat_map(|h| h.join().expect("reader thread"))
        .collect();
    commit_ns.sort_unstable();
    query_ns.sort_unstable();

    // Governed deadline, end-to-end: a commit carrying an
    // already-expired deadline must bounce with `Interrupted` — to
    // exactly this client — and the session must keep accepting (and
    // publishing) everyone else's work afterwards.
    let mut c = Client::connect(addr).expect("deadline client");
    let strict = GovernOpts {
        deadline_ms: Some(0),
        ..GovernOpts::default()
    };
    let err = c
        .commit("", "move(zz, yy). move(yy, zz).", "", strict)
        .expect_err("expired deadline must not commit");
    let deadline_interrupted = expect_interrupted(&err);
    assert!(
        deadline_interrupted,
        "expired-deadline commit returned {err}, not Interrupted"
    );
    c.commit("", "move(after_deadline, n0).", "", GovernOpts::default())
        .expect("session must keep serving after the interrupted commit");
    let q = c
        .query("?- move(after_deadline, n0).", GovernOpts::default())
        .expect("read-your-writes after the interrupted commit");
    assert_eq!(q.truth, "true", "acked fact must be visible to its client");

    let scrape = c.metrics().expect("metrics scrape");
    let sample = |name: &str| -> u64 {
        scrape
            .lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    let group_records = sample("gsls_wal_group_records");
    let group_syncs = sample("gsls_wal_group_syncs");
    drop(c);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let out = ServingPoint {
        writers,
        readers,
        commits: commit_ns.len(),
        queries: query_ns.len(),
        commit_p50_ns: percentile(&commit_ns, 50),
        commit_p99_ns: percentile(&commit_ns, 99),
        query_p50_ns: percentile(&query_ns, 50),
        query_p99_ns: percentile(&query_ns, 99),
        group_records,
        group_syncs,
        deadline_interrupted,
    };
    println!(
        "serving win_grid_200x200: {} writers x {} commits p50={:.2}ms p99={:.2}ms | \
         {} readers x {} queries p50={:.2}ms p99={:.2}ms | \
         group commit: {} records / {} fsyncs = {:.1} per fsync | \
         expired deadline -> Interrupted",
        out.writers,
        commits_per_writer,
        out.commit_p50_ns as f64 / 1e6,
        out.commit_p99_ns as f64 / 1e6,
        out.readers,
        queries_per_reader,
        out.query_p50_ns as f64 / 1e6,
        out.query_p99_ns as f64 / 1e6,
        out.group_records,
        out.group_syncs,
        out.records_per_fsync(),
    );
    out
}

/// The PR 7 analysis record: full multi-pass static analysis of the
/// win_grid 200×200 program (80k facts + the win rule).
struct AnalysisPoint {
    clauses: usize,
    analyze_ns: u64,
    diagnostics: usize,
}

fn analysis_sweep() -> AnalysisPoint {
    let mut store = TermStore::new();
    let program = win_grid(&mut store, 200, 200);
    let opts = AnalyzerOpts::default();
    let report = analyze(&store, &program, &opts);
    let analyze_ns = median_ns(9, || analyze(&store, &program, &opts));
    let out = AnalysisPoint {
        clauses: program.len(),
        analyze_ns,
        diagnostics: report.diagnostics.len(),
    };
    println!(
        "analysis win_grid_200x200: {} clauses analyzed in {:.3}ms, {} diagnostics",
        out.clauses,
        out.analyze_ns as f64 / 1e6,
        out.diagnostics,
    );
    out
}

/// The PR 9 observability record: the commit pipeline's per-phase
/// latency split as the metrics registry saw it, and what the
/// always-on instrumentation costs on the hot commit path.
struct ObsPoint {
    /// `(phase name, histogram)` for every phase that recorded,
    /// straight out of `Session::metrics()` — the bench keeps no
    /// stopwatch of its own for these.
    phases: Vec<(&'static str, gsls_obs::HistogramSnapshot)>,
    /// p50/p99 of the warm single-fact `commit_with` with the obs
    /// bundle enabled (the default state).
    enabled_p50_ns: u64,
    enabled_p99_ns: u64,
    /// … and with `Obs::set_enabled(false)`: every probe degrades to
    /// one relaxed load + branch. The in-process overhead baseline.
    disabled_p50_ns: u64,
    disabled_p99_ns: u64,
}

impl ObsPoint {
    fn overhead_pct(&self) -> f64 {
        (self.enabled_p50_ns as f64 / self.disabled_p50_ns.max(1) as f64 - 1.0) * 100.0
    }
}

/// Measures the per-phase commit breakdown and the enabled-vs-disabled
/// overhead of the observability layer on win_grid 200×200.
fn observability_sweep() -> ObsPoint {
    let (w, h) = (200usize, 200usize);
    let mut store = TermStore::new();
    let program = win_grid(&mut store, w, h);
    let mut session = Session::from_parts(store, program).expect("grid is function-free");
    let obs = session.obs();

    // Warm the single-fact commit path, then drop the warmup from the
    // registry's view of the phase split by snapshotting after it.
    for i in 0..8 {
        session.begin().expect("begin");
        session
            .assert_facts(&format!("move(warm{i}, n0)."))
            .expect("stage fact");
        session.commit_with(&CommitOpts::none()).expect("commit");
    }
    let before = session.metrics();

    // Phase breakdown: 40 governed warm commits; the registry's phase
    // histograms are the only timer (migrated off bench stopwatches).
    for i in 0..40 {
        session.begin().expect("begin");
        session
            .assert_facts(&format!("move(obs{i}, n0)."))
            .expect("stage fact");
        session.commit_with(&CommitOpts::none()).expect("commit");
    }
    let after = session.metrics();
    const PHASES: [&str; 7] = [
        "commit.total",
        "commit.validate",
        "commit.admission",
        "commit.journal",
        "commit.ground",
        "commit.refresh",
        "commit.index",
    ];
    let phases: Vec<(&'static str, gsls_obs::HistogramSnapshot)> = PHASES
        .iter()
        .filter_map(|name| {
            let h = *after.histogram(name)?;
            let h0 = before.histogram(name).copied().unwrap_or_default();
            (h.count > h0.count).then_some((*name, h))
        })
        .collect();

    // Instrumentation overhead: the identical warm commit, alternating
    // the enable flag so drift from the growing program lands on both
    // sample sets alike. The registry cannot time its own absence, so
    // this one comparison keeps a bench-side stopwatch.
    let mut enabled: Vec<u64> = Vec::with_capacity(80);
    let mut disabled: Vec<u64> = Vec::with_capacity(80);
    for i in 0..160 {
        let on = i % 2 == 0;
        obs.set_enabled(on);
        let fact = format!("move(ov{i}, n0).");
        let t = Instant::now();
        session.begin().expect("begin");
        session.assert_facts(&fact).expect("stage fact");
        session.commit_with(&CommitOpts::none()).expect("commit");
        let ns = t.elapsed().as_nanos() as u64;
        if on {
            enabled.push(ns);
        } else {
            disabled.push(ns);
        }
    }
    obs.set_enabled(true);
    enabled.sort_unstable();
    disabled.sort_unstable();

    let out = ObsPoint {
        phases,
        enabled_p50_ns: percentile(&enabled, 50),
        enabled_p99_ns: percentile(&enabled, 99),
        disabled_p50_ns: percentile(&disabled, 50),
        disabled_p99_ns: percentile(&disabled, 99),
    };
    println!(
        "observability win_grid_200x200: instrumented commit p50={:.2}ms p99={:.2}ms | \
         disabled p50={:.2}ms p99={:.2}ms (overhead {:+.1}%)",
        out.enabled_p50_ns as f64 / 1e6,
        out.enabled_p99_ns as f64 / 1e6,
        out.disabled_p50_ns as f64 / 1e6,
        out.disabled_p99_ns as f64 / 1e6,
        out.overhead_pct(),
    );
    for (name, h) in &out.phases {
        println!(
            "  {name}: count={} p50={:.3}ms p99={:.3}ms mean={:.3}ms",
            h.count,
            h.p50 as f64 / 1e6,
            h.p99 as f64 / 1e6,
            h.mean() as f64 / 1e6,
        );
    }
    out
}

/// Renders the `observability` JSON section.
fn obs_json(obs: &ObsPoint) -> String {
    let mut json =
        String::from("  \"observability\": {\"workload\": \"win_grid_200x200\", \"phases\": {");
    let ph: Vec<String> = obs
        .phases
        .iter()
        .map(|(name, h)| {
            format!(
                "\"{name}\": {{\"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
                 \"mean_ns\": {}}}",
                h.count,
                h.p50,
                h.p99,
                h.mean()
            )
        })
        .collect();
    json.push_str(&ph.join(", "));
    let _ = write!(
        json,
        "}}, \"instrumented_commit_p50_ns\": {}, \"instrumented_commit_p99_ns\": {}, \
         \"disabled_commit_p50_ns\": {}, \"disabled_commit_p99_ns\": {}, \
         \"overhead_pct_p50\": {:.2}}},",
        obs.enabled_p50_ns,
        obs.enabled_p99_ns,
        obs.disabled_p50_ns,
        obs.disabled_p99_ns,
        obs.overhead_pct(),
    );
    json
}

/// The PR 9 acceptance assertion, shared by the full run and
/// `--obs-gate`.
fn obs_acceptance(obs: &ObsPoint) {
    assert!(
        obs.enabled_p50_ns <= obs.disabled_p50_ns.max(1) * 103 / 100,
        "instrumented commit p50 {:.2}ms is {:+.1}% vs the {:.2}ms disabled p50 \
         (acceptance: <= 3%)",
        obs.enabled_p50_ns as f64 / 1e6,
        obs.overhead_pct(),
        obs.disabled_p50_ns as f64 / 1e6,
    );
    for must in [
        "commit.validate",
        "commit.admission",
        "commit.ground",
        "commit.refresh",
        "commit.index",
    ] {
        assert!(
            obs.phases.iter().any(|(name, _)| *name == must),
            "phase histogram {must} missing from the registry"
        );
    }
    println!(
        "acceptance: instrumented commit p50 {:.2}ms = {:+.1}% vs disabled (<= 3%); \
         all pipeline phase histograms present",
        obs.enabled_p50_ns as f64 / 1e6,
        obs.overhead_pct(),
    );
}

/// Counts heap allocations across warm calls of both substrate modes.
/// The contract for each is exactly zero.
fn zero_alloc_check() -> (u64, u64, u64) {
    let mut store = TermStore::new();
    let program = win_random(&mut store, 256, 3, 7);
    let gp = gsls_bench::ground(&mut store, &program);
    let calls = 100u64;

    // Propagator full-recompute calls on warm scratch.
    let mut prop = Propagator::new(&gp);
    let mut out = BitSet::new(gp.atom_count());
    let mut s = BitSet::new(gp.atom_count());
    prop.lfp_into(&gp, |q| !s.contains(q.index()), &mut out);
    s.copy_from(&out);
    prop.lfp_into(&gp, |q| !s.contains(q.index()), &mut out);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..calls {
        if i % 2 == 0 {
            prop.lfp_into(&gp, |q| !s.contains(q.index()), &mut out);
        } else {
            prop.lfp_into(&gp, |_| false, &mut out);
        }
    }
    let prop_allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;

    // Incremental evaluates over a flipping context (kills + revivals +
    // retraction cones every call) on warm scratch.
    let mut inc = IncrementalLfp::new(&gp, NegMode::SatisfiedOutside);
    let mut ctx = BitSet::new(gp.atom_count());
    inc.evaluate(&gp, &ctx);
    ctx.copy_from(inc.out());
    inc.evaluate(&gp, &ctx);
    ctx.clear();
    inc.evaluate(&gp, &ctx);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..calls {
        if i % 2 == 0 {
            ctx.copy_from(inc.out());
        } else {
            ctx.clear();
        }
        inc.evaluate(&gp, &ctx);
    }
    let inc_allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    (calls, prop_allocs, inc_allocs)
}

fn main() {
    let stress = std::env::args().any(|a| a == "--stress");
    let obs_gate = std::env::args().any(|a| a == "--obs-gate");
    println!("# perf_report — concurrent serving with group commit (PR 10)");
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host: available_parallelism={cpus}");
    let obs = observability_sweep();
    if obs_gate {
        // Fast CI mode: only the PR 9 sweep and its acceptance
        // assertion; no JSON write.
        obs_acceptance(&obs);
        return;
    }
    let serving = serving_sweep();
    let governance = governance_sweep();
    let analysis = analysis_sweep();
    let durability = durability_sweep();
    let update = update_latency_sweep();
    let snap = snapshot_read_sweep();
    let van_gelder = van_gelder_sweep();
    let engine = engine_scaling_sweep();
    let grid = grid_sweep();
    let stress_point = stress.then(stress_sweep);
    let par = par_sweep(stress);
    let (calls, prop_allocs, inc_allocs) = zero_alloc_check();
    println!(
        "zero_alloc: {prop_allocs} (propagator) / {inc_allocs} (incremental) \
         allocations across {calls} warm calls each"
    );

    let mut json = String::from("{\n  \"pr\": 10,\n");
    let _ = writeln!(
        json,
        "  \"description\": \"gsls-serve, the concurrent multi-session \
         network server: a std-only TCP front end multiplexing clients \
         onto durable sessions over a length-prefixed CRC-framed wire \
         protocol, with one writer thread per session draining a \
         bounded queue through group commit (contiguous batches \
         journaled as one WAL apply under a single fsync, each waiter \
         acked with its own typed reply), reads served from Arc'd \
         snapshots across a gsls-par-sized reader pool, and governed \
         per-request deadlines observed end-to-end\","
    );
    let _ = writeln!(json, "  \"available_parallelism\": {cpus},");
    let _ = writeln!(
        json,
        "  \"serving\": {{\"workload\": \"win_grid_200x200\", \
         \"writers\": {}, \"readers\": {}, \"commits\": {}, \
         \"queries\": {}, \"commit_p50_ns\": {}, \"commit_p99_ns\": {}, \
         \"query_p50_ns\": {}, \"query_p99_ns\": {}, \
         \"wal_group_records\": {}, \"wal_group_syncs\": {}, \
         \"records_per_fsync\": {:.2}, \"deadline_interrupted\": {}}},",
        serving.writers,
        serving.readers,
        serving.commits,
        serving.queries,
        serving.commit_p50_ns,
        serving.commit_p99_ns,
        serving.query_p50_ns,
        serving.query_p99_ns,
        serving.group_records,
        serving.group_syncs,
        serving.records_per_fsync(),
        serving.deadline_interrupted,
    );
    let _ = writeln!(json, "{}", obs_json(&obs));
    let _ = writeln!(
        json,
        "  \"governance\": {{\"workload\": \"win_grid_200x200\", \
         \"governed_commit_p50_ns\": {}, \"governed_commit_p99_ns\": {}, \
         \"ungoverned_commit_p50_ns\": {}, \"ungoverned_commit_p99_ns\": {}, \
         \"overhead_pct_p50\": {:.2}, \"cancel_latency_p50_ns\": {}, \
         \"cancel_latency_p99_ns\": {}, \"cancel_runs\": {}}},",
        governance.governed_p50_ns,
        governance.governed_p99_ns,
        governance.ungoverned_p50_ns,
        governance.ungoverned_p99_ns,
        governance.overhead_pct(),
        governance.cancel_p50_ns,
        governance.cancel_p99_ns,
        governance.cancel_runs,
    );
    let _ = writeln!(
        json,
        "  \"analysis\": {{\"workload\": \"win_grid_200x200\", \
         \"clauses\": {}, \"analyze_ns\": {}, \"diagnostics\": {}}},",
        analysis.clauses, analysis.analyze_ns, analysis.diagnostics,
    );
    let _ = writeln!(
        json,
        "  \"durability\": {{\"workload\": \"win_grid_200x200\", \
         \"commit_durable_p50_ns\": {}, \"commit_durable_p99_ns\": {}, \
         \"commit_memory_p50_ns\": {}, \"fsync_overhead_ns\": {}, \
         \"checkpoint_ns\": {}, \"reopen_replay_ns\": {}, \
         \"reopen_after_fold_ns\": {}, \"fold_speedup\": {:.2}, \
         \"reopen_checkpoint_ns\": {}, \"full_rebuild_ns\": {}, \
         \"replayed_records\": {}, \"replay_speedup_vs_rebuild\": {:.2}}},",
        durability.commit_durable_p50_ns,
        durability.commit_durable_p99_ns,
        durability.commit_memory_p50_ns,
        durability.fsync_overhead_ns(),
        durability.checkpoint_ns,
        durability.reopen_replay_ns,
        durability.reopen_after_fold_ns,
        durability.fold_speedup(),
        durability.reopen_checkpoint_ns,
        durability.full_rebuild_ns,
        durability.replayed_records,
        durability.replay_speedup(),
    );
    let _ = writeln!(
        json,
        "  \"update_latency\": {{\"workload\": \"win_grid_200x200\", \
         \"insert_p50_ns\": {}, \"insert_p99_ns\": {}, \
         \"reassert_p50_ns\": {}, \"reassert_p99_ns\": {}, \
         \"full_rebuild_ns\": {}, \"session_build_ns\": {}, \
         \"insert_speedup_vs_rebuild\": {:.2}, \
         \"reassert_speedup_vs_rebuild\": {:.2}}},",
        update.insert_p50_ns,
        update.insert_p99_ns,
        update.reassert_p50_ns,
        update.reassert_p99_ns,
        update.rebuild_ns,
        update.session_build_ns,
        update.insert_speedup(),
        update.reassert_speedup(),
    );
    json.push_str("  \"snapshot_read\": [\n");
    let sp: Vec<String> = snap
        .iter()
        .map(|p| {
            format!(
                "    {{\"workload\": \"win_grid_200x200\", \"threads\": {}, \
                 \"queries\": {}, \"wall_ns\": {}, \"queries_per_sec\": {:.0}}}",
                p.threads,
                p.queries,
                p.wall_ns,
                p.qps()
            )
        })
        .collect();
    json.push_str(&sp.join(",\n"));
    json.push_str("\n  ],\n  \"van_gelder\": [\n");
    let vg: Vec<String> = van_gelder.iter().map(|p| p.json("depth")).collect();
    json.push_str(&vg.join(",\n"));
    json.push_str("\n  ],\n  \"engine_scaling\": [\n");
    let es: Vec<String> = engine.iter().map(|p| p.json("n")).collect();
    json.push_str(&es.join(",\n"));
    json.push_str("\n  ],\n  \"grid_boards\": [\n");
    let with_grounding = |p: &SweepPoint, g: &GroundPoint| {
        let mut s = p.json("board");
        let insert = format!(", {}}}", ground_json(g));
        s.truncate(s.len() - 1);
        s.push_str(&insert);
        s
    };
    let gr: Vec<String> = grid.iter().map(|(p, g)| with_grounding(p, g)).collect();
    json.push_str(&gr.join(",\n"));
    json.push_str("\n  ],\n");
    if let Some((p, g)) = &stress_point {
        json.push_str("  \"stress\": [\n");
        json.push_str(&with_grounding(p, g));
        json.push_str("\n  ],\n");
    }
    json.push_str("  \"par_report\": [\n");
    let pr: Vec<String> = par.iter().map(ParPoint::json).collect();
    json.push_str(&pr.join(",\n"));
    json.push_str("\n  ],\n");
    let _ = write!(
        json,
        "  \"zero_alloc\": {{\"warm_calls_each\": {calls}, \
         \"propagator_allocations\": {prop_allocs}, \
         \"incremental_allocations\": {inc_allocs}}}\n}}\n"
    );
    std::fs::write("BENCH_10.json", &json).expect("write BENCH_10.json");
    println!("wrote BENCH_10.json");

    // PR 10 acceptance: under ≥ 8 concurrent mixed clients the group
    // path must amortize ≥ 2 journaled batches per fsync, and the
    // governed deadline must land on exactly the over-deadline client
    // (asserted inside the sweep: Interrupted to that client, session
    // kept serving, acked writes visible).
    assert!(
        serving.writers + serving.readers >= 8,
        "serving storm must field >= 8 concurrent clients"
    );
    assert!(
        serving.records_per_fsync() >= 2.0,
        "group commit amortized only {:.2} records per fsync \
         ({} records / {} syncs; acceptance: >= 2)",
        serving.records_per_fsync(),
        serving.group_records,
        serving.group_syncs,
    );
    assert!(serving.deadline_interrupted);
    println!(
        "acceptance: serving storm ({} clients) commit p99 {:.2}ms, query p99 {:.2}ms; \
         group commit {:.1} records/fsync (>= 2); expired deadline -> Interrupted \
         to exactly that client",
        serving.writers + serving.readers,
        serving.commit_p99_ns as f64 / 1e6,
        serving.query_p99_ns as f64 / 1e6,
        serving.records_per_fsync(),
    );

    // PR 10 durability fix: the post-replay checkpoint fold must make
    // the second reopen cheaper than the replaying first one.
    assert!(
        durability.reopen_after_fold_ns < durability.reopen_replay_ns,
        "second reopen ({:.1}ms) should beat the replaying first one ({:.1}ms): \
         the post-replay checkpoint fold is not landing",
        durability.reopen_after_fold_ns as f64 / 1e6,
        durability.reopen_replay_ns as f64 / 1e6,
    );
    println!(
        "acceptance: reopen after fold {:.1}ms vs replaying reopen {:.1}ms ({:.1}x)",
        durability.reopen_after_fold_ns as f64 / 1e6,
        durability.reopen_replay_ns as f64 / 1e6,
        durability.fold_speedup(),
    );

    // PR 9 acceptance: always-on instrumentation within 3% of the
    // disabled-bundle p50, all pipeline phase histograms present.
    obs_acceptance(&obs);

    // PR 8 acceptance: the armed guard (deadline + memory budget, one
    // check every TICK_INTERVAL work units) must stay invisible on the
    // hot commit path — within 5% of the ungoverned p50 — and a
    // cross-thread cancel must land promptly, not at round granularity.
    assert!(
        governance.governed_p50_ns <= governance.ungoverned_p50_ns.max(1) * 105 / 100,
        "governed commit p50 {:.2}ms is {:+.1}% vs the {:.2}ms ungoverned p50 \
         (acceptance: <= 5%)",
        governance.governed_p50_ns as f64 / 1e6,
        governance.overhead_pct(),
        governance.ungoverned_p50_ns as f64 / 1e6,
    );
    assert!(
        governance.cancel_p99_ns < 250_000_000,
        "cancel-to-return latency p99 {:.1}ms breaches the 250ms bound",
        governance.cancel_p99_ns as f64 / 1e6,
    );
    println!(
        "acceptance: governed commit p50 {:.2}ms = {:+.1}% vs ungoverned (<= 5%); \
         cancel latency p99 {:.2}ms (< 250ms)",
        governance.governed_p50_ns as f64 / 1e6,
        governance.overhead_pct(),
        governance.cancel_p99_ns as f64 / 1e6,
    );

    // PR 7 acceptance: the full multi-pass analysis of the 200×200 rule
    // set must stay under 5ms on the reference machine — the gate
    // fronts a ~4ms commit and must not dominate it. The CI guard is
    // looser (8ms) to keep slow shared containers from flaking (BENCH_7
    // recorded 4.4ms; runs on this box wobble 4.8–5.9ms) while still
    // catching rot.
    assert!(
        analysis.analyze_ns < 8_000_000,
        "win_grid 200x200 analysis {:.3}ms breaches the 8ms CI guard (target 5ms)",
        analysis.analyze_ns as f64 / 1e6
    );
    assert_eq!(
        analysis.diagnostics, 0,
        "win_grid 200x200 must be diagnostic-free"
    );
    println!(
        "acceptance: win_grid 200x200 full analysis {:.3}ms (target 5ms, guard 8ms), clean",
        analysis.analyze_ns as f64 / 1e6
    );

    // PR 5 acceptance: single-fact assert + re-query ≥ 10× faster than
    // Solver::new + query from scratch, on the honest (fresh-insert)
    // path; the clause-switch path must clear the same bar.
    assert!(
        update.insert_speedup() >= 10.0,
        "insert update latency {:.2}ms is only {:.1}x vs the {:.1}ms rebuild \
         (acceptance: >= 10x)",
        update.insert_p50_ns as f64 / 1e6,
        update.insert_speedup(),
        update.rebuild_ns as f64 / 1e6
    );
    assert!(
        update.reassert_speedup() >= 10.0,
        "reassert update latency {:.2}ms is only {:.1}x vs the {:.1}ms rebuild \
         (acceptance: >= 10x)",
        update.reassert_p50_ns as f64 / 1e6,
        update.reassert_speedup(),
        update.rebuild_ns as f64 / 1e6
    );
    println!(
        "acceptance: single-fact assert + re-query {:.2}ms p50 = {:.1}x vs {:.1}ms \
         rebuild (>= 10x); reassert toggle {:.1}x",
        update.insert_p50_ns as f64 / 1e6,
        update.insert_speedup(),
        update.rebuild_ns as f64 / 1e6,
        update.reassert_speedup(),
    );

    let n1024 = van_gelder.last().expect("sweep nonempty");
    assert_eq!(prop_allocs, 0, "propagator calls must not allocate warm");
    assert_eq!(inc_allocs, 0, "incremental calls must not allocate warm");
    assert!(
        n1024.speedup_vs_scratch() >= 2.0,
        "van_gelder N=1024 incremental speedup {:.2}x below the 2x acceptance bar",
        n1024.speedup_vs_scratch()
    );
    let big_grid = &grid.last().expect("grid sweep nonempty").1;
    // PR 3 acceptance: win_grid 200x200 grounded in <=50ms on the
    // reference machine (BENCH_2: 254ms). The CI guard is looser (120ms)
    // to keep slow containers from flaking while still catching rot.
    assert!(
        big_grid.ground_ns <= 120_000_000,
        "win_grid 200x200 ground time {:.1}ms regressed past the 120ms guard",
        big_grid.ground_ns as f64 / 1e6
    );
    // PR 4 acceptance: ≥1.5× end-to-end on the 600×600 board at 4
    // threads vs 1 thread. Threads cannot beat one core, so the
    // assertion arms only where the host has ≥4 CPUs; elsewhere the
    // numbers are still recorded for the trajectory.
    let speedup_of = |workload: &str| -> Option<f64> {
        let at = |threads: usize| {
            par.iter()
                .find(|p| p.workload == workload && p.threads == threads)
                .map(ParPoint::total_ns)
        };
        Some(at(1)? as f64 / at(4)?.max(1) as f64)
    };
    if let Some(speedup) = speedup_of("win_grid_600x600") {
        if cpus >= 4 {
            assert!(
                speedup >= 1.5,
                "600x600 ground+solve at 4 threads is {speedup:.2}x vs 1 thread, \
                 below the 1.5x acceptance bar on a {cpus}-CPU host"
            );
            println!("acceptance: 600x600 4-thread speedup {speedup:.2}x (>= 1.5x)");
        } else {
            println!(
                "note: 600x600 4-thread speedup {speedup:.2}x recorded on a \
                 {cpus}-CPU host; the 1.5x acceptance bar needs >= 4 CPUs"
            );
        }
    }
    println!(
        "acceptance: van_gelder N=1024 incremental {:.3}ms, {:.2}x vs scratch \
         (>= 2x); win_grid 200x200 ground {:.1}ms (BENCH_2: 254.0ms); zero warm \
         allocations on both paths",
        n1024.wfm_ns as f64 / 1e6,
        n1024.speedup_vs_scratch(),
        big_grid.ground_ns as f64 / 1e6,
    );
}
