//! Emits `BENCH_1.json`: the perf trajectory record for PR 1 (the
//! zero-allocation fixpoint substrate).
//!
//! Measures, for the van_gelder and engine_scaling sweeps:
//!
//! * ground program size (atoms, clauses) and alternating-fixpoint
//!   `reduct_calls`;
//! * wall-time of the well-founded model on the reusable-propagator
//!   substrate vs the pre-CSR rebuild-per-call baseline
//!   (`well_founded_model_rebuild`), with the speedup;
//! * heap allocations per reduct call after warm-up, counted by a
//!   wrapping global allocator (the substrate's contract is zero).
//!
//! Run from the workspace root: `cargo run --release -p gsls-bench --bin
//! perf_report`. Future PRs append their own `BENCH_<n>.json` so the
//! trajectory stays comparable.

use gsls_ground::{Grounder, GrounderOpts, HerbrandOpts};
use gsls_lang::TermStore;
use gsls_wfs::{well_founded_model_rebuild, well_founded_model_with_stats, BitSet, Propagator};
use gsls_workloads::{van_gelder_program, win_random};
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts every allocation so the zero-allocation contract is checked,
/// not assumed.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Median wall-time of `runs` executions, in nanoseconds.
fn median_ns<T>(runs: usize, mut f: impl FnMut() -> T) -> u64 {
    let mut samples: Vec<u64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct SweepPoint {
    label: String,
    atoms: usize,
    clauses: usize,
    reduct_calls: u32,
    wfm_ns: u64,
    rebuild_ns: u64,
}

impl SweepPoint {
    fn speedup(&self) -> f64 {
        self.rebuild_ns as f64 / self.wfm_ns.max(1) as f64
    }

    fn json(&self, key: &str) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "    {{\"{key}\": {}, \"atoms\": {}, \"clauses\": {}, \
             \"reduct_calls\": {}, \"wfm_ns\": {}, \"wfm_rebuild_ns\": {}, \
             \"speedup\": {:.2}}}",
            self.label,
            self.atoms,
            self.clauses,
            self.reduct_calls,
            self.wfm_ns,
            self.rebuild_ns,
            self.speedup()
        );
        s
    }
}

fn measure(gp: &gsls_ground::GroundProgram, label: String, runs: usize) -> SweepPoint {
    let (_, stats) = well_founded_model_with_stats(gp);
    let wfm_ns = median_ns(runs, || well_founded_model_with_stats(gp).0);
    let rebuild_ns = median_ns(runs, || well_founded_model_rebuild(gp));
    SweepPoint {
        label,
        atoms: gp.atom_count(),
        clauses: gp.clause_count(),
        reduct_calls: stats.reduct_calls,
        wfm_ns,
        rebuild_ns,
    }
}

fn van_gelder_sweep() -> Vec<SweepPoint> {
    [64u32, 256, 1024]
        .iter()
        .map(|&depth| {
            let mut store = TermStore::new();
            let program = van_gelder_program(&mut store);
            let gp = Grounder::ground_with(
                &mut store,
                &program,
                GrounderOpts {
                    universe: HerbrandOpts {
                        max_depth: depth,
                        max_terms: 1_000_000,
                    },
                    ..GrounderOpts::default()
                },
            )
            .expect("van_gelder grounds");
            let runs = if depth >= 1024 { 5 } else { 9 };
            let p = measure(&gp, depth.to_string(), runs);
            println!(
                "van_gelder N={depth}: atoms={} clauses={} reduct_calls={} \
                 wfm={:.3}ms rebuild={:.3}ms speedup={:.2}x",
                p.atoms,
                p.clauses,
                p.reduct_calls,
                p.wfm_ns as f64 / 1e6,
                p.rebuild_ns as f64 / 1e6,
                p.speedup()
            );
            p
        })
        .collect()
}

fn engine_scaling_sweep() -> Vec<SweepPoint> {
    gsls_bench::SWEEP
        .iter()
        .map(|&n| {
            let mut store = TermStore::new();
            let program = win_random(&mut store, n, 3, 11);
            let gp = gsls_bench::ground(&mut store, &program);
            let p = measure(&gp, n.to_string(), 9);
            println!(
                "engine_scaling n={n}: atoms={} clauses={} reduct_calls={} \
                 wfm={:.3}ms rebuild={:.3}ms speedup={:.2}x",
                p.atoms,
                p.clauses,
                p.reduct_calls,
                p.wfm_ns as f64 / 1e6,
                p.rebuild_ns as f64 / 1e6,
                p.speedup()
            );
            p
        })
        .collect()
}

/// Counts heap allocations across `calls` reduct evaluations on warm
/// scratch. The substrate contract is exactly zero.
fn zero_alloc_check() -> (u64, u64) {
    let mut store = TermStore::new();
    let program = win_random(&mut store, 256, 3, 7);
    let gp = gsls_bench::ground(&mut store, &program);
    let mut prop = Propagator::new(&gp);
    let mut out = BitSet::new(gp.atom_count());
    let mut s = BitSet::new(gp.atom_count());
    // Warm-up: size the queue and touch every path once.
    prop.lfp_into(&gp, |q| !s.contains(q.index()), &mut out);
    s.copy_from(&out);
    prop.lfp_into(&gp, |q| !s.contains(q.index()), &mut out);
    let calls = 100u64;
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..calls {
        // Alternate contexts so both reduct shapes are exercised.
        if i % 2 == 0 {
            prop.lfp_into(&gp, |q| !s.contains(q.index()), &mut out);
        } else {
            prop.lfp_into(&gp, |_| false, &mut out);
        }
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    (calls, after - before)
}

fn main() {
    println!("# perf_report — zero-allocation fixpoint substrate (PR 1)");
    let van_gelder = van_gelder_sweep();
    let engine = engine_scaling_sweep();
    let (calls, allocs) = zero_alloc_check();
    println!("zero_alloc: {allocs} allocations across {calls} warm reduct calls");

    let mut json = String::from("{\n  \"pr\": 1,\n");
    let _ = writeln!(
        json,
        "  \"description\": \"CSR ground programs + reusable propagator vs \
         per-call watch-list rebuild\","
    );
    json.push_str("  \"van_gelder\": [\n");
    let vg: Vec<String> = van_gelder.iter().map(|p| p.json("depth")).collect();
    json.push_str(&vg.join(",\n"));
    json.push_str("\n  ],\n  \"engine_scaling\": [\n");
    let es: Vec<String> = engine.iter().map(|p| p.json("n")).collect();
    json.push_str(&es.join(",\n"));
    let _ = write!(
        json,
        "\n  ],\n  \"zero_alloc\": {{\"warm_reduct_calls\": {calls}, \
         \"allocations\": {allocs}}}\n}}\n"
    );
    std::fs::write("BENCH_1.json", &json).expect("write BENCH_1.json");
    println!("wrote BENCH_1.json");

    let n1024 = van_gelder.last().expect("sweep nonempty");
    assert_eq!(allocs, 0, "reduct calls must not allocate after warm-up");
    assert!(
        n1024.speedup() >= 3.0,
        "van_gelder N=1024 speedup {:.2}x below the 3x acceptance bar",
        n1024.speedup()
    );
    println!(
        "acceptance: van_gelder N=1024 speedup {:.2}x (>= 3x), zero warm allocations",
        n1024.speedup()
    );
}
