//! `gsls-lint` — the static analyzer as a command-line gate.
//!
//! Lints `.lp` source files and/or the built-in workload generators and
//! exits nonzero when any deny-level (error) diagnostic fires, so it
//! can gate CI the way `cargo clippy -D warnings` does:
//!
//! ```text
//! gsls-lint examples/lp/*.lp --workloads
//! gsls-lint --json --strict program.lp
//! ```
//!
//! Flags:
//!
//! * `--workloads`   also lint every workload generator (small sizes);
//! * `--strict`      deny everything (all lints at deny level);
//! * `--permissive`  report nothing (useful to smoke-test parsing);
//! * `--budget N`    instantiation-estimate budget (default 1,000,000);
//! * `--json`        machine-readable output, one JSON object per line.
//!
//! Run: `cargo run --release -p gsls-bench --bin gsls-lint -- <args>`.

use gsls_analyze::{analyze, AnalyzerOpts, LintConfig, LintReport};
use gsls_lang::{parse_program, Program, TermStore};
use gsls_workloads::{
    negated_reachability, odd_even_chain, win_chain, win_cycle, win_grid, win_random, win_tree,
};
use std::process::ExitCode;

struct Cli {
    files: Vec<String>,
    workloads: bool,
    json: bool,
    config: LintConfig,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        files: Vec::new(),
        workloads: false,
        json: false,
        config: LintConfig::default(),
    };
    let mut budget: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workloads" => cli.workloads = true,
            "--json" => cli.json = true,
            "--strict" => cli.config = LintConfig::strict(),
            "--permissive" => cli.config = LintConfig::permissive(),
            "--budget" => {
                let v = args.next().ok_or("--budget needs a value")?;
                budget = Some(v.parse().map_err(|_| format!("bad budget: {v}"))?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: gsls-lint [--workloads] [--json] [--strict|--permissive] \
                     [--budget N] [file.lp ...]"
                        .to_owned(),
                )
            }
            _ if arg.starts_with('-') => return Err(format!("unknown flag: {arg}")),
            _ => cli.files.push(arg),
        }
    }
    if let Some(b) = budget {
        cli.config = std::mem::take(&mut cli.config).with_budget(b);
    }
    if cli.files.is_empty() && !cli.workloads {
        return Err("nothing to lint: pass .lp files and/or --workloads".to_owned());
    }
    Ok(cli)
}

/// Lints one named program; returns whether it is deny-clean.
fn lint(name: &str, store: &TermStore, program: &Program, cli: &Cli) -> bool {
    let report: LintReport = analyze(
        store,
        program,
        &AnalyzerOpts::with_config(cli.config.clone()),
    );
    if cli.json {
        println!("{{\"unit\":{:?},\"report\":{}}}", name, report.to_json());
    } else if report.is_clean() {
        println!("{name}: clean");
    } else {
        println!("{name}:");
        for line in report.render().lines() {
            println!("  {line}");
        }
    }
    !report.has_errors()
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut ok = true;
    for path in &cli.files {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: {e}");
                ok = false;
                continue;
            }
        };
        let mut store = TermStore::new();
        match parse_program(&mut store, &src) {
            Ok(program) => ok &= lint(path, &store, &program, &cli),
            Err(e) => {
                eprintln!("{path}: parse error: {e}");
                ok = false;
            }
        }
    }

    if cli.workloads {
        type Generator = fn(&mut TermStore) -> Program;
        let generators: &[(&str, Generator)] = &[
            ("workload:win_chain(32)", |s| win_chain(s, 32)),
            ("workload:win_cycle(9)", |s| win_cycle(s, 9)),
            ("workload:win_tree(4)", |s| win_tree(s, 4)),
            ("workload:win_grid(8x8)", |s| win_grid(s, 8, 8)),
            ("workload:win_random(24)", |s| win_random(s, 24, 3, 7)),
            ("workload:negated_reachability(8)", |s| {
                negated_reachability(s, 8)
            }),
            ("workload:odd_even_chain(16)", |s| odd_even_chain(s, 16)),
            // van_gelder_program is deliberately absent: it carries
            // function symbols, outside the function-free class the
            // safety lints (range restriction, groundness) are about.
        ];
        for (name, mk) in generators {
            let mut store = TermStore::new();
            let program = mk(&mut store);
            ok &= lint(name, &store, &program, &cli);
        }
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
