//! `gsls-obs` — the observability layer as a command-line inspector.
//!
//! Loads a program (a `.lp` source file via [`Session::from_source`],
//! or a durable session directory via [`Session::open`], whose replay
//! itself populates the registry), optionally drives it with commits
//! and queries, then prints everything the engine observed: counters,
//! latency histograms and the span-event timeline.
//!
//! ```text
//! gsls-obs examples/lp/win_game.lp --query "?- win(X)."
//! gsls-obs /var/lib/gsls/session --events 32
//! gsls-obs program.lp --assert "move(x, a)." --json
//! ```
//!
//! Flags:
//!
//! * `--assert "<facts>"`  commit the facts before reporting (repeatable);
//! * `--query "?- ..."`    run the query before reporting (repeatable);
//! * `--events N`          cap the event timeline at the newest N;
//! * `--json`              one JSON object: `{"metrics": ..., "events": [...]}`;
//! * `--prom`              metrics in the Prometheus text exposition format
//!   (what `gsls-serve`'s scrape endpoint returns).
//!
//! Run: `cargo run --release -p gsls-bench --bin gsls-obs -- <args>`.

use gsls_core::Session;
use gsls_obs::TraceEvent;
use std::process::ExitCode;

struct Cli {
    target: String,
    asserts: Vec<String>,
    queries: Vec<String>,
    events: Option<usize>,
    json: bool,
    prom: bool,
}

fn parse_args() -> Result<Cli, String> {
    let mut target: Option<String> = None;
    let mut cli = Cli {
        target: String::new(),
        asserts: Vec::new(),
        queries: Vec::new(),
        events: None,
        json: false,
        prom: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => cli.json = true,
            "--prom" => cli.prom = true,
            "--assert" => cli.asserts.push(args.next().ok_or("--assert needs facts")?),
            "--query" => cli.queries.push(args.next().ok_or("--query needs a goal")?),
            "--events" => {
                let v = args.next().ok_or("--events needs a count")?;
                cli.events = Some(v.parse().map_err(|_| format!("bad count: {v}"))?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: gsls-obs <file.lp | session-dir> [--assert \"<facts>\"]... \
                     [--query \"?- ...\"]... [--events N] [--json] [--prom]"
                        .to_owned(),
                )
            }
            _ if arg.starts_with('-') => return Err(format!("unknown flag: {arg}")),
            _ if target.is_some() => return Err(format!("second target: {arg}")),
            _ => target = Some(arg),
        }
    }
    cli.target = target.ok_or("nothing to inspect: pass a .lp file or a session dir")?;
    Ok(cli)
}

/// Opens the target as a durable session directory or a `.lp` source
/// file, whichever it is on disk.
fn load(target: &str) -> Result<Session, String> {
    let path = std::path::Path::new(target);
    if path.is_dir() {
        return Session::open(path).map_err(|e| format!("{target}: {e}"));
    }
    let src = std::fs::read_to_string(path).map_err(|e| format!("{target}: {e}"))?;
    Session::from_source(&src).map_err(|e| format!("{target}: {e}"))
}

fn print_events(events: &[TraceEvent], json: bool) {
    if json {
        return; // folded into the single JSON object by the caller
    }
    println!("\nevents ({}):", events.len());
    println!("  {:>6}  {:>12}  {:>12}  label", "seq", "at_us", "dur_us");
    for e in events {
        print!(
            "  {:>6}  {:>12.1}  {:>12.1}  {}",
            e.seq,
            e.at_ns as f64 / 1e3,
            e.dur_ns as f64 / 1e3,
            e.label
        );
        if let Some(d) = &e.detail {
            print!("  [{d}]");
        }
        println!();
    }
}

fn run() -> Result<(), String> {
    let cli = parse_args()?;
    let mut session = load(&cli.target)?;

    for facts in &cli.asserts {
        session
            .assert_facts(facts)
            .map_err(|e| format!("--assert {facts:?}: {e}"))?;
    }
    let mut query_lines = Vec::new();
    for goal in &cli.queries {
        let r = session
            .query(goal)
            .map_err(|e| format!("--query {goal:?}: {e}"))?;
        let mut line = format!("{goal}  =>  {} ({} answers)", r.truth, r.answers.len());
        for subst in r.answers.iter().take(8) {
            line.push_str(&format!("\n    {}", subst.display(session.store())));
        }
        if r.answers.len() > 8 {
            line.push_str(&format!("\n    ... {} more", r.answers.len() - 8));
        }
        query_lines.push(line);
    }

    if cli.prom {
        print!("{}", gsls_obs::render_prometheus(session.obs().registry()));
        return Ok(());
    }

    let metrics = session.metrics();
    let mut events = session.recent_events();
    if let Some(n) = cli.events {
        let skip = events.len().saturating_sub(n);
        events.drain(..skip);
    }

    if cli.json {
        let ev: Vec<String> = events.iter().map(TraceEvent::to_json).collect();
        println!(
            "{{\"target\": \"{}\", \"metrics\": {}, \"events\": [{}]}}",
            gsls_obs::json_escape(&cli.target),
            metrics.to_json(),
            ev.join(", ")
        );
        return Ok(());
    }

    println!("# gsls-obs — {}", cli.target);
    for line in &query_lines {
        println!("{line}");
    }
    println!("\ncounters:");
    for (name, v) in &metrics.counters {
        println!("  {name:<40} {v:>12}");
    }
    if !metrics.gauges.is_empty() {
        println!("\ngauges:");
        for (name, v) in &metrics.gauges {
            println!("  {name:<40} {v:>12}");
        }
    }
    println!("\nhistograms:");
    println!(
        "  {:<24} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "name", "count", "p50_us", "p90_us", "p99_us", "max_us"
    );
    for (name, h) in &metrics.histograms {
        println!(
            "  {:<24} {:>8} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            name,
            h.count,
            h.p50 as f64 / 1e3,
            h.p90 as f64 / 1e3,
            h.p99 as f64 / 1e3,
            h.max as f64 / 1e3
        );
    }
    print_events(&events, cli.json);
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
