//! Substrate microbenchmarks: unification, parsing, grounding, and the
//! SCC machinery — the components every engine is built on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsls_ground::depgraph::sccs;
use gsls_lang::{parse_program, unify, Subst, TermStore};
use gsls_workloads::win_random;

fn bench_unify(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/unify");
    for &depth in &[8usize, 64, 512] {
        group.bench_with_input(BenchmarkId::new("numeral", depth), &depth, |b, _| {
            let mut store = TermStore::new();
            let ground_num = store.numeral("s", "0", depth);
            // s(s(…s(X)…)) with depth-1 s's
            let x = store.fresh_var(Some("X"));
            let s = store.intern_symbol("s");
            let mut pat = x;
            for _ in 0..depth - 1 {
                pat = store.app(s, &[pat]);
            }
            b.iter(|| {
                let mut sub = Subst::new();
                assert!(unify(&store, &mut sub, pat, ground_num));
                sub.len()
            });
        });
    }
    group.finish();
}

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/parse");
    for &n in &[100usize, 1000] {
        let mut src = String::new();
        for i in 0..n {
            src.push_str(&format!("edge(v{i}, v{}). ", i + 1));
        }
        src.push_str("t(X, Y) :- edge(X, Y). t(X, Z) :- edge(X, Y), t(Y, Z).");
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut store = TermStore::new();
                parse_program(&mut store, &src).unwrap().len()
            });
        });
    }
    group.finish();
}

fn bench_grounding(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/grounding");
    for &n in &[64usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::new("win_random", n), &n, |b, _| {
            b.iter(|| {
                let mut store = TermStore::new();
                let program = win_random(&mut store, n, 3, 5);
                gsls_ground::Grounder::ground(&mut store, &program)
                    .unwrap()
                    .clause_count()
            });
        });
    }
    group.finish();
}

fn bench_sccs(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/tarjan");
    for &n in &[1_000usize, 100_000] {
        // A long chain plus back edges every 10 nodes: many small SCCs.
        let adj: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                let mut out = Vec::new();
                if i + 1 < n {
                    out.push((i + 1) as u32);
                }
                if i % 10 == 9 {
                    out.push((i - 9) as u32);
                }
                out
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| sccs(&adj).len());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_unify, bench_parse, bench_grounding, bench_sccs
}
criterion_main!(benches);
