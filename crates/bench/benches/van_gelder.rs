//! E1 — Example 3.1 / Figures 1–4: regenerates the level series
//! `level(← w(sⁿ(0))) = 2n` and times the global-tree construction as n
//! grows, plus the depth-bounded bottom-up model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsls_core::{GlobalOpts, GlobalTree, Status};
use gsls_ground::{Grounder, GrounderOpts, HerbrandOpts};
use gsls_lang::{parse_goal, TermStore};
use gsls_wfs::well_founded_model;
use gsls_workloads::van_gelder_program;

fn numeral(n: usize) -> String {
    let mut t = "0".to_owned();
    for _ in 0..n {
        t = format!("s({t})");
    }
    t
}

/// Prints the Figure-4 data series: n, status, level.
fn print_series() {
    let mut store = TermStore::new();
    let program = van_gelder_program(&mut store);
    println!("# E1: level(← w(s^n(0))) — paper says 2n; ← w(0) needs ω+2");
    println!("# {:>3} {:>12} {:>8}", "n", "status", "level");
    for n in 1..=8usize {
        let goal = parse_goal(&mut store, &format!("?- w({}).", numeral(n))).unwrap();
        let tree = GlobalTree::build(&mut store, &program, &goal, GlobalOpts::default());
        let level = tree
            .root()
            .level_succ
            .clone()
            .map_or("-".into(), |l| l.to_string());
        println!("# {n:>3} {:>12} {level:>8}", format!("{:?}", tree.status()));
        assert_eq!(tree.status(), Status::Successful);
    }
}

fn bench_tree_levels(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("van_gelder/global_tree_w_n");
    for &n in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut store = TermStore::new();
            let program = van_gelder_program(&mut store);
            let goal = parse_goal(&mut store, &format!("?- w({}).", numeral(n))).unwrap();
            b.iter(|| {
                let tree = GlobalTree::build(&mut store, &program, &goal, GlobalOpts::default());
                assert_eq!(tree.status(), Status::Successful);
                tree.root().level_succ.clone()
            });
        });
    }
    group.finish();
}

fn bench_bounded_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("van_gelder/bounded_wfm_depth");
    for &depth in &[4u32, 8, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| {
                let mut store = TermStore::new();
                let program = van_gelder_program(&mut store);
                let gp = Grounder::ground_with(
                    &mut store,
                    &program,
                    GrounderOpts {
                        universe: HerbrandOpts {
                            max_depth: depth,
                            max_terms: 100_000,
                        },
                        ..GrounderOpts::default()
                    },
                )
                .unwrap();
                well_founded_model(&gp).count_true()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_tree_levels, bench_bounded_model
}
criterion_main!(benches);
