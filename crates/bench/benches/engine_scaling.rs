//! E9 — Sec. 7 effectiveness: the memoized top-down engine vs the
//! bottom-up alternating fixpoint [32], across board shapes and sizes.
//!
//! Shape claims regenerated:
//! * both are polynomial (near-linear here) in program size;
//! * goal-directedness wins when the relevant subprogram is a small part
//!   of the board (`two_boards`: query touches one component only);
//! * on fully connected boards the bottom-up pass wins by constant
//!   factor (no table/reachability overhead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsls_bench::{atom_named, ground, SWEEP};
use gsls_core::TabledEngine;
use gsls_lang::TermStore;
use gsls_wfs::well_founded_model;
use gsls_workloads::{win_chain, win_cycle, win_random, win_tree};

fn bench_shapes(c: &mut Criterion) {
    type Gen = fn(&mut TermStore, usize) -> gsls_lang::Program;
    let shapes: &[(&str, Gen)] = &[
        ("chain", |s, n| win_chain(s, n)),
        ("cycle", |s, n| win_cycle(s, n)),
        ("tree", |s, n| {
            let depth = (n as f64).log2() as u32;
            win_tree(s, depth)
        }),
        ("random", |s, n| win_random(s, n, 3, 11)),
    ];
    for (shape, gen) in shapes {
        let mut group = c.benchmark_group(format!("engine_scaling/{shape}"));
        for &n in SWEEP {
            // Pre-ground once; both engines consume the ground program.
            let mut store = TermStore::new();
            let program = gen(&mut store, n);
            let gp = ground(&mut store, &program);
            let root = atom_named(&mut store, &gp, "win(n0)");
            group.bench_with_input(BenchmarkId::new("tabled_query", n), &n, |b, _| {
                b.iter(|| {
                    let mut engine = TabledEngine::new(gp.clone());
                    engine.truth(root)
                });
            });
            group.bench_with_input(BenchmarkId::new("bottom_up_full_model", n), &n, |b, _| {
                b.iter(|| well_founded_model(&gp).count_true())
            });
        }
        group.finish();
    }
}

/// Goal-directedness: `k` disconnected boards, query one — tabled cost
/// stays flat while bottom-up pays for every board.
fn bench_goal_directedness(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_scaling/two_boards");
    for &k in &[2usize, 8, 32] {
        let mut store = TermStore::new();
        let mut src = String::new();
        for b in 0..k {
            for i in 0..64usize {
                src.push_str(&format!("m{b}(x{b}_{i}, x{b}_{}).\n", i + 1));
            }
            src.push_str(&format!("w{b}(X) :- m{b}(X, Y), ~w{b}(Y).\n"));
        }
        let program = gsls_lang::parse_program(&mut store, &src).unwrap();
        let gp = ground(&mut store, &program);
        let root = atom_named(&mut store, &gp, "w0(x0_0)");
        group.bench_with_input(BenchmarkId::new("tabled_one_board", k), &k, |b, _| {
            b.iter(|| {
                let mut engine = TabledEngine::new(gp.clone());
                engine.truth(root)
            });
        });
        group.bench_with_input(BenchmarkId::new("bottom_up_all_boards", k), &k, |b, _| {
            b.iter(|| well_founded_model(&gp).count_true());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_shapes, bench_goal_directedness
}
criterion_main!(benches);
