//! E8/E10 — the baseline procedures against global SLS-resolution on
//! stratified workloads (where all of them are defined and agree), plus
//! the incompleteness shape: SLDNF's cost explodes with negation depth
//! while the memoized engine stays linear.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsls_bench::{atom_named, ground};
use gsls_core::TabledEngine;
use gsls_lang::{parse_goal, TermStore};
use gsls_resolution::{sldnf_solve, sls_solve, SldnfOpts};
use gsls_workloads::{negated_reachability, odd_even_chain};

fn bench_negation_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines/negation_chain");
    for &n in &[8usize, 16, 32, 64] {
        let mut store = TermStore::new();
        let program = odd_even_chain(&mut store, n);
        let gp = ground(&mut store, &program);
        let root = atom_named(&mut store, &gp, "a0");
        group.bench_with_input(BenchmarkId::new("tabled", n), &n, |b, _| {
            b.iter(|| {
                let mut e = TabledEngine::new(gp.clone());
                e.truth(root)
            });
        });
        group.bench_with_input(BenchmarkId::new("sldnf", n), &n, |b, _| {
            let mut store = TermStore::new();
            let program = odd_even_chain(&mut store, n);
            let goal = parse_goal(&mut store, "?- a0.").unwrap();
            b.iter(|| sldnf_solve(&mut store, &program, &goal, SldnfOpts::default()).outcome);
        });
        group.bench_with_input(BenchmarkId::new("sls", n), &n, |b, _| {
            let mut store = TermStore::new();
            let program = odd_even_chain(&mut store, n);
            let goal = parse_goal(&mut store, "?- a0.").unwrap();
            b.iter(|| {
                sls_solve(&mut store, &program, &goal, Default::default())
                    .unwrap()
                    .succeeded()
            });
        });
    }
    group.finish();
}

fn bench_stratified_db(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines/negated_reachability");
    for &n in &[8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::new("tabled", n), &n, |b, _| {
            let mut store = TermStore::new();
            let program = negated_reachability(&mut store, n);
            let gp = ground(&mut store, &program);
            let q = atom_named(&mut store, &gp, &format!("unreach(v{}, v0)", n - 1));
            b.iter(|| {
                let mut e = TabledEngine::new(gp.clone());
                e.truth(q)
            });
        });
        group.bench_with_input(BenchmarkId::new("sls", n), &n, |b, _| {
            let mut store = TermStore::new();
            let program = negated_reachability(&mut store, n);
            let goal = parse_goal(&mut store, &format!("?- unreach(v{}, v0).", n - 1)).unwrap();
            b.iter(|| {
                sls_solve(&mut store, &program, &goal, Default::default())
                    .unwrap()
                    .succeeded()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_negation_chain, bench_stratified_db
}
criterion_main!(benches);
