//! E12 — ablations over the design choices DESIGN.md calls out:
//!
//! * fixpoint granularity: `W_P` iteration vs the coarser `V_P` iteration
//!   vs the alternating fixpoint (all compute the same model);
//! * grounding: relevant vs full Herbrand instantiation;
//! * loop check: tree engine with/without ground-loop pruning on an
//!   acyclic workload (the check costs a little and buys termination on
//!   cyclic ones).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsls_bench::ground;
use gsls_core::{GlobalOpts, GlobalTree, SlpOpts};
use gsls_ground::{Grounder, GrounderOpts, GroundingMode};
use gsls_lang::{parse_goal, TermStore};
use gsls_wfs::{vp_iteration, well_founded_model, wp_iteration};
use gsls_workloads::{odd_even_chain, win_chain};

fn bench_fixpoint_granularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/fixpoint");
    for &n in &[64usize, 256, 1024] {
        let mut store = TermStore::new();
        let program = win_chain(&mut store, n);
        let gp = ground(&mut store, &program);
        group.bench_with_input(BenchmarkId::new("alternating", n), &n, |b, _| {
            b.iter(|| well_founded_model(&gp).count_true());
        });
        group.bench_with_input(BenchmarkId::new("vp_iteration", n), &n, |b, _| {
            b.iter(|| vp_iteration(&gp).iterations);
        });
        // W_P takes many more (cheaper) iterations; keep sizes modest so
        // the ablation run stays quick.
        if n <= 256 {
            group.bench_with_input(BenchmarkId::new("wp_iteration", n), &n, |b, _| {
                b.iter(|| wp_iteration(&gp).iterations);
            });
        }
    }
    group.finish();
}

fn bench_grounding_mode(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/grounding");
    for &n in &[32usize, 128] {
        for (name, mode) in [
            ("relevant", GroundingMode::Relevant),
            ("full", GroundingMode::Full),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| {
                    let mut store = TermStore::new();
                    let program = win_chain(&mut store, n);
                    let gp = Grounder::ground_with(
                        &mut store,
                        &program,
                        GrounderOpts {
                            mode,
                            ..GrounderOpts::default()
                        },
                    )
                    .unwrap();
                    gp.clause_count()
                });
            });
        }
    }
    group.finish();
}

fn bench_loop_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/loop_check");
    for &n in &[16usize, 64] {
        for (name, check) in [("on", true), ("off", false)] {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                let mut store = TermStore::new();
                let program = odd_even_chain(&mut store, n);
                let goal = parse_goal(&mut store, "?- a0.").unwrap();
                let opts = GlobalOpts {
                    slp: SlpOpts {
                        ground_loop_check: check,
                        ..SlpOpts::default()
                    },
                    ..GlobalOpts::default()
                };
                b.iter(|| {
                    let tree = GlobalTree::build(&mut store, &program, &goal, opts);
                    tree.status()
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_fixpoint_granularity, bench_grounding_mode, bench_loop_check
}
criterion_main!(benches);
