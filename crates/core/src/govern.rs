//! Engine-wide resource governance: deadlines, cancellation, and
//! admission control for the [`crate::Session`] API.
//!
//! The mechanism lives in [`gsls_par::govern`] (re-exported here): a
//! `Send + Sync` [`Guard`] bundling a cancel flag, an optional
//! deadline, an approximate memory budget, and a deterministic fuel
//! counter, checked every [`TICK_INTERVAL`] work units by every hot
//! loop in the engine — the grounder's join/seed rounds, the
//! incremental fixpoint chains behind the well-founded refresh, the
//! streaming query iterator, and the parallel SCC wavefront.
//!
//! This module adds the session-facing policy types:
//!
//! * [`CommitOpts`] — per-commit limits for
//!   [`crate::Session::commit_with`]: wall-clock deadline, clause cap,
//!   and memory budget (admission-controlled *before* WAL journaling,
//!   enforced again during grounding).
//! * [`QueryOpts`] — per-query limits for
//!   [`crate::PreparedQuery::execute_governed`].
//! * [`InterruptPhase`] — where an interruption surfaced, carried by
//!   `SessionError::Interrupted` together with the [`InterruptCause`].
//!
//! An interrupted commit unwinds exactly like a failed one: the WAL
//! record is truncated off, the program is restored, and the engine is
//! rebuilt at the previous epoch — a timeout is a rolled-back
//! transaction, never a poisoned session. An interrupted query stops
//! yielding and reports the cause through
//! [`crate::session::Answers::interrupted`] — the answers already
//! streamed remain valid (a partial-answers outcome).

pub use gsls_par::govern::{Guard, GuardBuilder, InterruptCause, InterruptHandle, TICK_INTERVAL};
use std::time::Instant;

/// Which engine phase an interruption (or admission rejection)
/// surfaced in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterruptPhase {
    /// Pre-commit admission control: the batch was *predicted* to
    /// exceed a [`CommitOpts`] limit and rejected before anything was
    /// journaled or applied.
    Admission,
    /// Delta-grounding (join/seed rounds, memory polling per round).
    Grounding,
    /// The alternating well-founded refresh on the warm chains.
    ModelRefresh,
    /// A streamed query evaluation.
    Query,
}

impl std::fmt::Display for InterruptPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            InterruptPhase::Admission => "admission",
            InterruptPhase::Grounding => "grounding",
            InterruptPhase::ModelRefresh => "model refresh",
            InterruptPhase::Query => "query",
        })
    }
}

/// Resource readings captured at the moment a guard tripped, carried
/// by `SessionError::Interrupted` so timeout forensics don't require a
/// rerun. Every field is optional: only the limits the guard actually
/// enforced (and, for memory, the phases where a byte count is
/// available) produce readings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TripInfo {
    /// Fuel remaining when the trip surfaced (fuel-metered guards).
    pub fuel_remaining: Option<u64>,
    /// How far past the deadline the trip surfaced, in nanoseconds
    /// (deadline-bearing guards; 0 when the trip beat the deadline,
    /// e.g. a cancel).
    pub deadline_over_ns: Option<u64>,
    /// Approximate engine bytes in use (term store + ground program)
    /// at trip time.
    pub memory_used_bytes: Option<usize>,
    /// The memory budget the guard enforced, if any.
    pub memory_budget_bytes: Option<usize>,
}

impl TripInfo {
    /// Readings derivable from the guard alone (fuel + deadline);
    /// callers that can produce a byte count fill the memory fields.
    pub fn from_guard(guard: &Guard) -> TripInfo {
        TripInfo {
            fuel_remaining: guard.fuel_remaining(),
            deadline_over_ns: guard.deadline().map(|d| {
                Instant::now()
                    .checked_duration_since(d)
                    .map_or(0, |over| over.as_nanos() as u64)
            }),
            memory_used_bytes: None,
            memory_budget_bytes: guard.memory_budget(),
        }
    }

    /// Renders the non-empty readings as `key=value` pairs for error
    /// messages and trace events; empty string when nothing was read.
    pub fn render(&self) -> String {
        let mut parts = Vec::new();
        if let Some(f) = self.fuel_remaining {
            parts.push(format!("fuel_remaining={f}"));
        }
        if let Some(ns) = self.deadline_over_ns {
            parts.push(format!("deadline_over_ns={ns}"));
        }
        if let Some(b) = self.memory_used_bytes {
            parts.push(format!("memory_used_bytes={b}"));
        }
        if let Some(b) = self.memory_budget_bytes {
            parts.push(format!("memory_budget_bytes={b}"));
        }
        parts.join(" ")
    }
}

/// Per-commit resource limits for [`crate::Session::commit_with`].
///
/// All limits are optional; the default is fully ungoverned (identical
/// to [`crate::Session::commit`], one dead branch per tick). The
/// clause cap and memory budget are enforced twice: *predictively* at
/// admission (the analyzer's instantiation estimates, before the WAL
/// sees a record) and *actually* during grounding (per-round byte
/// accounting over the term store, ground CSR, and fact indexes).
#[derive(Debug, Clone, Copy, Default)]
pub struct CommitOpts {
    /// Wall-clock deadline; tripping yields `DeadlineExceeded`.
    pub deadline: Option<Instant>,
    /// Cap on total ground clauses after the commit (admission-checked
    /// against the analyzer's instantiation estimate).
    pub max_clauses: Option<usize>,
    /// Approximate memory budget in bytes over the term store + ground
    /// program + fact indexes; tripping yields `MemoryBudget`.
    pub max_memory_bytes: Option<usize>,
    /// Deterministic work budget: the commit is interrupted (as
    /// `Cancelled`) after this many guard checks. The fault-injection
    /// hook behind the interrupt-at-every-phase sweeps; `None` (the
    /// default) means unlimited.
    pub fuel: Option<u64>,
    /// Panic instead of returning when the fuel runs out — the
    /// crash-injection hook (see `gsls_par::govern::FUEL_PANIC`).
    pub panic_on_fuel: bool,
}

impl CommitOpts {
    /// No limits (equivalent to `CommitOpts::default()`).
    pub fn none() -> CommitOpts {
        CommitOpts::default()
    }

    /// Sets a wall-clock deadline `timeout` from now.
    pub fn with_timeout(mut self, timeout: std::time::Duration) -> CommitOpts {
        self.deadline = Some(Instant::now() + timeout);
        self
    }
}

/// Per-query resource limits for
/// [`crate::PreparedQuery::execute_governed`] and
/// [`crate::Session::query_governed`].
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryOpts {
    /// Wall-clock deadline; tripping yields `DeadlineExceeded`.
    pub deadline: Option<Instant>,
    /// Deterministic work budget (trips as `Cancelled`); the
    /// fault-injection hook, `None` = unlimited.
    pub fuel: Option<u64>,
}

impl QueryOpts {
    /// Sets a wall-clock deadline `timeout` from now.
    pub fn with_timeout(mut self, timeout: std::time::Duration) -> QueryOpts {
        self.deadline = Some(Instant::now() + timeout);
        self
    }
}

/// Builds the guard for one governed operation from a session's
/// persistent cancel flag plus per-operation limits.
pub(crate) fn guard_for(
    cancel: std::sync::Arc<std::sync::atomic::AtomicBool>,
    deadline: Option<Instant>,
    max_memory_bytes: Option<usize>,
    fuel: Option<u64>,
    panic_on_fuel: bool,
) -> Guard {
    let mut b = Guard::builder().cancel_flag(cancel);
    if let Some(d) = deadline {
        b = b.deadline(d);
    }
    if let Some(m) = max_memory_bytes {
        b = b.memory_budget(m);
    }
    if let Some(f) = fuel {
        b = b.fuel(f);
    }
    if panic_on_fuel {
        b = b.panic_on_trip();
    }
    b.build()
}
