//! The memoized (tabled) engine — Sec. 7's effective procedure for
//! function-free programs.
//!
//! Ideal global SLS-resolution is not effective: SLP-trees may be
//! infinite and indeterminate goals recurse forever through negation. The
//! paper prescribes memoing [10, 26] to prune positive loops plus pruning
//! of negative loops. This engine realises that prescription:
//!
//! 1. the program is grounded once (relevant grounding, function-free ⇒
//!    finite);
//! 2. a query atom pulls in only the **relevant subprogram** — the atoms
//!    reachable through rule bodies (this is the goal-directedness that a
//!    top-down procedure buys over the bottom-up baseline);
//! 3. the reachable region is split into SCCs of the atom dependency
//!    graph; each SCC is solved by a **local alternating fixpoint**
//!    relative to the already-tabled truth of lower SCCs — positive loops
//!    within an SCC fail (unfounded), negative loops leave atoms
//!    undefined;
//! 4. verdicts are memoized in a table shared across queries.
//!
//! Truth values agree with the well-founded model (soundness and
//! completeness, Theorems 5.4/6.2, are exercised by `tests/` property
//! tests against the bottom-up oracle); `Undefined` is the effective
//! stand-in for "ideal global SLS-resolution is indeterminate".
//!
//! ## Parallel SCC evaluation
//!
//! SCCs with no dependency path between them are semantically
//! independent, so the condensation is a wavefront: [`TabledEngine::
//! truth_parallel`] hands ready SCCs (in-degree zero over untabled
//! dependencies) to a [`gsls_par::TaskDag`] running on work-stealing
//! deques. Each worker owns an [`SccSolver`] — a [`gsls_wfs::
//! Propagator`] clone plus bitset scratch over the shared immutable CSR
//! program — and publishes verdicts through a lock-free atomic verdict
//! table; completing an SCC decrements its dependents' in-degrees and
//! enqueues the newly ready ones. Because every SCC still sees exactly
//! the verdicts of its lower SCCs, the parallel result is **identical**
//! to the sequential one at every thread count (pinned by
//! `tests/parallel_diff.rs`).

use crate::scc::SccSolver;
use gsls_ground::{depgraph, GroundAtomId, GroundProgram};
use gsls_lang::FxHashMap;
use gsls_par::govern::{Guard, InterruptCause};
use gsls_par::TaskDag;
use gsls_wfs::Truth;
use std::sync::atomic::{AtomicU8, Ordering};

/// Statistics for one query evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TabledStats {
    /// Atoms newly evaluated for this query.
    pub evaluated_atoms: usize,
    /// SCCs processed.
    pub sccs: usize,
    /// Largest SCC size.
    pub max_scc: usize,
}

/// Atomic verdict encoding for the parallel wavefront: `0` = untabled.
const V_NONE: u8 = 0;

#[inline]
fn encode(t: Truth) -> u8 {
    match t {
        Truth::True => 1,
        Truth::False => 2,
        Truth::Undefined => 3,
    }
}

#[inline]
fn decode(v: u8) -> Option<Truth> {
    match v {
        1 => Some(Truth::True),
        2 => Some(Truth::False),
        3 => Some(Truth::Undefined),
        _ => None,
    }
}

/// The memoized engine over a ground program.
///
/// SCC-local alternating fixpoints all run through one engine-owned
/// [`SccSolver`] (a [`gsls_wfs::Propagator`] restricted to the SCC's
/// clause range, with bitset scratch cleared sparsely per SCC) — after
/// warm-up, solving an SCC performs no heap allocation. The parallel
/// path ([`TabledEngine::truth_parallel`]) instead builds one solver
/// per worker; see the module docs.
#[derive(Debug, Clone)]
pub struct TabledEngine {
    gp: GroundProgram,
    /// Memo table: verdicts for already-evaluated atoms.
    table: Vec<Option<Truth>>,
    stats_total: TabledStats,
    /// Solver state for the sequential path.
    solver: SccSolver,
}

impl TabledEngine {
    /// Creates an engine for `gp` (finalizing it if needed).
    pub fn new(mut gp: GroundProgram) -> Self {
        gp.finalize();
        let n = gp.atom_count();
        let solver = SccSolver::for_worker(&gp);
        TabledEngine {
            gp,
            table: vec![None; n],
            stats_total: TabledStats::default(),
            solver,
        }
    }

    /// The underlying ground program.
    pub fn ground_program(&self) -> &GroundProgram {
        &self.gp
    }

    /// Cumulative statistics across all queries so far.
    pub fn stats(&self) -> TabledStats {
        self.stats_total
    }

    /// Number of atoms with a memoized verdict.
    pub fn tabled_count(&self) -> usize {
        self.table.iter().filter(|t| t.is_some()).count()
    }

    /// The truth of `atom` in the well-founded model, evaluating (and
    /// memoizing) the relevant subprogram on demand.
    pub fn truth(&mut self, atom: GroundAtomId) -> Truth {
        self.truth_parallel(atom, 1)
    }

    /// [`TabledEngine::truth`] with the SCC wavefront solved on
    /// `threads` workers. `threads <= 1` is the sequential path,
    /// bit-identical to [`TabledEngine::truth`]; any other count
    /// produces the same verdicts by the determinism contract (see the
    /// module docs). Pick a count with [`gsls_par::threads`].
    pub fn truth_parallel(&mut self, atom: GroundAtomId, threads: usize) -> Truth {
        self.truth_parallel_governed(atom, threads, &Guard::none())
            .expect("an ungoverned evaluation cannot be interrupted")
    }

    /// [`TabledEngine::truth_parallel`] under a [`Guard`]: the
    /// sequential path checks the guard once per SCC; the parallel path
    /// threads it into the wavefront, where the first trip aborts the
    /// work-stealing queues and unparks every worker. On interruption,
    /// verdicts of SCCs that *completed* stay memoized — memoization is
    /// monotone, so a partial table is simply a smaller table and the
    /// next call resumes from it.
    pub fn truth_parallel_governed(
        &mut self,
        atom: GroundAtomId,
        threads: usize,
        guard: &Guard,
    ) -> Result<Truth, InterruptCause> {
        if let Some(t) = self.table[atom.index()] {
            return Ok(t);
        }
        self.evaluate_from(atom, threads, guard)?;
        Ok(self.table[atom.index()].expect("evaluation must decide the root atom"))
    }

    /// The truth of `atom` if already tabled.
    pub fn cached(&self, atom: GroundAtomId) -> Option<Truth> {
        self.table[atom.index()]
    }

    /// Evaluates all atoms reachable from `root` that are not yet tabled.
    fn evaluate_from(
        &mut self,
        root: GroundAtomId,
        threads: usize,
        guard: &Guard,
    ) -> Result<(), InterruptCause> {
        // 1. Reachable, untabled atoms (DFS over body edges).
        let mut reach: Vec<GroundAtomId> = Vec::new();
        let mut seen = vec![false; self.gp.atom_count()];
        let mut stack = vec![root];
        while let Some(a) = stack.pop() {
            if seen[a.index()] || self.table[a.index()].is_some() {
                continue;
            }
            seen[a.index()] = true;
            reach.push(a);
            for &ci in self.gp.clauses_for(a) {
                let c = self.gp.clause(ci);
                for &b in c.pos.iter().chain(c.neg.iter()) {
                    if !seen[b.index()] && self.table[b.index()].is_none() {
                        stack.push(b);
                    }
                }
            }
        }
        // 2. Local index and SCCs over the reachable region.
        let mut local_of: FxHashMap<u32, u32> = FxHashMap::default();
        for (li, a) in reach.iter().enumerate() {
            local_of.insert(a.0, li as u32);
        }
        let adj: Vec<Vec<u32>> = reach
            .iter()
            .map(|&a| {
                let mut out = Vec::new();
                for &ci in self.gp.clauses_for(a) {
                    let c = self.gp.clause(ci);
                    for &b in c.pos.iter().chain(c.neg.iter()) {
                        if let Some(&lb) = local_of.get(&b.0) {
                            if !out.contains(&lb) {
                                out.push(lb);
                            }
                        }
                    }
                }
                out
            })
            .collect();
        let comps = depgraph::sccs(&adj); // reverse topological: deps first
        self.stats_total.sccs += comps.len();
        self.stats_total.evaluated_atoms += reach.len();
        for comp in &comps {
            self.stats_total.max_scc = self.stats_total.max_scc.max(comp.len());
        }
        // 3. Solve the SCCs bottom-up (sequential) or as a wavefront
        // over the condensation (parallel).
        if threads <= 1 || comps.len() <= 1 {
            for comp in comps {
                guard.check()?;
                let atoms: Vec<GroundAtomId> = comp.iter().map(|&l| reach[l as usize]).collect();
                self.solve_scc(&atoms);
            }
            Ok(())
        } else {
            self.solve_sccs_parallel(&reach, &adj, &comps, threads, guard)
        }
    }

    /// Solves one SCC on the engine-owned [`SccSolver`], reading
    /// external atoms from the memo table (they are guaranteed decided)
    /// and publishing verdicts back into it.
    fn solve_scc(&mut self, atoms: &[GroundAtomId]) {
        let Self {
            gp, table, solver, ..
        } = self;
        solver.solve(gp, atoms, |b| {
            table[b.index()].expect("external atom tabled")
        });
        for (&a, &v) in atoms.iter().zip(solver.verdicts()) {
            table[a.index()] = Some(v);
        }
    }

    /// The wavefront: schedules the SCC condensation on `threads`
    /// workers, each owning an [`SccSolver`] over the shared CSR
    /// program and publishing through a lock-free atomic verdict table.
    ///
    /// `comps` are Tarjan components of the `reach`-local graph `adj`
    /// in reverse topological order; edges go from an SCC to the SCCs
    /// it depends on, so the DAG dependency of component `c` on the
    /// component of each successor atom is exactly "solve deps first".
    fn solve_sccs_parallel(
        &mut self,
        reach: &[GroundAtomId],
        adj: &[Vec<u32>],
        comps: &[Vec<u32>],
        threads: usize,
        guard: &Guard,
    ) -> Result<(), InterruptCause> {
        let n = comps.len();
        let mut comp_of = vec![0u32; reach.len()];
        for (ci, comp) in comps.iter().enumerate() {
            for &l in comp {
                comp_of[l as usize] = ci as u32;
            }
        }
        let mut dag = TaskDag::new(n);
        // Dedup edges per component with a stamp so a dependent's
        // in-degree counts each lower SCC once.
        let mut stamp = vec![u32::MAX; n];
        for (ci, comp) in comps.iter().enumerate() {
            for &l in comp {
                for &m in &adj[l as usize] {
                    let d = comp_of[m as usize];
                    if d != ci as u32 && stamp[d as usize] != ci as u32 {
                        stamp[d as usize] = ci as u32;
                        dag.add_dep(ci as u32, d);
                    }
                }
            }
        }
        let Self { gp, table, .. } = self;
        // Read snapshot of already-published verdicts: atoms tabled by
        // earlier queries are external to every SCC here.
        let verdicts: Vec<AtomicU8> = table
            .iter()
            .map(|t| AtomicU8::new(t.map_or(V_NONE, encode)))
            .collect();
        let verdicts = &verdicts[..];
        let run = dag.run_governed(
            threads,
            guard,
            |_worker| (SccSolver::for_worker(gp), Vec::<GroundAtomId>::new()),
            |(solver, atom_buf), c| {
                atom_buf.clear();
                atom_buf.extend(comps[c as usize].iter().map(|&l| reach[l as usize]));
                solver.solve(gp, atom_buf, |b| {
                    decode(verdicts[b.index()].load(Ordering::Acquire))
                        .expect("external atom tabled")
                });
                for (&a, &v) in atom_buf.iter().zip(solver.verdicts()) {
                    verdicts[a.index()].store(encode(v), Ordering::Release);
                }
            },
        );
        // Completed SCCs published final verdicts even if the wavefront
        // was interrupted mid-flight: memoization is monotone, so keep
        // them (an uninterrupted run decides every reachable atom).
        for &a in reach {
            if let Some(v) = decode(verdicts[a.index()].load(Ordering::Acquire)) {
                table[a.index()] = Some(v);
            }
        }
        debug_assert!(
            run.is_err() || reach.iter().all(|a| table[a.index()].is_some()),
            "uninterrupted wavefront left an atom undecided"
        );
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsls_ground::Grounder;
    use gsls_lang::{parse_program, TermStore};
    use gsls_wfs::well_founded_model;

    fn engine(src: &str) -> (TermStore, TabledEngine) {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, src).unwrap();
        let gp = Grounder::ground(&mut s, &p).unwrap();
        (s, TabledEngine::new(gp))
    }

    use gsls_ground::testutil::atom_id as id;

    #[test]
    fn simple_verdicts() {
        let (s, mut e) = engine("q. p :- ~q. r :- ~p.");
        let gp = e.ground_program().clone();
        assert_eq!(e.truth(id(&s, &gp, "q")), Truth::True);
        assert_eq!(e.truth(id(&s, &gp, "p")), Truth::False);
        assert_eq!(e.truth(id(&s, &gp, "r")), Truth::True);
    }

    #[test]
    fn negative_cycle_undefined() {
        let (s, mut e) = engine("p :- ~q. q :- ~p.");
        let gp = e.ground_program().clone();
        assert_eq!(e.truth(id(&s, &gp, "p")), Truth::Undefined);
        assert_eq!(e.truth(id(&s, &gp, "q")), Truth::Undefined);
    }

    #[test]
    fn matches_bottom_up_on_whole_program() {
        for src in [
            "q. p :- ~q. r :- ~p.",
            "p :- ~q. q :- ~p. r :- ~s. s.",
            "p :- q, ~r. q :- r, ~p. r :- p, ~q. s :- ~p, ~q, ~r.",
            "p :- ~p. q :- ~p, ~s. s.",
            "move(a, b). move(b, a). move(b, c). win(X) :- move(X, Y), ~win(Y).",
            "e(a, b). e(b, c). t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).",
        ] {
            let (_, mut e) = engine(src);
            let gp = e.ground_program().clone();
            let wfm = well_founded_model(&gp);
            for a in gp.atom_ids() {
                assert_eq!(e.truth(a), wfm.truth(a), "atom {a:?} in {src}");
            }
        }
    }

    #[test]
    fn goal_directed_evaluates_less() {
        // Two disconnected components: querying one must not evaluate the
        // other.
        let src = "
            move1(a, b). win1(X) :- move1(X, Y), ~win1(Y).
            move2(u, v). move2(v, u). win2(X) :- move2(X, Y), ~win2(Y).
        ";
        let (s, mut e) = engine(src);
        let gp = e.ground_program().clone();
        let _ = e.truth(id(&s, &gp, "win1(a)"));
        let evaluated = e.stats().evaluated_atoms;
        assert!(
            evaluated < gp.atom_count(),
            "evaluated {evaluated} of {} atoms",
            gp.atom_count()
        );
        assert!(e.cached(id(&s, &gp, "win2(u)")).is_none());
    }

    #[test]
    fn memo_shared_across_queries() {
        let (s, mut e) = engine("q. p :- ~q. r :- ~p.");
        let gp = e.ground_program().clone();
        let _ = e.truth(id(&s, &gp, "r"));
        let before = e.stats().evaluated_atoms;
        let _ = e.truth(id(&s, &gp, "p"));
        assert_eq!(e.stats().evaluated_atoms, before, "second query free");
    }

    #[test]
    fn undefined_external_feeds_scc() {
        // r depends on the undefined p/q cycle: r undefined; s depends
        // negatively on a false atom: true.
        let (s, mut e) = engine("p :- ~q. q :- ~p. r :- p. s :- ~z.");
        let gp = e.ground_program().clone();
        assert_eq!(e.truth(id(&s, &gp, "r")), Truth::Undefined);
        assert_eq!(e.truth(id(&s, &gp, "s")), Truth::True);
    }

    #[test]
    fn win_chain_alternates() {
        let src = "move(n1, n2). move(n2, n3). move(n3, n4).
                   win(X) :- move(X, Y), ~win(Y).";
        let (s, mut e) = engine(src);
        let gp = e.ground_program().clone();
        assert_eq!(e.truth(id(&s, &gp, "win(n4)")), Truth::False);
        assert_eq!(e.truth(id(&s, &gp, "win(n3)")), Truth::True);
        assert_eq!(e.truth(id(&s, &gp, "win(n2)")), Truth::False);
        assert_eq!(e.truth(id(&s, &gp, "win(n1)")), Truth::True);
    }

    #[test]
    fn parallel_matches_sequential_on_whole_programs() {
        for src in [
            "q. p :- ~q. r :- ~p.",
            "p :- ~q. q :- ~p. r :- ~s. s.",
            "p :- q, ~r. q :- r, ~p. r :- p, ~q. s :- ~p, ~q, ~r.",
            "move(a, b). move(b, a). move(b, c). win(X) :- move(X, Y), ~win(Y).",
            "e(a, b). e(b, c). t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).",
        ] {
            for threads in [2, 4, 8] {
                let (_, mut e) = engine(src);
                let gp = e.ground_program().clone();
                let wfm = well_founded_model(&gp);
                for a in gp.atom_ids() {
                    assert_eq!(
                        e.truth_parallel(a, threads),
                        wfm.truth(a),
                        "atom {a:?} in {src} at {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_memoizes_like_sequential() {
        let (s, mut e) = engine("q. p :- ~q. r :- ~p.");
        let gp = e.ground_program().clone();
        let _ = e.truth_parallel(id(&s, &gp, "r"), 4);
        let before = e.stats().evaluated_atoms;
        let _ = e.truth(id(&s, &gp, "p"));
        assert_eq!(e.stats().evaluated_atoms, before, "second query free");
    }

    #[test]
    fn governed_evaluation_interrupts_and_resumes() {
        let src = "e(a, b). e(b, c). e(c, d). t(X, Y) :- e(X, Y). \
                   t(X, Z) :- e(X, Y), t(Y, Z). w(X) :- e(X, Y), ~w(Y).";
        for threads in [1, 4] {
            let (s, mut e) = engine(src);
            let gp = e.ground_program().clone();
            let root = id(&s, &gp, "t(a, d)");
            // Zero fuel: the very first guard check trips, sequential
            // and wavefront paths alike.
            let starved = Guard::builder().fuel(0).build();
            let err = e.truth_parallel_governed(root, threads, &starved);
            assert_eq!(err, Err(InterruptCause::Cancelled), "{threads} threads");
            // The partial memo table is monotone: an ungoverned retry
            // finishes and agrees with the model.
            let wfm = well_founded_model(&gp);
            assert_eq!(e.truth_parallel(root, threads), wfm.truth(root));
            for a in gp.atom_ids() {
                assert_eq!(e.truth_parallel(a, threads), wfm.truth(a));
            }
        }
    }

    #[test]
    fn scc_stats_reported() {
        let (s, mut e) = engine("p :- ~q. q :- ~p. r :- p.");
        let gp = e.ground_program().clone();
        let _ = e.truth(id(&s, &gp, "r"));
        let st = e.stats();
        assert!(st.sccs >= 2, "p/q cycle plus r: {st:?}");
        assert_eq!(st.max_scc, 2);
    }
}
