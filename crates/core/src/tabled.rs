//! The memoized (tabled) engine — Sec. 7's effective procedure for
//! function-free programs.
//!
//! Ideal global SLS-resolution is not effective: SLP-trees may be
//! infinite and indeterminate goals recurse forever through negation. The
//! paper prescribes memoing [10, 26] to prune positive loops plus pruning
//! of negative loops. This engine realises that prescription:
//!
//! 1. the program is grounded once (relevant grounding, function-free ⇒
//!    finite);
//! 2. a query atom pulls in only the **relevant subprogram** — the atoms
//!    reachable through rule bodies (this is the goal-directedness that a
//!    top-down procedure buys over the bottom-up baseline);
//! 3. the reachable region is split into SCCs of the atom dependency
//!    graph; each SCC is solved by a **local alternating fixpoint**
//!    relative to the already-tabled truth of lower SCCs — positive loops
//!    within an SCC fail (unfounded), negative loops leave atoms
//!    undefined;
//! 4. verdicts are memoized in a table shared across queries.
//!
//! Truth values agree with the well-founded model (soundness and
//! completeness, Theorems 5.4/6.2, are exercised by `tests/` property
//! tests against the bottom-up oracle); `Undefined` is the effective
//! stand-in for "ideal global SLS-resolution is indeterminate".

use gsls_ground::{depgraph, ClauseRef, GroundAtomId, GroundProgram};
use gsls_lang::FxHashMap;
use gsls_wfs::{BitSet, Propagator, Truth};

/// Statistics for one query evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TabledStats {
    /// Atoms newly evaluated for this query.
    pub evaluated_atoms: usize,
    /// SCCs processed.
    pub sccs: usize,
    /// Largest SCC size.
    pub max_scc: usize,
}

/// The memoized engine over a ground program.
///
/// SCC-local alternating fixpoints all run through one shared
/// [`Propagator`] restricted to the SCC's clause range
/// ([`Propagator::lfp_restricted`]), with engine-owned bitset scratch
/// cleared sparsely per SCC — after warm-up, solving an SCC performs no
/// heap allocation.
#[derive(Debug, Clone)]
pub struct TabledEngine {
    gp: GroundProgram,
    /// Memo table: verdicts for already-evaluated atoms.
    table: Vec<Option<Truth>>,
    stats_total: TabledStats,
    /// Shared propagation scratch for every SCC-local fixpoint.
    prop: Propagator,
    /// Clause indices of the SCC currently being solved.
    scc_clauses: Vec<u32>,
    /// Membership mask of the SCC currently being solved.
    in_scc: BitSet,
    /// Alternating-fixpoint buffers (global-sized, sparsely cleared).
    t: BitSet,
    u: BitSet,
    t_next: BitSet,
    u_next: BitSet,
}

impl TabledEngine {
    /// Creates an engine for `gp` (finalizing it if needed).
    pub fn new(mut gp: GroundProgram) -> Self {
        gp.finalize();
        let n = gp.atom_count();
        let prop = Propagator::new(&gp);
        TabledEngine {
            gp,
            table: vec![None; n],
            stats_total: TabledStats::default(),
            prop,
            scc_clauses: Vec::new(),
            in_scc: BitSet::new(n),
            t: BitSet::new(n),
            u: BitSet::new(n),
            t_next: BitSet::new(n),
            u_next: BitSet::new(n),
        }
    }

    /// The underlying ground program.
    pub fn ground_program(&self) -> &GroundProgram {
        &self.gp
    }

    /// Cumulative statistics across all queries so far.
    pub fn stats(&self) -> TabledStats {
        self.stats_total
    }

    /// Number of atoms with a memoized verdict.
    pub fn tabled_count(&self) -> usize {
        self.table.iter().filter(|t| t.is_some()).count()
    }

    /// The truth of `atom` in the well-founded model, evaluating (and
    /// memoizing) the relevant subprogram on demand.
    pub fn truth(&mut self, atom: GroundAtomId) -> Truth {
        if let Some(t) = self.table[atom.index()] {
            return t;
        }
        self.evaluate_from(atom);
        self.table[atom.index()].expect("evaluation must decide the root atom")
    }

    /// The truth of `atom` if already tabled.
    pub fn cached(&self, atom: GroundAtomId) -> Option<Truth> {
        self.table[atom.index()]
    }

    /// Evaluates all atoms reachable from `root` that are not yet tabled.
    fn evaluate_from(&mut self, root: GroundAtomId) {
        // 1. Reachable, untabled atoms (DFS over body edges).
        let mut reach: Vec<GroundAtomId> = Vec::new();
        let mut seen = vec![false; self.gp.atom_count()];
        let mut stack = vec![root];
        while let Some(a) = stack.pop() {
            if seen[a.index()] || self.table[a.index()].is_some() {
                continue;
            }
            seen[a.index()] = true;
            reach.push(a);
            for &ci in self.gp.clauses_for(a) {
                let c = self.gp.clause(ci);
                for &b in c.pos.iter().chain(c.neg.iter()) {
                    if !seen[b.index()] && self.table[b.index()].is_none() {
                        stack.push(b);
                    }
                }
            }
        }
        // 2. Local index and SCCs over the reachable region.
        let mut local_of: FxHashMap<u32, u32> = FxHashMap::default();
        for (li, a) in reach.iter().enumerate() {
            local_of.insert(a.0, li as u32);
        }
        let adj: Vec<Vec<u32>> = reach
            .iter()
            .map(|&a| {
                let mut out = Vec::new();
                for &ci in self.gp.clauses_for(a) {
                    let c = self.gp.clause(ci);
                    for &b in c.pos.iter().chain(c.neg.iter()) {
                        if let Some(&lb) = local_of.get(&b.0) {
                            if !out.contains(&lb) {
                                out.push(lb);
                            }
                        }
                    }
                }
                out
            })
            .collect();
        let comps = depgraph::sccs(&adj); // reverse topological: deps first
        self.stats_total.sccs += comps.len();
        self.stats_total.evaluated_atoms += reach.len();
        // 3. Solve each SCC bottom-up.
        for comp in comps {
            self.stats_total.max_scc = self.stats_total.max_scc.max(comp.len());
            let atoms: Vec<GroundAtomId> = comp.iter().map(|&l| reach[l as usize]).collect();
            self.solve_scc(&atoms);
        }
    }

    /// Solves one SCC by a local alternating fixpoint, reading external
    /// atoms from the memo table (they are guaranteed decided).
    ///
    /// Each reduct evaluation is [`Propagator::lfp_restricted`] over the
    /// SCC's clause indices with global atom ids: internal positive
    /// literals are tracked by the propagation, external ones resolve
    /// against the memo table at classification time, and internal
    /// negative literals delete clauses per the Gelfond–Lifschitz reduct
    /// w.r.t. the opposite approximation. Fixpoint detection uses
    /// derivation counts (`T` grows, `U` shrinks along the iteration).
    ///
    /// **Singleton fast path:** most SCCs of real dependency graphs are
    /// single atoms without a self-loop, where every body literal is
    /// external and already tabled. The three-valued verdict is then two
    /// classification passes over the atom's clauses — no bitset
    /// bookkeeping, no restricted fixpoints, no alternating rounds.
    fn solve_scc(&mut self, atoms: &[GroundAtomId]) {
        let Self {
            gp,
            table,
            prop,
            scc_clauses,
            in_scc,
            t,
            u,
            t_next,
            u_next,
            ..
        } = self;
        if let [a] = *atoms {
            let self_dep = gp.clauses_for(a).iter().any(|&ci| {
                let c = gp.clause(ci);
                c.pos.contains(&a) || c.neg.contains(&a)
            });
            if !self_dep {
                let external = |b: GroundAtomId| table[b.index()].expect("external atom tabled");
                let mut verdict = Truth::False;
                for &ci in gp.clauses_for(a) {
                    let c = gp.clause(ci);
                    // Definite reading: every literal decided its way.
                    if c.pos.iter().all(|&b| external(b) == Truth::True)
                        && c.neg.iter().all(|&b| external(b) == Truth::False)
                    {
                        verdict = Truth::True;
                        break;
                    }
                    // Possible reading: no literal decided against.
                    if c.pos.iter().all(|&b| external(b) != Truth::False)
                        && c.neg.iter().all(|&b| external(b) != Truth::True)
                    {
                        verdict = Truth::Undefined;
                    }
                }
                table[a.index()] = Some(verdict);
                return;
            }
        }
        for &a in atoms {
            in_scc.insert(a.index());
            t.remove(a.index());
            u.remove(a.index());
            t_next.remove(a.index());
            u_next.remove(a.index());
        }
        scc_clauses.clear();
        for &a in atoms {
            scc_clauses.extend_from_slice(gp.clauses_for(a));
        }
        let scc_mask = &*in_scc;
        let table_ro = &*table;
        // `classify(c, s, under)`: `None` = clause deleted for this pass;
        // `Some(k)` = number of internal positive literals the
        // propagation must derive. `under` selects the definite (T) or
        // possible (U) reading of external undefined literals.
        let classify = |c: ClauseRef<'_>, s: &BitSet, under: bool| -> Option<u32> {
            let mut missing = 0u32;
            for &b in c.pos {
                if scc_mask.contains(b.index()) {
                    missing += 1;
                } else {
                    match table_ro[b.index()].expect("external atom tabled") {
                        Truth::True => {}
                        Truth::Undefined if under => return None,
                        Truth::Undefined => {}
                        Truth::False => return None,
                    }
                }
            }
            for &b in c.neg {
                if scc_mask.contains(b.index()) {
                    if s.contains(b.index()) {
                        return None;
                    }
                } else {
                    match table_ro[b.index()].expect("external atom tabled") {
                        Truth::False => {}
                        Truth::Undefined if under => return None,
                        Truth::Undefined => {}
                        Truth::True => return None,
                    }
                }
            }
            Some(missing)
        };
        // T₀ = ∅; U₀ = A_over(T₀); then alternate until the counts of
        // both approximations stop moving.
        let mut t_count = 0usize;
        let mut u_count = prop.lfp_restricted(gp, scc_clauses, |c| classify(c, t, false), u);
        loop {
            let tc = prop.lfp_restricted(gp, scc_clauses, |c| classify(c, u, true), t_next);
            let uc = prop.lfp_restricted(gp, scc_clauses, |c| classify(c, t_next, false), u_next);
            let stable = tc == t_count && uc == u_count;
            std::mem::swap(t, t_next);
            std::mem::swap(u, u_next);
            t_count = tc;
            u_count = uc;
            if stable {
                break;
            }
            // The swapped-out buffers hold the previous round; clear the
            // SCC's bits before they serve as outputs again.
            for &a in atoms {
                t_next.remove(a.index());
                u_next.remove(a.index());
            }
        }
        for &a in atoms {
            let verdict = if t.contains(a.index()) {
                Truth::True
            } else if !u.contains(a.index()) {
                Truth::False
            } else {
                Truth::Undefined
            };
            table[a.index()] = Some(verdict);
        }
        // The membership mask must not leak into the next SCC.
        for &a in atoms {
            in_scc.remove(a.index());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsls_ground::Grounder;
    use gsls_lang::{parse_program, TermStore};
    use gsls_wfs::well_founded_model;

    fn engine(src: &str) -> (TermStore, TabledEngine) {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, src).unwrap();
        let gp = Grounder::ground(&mut s, &p).unwrap();
        (s, TabledEngine::new(gp))
    }

    use gsls_ground::testutil::atom_id as id;

    #[test]
    fn simple_verdicts() {
        let (s, mut e) = engine("q. p :- ~q. r :- ~p.");
        let gp = e.ground_program().clone();
        assert_eq!(e.truth(id(&s, &gp, "q")), Truth::True);
        assert_eq!(e.truth(id(&s, &gp, "p")), Truth::False);
        assert_eq!(e.truth(id(&s, &gp, "r")), Truth::True);
    }

    #[test]
    fn negative_cycle_undefined() {
        let (s, mut e) = engine("p :- ~q. q :- ~p.");
        let gp = e.ground_program().clone();
        assert_eq!(e.truth(id(&s, &gp, "p")), Truth::Undefined);
        assert_eq!(e.truth(id(&s, &gp, "q")), Truth::Undefined);
    }

    #[test]
    fn matches_bottom_up_on_whole_program() {
        for src in [
            "q. p :- ~q. r :- ~p.",
            "p :- ~q. q :- ~p. r :- ~s. s.",
            "p :- q, ~r. q :- r, ~p. r :- p, ~q. s :- ~p, ~q, ~r.",
            "p :- ~p. q :- ~p, ~s. s.",
            "move(a, b). move(b, a). move(b, c). win(X) :- move(X, Y), ~win(Y).",
            "e(a, b). e(b, c). t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).",
        ] {
            let (_, mut e) = engine(src);
            let gp = e.ground_program().clone();
            let wfm = well_founded_model(&gp);
            for a in gp.atom_ids() {
                assert_eq!(e.truth(a), wfm.truth(a), "atom {a:?} in {src}");
            }
        }
    }

    #[test]
    fn goal_directed_evaluates_less() {
        // Two disconnected components: querying one must not evaluate the
        // other.
        let src = "
            move1(a, b). win1(X) :- move1(X, Y), ~win1(Y).
            move2(u, v). move2(v, u). win2(X) :- move2(X, Y), ~win2(Y).
        ";
        let (s, mut e) = engine(src);
        let gp = e.ground_program().clone();
        let _ = e.truth(id(&s, &gp, "win1(a)"));
        let evaluated = e.stats().evaluated_atoms;
        assert!(
            evaluated < gp.atom_count(),
            "evaluated {evaluated} of {} atoms",
            gp.atom_count()
        );
        assert!(e.cached(id(&s, &gp, "win2(u)")).is_none());
    }

    #[test]
    fn memo_shared_across_queries() {
        let (s, mut e) = engine("q. p :- ~q. r :- ~p.");
        let gp = e.ground_program().clone();
        let _ = e.truth(id(&s, &gp, "r"));
        let before = e.stats().evaluated_atoms;
        let _ = e.truth(id(&s, &gp, "p"));
        assert_eq!(e.stats().evaluated_atoms, before, "second query free");
    }

    #[test]
    fn undefined_external_feeds_scc() {
        // r depends on the undefined p/q cycle: r undefined; s depends
        // negatively on a false atom: true.
        let (s, mut e) = engine("p :- ~q. q :- ~p. r :- p. s :- ~z.");
        let gp = e.ground_program().clone();
        assert_eq!(e.truth(id(&s, &gp, "r")), Truth::Undefined);
        assert_eq!(e.truth(id(&s, &gp, "s")), Truth::True);
    }

    #[test]
    fn win_chain_alternates() {
        let src = "move(n1, n2). move(n2, n3). move(n3, n4).
                   win(X) :- move(X, Y), ~win(Y).";
        let (s, mut e) = engine(src);
        let gp = e.ground_program().clone();
        assert_eq!(e.truth(id(&s, &gp, "win(n4)")), Truth::False);
        assert_eq!(e.truth(id(&s, &gp, "win(n3)")), Truth::True);
        assert_eq!(e.truth(id(&s, &gp, "win(n2)")), Truth::False);
        assert_eq!(e.truth(id(&s, &gp, "win(n1)")), Truth::True);
    }

    #[test]
    fn scc_stats_reported() {
        let (s, mut e) = engine("p :- ~q. q :- ~p. r :- p.");
        let gp = e.ground_program().clone();
        let _ = e.truth(id(&s, &gp, "r"));
        let st = e.stats();
        assert!(st.sccs >= 2, "p/q cycle plus r: {st:?}");
        assert_eq!(st.max_scc, 2);
    }
}
