//! Ground SLP-trees and ground global trees (Section 4, Def. 4.1).
//!
//! Ground trees are the proof device of the paper: all goals are ground
//! and branches use *instantiated rules*, so a tree node for an atom `p`
//! branches over the ground clauses for `p` directly. Since the Herbrand
//! instantiation can put infinitely many rules on one atom, ground
//! SLP-trees may have infinite branching — here the instantiation is the
//! (finite, possibly depth-bounded) [`GroundProgram`], which is exactly
//! the object Theorem 4.5 relates to the `V_P` stages.
//!
//! The implementation mirrors [`crate::global`] but over ground clauses:
//! goals are sets of ground atom ids, active leaves fall out of the
//! Lemma 4.1 decomposition (a leaf of a conjunction is a union of leaves
//! of the conjuncts), and statuses/levels come from the same fixpoints.
//! Its role in the test suite is to witness Theorem 4.5 *structurally*
//! (ground-tree levels == stages == nonground-tree levels).

use crate::ordinal::Ordinal;
use gsls_ground::{GroundAtomId, GroundProgram};
use gsls_wfs::BitSet;

/// Status of a ground goal (no floundering is possible: everything is
/// ground — the paper makes the same observation in Sec. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroundStatus {
    /// Ground successful.
    Successful,
    /// Ground failed.
    Failed,
    /// Ground indeterminate.
    Indeterminate,
}

/// Statuses and levels for every atom of a ground program, computed by
/// the ground-tree rules of Section 4.
#[derive(Debug, Clone)]
pub struct GroundTreeAnalysis {
    status: Vec<GroundStatus>,
    level: Vec<Option<Ordinal>>,
}

impl GroundTreeAnalysis {
    /// Runs the analysis over the whole ground program.
    ///
    /// The computation is the tree semantics read as simultaneous
    /// equations over atoms (legitimate because a tree node's status
    /// depends only on its descendants, and identical subgoals have
    /// identical subtrees):
    ///
    /// * `p` successful at level `β+1` iff some ground rule for `p` has
    ///   all positive body atoms successful, all negated atoms failed,
    ///   and `β` the lub of (succ-levels − 1 of positive atoms, fail
    ///   levels of negated atoms) — the Lemma 4.1 leaf decomposition
    ///   folded into rule form;
    /// * `p` failed at level `α+1` iff every rule for `p` is *blocked*
    ///   (some positive atom failed or some negated atom successful, or
    ///   the rule spirals through an unfounded positive loop), with `α`
    ///   the lub over rules of the min blocking level.
    ///
    /// Positive-loop unfoundedness is what the ascending (stage-like)
    /// iteration below detects exactly as `U_P` does; the equivalence
    /// with the `V_P` stages (Theorem 4.5) is asserted by tests.
    pub fn analyse(gp: &GroundProgram) -> Self {
        let n = gp.atom_count();
        let mut status = vec![GroundStatus::Indeterminate; n];
        let mut level: Vec<Option<Ordinal>> = vec![None; n];
        // Ascending stage iteration mirroring V_P, but phrased purely in
        // tree terms: at stage k, an atom becomes successful/failed if
        // the tree rules determine it from stages < k… except positive
        // chains inside one SLP-tree don't consume a stage, so success
        // propagates through positive rule bodies within a stage, and
        // failure uses an unfounded-set pass within a stage.
        let mut stage = 0u64;
        loop {
            stage += 1;
            // Snapshot of the previous stages: both passes of a stage
            // read I_α (Lemma 4.4), never this stage's own additions —
            // except that positive chaining within T̄^ω may use successes
            // found in the same stage.
            let snap = status.clone();
            let mut changed = false;
            // Success pass: T̄^ω(neg(I_α)) — negated atoms must be failed
            // in the snapshot; positive atoms may chain within the pass.
            loop {
                let mut inner_changed = false;
                for c in gp.clauses() {
                    if status[c.head.index()] != GroundStatus::Indeterminate {
                        continue;
                    }
                    let pos_ok = c
                        .pos
                        .iter()
                        .all(|&b| status[b.index()] == GroundStatus::Successful);
                    let neg_ok = c
                        .neg
                        .iter()
                        .all(|&b| snap[b.index()] == GroundStatus::Failed);
                    if pos_ok && neg_ok {
                        status[c.head.index()] = GroundStatus::Successful;
                        level[c.head.index()] = Some(Ordinal::finite(stage));
                        inner_changed = true;
                        changed = true;
                    }
                }
                if !inner_changed {
                    break;
                }
            }
            // Failure pass: U_P(pos(I_α)) — a rule is blocked only when a
            // negated atom is successful in the snapshot (the unfounded-set
            // witness condition (1) over a positive-only interpretation);
            // the supported closure realises condition (2).
            let mut supported = BitSet::new(n);
            for (a, st) in snap.iter().enumerate() {
                if *st == GroundStatus::Successful {
                    supported.insert(a);
                }
            }
            loop {
                let mut inner_changed = false;
                for c in gp.clauses() {
                    if supported.contains(c.head.index()) {
                        continue;
                    }
                    let blocked = c
                        .neg
                        .iter()
                        .any(|&b| snap[b.index()] == GroundStatus::Successful);
                    if blocked {
                        continue;
                    }
                    if c.pos.iter().all(|&b| supported.contains(b.index())) {
                        supported.insert(c.head.index());
                        inner_changed = true;
                    }
                }
                if !inner_changed {
                    break;
                }
            }
            for a in 0..n {
                if status[a] == GroundStatus::Indeterminate && !supported.contains(a) {
                    status[a] = GroundStatus::Failed;
                    level[a] = Some(Ordinal::finite(stage));
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        GroundTreeAnalysis { status, level }
    }

    /// The ground status of `← atom`.
    pub fn status(&self, atom: GroundAtomId) -> GroundStatus {
        self.status[atom.index()]
    }

    /// The level of `← atom` (None when indeterminate).
    pub fn level(&self, atom: GroundAtomId) -> Option<&Ordinal> {
        self.level[atom.index()].as_ref()
    }

    /// Theorem 4.7 lifted to conjunctive ground queries: the conjunction
    /// `p₁,…,pₙ,¬q₁,…,¬qₘ` is ground successful iff every `pᵢ` is
    /// successful and every `qⱼ` failed; ground failed iff some `pᵢ`
    /// failed or some `qⱼ` successful.
    pub fn query(&self, pos: &[GroundAtomId], neg: &[GroundAtomId]) -> GroundStatus {
        let all_ok = pos
            .iter()
            .all(|&a| self.status(a) == GroundStatus::Successful)
            && neg.iter().all(|&a| self.status(a) == GroundStatus::Failed);
        if all_ok {
            return GroundStatus::Successful;
        }
        let any_block = pos.iter().any(|&a| self.status(a) == GroundStatus::Failed)
            || neg
                .iter()
                .any(|&a| self.status(a) == GroundStatus::Successful);
        if any_block {
            GroundStatus::Failed
        } else {
            GroundStatus::Indeterminate
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsls_ground::Grounder;
    use gsls_lang::{parse_program, TermStore};
    use gsls_wfs::{vp_iteration, Truth};

    fn analyse(src: &str) -> (TermStore, GroundProgram, GroundTreeAnalysis) {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, src).unwrap();
        let gp = Grounder::ground(&mut s, &p).unwrap();
        let a = GroundTreeAnalysis::analyse(&gp);
        (s, gp, a)
    }

    use gsls_ground::testutil::atom_id as id;

    #[test]
    fn matches_vp_stages_exactly() {
        // Theorem 4.5: ground status/level ≡ V_P membership/stage.
        for src in [
            "p.",
            "p :- ~q.",
            "a1 :- ~a2. a2 :- ~a3. a3.",
            "q. p :- ~q. r :- ~p.",
            "p :- q, ~r. q :- r, ~p. r :- p, ~q. s :- ~p, ~q, ~r.",
            "p :- ~p. q :- ~p, ~s. s.",
            "move(a, b). move(b, a). move(b, c). win(X) :- move(X, Y), ~win(Y).",
            "p :- q. q. r :- p, ~s.",
        ] {
            let (store, gp, a) = analyse(src);
            let staged = vp_iteration(&gp);
            for atom in gp.atom_ids() {
                let name = gp.display_atom(&store, atom);
                match staged.model.truth(atom) {
                    Truth::True => {
                        assert_eq!(a.status(atom), GroundStatus::Successful, "{name}: {src}");
                        assert_eq!(
                            a.level(atom),
                            Some(&Ordinal::finite(u64::from(
                                staged.stage_of_true(atom).unwrap()
                            ))),
                            "{name}: {src}"
                        );
                    }
                    Truth::False => {
                        assert_eq!(a.status(atom), GroundStatus::Failed, "{name}: {src}");
                        assert_eq!(
                            a.level(atom),
                            Some(&Ordinal::finite(u64::from(
                                staged.stage_of_false(atom).unwrap()
                            ))),
                            "{name}: {src}"
                        );
                    }
                    Truth::Undefined => {
                        assert_eq!(a.status(atom), GroundStatus::Indeterminate, "{name}: {src}");
                        assert_eq!(a.level(atom), None, "{name}: {src}");
                    }
                }
            }
        }
    }

    #[test]
    fn conjunctive_query_theorem_4_7() {
        let (s, gp, a) = analyse("p. q :- ~r.");
        let p = id(&s, &gp, "p");
        let q = id(&s, &gp, "q");
        let r = id(&s, &gp, "r");
        assert_eq!(a.query(&[p, q], &[r]), GroundStatus::Successful);
        assert_eq!(a.query(&[p, r], &[]), GroundStatus::Failed);
        assert_eq!(a.query(&[], &[p]), GroundStatus::Failed);
    }

    #[test]
    fn indeterminate_conjunction() {
        let (s, gp, a) = analyse("p :- ~q. q :- ~p. t.");
        let p = id(&s, &gp, "p");
        let t = id(&s, &gp, "t");
        assert_eq!(a.query(&[t, p], &[]), GroundStatus::Indeterminate);
    }

    #[test]
    fn no_floundering_possible() {
        // Every atom gets one of the three ground statuses.
        let (_, gp, a) = analyse("p(X) :- ~q(X). q(a). d(a). d(b).");
        for atom in gp.atom_ids() {
            let _ = a.status(atom); // total function, no panic
        }
    }
}
