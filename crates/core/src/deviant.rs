//! Deviant computation rules: why preferential selection is required.
//!
//! Examples 3.2 and 3.3 of the paper show that global SLS-resolution
//! loses completeness when the computation rule is not positivistic or
//! not negatively parallel. This module implements a goal evaluator
//! parameterised by [`RuleKind`] so both phenomena can be demonstrated
//! (and measured in experiment E2/E3):
//!
//! * [`RuleKind::LeftmostLiteral`] (not positivistic) makes `← s`
//!   **indeterminate** on Example 3.2 although its well-founded truth is
//!   *true* — the rule walks into a recursion through negation that the
//!   preferential rule never enters;
//! * [`RuleKind::SequentialNegative`] (not negatively parallel) makes
//!   `← q` **indeterminate** on Example 3.3 although `¬q` is in the
//!   well-founded model — it gets stuck on the first (undefined) negative
//!   subgoal and never looks at the second (failing) one.
//!
//! The evaluator treats a repeated *positive* ground selection as a
//! pruned infinite branch (failed — the ideal-tree convention) and a
//! repeated *negative* expansion as recursion through negation
//! (indeterminate).
//!
//! Goal literal order follows resolution order: the remaining literals of
//! the parent goal, then the instantiated body of the applied clause.

use crate::rule::{RuleKind, Selection};
use gsls_lang::{rename::variant, unify_atoms, Atom, FxHashSet, Goal, Program, Subst, TermStore};

/// Verdict of a deviant-rule evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The goal has a successful derivation.
    Successful,
    /// Every derivation fails.
    Failed,
    /// The evaluation recursed through negation (or exhausted budgets)
    /// without determining a status.
    Indeterminate,
    /// A nonground negative literal had to be selected.
    Floundered,
}

/// Budgets for the deviant evaluator.
#[derive(Debug, Clone, Copy)]
pub struct DeviantOpts {
    /// Maximum resolution depth per goal chain.
    pub max_depth: u32,
    /// Maximum total goal expansions.
    pub max_nodes: usize,
}

impl Default for DeviantOpts {
    fn default() -> Self {
        DeviantOpts {
            max_depth: 128,
            max_nodes: 100_000,
        }
    }
}

/// Evaluates `goal` under the given computation rule.
pub fn evaluate(
    store: &mut TermStore,
    program: &Program,
    goal: &Goal,
    rule: RuleKind,
    opts: DeviantOpts,
) -> Verdict {
    let mut ev = Evaluator {
        store,
        program,
        rule,
        opts,
        nodes: 0,
        neg_stack: FxHashSet::default(),
    };
    let anc = vec![Vec::new(); goal.len()];
    ev.goal(goal, &anc, &Subst::new(), 0)
}

struct Evaluator<'a> {
    store: &'a mut TermStore,
    program: &'a Program,
    rule: RuleKind,
    opts: DeviantOpts,
    nodes: usize,
    /// Ground atoms whose negation is currently being expanded.
    neg_stack: FxHashSet<Atom>,
}

impl Evaluator<'_> {
    /// Evaluates a goal; `anc[i]` is the call ancestry of literal `i`
    /// (the ground atoms whose expansion introduced it) — a ground
    /// selection occurring in its own ancestry spans an infinite branch
    /// and is failed (the ideal-tree convention); conjunctive duplicates
    /// are not loops.
    fn goal(&mut self, goal: &Goal, anc: &[Vec<Atom>], subst: &Subst, depth: u32) -> Verdict {
        if depth >= self.opts.max_depth || self.nodes >= self.opts.max_nodes {
            return Verdict::Indeterminate;
        }
        self.nodes += 1;
        let resolved = subst.resolve_goal(self.store, goal);
        debug_assert_eq!(resolved.len(), anc.len());
        match self.rule.select(self.store, &resolved) {
            Selection::Empty => Verdict::Successful,
            Selection::Flounder => Verdict::Floundered,
            Selection::Positive(idx) => {
                let selected = resolved.literals()[idx].clone();
                let ground = selected.atom.is_ground(self.store);
                if ground && anc[idx].contains(&selected.atom) {
                    return Verdict::Failed;
                }
                let mut body_anc = anc[idx].clone();
                if ground {
                    body_anc.push(selected.atom.clone());
                }
                let pred = selected.atom.pred_id();
                let clause_idxs: Vec<usize> = self.program.clauses_for(pred).to_vec();
                let mut any_indeterminate = false;
                let mut any_floundered = false;
                let mut verdict = Verdict::Failed;
                for ci in clause_idxs {
                    let clause = variant(self.store, self.program.clause(ci));
                    let mut local = Subst::new();
                    if unify_atoms(self.store, &mut local, &selected.atom, &clause.head) {
                        let child = resolved.resolve_at(idx, &clause.body);
                        let mut child_anc: Vec<Vec<Atom>> = Vec::with_capacity(child.len());
                        for (k, a) in anc.iter().enumerate() {
                            if k != idx {
                                child_anc.push(a.clone());
                            }
                        }
                        for _ in 0..clause.body.len() {
                            child_anc.push(body_anc.clone());
                        }
                        match self.goal(&child, &child_anc, &local, depth + 1) {
                            Verdict::Successful => {
                                verdict = Verdict::Successful;
                                break;
                            }
                            Verdict::Indeterminate => any_indeterminate = true,
                            Verdict::Floundered => any_floundered = true,
                            Verdict::Failed => {}
                        }
                    }
                }
                match verdict {
                    Verdict::Successful => Verdict::Successful,
                    _ if any_indeterminate => Verdict::Indeterminate,
                    _ if any_floundered => Verdict::Floundered,
                    _ => Verdict::Failed,
                }
            }
            Selection::Negatives(idxs) => {
                // Expand the selected ground negative literals (all of
                // them for the parallel rule, one for the others).
                let mut any_indeterminate = false;
                for &i in &idxs {
                    let atom = resolved.literals()[i].atom.clone();
                    match self.negation(&atom) {
                        Verdict::Successful => return Verdict::Failed,
                        Verdict::Failed => {}
                        Verdict::Floundered => return Verdict::Floundered,
                        Verdict::Indeterminate => any_indeterminate = true,
                    }
                }
                if any_indeterminate {
                    return Verdict::Indeterminate;
                }
                // All selected complements failed: drop them and continue.
                let mut remaining: Vec<gsls_lang::Literal> = Vec::new();
                let mut remaining_anc: Vec<Vec<Atom>> = Vec::new();
                for (i, l) in resolved.literals().iter().enumerate() {
                    if !idxs.contains(&i) {
                        remaining.push(l.clone());
                        remaining_anc.push(anc[i].clone());
                    }
                }
                self.goal(&Goal::new(remaining), &remaining_anc, &Subst::new(), 0)
            }
        }
    }

    /// Evaluates the complement goal `← atom` of a negative subgoal.
    fn negation(&mut self, atom: &Atom) -> Verdict {
        if self.neg_stack.contains(atom) {
            // Recursion through negation: the ideal procedure would
            // recurse through infinitely many negation nodes.
            return Verdict::Indeterminate;
        }
        self.neg_stack.insert(atom.clone());
        let sub = Goal::new(vec![gsls_lang::Literal::pos(atom.clone())]);
        let v = self.goal(&sub, &[Vec::new()], &Subst::new(), 0);
        self.neg_stack.remove(atom);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsls_lang::{parse_goal, parse_program};

    fn run(src: &str, goal: &str, rule: RuleKind) -> Verdict {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, src).unwrap();
        let g = parse_goal(&mut s, goal).unwrap();
        evaluate(&mut s, &p, &g, rule, DeviantOpts::default())
    }

    const EX32: &str = "p :- q, ~r. q :- r, ~p. r :- p, ~q. s :- ~p, ~q, ~r.";
    const EX33: &str = "p :- ~p. q :- ~p, ~s. s.";

    #[test]
    fn example_3_2_preferential_succeeds() {
        assert_eq!(
            run(EX32, "?- s.", RuleKind::Preferential),
            Verdict::Successful
        );
    }

    #[test]
    fn example_3_2_leftmost_indeterminate() {
        // The non-positivistic rule walks into recursion through negation
        // and cannot determine ← s.
        assert_eq!(
            run(EX32, "?- s.", RuleKind::LeftmostLiteral),
            Verdict::Indeterminate
        );
    }

    #[test]
    fn example_3_3_preferential_fails_q() {
        assert_eq!(run(EX33, "?- q.", RuleKind::Preferential), Verdict::Failed);
    }

    #[test]
    fn example_3_3_sequential_indeterminate() {
        // The sequential rule sticks on ¬p (undefined) and never reaches
        // the failing ¬s.
        assert_eq!(
            run(EX33, "?- q.", RuleKind::SequentialNegative),
            Verdict::Indeterminate
        );
    }

    #[test]
    fn all_rules_agree_on_definite_success() {
        for rule in [
            RuleKind::Preferential,
            RuleKind::SequentialNegative,
            RuleKind::LeftmostLiteral,
        ] {
            assert_eq!(run("p :- q. q.", "?- p.", rule), Verdict::Successful);
        }
    }

    #[test]
    fn all_rules_agree_on_simple_negation() {
        for rule in [
            RuleKind::Preferential,
            RuleKind::SequentialNegative,
            RuleKind::LeftmostLiteral,
        ] {
            assert_eq!(
                run("p :- ~q.", "?- p.", rule),
                Verdict::Successful,
                "{rule:?}"
            );
            assert_eq!(
                run("p :- ~q. q.", "?- p.", rule),
                Verdict::Failed,
                "{rule:?}"
            );
        }
    }

    #[test]
    fn floundering_verdict() {
        assert_eq!(
            run("p(X) :- ~q(X). q(a).", "?- p(Y).", RuleKind::Preferential),
            Verdict::Floundered
        );
    }

    #[test]
    fn leftmost_rule_surfaces_floundering() {
        // Regression: the leftmost rule used to skip the nonground
        // ~q(X) and solve q(X) first, hiding the floundering the goal
        // order implies. It must surface as a Floundered verdict now.
        assert_eq!(
            run("q(a). q(b).", "?- ~q(X), q(X).", RuleKind::LeftmostLiteral),
            Verdict::Floundered
        );
        // The preferential rule still solves the reordered conjunction.
        assert_eq!(
            run("q(a). q(b).", "?- q(X), ~q(X).", RuleKind::Preferential),
            Verdict::Failed
        );
    }

    #[test]
    fn positive_loop_failed() {
        assert_eq!(
            run("p :- p.", "?- p.", RuleKind::Preferential),
            Verdict::Failed
        );
    }

    #[test]
    fn odd_negative_loop_indeterminate() {
        assert_eq!(
            run("p :- ~p.", "?- p.", RuleKind::Preferential),
            Verdict::Indeterminate
        );
    }
}
