//! SLP-trees — *Linear resolution with Positivistic selection* (Def. 3.2).
//!
//! The SLP-tree for a goal `← Q` expands only **positive** literals; a
//! node whose goal is empty or contains only negative literals is an
//! **active leaf**, a node whose selected positive literal matches no
//! clause head is a **dead leaf**. Each active leaf carries its *computed
//! most general unifier* — the composition of the mgus along its branch —
//! whose restriction to the goal's variables is the candidate answer
//! substitution (Def. 3.4).
//!
//! SLP-trees of recursive programs are infinite; construction is bounded
//! by depth/node budgets and truncation is recorded explicitly so status
//! computation can refuse to call a truncated tree "failed".

use gsls_lang::{rename::variant, unify_atoms, Goal, Literal, Program, Subst, TermStore};

/// Budgets for SLP-tree construction.
#[derive(Debug, Clone, Copy)]
pub struct SlpOpts {
    /// Maximum branch depth (resolution steps).
    pub max_depth: u32,
    /// Maximum number of tree nodes.
    pub max_nodes: usize,
    /// Prune a branch when its selected **ground** literal repeats an
    /// ancestor's selected ground literal. Such a branch is infinite in
    /// the ideal SLP-tree, and the paper's ideal procedure treats
    /// infinite branches as failed (Sec. 7, noneffectiveness source 1);
    /// the pruning realises that treatment effectively. It preserves both
    /// statuses and levels: every leaf below the repeat is a superset of
    /// a leaf reachable without it (loop removal), supersets fail
    /// whenever their subsets fail, and the min/lub level combinators are
    /// monotone in the direction that makes the kept leaves decisive.
    pub ground_loop_check: bool,
}

impl Default for SlpOpts {
    fn default() -> Self {
        SlpOpts {
            max_depth: 64,
            max_nodes: 10_000,
            ground_loop_check: true,
        }
    }
}

/// Classification of an SLP-tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlpNodeKind {
    /// Has a selected positive literal and (possibly zero…) children —
    /// zero children makes it a *dead leaf*.
    Internal,
    /// Empty goal or only negative literals (Def. 3.2).
    ActiveLeaf,
    /// No clause head unifies with the selected literal.
    DeadLeaf,
    /// A repeated ground selected literal: the branch is infinite in the
    /// ideal tree and therefore failed; pruned here (sound, see
    /// [`SlpOpts::ground_loop_check`]).
    LoopLeaf,
    /// Construction stopped here because of a budget; subtree unknown.
    Truncated,
}

/// One node of an SLP-tree.
#[derive(Debug, Clone)]
pub struct SlpNode {
    /// The goal at this node.
    pub goal: Goal,
    /// Parent index (`None` for the root).
    pub parent: Option<u32>,
    /// Child node indices.
    pub children: Vec<u32>,
    /// Composition of mgus from the root to this node.
    pub mgu: Subst,
    /// Node classification.
    pub kind: SlpNodeKind,
    /// Depth (root = 0).
    pub depth: u32,
    /// Per-literal call ancestry: `anc[i]` lists the ground atoms whose
    /// expansion introduced literal `i` (innermost last). The loop check
    /// fires only when a ground selected atom occurs in *its own*
    /// ancestry — a conjunctive duplicate of an already-selected atom is
    /// not a loop (`p ← q, ¬r, q` legitimately selects `q` twice).
    pub anc: Vec<Vec<gsls_lang::Atom>>,
}

/// An SLP-tree for a goal.
#[derive(Debug, Clone)]
pub struct SlpTree {
    nodes: Vec<SlpNode>,
    /// Whether any branch was cut by a budget.
    truncated: bool,
}

impl SlpTree {
    /// Builds the SLP-tree for `goal` with leftmost-positive selection.
    ///
    /// (The set of active leaves is independent of which positivistic
    /// rule is used — the switching-lemma remark after Lemma 4.1 — so a
    /// fixed leftmost-positive choice loses no generality.)
    pub fn build(store: &mut TermStore, program: &Program, goal: &Goal, opts: SlpOpts) -> SlpTree {
        let mut tree = SlpTree {
            nodes: Vec::new(),
            truncated: false,
        };
        tree.nodes.push(SlpNode {
            goal: goal.clone(),
            parent: None,
            children: Vec::new(),
            mgu: Subst::new(),
            kind: SlpNodeKind::Internal,
            depth: 0,
            anc: vec![Vec::new(); goal.len()],
        });
        let mut queue: Vec<u32> = vec![0];
        while let Some(idx) = queue.pop() {
            let (goal, depth, mgu) = {
                let n = &tree.nodes[idx as usize];
                (n.goal.clone(), n.depth, n.mgu.clone())
            };
            // Classify.
            let pos_idx = goal.literals().iter().position(Literal::is_pos);
            let Some(sel) = pos_idx else {
                tree.nodes[idx as usize].kind = SlpNodeKind::ActiveLeaf;
                continue;
            };
            if depth >= opts.max_depth || tree.nodes.len() >= opts.max_nodes {
                tree.nodes[idx as usize].kind = SlpNodeKind::Truncated;
                tree.truncated = true;
                continue;
            }
            let selected = goal.literals()[sel].clone();
            let sel_anc = tree.nodes[idx as usize].anc[sel].clone();
            let sel_ground = selected.atom.is_ground(store);
            if opts.ground_loop_check && sel_ground && sel_anc.contains(&selected.atom) {
                // The selected atom occurs in its own call ancestry: the
                // branch spirals through the same ground call forever.
                tree.nodes[idx as usize].kind = SlpNodeKind::LoopLeaf;
                continue;
            }
            let pred = selected.atom.pred_id();
            let clause_idxs: Vec<usize> = program.clauses_for(pred).to_vec();
            let mut any_child = false;
            for ci in clause_idxs {
                let clause = variant(store, program.clause(ci));
                let mut local = mgu.clone();
                let goal_atom = local.resolve_atom(store, &selected.atom);
                if unify_atoms(store, &mut local, &goal_atom, &clause.head) {
                    let child_goal = goal.resolve_at(sel, &clause.body);
                    let child_goal = local.resolve_goal(store, &child_goal);
                    // resolve_at keeps the remaining literals in place and
                    // appends the clause body; mirror that for ancestry.
                    let mut child_anc: Vec<Vec<gsls_lang::Atom>> =
                        Vec::with_capacity(child_goal.len());
                    for (k, a) in tree.nodes[idx as usize].anc.iter().enumerate() {
                        if k != sel {
                            child_anc.push(a.clone());
                        }
                    }
                    let mut body_anc = sel_anc.clone();
                    if sel_ground {
                        body_anc.push(selected.atom.clone());
                    }
                    for _ in 0..clause.body.len() {
                        child_anc.push(body_anc.clone());
                    }
                    debug_assert_eq!(child_anc.len(), child_goal.len());
                    let child = SlpNode {
                        goal: child_goal,
                        parent: Some(idx),
                        children: Vec::new(),
                        mgu: local,
                        kind: SlpNodeKind::Internal,
                        depth: depth + 1,
                        anc: child_anc,
                    };
                    let cid = tree.nodes.len() as u32;
                    tree.nodes.push(child);
                    tree.nodes[idx as usize].children.push(cid);
                    queue.push(cid);
                    any_child = true;
                }
            }
            if !any_child {
                tree.nodes[idx as usize].kind = SlpNodeKind::DeadLeaf;
            }
        }
        tree
    }

    /// All nodes (index 0 is the root).
    pub fn nodes(&self) -> &[SlpNode] {
        &self.nodes
    }

    /// The root node.
    pub fn root(&self) -> &SlpNode {
        &self.nodes[0]
    }

    /// Whether any branch hit a budget.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// Indices of the active leaves, in construction order.
    pub fn active_leaves(&self) -> Vec<u32> {
        (0..self.nodes.len() as u32)
            .filter(|&i| self.nodes[i as usize].kind == SlpNodeKind::ActiveLeaf)
            .collect()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is a single node.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsls_lang::{parse_goal, parse_program};

    fn build(src: &str, goal: &str) -> (TermStore, SlpTree) {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, src).unwrap();
        let g = parse_goal(&mut s, goal).unwrap();
        let t = SlpTree::build(&mut s, &p, &g, SlpOpts::default());
        (s, t)
    }

    #[test]
    fn empty_goal_is_active_leaf() {
        let (_, t) = build("p(a).", "?- .");
        assert_eq!(t.root().kind, SlpNodeKind::ActiveLeaf);
        assert_eq!(t.active_leaves(), vec![0]);
    }

    #[test]
    fn fact_resolution_gives_empty_active_leaf() {
        let (_, t) = build("p(a).", "?- p(a).");
        assert_eq!(t.len(), 2);
        let leaves = t.active_leaves();
        assert_eq!(leaves.len(), 1);
        assert!(t.nodes()[leaves[0] as usize].goal.is_empty());
    }

    #[test]
    fn dead_leaf_when_no_clause() {
        let (_, t) = build("p(a).", "?- q(a).");
        assert_eq!(t.root().kind, SlpNodeKind::DeadLeaf);
        assert!(t.active_leaves().is_empty());
    }

    #[test]
    fn negative_literals_stay_in_leaves() {
        // win(X) :- move(X,Y), ~win(Y): expanding win(a) must stop at the
        // all-negative goal {~win(b)}.
        let (s, t) = build("move(a, b). win(X) :- move(X, Y), ~win(Y).", "?- win(a).");
        let leaves = t.active_leaves();
        assert_eq!(leaves.len(), 1);
        let leaf = &t.nodes()[leaves[0] as usize];
        assert_eq!(leaf.goal.len(), 1);
        assert!(leaf.goal.literals()[0].is_neg());
        assert_eq!(leaf.goal.literals()[0].atom.display(&s), "win(b)");
    }

    #[test]
    fn computed_mgu_binds_goal_variables() {
        let (s, t) = build("move(a, b). move(a, c).", "?- move(a, X).");
        let leaves = t.active_leaves();
        assert_eq!(leaves.len(), 2);
        let mut bindings: Vec<String> = leaves
            .iter()
            .map(|&l| {
                let n = &t.nodes()[l as usize];
                let mut s2 = s.clone();
                let gvars = t.root().goal.vars(&s);
                n.mgu.restricted_to(&mut s2, &gvars).display(&s2)
            })
            .collect();
        bindings.sort();
        assert_eq!(bindings, vec!["{X = b}", "{X = c}"]);
    }

    #[test]
    fn branching_mirrors_clause_count() {
        let (_, t) = build("p(a). p(b). p(c).", "?- p(X).");
        assert_eq!(t.root().children.len(), 3);
        assert_eq!(t.active_leaves().len(), 3);
    }

    #[test]
    fn ground_positive_loop_pruned() {
        // p :- p: the infinite branch is detected and pruned as a
        // LoopLeaf — the ideal tree's "infinite branch = failed".
        let (_, t) = build("p :- p.", "?- p.");
        assert!(!t.is_truncated());
        assert!(t.active_leaves().is_empty());
        assert!(t.nodes().iter().any(|n| n.kind == SlpNodeKind::LoopLeaf));
    }

    #[test]
    fn three_step_positive_loop_pruned() {
        // Example 3.2's positive cycle p → q → r → p.
        let (_, t) = build("p :- q, ~a. q :- r, ~b. r :- p, ~c.", "?- p.");
        assert!(!t.is_truncated());
        assert!(t.active_leaves().is_empty(), "every branch loops");
    }

    #[test]
    fn loop_check_disabled_truncates() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "p :- p.").unwrap();
        let g = parse_goal(&mut s, "?- p.").unwrap();
        let t = SlpTree::build(
            &mut s,
            &p,
            &g,
            SlpOpts {
                max_depth: 10,
                max_nodes: 100,
                ground_loop_check: false,
            },
        );
        assert!(t.is_truncated());
        assert!(t.nodes().iter().any(|n| n.kind == SlpNodeKind::Truncated));
    }

    #[test]
    fn loop_check_keeps_reachable_leaves() {
        // p :- p, ~q / p :- ~r: pruning the loop keeps the {~r} leaf.
        let (_, t) = build("p :- p, ~q. p :- ~r.", "?- p.");
        let leaves = t.active_leaves();
        assert_eq!(leaves.len(), 1);
        assert!(!t.is_truncated());
    }

    #[test]
    fn conjunction_left_to_right() {
        let (s, t) = build(
            "e(a, b). e(b, c). q(X, Z) :- e(X, Y), e(Y, Z).",
            "?- q(a, Z).",
        );
        let leaves = t.active_leaves();
        assert_eq!(leaves.len(), 1);
        let n = &t.nodes()[leaves[0] as usize];
        assert!(n.goal.is_empty());
        let mut s2 = s.clone();
        let gvars = t.root().goal.vars(&s);
        assert_eq!(n.mgu.restricted_to(&mut s2, &gvars).display(&s2), "{Z = c}");
    }

    #[test]
    fn mixed_goal_expands_positive_first() {
        // Goal with a negative literal first: SLP selection must still
        // pick the positive one (positivistic).
        let (_, t) = build("q(a).", "?- ~p(a), q(a).");
        let leaves = t.active_leaves();
        assert_eq!(leaves.len(), 1);
        let n = &t.nodes()[leaves[0] as usize];
        assert_eq!(n.goal.len(), 1);
        assert!(n.goal.literals()[0].is_neg());
    }

    #[test]
    fn depth_budget_respected() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "nat(0). nat(s(X)) :- nat(X).").unwrap();
        let g = parse_goal(&mut s, "?- nat(N).").unwrap();
        let t = SlpTree::build(
            &mut s,
            &p,
            &g,
            SlpOpts {
                max_depth: 5,
                max_nodes: 1000,
                ground_loop_check: true,
            },
        );
        assert!(t.is_truncated());
        // Active leaves at depth ≤ 5 are still found (one per numeral).
        assert!(t.active_leaves().len() >= 5);
        assert!(t.nodes().iter().all(|n| n.depth <= 6));
    }
}
