//! Countable ordinals below ω^ω, used for global-tree levels.
//!
//! Definition 3.3 attaches an ordinal *level* to successful and failed
//! nodes, and Example 3.1 shows levels like `ω + 2` arising for programs
//! with function symbols. Every level produced by a finite (depth-bounded)
//! ground program is finite; the ω-coefficients appear in the symbolic
//! analysis of parameterised program families (experiment E1 computes
//! `level(← w(0)) = ω + 2` exactly this way).
//!
//! An [`Ordinal`] is a polynomial `cₖ·ω^k + … + c₁·ω + c₀` stored as
//! little-endian coefficients. Comparison is lexicographic from the
//! highest power, which matches ordinal order on this fragment.

use std::cmp::Ordering;
use std::fmt;

/// An ordinal below ω^ω in Cantor normal form with finite coefficients.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Ordinal {
    /// `coeffs[k]` is the coefficient of ω^k; no trailing zeros.
    coeffs: Vec<u64>,
}

impl Ordinal {
    /// The ordinal 0.
    pub fn zero() -> Self {
        Ordinal { coeffs: Vec::new() }
    }

    /// The finite ordinal `n`.
    pub fn finite(n: u64) -> Self {
        if n == 0 {
            Self::zero()
        } else {
            Ordinal { coeffs: vec![n] }
        }
    }

    /// The ordinal ω.
    pub fn omega() -> Self {
        Ordinal { coeffs: vec![0, 1] }
    }

    /// Builds `coeffs[k]·ω^k + …` from little-endian coefficients.
    pub fn from_coeffs(mut coeffs: Vec<u64>) -> Self {
        while coeffs.last() == Some(&0) {
            coeffs.pop();
        }
        Ordinal { coeffs }
    }

    /// Whether this is 0.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Whether this is a finite ordinal (< ω).
    pub fn is_finite(&self) -> bool {
        self.coeffs.len() <= 1
    }

    /// The value as a finite number, if finite.
    pub fn as_finite(&self) -> Option<u64> {
        match self.coeffs.len() {
            0 => Some(0),
            1 => Some(self.coeffs[0]),
            _ => None,
        }
    }

    /// Whether this is a successor ordinal (finite part > 0). Levels of
    /// well-determined goals are always successors (Sec. 4).
    pub fn is_successor(&self) -> bool {
        self.coeffs.first().is_some_and(|&c| c > 0)
    }

    /// Whether this is a limit ordinal (nonzero with zero finite part).
    pub fn is_limit(&self) -> bool {
        !self.is_zero() && !self.is_successor()
    }

    /// The successor `self + 1`.
    pub fn succ(&self) -> Ordinal {
        let mut coeffs = self.coeffs.clone();
        if coeffs.is_empty() {
            coeffs.push(0);
        }
        coeffs[0] += 1;
        Ordinal { coeffs }
    }

    /// Ordinal sum `self + rhs` (not commutative: `1 + ω = ω`).
    pub fn add(&self, rhs: &Ordinal) -> Ordinal {
        if rhs.is_zero() {
            return self.clone();
        }
        let k = rhs.coeffs.len() - 1; // highest power of rhs
                                      // self + rhs: powers of self below ω^k are absorbed; the ω^k
                                      // coefficients add; higher powers of self survive.
        let mut coeffs = rhs.coeffs.clone();
        if self.coeffs.len() > k {
            coeffs[k] += self.coeffs[k];
            coeffs.extend_from_slice(&self.coeffs[k + 1..]);
        }
        Ordinal::from_coeffs(coeffs)
    }

    /// The least upper bound of `self` and `other` (their maximum: every
    /// pair of ordinals is comparable).
    pub fn max(&self, other: &Ordinal) -> Ordinal {
        if self >= other {
            self.clone()
        } else {
            other.clone()
        }
    }

    /// Least upper bound of a finite set of ordinals (0 if empty).
    pub fn lub<'a>(items: impl IntoIterator<Item = &'a Ordinal>) -> Ordinal {
        items
            .into_iter()
            .fold(Ordinal::zero(), |acc, o| Ordinal::max(&acc, o))
    }

    /// The least *limit* ordinal ≥ every element of a strictly increasing
    /// unbounded ω-sequence whose elements are the finite ordinals
    /// `f(0) < f(1) < …`: that is, ω. Exposed for symbolic family-level
    /// computations (E1): `lub{2n : n < ω} = ω`.
    pub fn omega_limit() -> Ordinal {
        Ordinal::omega()
    }
}

impl PartialOrd for Ordinal {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ordinal {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.coeffs.len() != other.coeffs.len() {
            return self.coeffs.len().cmp(&other.coeffs.len());
        }
        for (a, b) in self.coeffs.iter().rev().zip(other.coeffs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Display for Ordinal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (k, &c) in self.coeffs.iter().enumerate().rev() {
            if c == 0 {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            match (k, c) {
                (0, c) => write!(f, "{c}")?,
                (1, 1) => write!(f, "ω")?,
                (1, c) => write!(f, "ω·{c}")?,
                (k, 1) => write!(f, "ω^{k}")?,
                (k, c) => write!(f, "ω^{k}·{c}")?,
            }
        }
        Ok(())
    }
}

impl From<u64> for Ordinal {
    fn from(n: u64) -> Self {
        Ordinal::finite(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_ordering() {
        assert!(Ordinal::finite(2) < Ordinal::finite(3));
        assert_eq!(Ordinal::finite(0), Ordinal::zero());
        assert!(Ordinal::zero() < Ordinal::finite(1));
    }

    #[test]
    fn omega_above_all_finite() {
        let w = Ordinal::omega();
        for n in [0u64, 1, 5, 1_000_000] {
            assert!(Ordinal::finite(n) < w);
        }
        assert!(w < w.succ());
    }

    #[test]
    fn successor_and_limit_classification() {
        assert!(!Ordinal::zero().is_successor());
        assert!(!Ordinal::zero().is_limit());
        assert!(Ordinal::finite(3).is_successor());
        assert!(Ordinal::omega().is_limit());
        assert!(Ordinal::omega().succ().is_successor());
    }

    #[test]
    fn addition_absorbs_lower_terms() {
        // 1 + ω = ω
        let one = Ordinal::finite(1);
        let w = Ordinal::omega();
        assert_eq!(one.add(&w), w);
        // ω + 1 > ω
        assert_eq!(w.add(&one), w.succ());
        // ω + ω = ω·2
        assert_eq!(w.add(&w), Ordinal::from_coeffs(vec![0, 2]));
        // (ω+3) + (ω+1) = ω·2 + 1
        let a = Ordinal::from_coeffs(vec![3, 1]);
        let b = Ordinal::from_coeffs(vec![1, 1]);
        assert_eq!(a.add(&b), Ordinal::from_coeffs(vec![1, 2]));
    }

    #[test]
    fn add_zero_identity() {
        let a = Ordinal::from_coeffs(vec![2, 1]);
        assert_eq!(a.add(&Ordinal::zero()), a);
        assert_eq!(Ordinal::zero().add(&a), a);
    }

    #[test]
    fn lub_is_max() {
        let items = [Ordinal::finite(4), Ordinal::omega(), Ordinal::finite(100)];
        assert_eq!(Ordinal::lub(items.iter()), Ordinal::omega());
        assert_eq!(Ordinal::lub([].iter()), Ordinal::zero());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Ordinal::zero().to_string(), "0");
        assert_eq!(Ordinal::finite(7).to_string(), "7");
        assert_eq!(Ordinal::omega().to_string(), "ω");
        assert_eq!(Ordinal::omega().succ().succ().to_string(), "ω + 2");
        assert_eq!(
            Ordinal::from_coeffs(vec![5, 3, 2]).to_string(),
            "ω^2·2 + ω·3 + 5"
        );
    }

    #[test]
    fn ordering_mixed_powers() {
        let a = Ordinal::from_coeffs(vec![100, 1]); // ω + 100
        let b = Ordinal::from_coeffs(vec![0, 2]); // ω·2
        assert!(a < b);
        let c = Ordinal::from_coeffs(vec![0, 0, 1]); // ω²
        assert!(b < c);
    }

    #[test]
    fn trailing_zero_normalisation() {
        assert_eq!(Ordinal::from_coeffs(vec![3, 0, 0]), Ordinal::finite(3));
        assert_eq!(Ordinal::from_coeffs(vec![0, 0]), Ordinal::zero());
    }

    #[test]
    fn van_gelder_level_arithmetic() {
        // Example 3.1: levels 2n for each finite n, lub = ω, then two
        // successor steps: fail(u(0)) = ω+1, succ(w(0)) = ω+2.
        let lub = Ordinal::omega_limit();
        let fail_u0 = lub.succ();
        let succ_w0 = fail_u0.succ();
        assert_eq!(succ_w0.to_string(), "ω + 2");
    }
}
