//! The SCC-local alternating-fixpoint solver — one worker's worth of
//! tabled-engine state.
//!
//! [`SccSolver`] owns everything solving a single SCC needs beyond the
//! shared immutable [`GroundProgram`]: a [`Propagator`] clone and the
//! global-sized (sparsely cleared) bitset scratch for the alternating
//! rounds. The sequential [`crate::tabled::TabledEngine`] holds exactly
//! one; the parallel wavefront holds one **per worker**
//! ([`SccSolver::for_worker`] is the clone-for-worker constructor the
//! `Send` audit pins) — workers share the CSR program read-only and
//! exchange verdicts only through the published table, so no lock is
//! ever taken while an SCC is being solved.
//!
//! External atoms (body literals outside the SCC) are resolved through
//! a caller-supplied lookup: the memo table for the sequential engine,
//! an atomic verdict table for the parallel one. The scheduling
//! contract — an SCC is solved only after every lower SCC has
//! published — makes the lookup total; a miss panics.

use gsls_ground::{ClauseRef, GroundAtomId, GroundProgram};
use gsls_wfs::{BitSet, Propagator, Truth};

/// Reusable state for solving SCCs one at a time against a shared
/// finalized [`GroundProgram`]. See the module docs.
#[derive(Debug, Clone)]
pub struct SccSolver {
    /// Propagation scratch for every SCC-local fixpoint.
    prop: Propagator,
    /// Clause indices of the SCC currently being solved.
    scc_clauses: Vec<u32>,
    /// Membership mask of the SCC currently being solved.
    in_scc: BitSet,
    /// Alternating-fixpoint buffers (global-sized, sparsely cleared).
    t: BitSet,
    u: BitSet,
    t_next: BitSet,
    u_next: BitSet,
    /// Verdicts of the last [`SccSolver::solve`], parallel to its
    /// `atoms` argument.
    verdicts: Vec<Truth>,
}

impl SccSolver {
    /// Creates solver state sized to `gp` (which must be finalized).
    /// This is also the **clone-for-worker constructor**: each parallel
    /// worker builds its own solver over the shared program; nothing in
    /// here aliases another worker's state.
    pub fn for_worker(gp: &GroundProgram) -> Self {
        let n = gp.atom_count();
        SccSolver {
            prop: Propagator::new(gp),
            scc_clauses: Vec::new(),
            in_scc: BitSet::new(n),
            t: BitSet::new(n),
            u: BitSet::new(n),
            t_next: BitSet::new(n),
            u_next: BitSet::new(n),
            verdicts: Vec::new(),
        }
    }

    /// The verdicts of the most recent [`SccSolver::solve`], in the
    /// order of its `atoms` argument.
    pub fn verdicts(&self) -> &[Truth] {
        &self.verdicts
    }

    /// Solves one SCC by a local alternating fixpoint, reading
    /// out-of-SCC atoms through `external` (they are guaranteed decided
    /// by the reverse-topological schedule). Verdicts land in
    /// [`SccSolver::verdicts`].
    ///
    /// Each reduct evaluation is [`Propagator::lfp_restricted`] over the
    /// SCC's clause indices with global atom ids: internal positive
    /// literals are tracked by the propagation, external ones resolve
    /// through `external` at classification time, and internal negative
    /// literals delete clauses per the Gelfond–Lifschitz reduct w.r.t.
    /// the opposite approximation. Fixpoint detection uses derivation
    /// counts (`T` grows, `U` shrinks along the iteration).
    ///
    /// **Singleton fast path:** most SCCs of real dependency graphs are
    /// single atoms without a self-loop, where every body literal is
    /// external and already decided. The three-valued verdict is then
    /// two classification passes over the atom's clauses — no bitset
    /// bookkeeping, no restricted fixpoints, no alternating rounds.
    pub fn solve(
        &mut self,
        gp: &GroundProgram,
        atoms: &[GroundAtomId],
        external: impl Fn(GroundAtomId) -> Truth,
    ) {
        self.verdicts.clear();
        if let [a] = *atoms {
            let self_dep = gp.clauses_for(a).iter().any(|&ci| {
                let c = gp.clause(ci);
                c.pos.contains(&a) || c.neg.contains(&a)
            });
            if !self_dep {
                let mut verdict = Truth::False;
                for &ci in gp.clauses_for(a) {
                    let c = gp.clause(ci);
                    // Definite reading: every literal decided its way.
                    if c.pos.iter().all(|&b| external(b) == Truth::True)
                        && c.neg.iter().all(|&b| external(b) == Truth::False)
                    {
                        verdict = Truth::True;
                        break;
                    }
                    // Possible reading: no literal decided against.
                    if c.pos.iter().all(|&b| external(b) != Truth::False)
                        && c.neg.iter().all(|&b| external(b) != Truth::True)
                    {
                        verdict = Truth::Undefined;
                    }
                }
                self.verdicts.push(verdict);
                return;
            }
        }
        let Self {
            prop,
            scc_clauses,
            in_scc,
            t,
            u,
            t_next,
            u_next,
            verdicts,
        } = self;
        for &a in atoms {
            in_scc.insert(a.index());
            t.remove(a.index());
            u.remove(a.index());
            t_next.remove(a.index());
            u_next.remove(a.index());
        }
        scc_clauses.clear();
        for &a in atoms {
            scc_clauses.extend_from_slice(gp.clauses_for(a));
        }
        let scc_mask = &*in_scc;
        // `classify(c, s, under)`: `None` = clause deleted for this pass;
        // `Some(k)` = number of internal positive literals the
        // propagation must derive. `under` selects the definite (T) or
        // possible (U) reading of external undefined literals.
        let classify = |c: ClauseRef<'_>, s: &BitSet, under: bool| -> Option<u32> {
            let mut missing = 0u32;
            for &b in c.pos {
                if scc_mask.contains(b.index()) {
                    missing += 1;
                } else {
                    match external(b) {
                        Truth::True => {}
                        Truth::Undefined if under => return None,
                        Truth::Undefined => {}
                        Truth::False => return None,
                    }
                }
            }
            for &b in c.neg {
                if scc_mask.contains(b.index()) {
                    if s.contains(b.index()) {
                        return None;
                    }
                } else {
                    match external(b) {
                        Truth::False => {}
                        Truth::Undefined if under => return None,
                        Truth::Undefined => {}
                        Truth::True => return None,
                    }
                }
            }
            Some(missing)
        };
        // T₀ = ∅; U₀ = A_over(T₀); then alternate until the counts of
        // both approximations stop moving.
        let mut t_count = 0usize;
        let mut u_count = prop.lfp_restricted(gp, scc_clauses, |c| classify(c, t, false), u);
        loop {
            let tc = prop.lfp_restricted(gp, scc_clauses, |c| classify(c, u, true), t_next);
            let uc = prop.lfp_restricted(gp, scc_clauses, |c| classify(c, t_next, false), u_next);
            let stable = tc == t_count && uc == u_count;
            std::mem::swap(t, t_next);
            std::mem::swap(u, u_next);
            t_count = tc;
            u_count = uc;
            if stable {
                break;
            }
            // The swapped-out buffers hold the previous round; clear the
            // SCC's bits before they serve as outputs again.
            for &a in atoms {
                t_next.remove(a.index());
                u_next.remove(a.index());
            }
        }
        for &a in atoms {
            let verdict = if t.contains(a.index()) {
                Truth::True
            } else if !u.contains(a.index()) {
                Truth::False
            } else {
                Truth::Undefined
            };
            verdicts.push(verdict);
        }
        // The membership mask must not leak into the next SCC.
        for &a in atoms {
            in_scc.remove(a.index());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The shared-CSR + per-worker-state contract, pinned by the type
    /// system: worker state moves onto spawned threads, the program is
    /// shared by reference.
    #[test]
    fn worker_contract_types_are_send_and_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<SccSolver>();
        assert_send::<Propagator>();
        assert_send::<BitSet>();
        assert_sync::<GroundProgram>();
    }
}
