//! The incremental, snapshot-isolated [`Session`] — the primary entry
//! point of the crate.
//!
//! A [`Session`] owns the [`TermStore`], the source [`Program`], the
//! ground program and the engine state, and keeps the **well-founded
//! model continuously materialized** across updates:
//!
//! * **Transactional updates** — [`Session::assert_facts`],
//!   [`Session::retract_facts`] and [`Session::add_rules`] buffer into
//!   an open transaction ([`Session::begin`] / [`Session::commit`] /
//!   [`Session::rollback`]) or auto-commit when none is open. A commit
//!   routes fact deltas through the persistent grounder's
//!   [`IncrementalGrounder::extend`] (re-joining only the plans whose
//!   predicates grew, via the relevance index) and maintains the model
//!   on two warm [`gsls_wfs::IncrementalLfp`] chains
//!   ([`gsls_wfs::well_founded_refresh`]) instead of re-solving from
//!   scratch. Retraction is a model-level clause switch: the ground
//!   program is append-only, a retracted fact's clause is disabled on
//!   the chains and re-enabled by a later re-assert.
//! * **Prepared queries** — [`Session::prepare`] compiles a goal once
//!   into a [`PreparedQuery`] (pattern specs, slot layout, engine
//!   choice, reusable scratch); [`PreparedQuery::execute`] streams
//!   bindings through the [`Answers`] iterator instead of materializing
//!   vectors.
//! * **Snapshot reads** — [`Session::snapshot`] returns an immutable,
//!   [`Send`]`+`[`Sync`] [`Snapshot`] of the committed state, cheap to
//!   take (the first snapshot after a commit clones the state into an
//!   [`Arc`]; later ones just bump the refcount) and queryable from any
//!   number of threads while the session keeps committing.
//!
//! The session engine requires **function-free** programs (the class
//! for which the paper's memoized procedure is effective); programs
//! with function symbols keep working through
//! [`crate::Solver`]'s global-tree engine.
//!
//! ## Semantics of updates
//!
//! The committed model always equals `well_founded_model` of a
//! from-scratch grounding of the *merged* program (rules plus every
//! currently-asserted fact) — the workspace property tests pin this
//! across random update walks. Within one commit, updates apply in the
//! order: added rules, asserted facts, retracted facts. Only **source
//! facts** — ground facts of the initial program and facts issued
//! through [`Session::assert_facts`] — are retractable; ground facts
//! arriving in an [`Session::add_rules`] batch, like rule-derived
//! fact instances, are permanent program text, and retracting a source
//! fact never falsifies an atom such a permanent clause (or any rule)
//! still derives. Rules whose variables are not bound by a positive
//! body literal are enumerated over the **active domain** (every
//! constant ever seen); retracting a fact does not shrink that domain.

use crate::global::{GlobalOpts, GlobalTree, Status};
use crate::govern::{
    guard_for, CommitOpts, Guard, InterruptCause, InterruptHandle, InterruptPhase, QueryOpts,
    TripInfo,
};
use crate::solver::{Engine, QueryResult};
use gsls_analyze::{
    analyze_batch, analyze_with_ground, estimate_batch_instances, AnalyzerOpts, Diagnostic, Lint,
    LintConfig, LintLevel, LintReport,
};
use gsls_durable::{
    decode_batch, decode_checkpoint, encode_batch, encode_checkpoint, Batch, CheckpointImage,
    DurableError, DurableLog, DurableOpts, WalObs,
};
use gsls_ground::{
    GroundAtomId, GroundProgram, GroundStats, GrounderOpts, GroundingError, IncrementalGrounder,
};
use gsls_lang::{
    parse_goal, parse_program, Atom, Clause, FxHashMap, Goal, ParseError, Pred, Program, Span,
    Subst, Symbol, Term, TermId, TermStore, Var,
};
use gsls_obs::{Counter, Histogram, MetricsSnapshot, Obs, TraceEvent};
use gsls_par::{pool_totals, PoolTotals};
use gsls_wfs::{
    well_founded_refresh, well_founded_refresh_governed, BitSet, IncStats, IncrementalLfp, Interp,
    NegMode, Truth,
};
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Sentinel for an unbound query binding slot.
const UNBOUND: TermId = TermId(u32::MAX);

/// Replaying at least this many WAL records on [`Session::open`]
/// triggers an immediate post-recovery checkpoint, so the tail is paid
/// for once instead of on every subsequent reopen.
const REPLAY_CHECKPOINT_THRESHOLD: usize = 8;

/// Sentinel ids for names a [`SnapshotQuery`] mentions that the
/// snapshot's store has never interned. They compare unequal to every
/// real id (the arena would overflow its `u32` long before reaching
/// them), so a pattern holding one simply never matches — which is the
/// correct semantics: an unknown constant's atom is false, and its
/// negation true.
const FOREIGN_TERM: TermId = TermId(u32::MAX - 1);
const FOREIGN_SYM: Symbol = Symbol(u32::MAX);

/// Hard cap on residual (universe-enumerated) query instances.
const MAX_QUERY_INSTANCES: usize = 100_000;

/// Why a commit batch was rejected *before* anything was journaled or
/// applied. A rejected batch leaves the session exactly as it was —
/// consistent, unpoisoned, writable.
///
/// Validation is deliberately permissive about *new* predicates: the
/// first assert (or rule) mentioning a symbol defines its arity, so
/// facts may be asserted before any rule over them exists and retracts
/// of never-asserted facts stay silent no-ops. What it rejects is
/// state that could never replay cleanly: a predicate used at two
/// arities, a non-ground "fact", or a function symbol slipping into
/// the function-free session engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitError {
    /// A predicate is used at an arity different from the one it
    /// already has (committed or earlier in the same batch).
    ArityMismatch {
        /// Predicate name.
        pred: String,
        /// The arity the predicate is already known at.
        expected: usize,
        /// The arity this batch used.
        found: usize,
    },
    /// An asserted or retracted fact contains variables.
    NotGround(String),
    /// A clause or fact mentions a proper function symbol.
    FunctionSymbol(String),
    /// The static analyzer flagged a rule at deny level under the
    /// session's [`LintConfig`] (floundering hazards, non-range-
    /// restricted rules, …). The diagnostic carries the lint, span and
    /// witness.
    Unsafe(Diagnostic),
}

impl fmt::Display for CommitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitError::ArityMismatch {
                pred,
                expected,
                found,
            } => write!(
                f,
                "predicate {pred} used at arity {found} but is declared at arity {expected}"
            ),
            CommitError::NotGround(a) => write!(f, "fact is not ground: {a}"),
            CommitError::FunctionSymbol(a) => {
                write!(
                    f,
                    "function symbols are not allowed in the session engine: {a}"
                )
            }
            CommitError::Unsafe(d) => write!(f, "unsafe program: {}", d.render()),
        }
    }
}

impl std::error::Error for CommitError {}

/// Everything wrong with one rejected commit batch: *all* violations
/// are collected, not just the first, so a client gets the complete
/// report in one round trip. Nothing was journaled or applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitRejection {
    /// The violations, in batch order (analyzer findings last).
    pub errors: Vec<CommitError>,
}

impl CommitRejection {
    /// The first violation (every rejection has at least one).
    pub fn first(&self) -> &CommitError {
        &self.errors[0]
    }
}

impl fmt::Display for CommitRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.errors.len() == 1 {
            return write!(f, "{}", self.errors[0]);
        }
        write!(f, "{} violations:", self.errors.len())?;
        for e in &self.errors {
            write!(f, "\n  - {e}")?;
        }
        Ok(())
    }
}

impl std::error::Error for CommitRejection {}

impl From<CommitError> for CommitRejection {
    fn from(e: CommitError) -> Self {
        CommitRejection { errors: vec![e] }
    }
}

/// Session errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// A source string failed to parse.
    Parse(ParseError),
    /// Grounding failed (clause budget).
    Grounding(String),
    /// The session engine requires function-free programs.
    NotFunctionFree,
    /// `assert_facts` / `retract_facts` was given a non-fact clause or
    /// a non-ground fact.
    NotAFact(String),
    /// Query shape not supported by the selected engine.
    Unsupported(String),
    /// `begin` while a transaction is already open.
    NestedTransaction,
    /// The commit batch failed up-front validation; nothing was
    /// journaled or applied. Every violation of the batch is collected
    /// ([`CommitRejection`]).
    Rejected(CommitRejection),
    /// The durability layer failed (WAL append, checkpoint write,
    /// corrupt stored state on open).
    Durable(String),
    /// A failed commit could not be rolled back in memory *and* the
    /// automatic rebuild failed too; the session serves reads of the
    /// last consistent model until [`Session::recover`] succeeds.
    Poisoned,
    /// A governed operation was interrupted — cancelled through an
    /// [`InterruptHandle`], past its deadline, or over its resource
    /// budget. An interrupted *commit* has been fully rolled back
    /// (WAL record truncated, engine restored at the previous epoch):
    /// it is equivalent to a rolled-back transaction, and the session
    /// stays writable. An `Admission` phase means the batch was
    /// rejected before anything was journaled.
    Interrupted {
        /// Where the interruption surfaced.
        phase: InterruptPhase,
        /// What tripped the guard.
        cause: InterruptCause,
        /// Resource readings (fuel / deadline overshoot / memory)
        /// captured at trip time, before rollback — so forensics
        /// don't require a rerun.
        trip: TripInfo,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Parse(e) => write!(f, "parse error: {e}"),
            SessionError::Grounding(e) => write!(f, "grounding failed: {e}"),
            SessionError::NotFunctionFree => {
                write!(f, "the session engine requires a function-free program")
            }
            SessionError::NotAFact(e) => write!(f, "not a ground fact: {e}"),
            SessionError::Unsupported(e) => write!(f, "unsupported query: {e}"),
            SessionError::NestedTransaction => write!(f, "a transaction is already open"),
            SessionError::Rejected(e) => write!(f, "commit rejected: {e}"),
            SessionError::Durable(e) => write!(f, "durability error: {e}"),
            SessionError::Poisoned => {
                write!(f, "session poisoned by a failed commit; reads only")
            }
            SessionError::Interrupted { phase, cause, trip } => {
                write!(f, "interrupted during {phase}: {cause}")?;
                let readings = trip.render();
                if !readings.is_empty() {
                    write!(f, " ({readings})")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ParseError> for SessionError {
    fn from(e: ParseError) -> Self {
        SessionError::Parse(e)
    }
}

impl From<GroundingError> for SessionError {
    fn from(e: GroundingError) -> Self {
        match e {
            GroundingError::Interrupted(cause) => SessionError::Interrupted {
                phase: InterruptPhase::Grounding,
                cause,
                trip: TripInfo::default(),
            },
            other => SessionError::Grounding(other.to_string()),
        }
    }
}

impl From<DurableError> for SessionError {
    fn from(e: DurableError) -> Self {
        SessionError::Durable(e.to_string())
    }
}

impl From<CommitError> for SessionError {
    fn from(e: CommitError) -> Self {
        SessionError::Rejected(e.into())
    }
}

impl From<CommitRejection> for SessionError {
    fn from(e: CommitRejection) -> Self {
        SessionError::Rejected(e)
    }
}

/// What one [`Session::commit`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitStats {
    /// Rules (and rule-batch facts) appended to the program.
    pub rules_added: usize,
    /// Genuinely new facts grounded in.
    pub facts_asserted: usize,
    /// Previously-retracted facts switched back on.
    pub facts_reenabled: usize,
    /// Fact clauses switched off.
    pub facts_retracted: usize,
    /// Ground atoms added by this commit.
    pub new_atoms: usize,
    /// Ground clauses added by this commit.
    pub new_clauses: usize,
}

/// A buffered, not-yet-committed update batch.
#[derive(Debug, Default)]
struct Pending {
    rules: Vec<Clause>,
    /// Source positions of `rules`, aligned by index (parsed batches
    /// carry them; programmatic clauses don't). Feeds analyzer
    /// diagnostics only — never journaled.
    rule_spans: Vec<Option<Span>>,
    asserts: Vec<Atom>,
    retracts: Vec<Atom>,
}

impl Pending {
    fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.asserts.is_empty() && self.retracts.is_empty()
    }
}

/// One already-parsed update batch for the group-commit surface
/// ([`Session::commit_group`]): the public counterpart of the internal
/// transaction buffer. Built by a network front end (or any batching
/// caller) from decoded clauses and atoms; within the batch, rules
/// apply before asserts, asserts before retracts — exactly the
/// [`Session::commit`] ordering.
#[derive(Debug, Default, Clone)]
pub struct UpdateBatch {
    /// Rule clauses (including facts committed as permanent rules).
    pub rules: Vec<Clause>,
    /// Ground facts to assert.
    pub asserts: Vec<Atom>,
    /// Ground facts to retract.
    pub retracts: Vec<Atom>,
}

impl UpdateBatch {
    /// Whether the batch would commit nothing.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.asserts.is_empty() && self.retracts.is_empty()
    }
}

/// How a commit's WAL record reaches disk.
#[derive(Clone, Copy, PartialEq, Eq)]
enum JournalMode {
    /// Fsync this record before the in-memory apply (the classic
    /// write-ahead contract of [`Session::commit`]).
    Immediate,
    /// Append without fsync; the caller issues one group fsync over
    /// the whole run of records **before acknowledging any of them**.
    /// The durability contract weakens from "fsync before apply" to
    /// "fsync before ack": a crash inside the group can only lose
    /// commits nobody was told succeeded (recovery truncates the
    /// unsynced tail).
    Deferred,
}

/// The incremental, snapshot-isolated entry point. See the module docs.
pub struct Session {
    store: TermStore,
    program: Program,
    grounder: IncrementalGrounder,
    t_chain: IncrementalLfp,
    u_chain: IncrementalLfp,
    model: Interp,
    /// Reusable empty context for the alternating refresh.
    empty: BitSet,
    /// Currently-retracted facts: ground-clause index → source atom.
    /// The atom is kept so the set survives a full re-ground (clause
    /// indices renumber) and can be checkpointed.
    disabled: FxHashMap<u32, Atom>,
    /// Open transaction, if any ([`Session::begin`]).
    txn: Option<Pending>,
    /// Monotone commit counter; snapshots carry the epoch they saw.
    epoch: u64,
    snapshot_cache: Option<Snapshot>,
    global_opts: GlobalOpts,
    /// Grounding options, kept for state rebuilds after a failed commit.
    opts: GrounderOpts,
    /// Known predicate arities (committed state), for up-front batch
    /// validation.
    arities: FxHashMap<Symbol, usize>,
    /// Per-lint levels for the static analysis gating every rule batch
    /// (and the seed program).
    lint_config: LintConfig,
    /// Warn-level findings of the most recent analyzer run (seed
    /// program or committed rule batch).
    last_report: LintReport,
    /// Write-ahead log + checkpoints, when opened durably.
    durable: Option<DurableLog>,
    poisoned: bool,
    /// Persistent cancellation flag shared with every
    /// [`Session::interrupt_handle`]; cleared at the start of each
    /// governed operation.
    cancel: Arc<AtomicBool>,
    /// Rollback bookkeeping for the commit currently applying, so
    /// [`Session::recover`] can unwind even after a panic escaped
    /// mid-apply (WAL truncated to the mark, program truncated,
    /// engine rebuilt). `None` whenever no commit is in flight.
    inflight: Option<InflightCommit>,
    /// Observability bundle: metrics registry + bounded trace ring.
    /// Cloned handles ([`Session::obs`]) share the same storage, so a
    /// monitoring thread can snapshot mid-commit.
    obs: Obs,
    /// Metric handles pre-resolved at construction so the commit and
    /// query hot paths never take the registry lock (or allocate).
    sobs: SessionObs,
    /// Per-commit delta baselines over the subsystems' lifetime stat
    /// counters (flushed into the registry at the end of each commit).
    base_gstats: GroundStats,
    base_t: IncStats,
    base_u: IncStats,
    base_par: PoolTotals,
}

/// See [`Session::recover`]: what to undo if the in-flight commit
/// never reports back (panic/abort mid-apply).
#[derive(Debug, Clone, Copy)]
struct InflightCommit {
    /// `program.len()` before the commit started appending.
    program_len: usize,
    /// WAL length before this commit's record, when durable.
    wal_mark: Option<u64>,
}

/// Metric handles pre-resolved against the session's registry at
/// construction — one lock acquisition per *name* per session lifetime,
/// zero on the commit path. Every handle is a clone of the registered
/// cell, so increments land in [`Session::metrics`] snapshots.
#[derive(Clone)]
struct SessionObs {
    commits: Counter,
    rules_added: Counter,
    facts_asserted: Counter,
    facts_reenabled: Counter,
    facts_retracted: Counter,
    new_atoms: Counter,
    new_clauses: Counter,
    commit_total: Histogram,
    phase_validate: Histogram,
    phase_admission: Histogram,
    phase_journal: Histogram,
    phase_ground: Histogram,
    phase_refresh: Histogram,
    phase_index: Histogram,
    ground_rounds: Counter,
    ground_join_candidates: Counter,
    ground_index_probes: Counter,
    ground_dedup_hits: Counter,
    lfp_evaluations: Counter,
    lfp_clause_checks: Counter,
    lfp_enqueues: Counter,
    lfp_revives: Counter,
    /// Values are retraction-cone sizes in *atoms*, not nanoseconds.
    lfp_cone: Histogram,
    wal_recovered_records: Counter,
    wal_fallbacks: Counter,
    wal_torn_bytes: Counter,
    par_steals: Counter,
    par_parks: Counter,
    par_aborts: Counter,
    query: QueryObs,
}

impl SessionObs {
    fn new(obs: &Obs) -> SessionObs {
        let reg = obs.registry();
        SessionObs {
            commits: reg.counter("commit.count"),
            rules_added: reg.counter("commit.rules_added"),
            facts_asserted: reg.counter("commit.facts_asserted"),
            facts_reenabled: reg.counter("commit.facts_reenabled"),
            facts_retracted: reg.counter("commit.facts_retracted"),
            new_atoms: reg.counter("commit.new_atoms"),
            new_clauses: reg.counter("commit.new_clauses"),
            commit_total: reg.histogram("commit.total"),
            phase_validate: reg.histogram("commit.validate"),
            phase_admission: reg.histogram("commit.admission"),
            phase_journal: reg.histogram("commit.journal"),
            phase_ground: reg.histogram("commit.ground"),
            phase_refresh: reg.histogram("commit.refresh"),
            phase_index: reg.histogram("commit.index"),
            ground_rounds: reg.counter("ground.rounds"),
            ground_join_candidates: reg.counter("ground.join_candidates"),
            ground_index_probes: reg.counter("ground.index_probes"),
            ground_dedup_hits: reg.counter("ground.dedup_hits"),
            lfp_evaluations: reg.counter("lfp.evaluations"),
            lfp_clause_checks: reg.counter("lfp.clause_checks"),
            lfp_enqueues: reg.counter("lfp.enqueues"),
            lfp_revives: reg.counter("lfp.revives"),
            lfp_cone: reg.histogram("lfp.retraction_cone"),
            wal_recovered_records: reg.counter("wal.recovered_records"),
            wal_fallbacks: reg.counter("wal.fallbacks"),
            wal_torn_bytes: reg.counter("wal.torn_bytes"),
            par_steals: reg.counter("par.steals"),
            par_parks: reg.counter("par.parks"),
            par_aborts: reg.counter("par.aborts"),
            query: QueryObs {
                executions: reg.counter("query.executions"),
                answers: reg.counter("query.answers"),
                point_lookups: reg.counter("query.point_lookups"),
                scans: reg.counter("query.scans"),
                interrupts: reg.counter("query.interrupts"),
                obs: Some(obs.clone()),
            },
        }
    }
}

/// Query-path metric handles, carried by [`Answers`] (and snapshots, so
/// reader threads keep counting). [`Answers`] accumulates plain `u64`s
/// during enumeration and flushes on drop — zero atomics per answer.
#[derive(Clone, Default)]
pub(crate) struct QueryObs {
    executions: Counter,
    answers: Counter,
    point_lookups: Counter,
    scans: Counter,
    interrupts: Counter,
    /// For cold-path trip recording (dynamic counter + ring event);
    /// `None` on the detached [`crate::Solver`] shim path.
    obs: Option<Obs>,
}

impl std::fmt::Debug for QueryObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("QueryObs { .. }")
    }
}

/// The `guard.trips.<phase>.<cause>` name segment for a phase.
fn trip_phase_slug(phase: InterruptPhase) -> &'static str {
    match phase {
        InterruptPhase::Admission => "admission",
        InterruptPhase::Grounding => "grounding",
        InterruptPhase::ModelRefresh => "model_refresh",
        InterruptPhase::Query => "query",
    }
}

/// The `guard.trips.<phase>.<cause>` name segment for a cause.
fn trip_cause_slug(cause: InterruptCause) -> &'static str {
    match cause {
        InterruptCause::Cancelled => "cancelled",
        InterruptCause::DeadlineExceeded => "deadline_exceeded",
        InterruptCause::MemoryBudget => "memory_budget",
    }
}

/// Records a guard trip: bumps the dynamic `guard.trips.<phase>.<cause>`
/// counter and pushes a `guard.trip` ring event carrying the resource
/// readings. Cold path by construction (a trip aborts the operation),
/// so the registry lock and the `format!`s are fine here.
fn record_trip_in(obs: &Obs, phase: InterruptPhase, cause: InterruptCause, trip: &TripInfo) {
    if !obs.is_enabled() {
        return;
    }
    let name = format!(
        "guard.trips.{}.{}",
        trip_phase_slug(phase),
        trip_cause_slug(cause)
    );
    obs.registry().counter(&name).add(1);
    let mut detail = format!("phase={phase} cause={cause}");
    let readings = trip.render();
    if !readings.is_empty() {
        detail.push(' ');
        detail.push_str(&readings);
    }
    obs.tracer().event("guard.trip", Some(detail));
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// An empty session: no rules, no facts. Grow it with
    /// [`Session::add_rules`] and [`Session::assert_facts`].
    pub fn new() -> Session {
        Session::from_parts(TermStore::new(), Program::new())
            .expect("the empty program grounds trivially")
    }

    /// Parses `src` as the initial program.
    pub fn from_source(src: &str) -> Result<Session, SessionError> {
        let mut store = TermStore::new();
        let program = parse_program(&mut store, src)?;
        Session::from_parts(store, program)
    }

    /// Builds a session over an already-parsed program and its store.
    pub fn from_parts(store: TermStore, program: Program) -> Result<Session, SessionError> {
        Session::with_opts(store, program, GrounderOpts::default())
    }

    /// [`Session::from_parts`] with explicit grounding options. Only
    /// the clause budget and seed-round thread count apply: the session
    /// engine always grounds on the planned relevant path (the
    /// `mode`/`strategy` fields are for the batch [`crate::Solver`]).
    ///
    /// The seed program is gated by the static analyzer under the
    /// default [`LintConfig`] — see [`Session::with_opts_lints`] to
    /// open deliberately non-allowed programs (active-domain
    /// enumeration, floundering demos) under a permissive one.
    pub fn with_opts(
        store: TermStore,
        program: Program,
        opts: GrounderOpts,
    ) -> Result<Session, SessionError> {
        Session::with_opts_lints(store, program, opts, LintConfig::default())
    }

    /// [`Session::with_opts`] with an explicit lint configuration: the
    /// seed program (and every later rule batch) is analyzed under it,
    /// deny-level findings rejecting construction with
    /// [`SessionError::Rejected`] before any state exists.
    pub fn with_opts_lints(
        store: TermStore,
        program: Program,
        opts: GrounderOpts,
        lints: LintConfig,
    ) -> Result<Session, SessionError> {
        if !program.is_function_free(&store) {
            return Err(SessionError::NotFunctionFree);
        }
        let report = analyze_batch(
            &store,
            &program,
            0,
            &AnalyzerOpts::with_config(lints.clone()),
        );
        let errors: Vec<CommitError> = report
            .errors()
            .map(|d| CommitError::Unsafe(d.clone()))
            .collect();
        if !errors.is_empty() {
            return Err(SessionError::Rejected(CommitRejection { errors }));
        }
        let mut s = Session::with_opts_unchecked(store, program, opts)?;
        s.lint_config = lints;
        s.last_report = report;
        Ok(s)
    }

    /// The construction path that bypasses the analyzer: checkpoint
    /// restore (the program was gated when it was committed) and the
    /// lint-validated paths above.
    fn with_opts_unchecked(
        mut store: TermStore,
        program: Program,
        opts: GrounderOpts,
    ) -> Result<Session, SessionError> {
        if !program.is_function_free(&store) {
            return Err(SessionError::NotFunctionFree);
        }
        let grounder = IncrementalGrounder::new(&mut store, &program, opts)?;
        let gp = grounder.ground_program();
        let mut t_chain = IncrementalLfp::new(gp, NegMode::SatisfiedOutside);
        let mut u_chain = IncrementalLfp::new(gp, NegMode::SatisfiedOutside);
        let empty = BitSet::new(gp.atom_count());
        let model = well_founded_refresh(gp, &mut t_chain, &mut u_chain, &empty);
        let arities = arities_of(&program);
        let obs = Obs::new();
        let sobs = SessionObs::new(&obs);
        // Baselines are taken *after* seed grounding/refresh, so the
        // registry counts per-commit work only (the seed cost is
        // construction, not a commit).
        let base_gstats = grounder.stats();
        let base_t = t_chain.stats();
        let base_u = u_chain.stats();
        Ok(Session {
            store,
            program,
            grounder,
            t_chain,
            u_chain,
            model,
            empty,
            disabled: FxHashMap::default(),
            txn: None,
            epoch: 0,
            snapshot_cache: None,
            global_opts: GlobalOpts::default(),
            opts,
            arities,
            lint_config: LintConfig::default(),
            last_report: LintReport::default(),
            durable: None,
            poisoned: false,
            cancel: Arc::new(AtomicBool::new(false)),
            inflight: None,
            obs,
            sobs,
            base_gstats,
            base_t,
            base_u,
            base_par: pool_totals(),
        })
    }

    // ---- durable sessions --------------------------------------------

    /// Opens (creating if needed) a **durable** session rooted at
    /// `dir`: loads the newest valid checkpoint, replays the
    /// write-ahead log tail through the normal commit path, and keeps
    /// journaling every commit from here on. See the crate-level
    /// "Durability & recovery" docs.
    pub fn open(dir: impl AsRef<Path>) -> Result<Session, SessionError> {
        Session::open_with(dir, GrounderOpts::default(), DurableOpts::default())
    }

    /// [`Session::open`] with explicit grounding and durability options.
    pub fn open_with(
        dir: impl AsRef<Path>,
        opts: GrounderOpts,
        dopts: DurableOpts,
    ) -> Result<Session, SessionError> {
        Session::open_with_parts(dir, TermStore::new(), Program::new(), opts, dopts)
    }

    /// [`Session::open_with`] seeded with an initial program. The
    /// initial parts are used **only when the directory is fresh** (no
    /// checkpoint, no WAL records) — they become the epoch-0 state and
    /// are immediately checkpointed so they are durable. When the
    /// directory already holds state, that state wins and the parts
    /// are ignored.
    pub fn open_with_parts(
        dir: impl AsRef<Path>,
        store: TermStore,
        program: Program,
        opts: GrounderOpts,
        dopts: DurableOpts,
    ) -> Result<Session, SessionError> {
        let (mut log, recovered) = DurableLog::open(dir.as_ref(), dopts)?;
        let fresh = recovered.checkpoint.is_none() && recovered.records.is_empty();
        let mut session = match recovered.checkpoint {
            Some(payload) => {
                let mut store = TermStore::new();
                let image = decode_checkpoint(&mut store, &payload)?;
                let program = Program::from_clauses(image.clauses);
                // Restored state was gated when it was committed; the
                // analyzer must not be able to veto recovery.
                let mut s = Session::with_opts_unchecked(store, program, opts)?;
                s.epoch = image.epoch;
                s.disable_retracted(&image.retracted);
                s
            }
            None if fresh => Session::with_opts(store, program, opts)?,
            None => Session::with_opts(TermStore::new(), Program::new(), opts)?,
        };
        // Replay the WAL tail through the normal commit path. Records
        // at or below the checkpoint epoch are skipped — that makes
        // replay idempotent when a crash during checkpointing forces
        // the fallback generation to re-cover an older WAL.
        let mut replayed = 0usize;
        for payload in &recovered.records {
            let batch = decode_batch(&mut session.store, payload)?;
            if batch.epoch <= session.epoch {
                continue;
            }
            replayed += 1;
            session.epoch = batch.epoch - 1;
            let pending = Pending {
                rule_spans: vec![None; batch.rules.len()],
                rules: batch.rules,
                asserts: batch.asserts,
                retracts: batch.retracts,
            };
            // Replay is never governed: recovery must be deterministic
            // and always reach the journaled epoch.
            session.apply_inner(pending, &Guard::none())?;
        }
        // From here on the log reports its I/O into this session's
        // registry; what recovery itself found is recorded once.
        log.set_obs(WalObs::register(session.obs.registry()));
        session
            .sobs
            .wal_recovered_records
            .add(recovered.records.len() as u64);
        if recovered.fell_back {
            session.sobs.wal_fallbacks.add(1);
        }
        session.sobs.wal_torn_bytes.add(recovered.torn_bytes);
        if recovered.fell_back || recovered.torn_bytes > 0 {
            session.obs.tracer().event(
                "wal.recovery",
                Some(format!(
                    "records={} fell_back={} torn_bytes={}",
                    recovered.records.len(),
                    recovered.fell_back,
                    recovered.torn_bytes
                )),
            );
        }
        session.durable = Some(log);
        if fresh {
            // Make the seed program durable before the first commit.
            session.checkpoint()?;
        } else if replayed >= REPLAY_CHECKPOINT_THRESHOLD {
            // A long WAL tail was just replayed through the full
            // commit pipeline. Fold it into a fresh checkpoint now so
            // the *next* reopen decodes one image instead of
            // re-grounding the tail again — otherwise every reopen
            // pays the same replay the last one did. Failure is
            // swallowed exactly like an auto-checkpoint: the state is
            // already durable (checkpoint + WAL), only the next
            // reopen's speed is at stake.
            let _ = session.checkpoint();
        }
        Ok(session)
    }

    /// Whether this session journals its commits to a durable log.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// The durable directory, when the session was opened with one.
    pub fn durable_dir(&self) -> Option<&Path> {
        self.durable.as_ref().map(DurableLog::dir)
    }

    /// Takes an explicit checkpoint: atomically writes a snapshot of
    /// the committed state as the next checkpoint generation and
    /// rotates the write-ahead log. Errors for non-durable sessions.
    /// (Checkpoints are also taken automatically once the active WAL
    /// passes the thresholds in [`DurableOpts`]; those failures are
    /// swallowed and retried at the next commit — this explicit call
    /// is the one that reports them.)
    pub fn checkpoint(&mut self) -> Result<(), SessionError> {
        if self.is_poisoned() {
            return Err(SessionError::Poisoned);
        }
        if self.durable.is_none() {
            return Err(SessionError::Durable(
                "session has no durable directory (use Session::open)".into(),
            ));
        }
        let mut retracted: Vec<(u32, Atom)> = self
            .disabled
            .iter()
            .map(|(ci, a)| (*ci, a.clone()))
            .collect();
        retracted.sort_by_key(|(ci, _)| *ci);
        let image = CheckpointImage {
            epoch: self.epoch,
            clauses: self.program.clauses().to_vec(),
            retracted: retracted.into_iter().map(|(_, a)| a).collect(),
        };
        let payload = encode_checkpoint(&self.store, &image);
        let log = self.durable.as_mut().expect("checked above");
        log.install_checkpoint(&payload)?;
        Ok(())
    }

    /// Restores a poisoned session to its last committed state by
    /// rebuilding the engine from the source program (and discards any
    /// open transaction). A no-op on healthy sessions. After a
    /// successful recover the session is writable again.
    pub fn recover(&mut self) -> Result<(), SessionError> {
        self.txn = None;
        // A commit that never reported back (a panic escaped mid-apply)
        // left its in-flight record behind: unwind it exactly like a
        // failed commit — truncate the WAL record so it can never
        // replay, truncate the program, rebuild.
        if let Some(inf) = self.inflight.take() {
            if let (Some(m), Some(log)) = (inf.wal_mark, self.durable.as_mut()) {
                let _ = log.truncate_to(m);
            }
            self.program.truncate(inf.program_len);
            self.poisoned = true;
        }
        if self.poisoned {
            self.rebuild_state()?;
            self.poisoned = false;
        }
        Ok(())
    }

    /// Overrides the global-tree budgets used by
    /// [`Engine::GlobalTree`]-prepared queries.
    pub fn with_global_opts(mut self, opts: GlobalOpts) -> Self {
        self.global_opts = opts;
        self
    }

    // ---- static analysis ---------------------------------------------

    /// Replaces the lint configuration gating every subsequent rule
    /// batch (builder form; see [`Session::set_lint_config`]).
    pub fn with_lint_config(mut self, lints: LintConfig) -> Self {
        self.lint_config = lints;
        self
    }

    /// Replaces the lint configuration gating every subsequent rule
    /// batch. Already-committed state is unaffected.
    pub fn set_lint_config(&mut self, lints: LintConfig) {
        self.lint_config = lints;
    }

    /// The active lint configuration.
    pub fn lint_config(&self) -> &LintConfig {
        &self.lint_config
    }

    /// The report of the most recent analyzer run — the warn-level
    /// findings of the last committed rule batch (or of the seed
    /// program, before any commit). Deny-level findings never land
    /// here: they reject the batch as [`SessionError::Rejected`].
    pub fn last_lint_report(&self) -> &LintReport {
        &self.last_report
    }

    /// Analyzes the full committed program — all passes, including the
    /// stratification and reachability diagnostics that single-batch
    /// commit validation skips — under the session's [`LintConfig`],
    /// feeding the grounder's fact cardinalities and active domain
    /// into the cost lints.
    pub fn analyze(&self) -> LintReport {
        let gp = self.grounder.ground_program();
        let aopts = AnalyzerOpts {
            config: self.lint_config.clone(),
            known_arities: FxHashMap::default(),
            cardinalities: gp.pred_cardinalities(),
            domain_hint: self.grounder.universe().len(),
        };
        analyze_with_ground(&self.store, &self.program, Some(gp), &aopts)
    }

    /// The term store (parsing interns into it through the session's
    /// `&mut self` methods).
    pub fn store(&self) -> &TermStore {
        &self.store
    }

    /// Mutable access to the term store, for callers that intern terms
    /// out-of-band — e.g. a server decoding wire-format update batches
    /// directly into the session's arena before [`Session::commit_group`].
    /// The arena is append-only and hash-consed, so interning extra
    /// terms can never invalidate existing ids or session state.
    pub fn store_mut(&mut self) -> &mut TermStore {
        &mut self.store
    }

    /// The source program: initial clauses, added rules, and every
    /// asserted fact (retracted facts stay listed; retraction is a
    /// model-level switch).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The (finalized) ground program.
    pub fn ground_program(&self) -> &GroundProgram {
        self.grounder.ground_program()
    }

    /// The committed well-founded model.
    pub fn model(&self) -> &Interp {
        &self.model
    }

    /// Number of commits applied so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether a transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// Whether a failed commit has poisoned the session (reads still
    /// serve the last consistent model), or a panic escaped mid-commit
    /// and left an in-flight record behind (reads may be torn until
    /// [`Session::recover`] unwinds it).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned || self.inflight.is_some()
    }

    // ---- transactional updates -------------------------------------

    /// Opens a transaction: subsequent updates buffer until
    /// [`Session::commit`] (or vanish on [`Session::rollback`]).
    pub fn begin(&mut self) -> Result<(), SessionError> {
        if self.is_poisoned() {
            return Err(SessionError::Poisoned);
        }
        if self.txn.is_some() {
            return Err(SessionError::NestedTransaction);
        }
        self.txn = Some(Pending::default());
        Ok(())
    }

    /// Discards the open transaction (no-op when none is open). Terms
    /// parsed for the discarded batch stay interned; nothing else
    /// changes. If a previous commit left the session poisoned, this
    /// also attempts the in-memory rebuild that restores the last
    /// committed state, so a rollback leaves the session writable
    /// whenever the state is recoverable (use [`Session::recover`] to
    /// observe a rebuild failure).
    pub fn rollback(&mut self) {
        let _ = self.recover();
    }

    /// Asserts ground facts, parsed from `src` (e.g. `"e(a, b). e(b,
    /// c)."`). Returns how many were queued. Auto-commits unless a
    /// transaction is open.
    pub fn assert_facts(&mut self, src: &str) -> Result<usize, SessionError> {
        let atoms = self.parse_facts(src)?;
        self.assert_fact_atoms(atoms)
    }

    /// Asserts already-built ground fact atoms.
    pub fn assert_fact_atoms(&mut self, atoms: Vec<Atom>) -> Result<usize, SessionError> {
        self.check_writable()?;
        for atom in &atoms {
            self.check_fact(atom)?;
        }
        let n = atoms.len();
        self.buffer(|p| p.asserts.extend(atoms))?;
        Ok(n)
    }

    /// Retracts ground facts, parsed from `src`. Facts never asserted
    /// (or already retracted) are silently skipped at commit. Returns
    /// how many were queued.
    pub fn retract_facts(&mut self, src: &str) -> Result<usize, SessionError> {
        let atoms = self.parse_facts(src)?;
        self.retract_fact_atoms(atoms)
    }

    /// Retracts already-built ground fact atoms.
    pub fn retract_fact_atoms(&mut self, atoms: Vec<Atom>) -> Result<usize, SessionError> {
        self.check_writable()?;
        for atom in &atoms {
            self.check_fact(atom)?;
        }
        let n = atoms.len();
        self.buffer(|p| p.retracts.extend(atoms))?;
        Ok(n)
    }

    /// Adds rules (any clauses, including facts), parsed from `src`.
    /// Returns how many were queued. Auto-commits unless a transaction
    /// is open.
    pub fn add_rules(&mut self, src: &str) -> Result<usize, SessionError> {
        if self.is_poisoned() {
            return Err(SessionError::Poisoned);
        }
        let batch = parse_program(&mut self.store, src)?;
        let spans = batch.spans().to_vec();
        self.add_rule_clauses_spanned(batch.clauses().to_vec(), spans)
    }

    /// Adds already-built rule clauses.
    pub fn add_rule_clauses(&mut self, clauses: Vec<Clause>) -> Result<usize, SessionError> {
        let spans = vec![None; clauses.len()];
        self.add_rule_clauses_spanned(clauses, spans)
    }

    fn add_rule_clauses_spanned(
        &mut self,
        clauses: Vec<Clause>,
        spans: Vec<Option<Span>>,
    ) -> Result<usize, SessionError> {
        self.check_writable()?;
        for c in &clauses {
            if !clause_function_free(&self.store, c) {
                return Err(SessionError::NotFunctionFree);
            }
        }
        let n = clauses.len();
        self.buffer(|p| {
            p.rules.extend(clauses);
            p.rule_spans.extend(spans);
        })?;
        Ok(n)
    }

    /// Applies the open transaction: delta-grounds the update through
    /// the persistent grounder and refreshes the model on the warm
    /// chains. Within the batch, rules apply before asserts, asserts
    /// before retracts. Without an open transaction this is a no-op
    /// (single updates auto-commit as they are issued).
    pub fn commit(&mut self) -> Result<CommitStats, SessionError> {
        if self.is_poisoned() {
            return Err(SessionError::Poisoned);
        }
        match self.txn.take() {
            Some(pending) => self.apply(pending),
            None => Ok(CommitStats::default()),
        }
    }

    /// [`Session::commit`] under resource governance: the commit is
    /// admission-checked against `opts` *before* the WAL sees a
    /// record, and the grounding and model-refresh loops check the
    /// deadline, the cancel flag and the memory budget every
    /// [`crate::govern::TICK_INTERVAL`] work units. An interrupted
    /// commit returns [`SessionError::Interrupted`] after unwinding
    /// completely — WAL record truncated, engine rebuilt at the
    /// previous epoch — so a timeout behaves exactly like a
    /// rolled-back transaction. The session's cancel flag is cleared
    /// when the commit starts; a [`Session::interrupt_handle`]
    /// cancellation therefore targets the *running* operation, and a
    /// subsequent commit starts fresh.
    pub fn commit_with(&mut self, opts: &CommitOpts) -> Result<CommitStats, SessionError> {
        if self.is_poisoned() {
            return Err(SessionError::Poisoned);
        }
        match self.txn.take() {
            Some(pending) => {
                self.cancel.store(false, Ordering::SeqCst);
                let guard = guard_for(
                    self.cancel.clone(),
                    opts.deadline,
                    opts.max_memory_bytes,
                    opts.fuel,
                    opts.panic_on_fuel,
                );
                self.apply_with_guard(pending, &guard, Some(opts))
            }
            None => Ok(CommitStats::default()),
        }
    }

    /// Commits a run of queued batches as one **group**: every batch is
    /// journaled to the WAL *without* an fsync, applied in memory, and
    /// the whole run is made durable by a single covering fsync at the
    /// end — the group-commit write path a serving front end drains its
    /// commit queue through. Returns one result per batch, in order.
    ///
    /// Semantics per batch are identical to [`Session::commit_with`]:
    /// each batch is validated, admission-checked and governed by its
    /// own [`CommitOpts`] (so one slow batch times out as a rolled-back
    /// transaction — its WAL record is truncated off the tail — while
    /// the rest of the group commits), and each successful batch bumps
    /// the epoch. The durability contract is **fsync before ack**, not
    /// fsync before apply: callers must not acknowledge any batch until
    /// this method returns `Ok`, because a crash before the covering
    /// fsync tears unsynced records off the recovered WAL. An `Err`
    /// from the covering fsync therefore invalidates every `Ok` entry
    /// in the (discarded) result vector — and, because the batches are
    /// already applied in memory while their durability is unknown, it
    /// **poisons the session**: the in-memory state has diverged from
    /// the WAL, so further writes are refused until
    /// [`Session::recover`] rebuilds from the durable state.
    ///
    /// Fails fast — before touching anything — if the session is
    /// poisoned or a buffered transaction is open.
    pub fn commit_group(
        &mut self,
        batches: Vec<(UpdateBatch, CommitOpts)>,
    ) -> Result<Vec<Result<CommitStats, SessionError>>, SessionError> {
        if self.is_poisoned() {
            return Err(SessionError::Poisoned);
        }
        if self.txn.is_some() {
            return Err(SessionError::NestedTransaction);
        }
        let mut results = Vec::with_capacity(batches.len());
        let mut journaled = 0u64;
        for (batch, opts) in batches {
            if self.is_poisoned() {
                // An earlier batch failed *and* its rollback rebuild
                // failed; nothing further can apply.
                results.push(Err(SessionError::Poisoned));
                continue;
            }
            let empty = batch.is_empty();
            let r = self.group_one(batch, &opts);
            if r.is_ok() && !empty && self.durable.is_some() {
                journaled += 1;
            }
            results.push(r);
        }
        if journaled > 0 {
            if let Some(log) = &mut self.durable {
                if let Err(e) = log.sync_group(journaled) {
                    // The group is applied in memory but not known
                    // durable: acks must not go out, and the session's
                    // state no longer matches its WAL. Session-fatal.
                    self.poisoned = true;
                    return Err(e.into());
                }
            }
            // Only after the covering fsync may the WAL rotate.
            self.maybe_checkpoint();
        }
        Ok(results)
    }

    /// One batch of a group: the same up-front shape checks the
    /// buffered update surface performs, then the deferred-journal
    /// commit pipeline under the batch's own guard.
    fn group_one(
        &mut self,
        batch: UpdateBatch,
        opts: &CommitOpts,
    ) -> Result<CommitStats, SessionError> {
        for c in &batch.rules {
            if !clause_function_free(&self.store, c) {
                return Err(SessionError::NotFunctionFree);
            }
        }
        for atom in batch.asserts.iter().chain(batch.retracts.iter()) {
            self.check_fact(atom)?;
        }
        let pending = Pending {
            rule_spans: vec![None; batch.rules.len()],
            rules: batch.rules,
            asserts: batch.asserts,
            retracts: batch.retracts,
        };
        self.cancel.store(false, Ordering::SeqCst);
        let guard = guard_for(
            self.cancel.clone(),
            opts.deadline,
            opts.max_memory_bytes,
            opts.fuel,
            opts.panic_on_fuel,
        );
        self.apply_with_guard_mode(pending, &guard, Some(opts), JournalMode::Deferred)
    }

    /// A `Send + Sync` handle that cancels the session's *currently
    /// running* governed operation ([`Session::commit_with`],
    /// [`Session::query_governed`], …) from another thread. Each
    /// governed operation clears the flag on entry, so a cancellation
    /// is consumed by the operation it lands on (or by the next one to
    /// start) and never lingers.
    pub fn interrupt_handle(&self) -> InterruptHandle {
        InterruptHandle::from_flag(self.cancel.clone())
    }

    fn check_writable(&self) -> Result<(), SessionError> {
        if self.is_poisoned() {
            return Err(SessionError::Poisoned);
        }
        Ok(())
    }

    /// Buffers an update into the open transaction, or applies it
    /// immediately (auto-commit) when none is open.
    fn buffer(&mut self, add: impl FnOnce(&mut Pending)) -> Result<(), SessionError> {
        match &mut self.txn {
            Some(p) => {
                add(p);
                Ok(())
            }
            None => {
                let mut p = Pending::default();
                add(&mut p);
                self.apply(p).map(|_| ())
            }
        }
    }

    fn parse_facts(&mut self, src: &str) -> Result<Vec<Atom>, SessionError> {
        if self.is_poisoned() {
            return Err(SessionError::Poisoned);
        }
        let batch = parse_program(&mut self.store, src)?;
        let mut atoms = Vec::with_capacity(batch.len());
        for c in batch.clauses() {
            if !c.is_fact() {
                return Err(SessionError::NotAFact(c.display(&self.store)));
            }
            atoms.push(c.head.clone());
        }
        Ok(atoms)
    }

    fn check_fact(&self, atom: &Atom) -> Result<(), SessionError> {
        if !atom.is_ground(&self.store) {
            return Err(SessionError::NotAFact(atom.display(&self.store)));
        }
        for &arg in atom.args.iter() {
            if matches!(self.store.term(arg), Term::App(_, args) if !args.is_empty()) {
                return Err(SessionError::NotFunctionFree);
            }
        }
        Ok(())
    }

    /// The commit pipeline: **validate → journal → apply**.
    ///
    /// 1. The batch is validated up front ([`CommitError`]); a
    ///    rejection mutates nothing — no WAL record, no program edit.
    /// 2. For durable sessions the batch is encoded as one WAL record
    ///    and fsync'd *before* any in-memory state changes (the
    ///    write-ahead contract).
    /// 3. The in-memory apply runs. If it fails (clause budget), the
    ///    just-written record is truncated off the WAL so it can never
    ///    replay, and the in-memory state is restored to the last
    ///    committed epoch by a rebuild — the failed commit degrades to
    ///    a rolled-back transaction. Only a rebuild failure poisons.
    fn apply(&mut self, pending: Pending) -> Result<CommitStats, SessionError> {
        self.apply_with_guard(pending, &Guard::none(), None)
    }

    /// The pipeline behind [`Session::commit`] (ungoverned guard, no
    /// opts) and [`Session::commit_with`] (governed guard, admission
    /// control against `opts`).
    fn apply_with_guard(
        &mut self,
        pending: Pending,
        guard: &Guard,
        opts: Option<&CommitOpts>,
    ) -> Result<CommitStats, SessionError> {
        self.apply_with_guard_mode(pending, guard, opts, JournalMode::Immediate)
    }

    fn apply_with_guard_mode(
        &mut self,
        pending: Pending,
        guard: &Guard,
        opts: Option<&CommitOpts>,
        mode: JournalMode,
    ) -> Result<CommitStats, SessionError> {
        if pending.is_empty() {
            return Ok(CommitStats::default());
        }
        let t_total = Instant::now();
        // Validation (including static analysis of the rule batch) and
        // admission control run BEFORE anything touches the WAL: a
        // rejected batch leaves no record that could ever replay.
        self.last_report = {
            let _s = self
                .obs
                .span("commit.validate", Some(&self.sobs.phase_validate));
            self.validate(&pending)?
        };
        if let Some(opts) = opts {
            let _s = self
                .obs
                .span("commit.admission", Some(&self.sobs.phase_admission));
            self.admit(&pending, opts, guard)?;
        }
        let mut mark = None;
        if self.durable.is_some() {
            let _s = self
                .obs
                .span("commit.journal", Some(&self.sobs.phase_journal));
            let batch = Batch {
                epoch: self.epoch + 1,
                rules: pending.rules.clone(),
                asserts: pending.asserts.clone(),
                retracts: pending.retracts.clone(),
            };
            let payload = encode_batch(&self.store, &batch);
            if let Some(log) = &mut self.durable {
                let m = log.wal_len();
                // Failure here (out of disk, injected crash) leaves
                // memory untouched: the commit degrades to a
                // rolled-back batch.
                match mode {
                    JournalMode::Immediate => log.append(&payload)?,
                    JournalMode::Deferred => log.append_unsynced(&payload)?,
                }
                mark = Some(m);
            }
        }
        // From here until apply_inner reports back, a panic escaping
        // mid-apply leaves this record for Session::recover to unwind.
        self.inflight = Some(InflightCommit {
            program_len: self.program.len(),
            wal_mark: mark,
        });
        let r = self.apply_inner(pending, guard);
        self.inflight = None;
        match r {
            Ok(stats) => {
                // Total recorded before the (amortized, swallowed)
                // auto-checkpoint so the phase histograms sum to it.
                let dur = t_total.elapsed().as_nanos() as u64;
                self.sobs.commit_total.record(dur);
                self.obs.tracer().span_event("commit.total", t_total, dur);
                // Deferred records are not yet fsync'd; the group
                // driver checkpoints after its covering sync instead
                // (a checkpoint rotation must never strand them).
                if mode == JournalMode::Immediate {
                    self.maybe_checkpoint();
                }
                Ok(stats)
            }
            Err(e) => {
                if let Some(m) = mark {
                    if let Some(log) = &mut self.durable {
                        let _ = log.truncate_to(m);
                    }
                }
                Err(e)
            }
        }
    }

    /// Pre-commit admission control: predicts the batch's ground
    /// growth from the analyzer's instantiation estimates (rules) plus
    /// the literal fact count (asserts) and rejects — before WAL
    /// journaling, before any mutation — when the prediction exceeds a
    /// [`CommitOpts`] cap. The rejection surfaces as
    /// [`SessionError::Interrupted`] in the `Admission` phase; the
    /// budgets are enforced again (on actual usage) during grounding.
    fn admit(
        &self,
        pending: &Pending,
        opts: &CommitOpts,
        guard: &Guard,
    ) -> Result<(), SessionError> {
        if opts.max_clauses.is_none() && opts.max_memory_bytes.is_none() {
            return Ok(());
        }
        let predicted = {
            let mut rules = Program::new();
            for c in &pending.rules {
                rules.push(c.clone());
            }
            let gp = self.grounder.ground_program();
            let aopts = AnalyzerOpts {
                config: self.lint_config.clone(),
                known_arities: self.arities.clone(),
                cardinalities: gp.pred_cardinalities(),
                domain_hint: self.grounder.universe().len(),
            };
            let est = estimate_batch_instances(&self.store, &rules, 0, &aopts);
            usize::try_from(est)
                .unwrap_or(usize::MAX)
                .saturating_add(pending.asserts.len())
        };
        if let Some(max) = opts.max_clauses {
            let total = self
                .ground_program()
                .clause_count()
                .saturating_add(predicted);
            if total > max {
                return Err(self.interrupted(
                    InterruptPhase::Admission,
                    InterruptCause::MemoryBudget,
                    guard,
                ));
            }
        }
        if let Some(max) = opts.max_memory_bytes {
            let used = self.store.approx_bytes() + self.grounder.approx_bytes();
            // ≈ bytes per predicted ground clause: one CSR row (head +
            // bounds) plus a few body ids plus fact-index postings.
            const BYTES_PER_CLAUSE: usize = 48;
            let total = used.saturating_add(predicted.saturating_mul(BYTES_PER_CLAUSE));
            if total > max {
                return Err(self.interrupted(
                    InterruptPhase::Admission,
                    InterruptCause::MemoryBudget,
                    guard,
                ));
            }
        }
        Ok(())
    }

    /// Builds an enriched [`SessionError::Interrupted`]: captures the
    /// guard's fuel/deadline readings plus the engine's byte count at
    /// trip time (*before* rollback shrinks it), and records the trip
    /// as a dynamic counter + ring event.
    fn interrupted(
        &self,
        phase: InterruptPhase,
        cause: InterruptCause,
        guard: &Guard,
    ) -> SessionError {
        let mut trip = TripInfo::from_guard(guard);
        trip.memory_used_bytes = Some(self.store.approx_bytes() + self.grounder.approx_bytes());
        record_trip_in(&self.obs, phase, cause, &trip);
        SessionError::Interrupted { phase, cause, trip }
    }

    /// Maps a grounding failure out of steps 1–2 of the apply,
    /// enriching guard trips with [`TripInfo`] forensics.
    fn grounding_error(&self, e: GroundingError, guard: &Guard) -> SessionError {
        match e {
            GroundingError::Interrupted(cause) => {
                self.interrupted(InterruptPhase::Grounding, cause, guard)
            }
            other => other.into(),
        }
    }

    /// The in-memory apply (also the WAL replay path — it must stay
    /// deterministic given the same batch over the same state).
    fn apply_inner(
        &mut self,
        pending: Pending,
        guard: &Guard,
    ) -> Result<CommitStats, SessionError> {
        if pending.is_empty() {
            return Ok(CommitStats::default());
        }
        // The grounder holds the guard for the duration of its fallible
        // steps (1 and 2); it is cleared before model maintenance so a
        // later ungoverned commit never inherits a stale deadline.
        self.grounder.set_guard(guard.clone());
        let mut stats = CommitStats::default();
        // Grounding vs. index-finalize attribution: steps 1–3 are timed
        // as one wall interval; the grounder's own finalize_ns delta is
        // then split out as the `commit.index` phase.
        let gstats_before = self.grounder.stats();
        let t_ground = Instant::now();
        let atoms_before = self.ground_program().atom_count();
        let clauses_before = self.ground_program().clause_count();
        let program_len_before = self.program.len();
        // Steps 2–3 mutate the retract map before the (fallible) model
        // refresh; rollback rebuilds from it, so keep the original.
        let disabled_before = self.disabled.clone();

        // Predicate arities this batch introduces (recorded only after
        // the fallible grounding steps succeed).
        let mut new_arities: Vec<(Symbol, usize)> = Vec::new();
        for c in &pending.rules {
            new_arities.push((c.head.pred, c.head.args.len()));
            for l in &c.body {
                new_arities.push((l.atom.pred, l.atom.args.len()));
            }
        }
        for a in &pending.asserts {
            new_arities.push((a.pred, a.args.len()));
        }

        // 1. Rules (they may reference facts asserted in the same batch
        //    only through the later semi-naive rounds, which is fine:
        //    asserts run next and cascade through the new plans).
        if !pending.rules.is_empty() {
            let first_new = self.program.len();
            for c in pending.rules {
                self.program.push(c);
                stats.rules_added += 1;
            }
            if let Err(e) = self
                .grounder
                .add_rules(&mut self.store, &self.program, first_new)
            {
                let err = self.grounding_error(e, guard);
                return Err(self.restore_after_failed_commit(program_len_before, err));
            }
        }

        // 2. Asserts: queue re-enables of retracted facts, ground the
        //    new ones. `self.disabled` is not touched until grounding
        //    has succeeded, so a failed commit can restore from it.
        let mut enable: Vec<u32> = Vec::new();
        let mut new_facts: Vec<Atom> = Vec::new();
        for atom in pending.asserts {
            let existing = self
                .ground_program()
                .lookup_atom(&atom)
                .and_then(|id| self.grounder.fact_clause_of(id));
            match existing {
                Some(ci) => {
                    if self.disabled.contains_key(&ci) && !enable.contains(&ci) {
                        enable.push(ci);
                        stats.facts_reenabled += 1;
                    }
                }
                None => new_facts.push(atom),
            }
        }
        if !new_facts.is_empty() {
            for atom in &new_facts {
                self.program.push(Clause::fact(atom.clone()));
            }
            stats.facts_asserted = new_facts.len();
            if let Err(e) = self.grounder.extend(&mut self.store, &new_facts) {
                let err = self.grounding_error(e, guard);
                return Err(self.restore_after_failed_commit(program_len_before, err));
            }
        }
        // Past the last fallible step: commit the queued re-enables.
        for &ci in &enable {
            self.disabled.remove(&ci);
        }

        // 3. Retracts: switch fact clauses off. A retract that lands on
        //    a clause this same commit queued for re-enabling cancels
        //    the pending enable instead (retracts apply last): the
        //    chains never saw the enable, so pushing a disable too
        //    would desync them from `self.disabled`.
        let mut disable: Vec<u32> = Vec::new();
        for atom in pending.retracts {
            let Some(ci) = self
                .ground_program()
                .lookup_atom(&atom)
                .and_then(|id| self.grounder.fact_clause_of(id))
            else {
                continue; // never asserted — nothing to retract
            };
            if let std::collections::hash_map::Entry::Vacant(slot) = self.disabled.entry(ci) {
                slot.insert(atom);
                if let Some(pos) = enable.iter().position(|&e| e == ci) {
                    enable.swap_remove(pos);
                } else {
                    disable.push(ci);
                }
                stats.facts_retracted += 1;
            }
        }

        // Phases `commit.ground` / `commit.index` are complete (only
        // completed phases are recorded — an interrupted commit shows
        // up as a `guard.trip` event, not a skewed histogram).
        let ground_wall = t_ground.elapsed().as_nanos() as u64;
        let fin_delta = self
            .grounder
            .stats()
            .finalize_ns
            .saturating_sub(gstats_before.finalize_ns);
        self.sobs
            .phase_ground
            .record(ground_wall.saturating_sub(fin_delta));
        self.sobs.phase_index.record(fin_delta);
        self.obs.tracer().span_event(
            "commit.ground",
            t_ground,
            ground_wall.saturating_sub(fin_delta),
        );
        self.obs
            .tracer()
            .span_event("commit.index", t_ground, fin_delta);

        // 4. Model maintenance: grow the chains over the appended
        //    atoms/clauses, flip the switched clauses, re-run the
        //    alternating refresh from the warm state.
        self.grounder.set_guard(Guard::none());
        let t_refresh = Instant::now();
        let gp = self.grounder.ground_program();
        self.t_chain.grow(gp);
        self.u_chain.grow(gp);
        self.empty.grow(gp.atom_count());
        if !disable.is_empty() || !enable.is_empty() {
            self.t_chain.set_clauses_enabled(gp, &disable, &enable);
            self.u_chain.set_clauses_enabled(gp, &disable, &enable);
        }
        match well_founded_refresh_governed(
            gp,
            &mut self.t_chain,
            &mut self.u_chain,
            &self.empty,
            guard,
        ) {
            Ok(model) => self.model = model,
            Err(cause) => {
                // The interrupted chains re-prime on next use, but the
                // enable/disable bookkeeping above is already half
                // applied — unwind through the full rollback path.
                self.disabled = disabled_before;
                let err = self.interrupted(InterruptPhase::ModelRefresh, cause, guard);
                return Err(self.restore_after_failed_commit(program_len_before, err));
            }
        }
        let refresh_ns = t_refresh.elapsed().as_nanos() as u64;
        self.sobs.phase_refresh.record(refresh_ns);
        self.obs
            .tracer()
            .span_event("commit.refresh", t_refresh, refresh_ns);

        stats.new_atoms = gp.atom_count() - atoms_before;
        stats.new_clauses = gp.clause_count() - clauses_before;
        for (sym, arity) in new_arities {
            self.arities.entry(sym).or_insert(arity);
        }
        self.epoch += 1;
        self.snapshot_cache = None;
        self.sobs.commits.add(1);
        self.sobs.rules_added.add(stats.rules_added as u64);
        self.sobs.facts_asserted.add(stats.facts_asserted as u64);
        self.sobs.facts_reenabled.add(stats.facts_reenabled as u64);
        self.sobs.facts_retracted.add(stats.facts_retracted as u64);
        self.sobs.new_atoms.add(stats.new_atoms as u64);
        self.sobs.new_clauses.add(stats.new_clauses as u64);
        self.flush_subsystem_stats();
        Ok(stats)
    }

    /// Flushes this commit's deltas of the subsystems' lifetime stat
    /// counters (grounder, fixpoint chains, scheduler) into the
    /// registry, and advances the baselines.
    fn flush_subsystem_stats(&mut self) {
        let g = self.grounder.stats();
        let dg = g.delta_since(&self.base_gstats);
        self.base_gstats = g;
        self.sobs.ground_rounds.add(u64::from(dg.rounds));
        self.sobs.ground_join_candidates.add(dg.join_candidates);
        self.sobs.ground_index_probes.add(dg.index_probes);
        self.sobs.ground_dedup_hits.add(dg.dedup_hits);

        let t = self.t_chain.stats();
        let u = self.u_chain.stats();
        let dt = t.delta_since(&self.base_t);
        let du = u.delta_since(&self.base_u);
        self.base_t = t;
        self.base_u = u;
        self.sobs
            .lfp_evaluations
            .add(dt.evaluations + du.evaluations);
        self.sobs
            .lfp_clause_checks
            .add(dt.clause_checks + du.clause_checks);
        self.sobs.lfp_enqueues.add(dt.enqueues + du.enqueues);
        self.sobs.lfp_revives.add(dt.revives + du.revives);
        let cone = dt.retraction_cone + du.retraction_cone;
        if cone > 0 {
            self.sobs.lfp_cone.record(cone);
        }

        // The worker pool is process-wide, so only the delta since this
        // session's last flush is attributable here.
        let p = pool_totals();
        self.sobs
            .par_steals
            .add(p.steals.saturating_sub(self.base_par.steals));
        self.sobs
            .par_parks
            .add(p.parks.saturating_sub(self.base_par.parks));
        self.sobs
            .par_aborts
            .add(p.aborts.saturating_sub(self.base_par.aborts));
        self.base_par = p;
    }

    /// Up-front batch validation (see [`CommitError`] for the policy).
    /// Runs before the WAL append and before any in-memory mutation,
    /// and collects **every** violation of the batch — the structural
    /// checks and the static analyzer's deny-level findings — into one
    /// [`CommitRejection`]. On success, returns the analyzer's
    /// warn-level report.
    fn validate(&self, pending: &Pending) -> Result<LintReport, CommitRejection> {
        let mut errors: Vec<CommitError> = Vec::new();
        // Arities introduced earlier in this same batch (a rule may
        // define a predicate an assert then uses).
        let mut batch: FxHashMap<Symbol, usize> = FxHashMap::default();
        for c in &pending.rules {
            if !clause_function_free(&self.store, c) {
                errors.push(CommitError::FunctionSymbol(c.display(&self.store)));
            }
            self.check_arity(&mut batch, &c.head, true, &mut errors);
            for l in &c.body {
                self.check_arity(&mut batch, &l.atom, true, &mut errors);
            }
        }
        for atom in &pending.asserts {
            if let Err(e) = self.check_ground_fact(atom) {
                errors.push(e);
            }
            self.check_arity(&mut batch, atom, true, &mut errors);
        }
        for atom in &pending.retracts {
            if let Err(e) = self.check_ground_fact(atom) {
                errors.push(e);
            }
            // A retract of an unknown predicate is a silent no-op and
            // does not pin the predicate's arity.
            self.check_arity(&mut batch, atom, false, &mut errors);
        }

        // Static analysis of the rule batch. Fact-only batches skip it
        // entirely (the bulk-load path stays one cheap loop), and the
        // arity lint is muted: the structural ArityMismatch above
        // already reports conflicts with typed expected/found fields.
        let mut report = LintReport::default();
        if !pending.rules.is_empty() && !self.lint_config.all_allowed(&Lint::ALL) {
            let mut rules = Program::new();
            for (i, c) in pending.rules.iter().enumerate() {
                rules.push_spanned(c.clone(), pending.rule_spans.get(i).copied().flatten());
            }
            let gp = self.grounder.ground_program();
            let aopts = AnalyzerOpts {
                config: self
                    .lint_config
                    .clone()
                    .set(Lint::ArityConflict, LintLevel::Allow),
                known_arities: self.arities.clone(),
                cardinalities: gp.pred_cardinalities(),
                domain_hint: self.grounder.universe().len(),
            };
            report = analyze_batch(&self.store, &rules, 0, &aopts);
            errors.extend(report.errors().map(|d| CommitError::Unsafe(d.clone())));
        }

        if errors.is_empty() {
            Ok(report)
        } else {
            Err(CommitRejection { errors })
        }
    }

    /// Checks one atom's arity against the committed and in-batch
    /// arity maps, appending a violation to `errors` on mismatch; when
    /// `define` is set, an unknown predicate is recorded at this atom's
    /// arity.
    fn check_arity(
        &self,
        batch: &mut FxHashMap<Symbol, usize>,
        atom: &Atom,
        define: bool,
        errors: &mut Vec<CommitError>,
    ) {
        let found = atom.args.len();
        let known = self
            .arities
            .get(&atom.pred)
            .or_else(|| batch.get(&atom.pred))
            .copied();
        match known {
            Some(expected) if expected != found => errors.push(CommitError::ArityMismatch {
                pred: self.store.symbol_name(atom.pred).to_string(),
                expected,
                found,
            }),
            Some(_) => {}
            None => {
                if define {
                    batch.insert(atom.pred, found);
                }
            }
        }
    }

    /// Groundness/function-freedom half of the validation.
    fn check_ground_fact(&self, atom: &Atom) -> Result<(), CommitError> {
        if !atom.is_ground(&self.store) {
            return Err(CommitError::NotGround(atom.display(&self.store)));
        }
        for &arg in atom.args.iter() {
            if matches!(self.store.term(arg), Term::App(_, args) if !args.is_empty()) {
                return Err(CommitError::FunctionSymbol(atom.display(&self.store)));
            }
        }
        Ok(())
    }

    /// Unwinds a commit whose grounding failed mid-apply: truncates the
    /// program back to its pre-commit length and rebuilds the engine
    /// state from source. On success the session is back at the last
    /// committed epoch, consistent and writable; only a failure of the
    /// rebuild itself poisons the session.
    fn restore_after_failed_commit(
        &mut self,
        program_len: usize,
        err: SessionError,
    ) -> SessionError {
        self.program.truncate(program_len);
        if self.rebuild_state().is_err() {
            self.poisoned = true;
        }
        err
    }

    /// Rebuilds grounder, chains and model from the source program,
    /// re-disabling the retracted facts. The committed *state* is
    /// preserved exactly; internal clause/atom numbering may change.
    fn rebuild_state(&mut self) -> Result<(), SessionError> {
        let retracted: Vec<Atom> = self.disabled.values().cloned().collect();
        let grounder = IncrementalGrounder::new(&mut self.store, &self.program, self.opts)?;
        let (t_chain, u_chain, empty, model, disabled) = {
            let gp = grounder.ground_program();
            let mut t_chain = IncrementalLfp::new(gp, NegMode::SatisfiedOutside);
            let mut u_chain = IncrementalLfp::new(gp, NegMode::SatisfiedOutside);
            let empty = BitSet::new(gp.atom_count());
            let mut disabled: FxHashMap<u32, Atom> = FxHashMap::default();
            let mut disable: Vec<u32> = Vec::new();
            for atom in retracted {
                let Some(ci) = gp
                    .lookup_atom(&atom)
                    .and_then(|id| grounder.fact_clause_of(id))
                else {
                    continue;
                };
                if let std::collections::hash_map::Entry::Vacant(slot) = disabled.entry(ci) {
                    disable.push(ci);
                    slot.insert(atom);
                }
            }
            if !disable.is_empty() {
                t_chain.set_clauses_enabled(gp, &disable, &[]);
                u_chain.set_clauses_enabled(gp, &disable, &[]);
            }
            let model = well_founded_refresh(gp, &mut t_chain, &mut u_chain, &empty);
            (t_chain, u_chain, empty, model, disabled)
        };
        self.grounder = grounder;
        self.t_chain = t_chain;
        self.u_chain = u_chain;
        self.empty = empty;
        self.model = model;
        self.disabled = disabled;
        self.arities = arities_of(&self.program);
        self.snapshot_cache = None;
        // Fresh engine objects restart their lifetime stats at zero;
        // re-anchor the delta baselines so the rebuild's own work (a
        // rollback, not a commit) is never flushed to the registry.
        self.base_gstats = self.grounder.stats();
        self.base_t = self.t_chain.stats();
        self.base_u = self.u_chain.stats();
        Ok(())
    }

    /// Re-disables a checkpointed retracted-fact set after a restore.
    fn disable_retracted(&mut self, atoms: &[Atom]) {
        let mut disable: Vec<u32> = Vec::new();
        for atom in atoms {
            let Some(ci) = self
                .grounder
                .ground_program()
                .lookup_atom(atom)
                .and_then(|id| self.grounder.fact_clause_of(id))
            else {
                continue;
            };
            if let std::collections::hash_map::Entry::Vacant(slot) = self.disabled.entry(ci) {
                disable.push(ci);
                slot.insert(atom.clone());
            }
        }
        if !disable.is_empty() {
            let gp = self.grounder.ground_program();
            self.t_chain.set_clauses_enabled(gp, &disable, &[]);
            self.u_chain.set_clauses_enabled(gp, &disable, &[]);
            self.model =
                well_founded_refresh(gp, &mut self.t_chain, &mut self.u_chain, &self.empty);
        }
    }

    /// Auto-checkpoint after a commit once the WAL passes the
    /// configured thresholds. Failures are swallowed: the commit
    /// itself is already durable in the WAL, and the checkpoint will
    /// be retried after the next commit.
    fn maybe_checkpoint(&mut self) {
        if self.durable.as_ref().is_some_and(|l| l.should_checkpoint()) {
            let _ = self.checkpoint();
        }
    }

    // ---- queries -----------------------------------------------------

    /// Compiles a query (e.g. `"?- win(X)."`) into a reusable
    /// [`PreparedQuery`] on the default (model-backed) engine.
    pub fn prepare(&mut self, src: &str) -> Result<PreparedQuery, SessionError> {
        let goal = parse_goal(&mut self.store, src)?;
        self.prepare_goal(goal, Engine::Tabled)
    }

    /// Compiles an already-parsed goal for `engine`.
    pub fn prepare_goal(
        &mut self,
        goal: Goal,
        engine: Engine,
    ) -> Result<PreparedQuery, SessionError> {
        let plan = match engine {
            Engine::Tabled => Some(QueryPlan::compile(&self.store, &goal)?),
            Engine::GlobalTree => None,
        };
        Ok(PreparedQuery {
            goal,
            engine,
            plan,
            scratch: QueryScratch::default(),
        })
    }

    /// One-shot convenience: parse, prepare, execute, materialize.
    pub fn query(&mut self, src: &str) -> Result<QueryResult, SessionError> {
        let mut q = self.prepare(src)?;
        let r = q.execute(self)?.collect_result();
        Ok(r)
    }

    /// Governed one-shot query: like [`Session::query`] but the
    /// enumeration respects `opts` plus this session's
    /// [`Session::interrupt_handle`]. A tripped limit yields a
    /// *partial* result — the answers found so far, with
    /// [`QueryResult::interrupted`] set to the cause — never an error.
    pub fn query_governed(
        &mut self,
        src: &str,
        opts: &QueryOpts,
    ) -> Result<QueryResult, SessionError> {
        let mut q = self.prepare(src)?;
        let r = q.execute_governed(self, opts)?.collect_result();
        Ok(r)
    }

    /// Truth of a single (ground) query — shorthand over
    /// [`Session::query`].
    pub fn truth(&mut self, src: &str) -> Result<Truth, SessionError> {
        Ok(self.query(src)?.truth)
    }

    /// The committed truth of a ground atom (atoms the grounder never
    /// saw are false).
    pub fn truth_of_atom(&self, atom: &Atom) -> Truth {
        match self.ground_program().lookup_atom(atom) {
            Some(id) => self.model.truth(id),
            None => Truth::False,
        }
    }

    /// The session's read view (shared with [`Snapshot`]s).
    fn view(&self) -> ModelView<'_> {
        ModelView {
            store: &self.store,
            gp: self.grounder.ground_program(),
            model: &self.model,
            domain: self.grounder.universe(),
        }
    }

    // ---- observability -----------------------------------------------

    /// A consistent snapshot of every engine metric this session has
    /// recorded: commit counters, per-phase commit latency histograms
    /// (`commit.validate` … `commit.index`, plus `commit.total`),
    /// grounder/fixpoint work counters, WAL I/O, query counters, and
    /// `guard.trips.<phase>.<cause>`. Cheap enough to call per request.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.obs.snapshot()
    }

    /// Drains the bounded trace-event ring: the most recent spans
    /// (commit phases), guard trips, and recovery events, in order.
    /// The ring holds [`gsls_obs::DEFAULT_RING_CAPACITY`] events;
    /// older ones are evicted, so a slow commit is reconstructable
    /// after the fact without unbounded memory.
    pub fn recent_events(&self) -> Vec<TraceEvent> {
        self.obs.tracer().drain()
    }

    /// A clone of the session's observability bundle. Clones share
    /// storage with the session, so another thread can poll
    /// [`Obs::snapshot`] mid-commit, or [`Obs::set_enabled`] can turn
    /// all recording off (every probe degrades to one relaxed atomic
    /// load and a branch).
    pub fn obs(&self) -> Obs {
        self.obs.clone()
    }

    // ---- snapshots ---------------------------------------------------

    /// An immutable, `Send + Sync` snapshot of the committed state.
    ///
    /// The first snapshot after a commit clones the store, ground
    /// program and model into an [`Arc`]; repeated calls between
    /// commits return the cached `Arc` (refcount bump only). Readers
    /// on other threads never block the session's writers — they
    /// simply keep seeing their epoch.
    pub fn snapshot(&mut self) -> Snapshot {
        if let Some(s) = &self.snapshot_cache {
            return s.clone();
        }
        let snap = Snapshot {
            inner: Arc::new(SnapshotInner {
                store: self.store.clone(),
                gp: self.grounder.ground_program().clone(),
                model: self.model.clone(),
                domain: self.grounder.universe().to_vec(),
                epoch: self.epoch,
                qobs: self.sobs.query.clone(),
            }),
        };
        self.snapshot_cache = Some(snap.clone());
        snap
    }
}

/// Predicate arities of a program (heads and bodies; first occurrence
/// wins, matching the commit-time validation policy).
fn arities_of(program: &Program) -> FxHashMap<Symbol, usize> {
    let mut arities = FxHashMap::default();
    for c in program.clauses() {
        arities.entry(c.head.pred).or_insert(c.head.args.len());
        for l in &c.body {
            arities.entry(l.atom.pred).or_insert(l.atom.args.len());
        }
    }
    arities
}

/// Whether a clause mentions no proper function symbol.
fn clause_function_free(store: &TermStore, clause: &Clause) -> bool {
    clause.is_function_free(store)
}

// ---- snapshots ------------------------------------------------------

#[derive(Debug)]
struct SnapshotInner {
    store: TermStore,
    gp: GroundProgram,
    model: Interp,
    domain: Vec<TermId>,
    epoch: u64,
    /// Query counters shared with the originating session, so reads
    /// off snapshots on other threads keep counting.
    qobs: QueryObs,
}

/// An immutable view of a committed session state. Cloning is an
/// [`Arc`] refcount bump; the snapshot is `Send + Sync`, so any number
/// of threads can run [`PreparedQuery::execute_on`] against it while
/// the originating session keeps committing.
#[derive(Debug, Clone)]
pub struct Snapshot {
    inner: Arc<SnapshotInner>,
}

impl Snapshot {
    /// The commit epoch this snapshot captured.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch
    }

    /// The captured term store.
    pub fn store(&self) -> &TermStore {
        &self.inner.store
    }

    /// The captured ground program.
    pub fn ground_program(&self) -> &GroundProgram {
        &self.inner.gp
    }

    /// The captured well-founded model.
    pub fn model(&self) -> &Interp {
        &self.inner.model
    }

    /// The truth of a ground atom in the captured model.
    pub fn truth_of_atom(&self, atom: &Atom) -> Truth {
        match self.inner.gp.lookup_atom(atom) {
            Some(id) => self.inner.model.truth(id),
            None => Truth::False,
        }
    }

    /// Compiles query text (e.g. `"?- win(X)."`) against this
    /// snapshot's **immutable** store: the goal parses into a private
    /// scratch store and every constant translates by read-only
    /// lookup, so any number of reader threads can prepare and run
    /// queries concurrently while the owning session keeps committing.
    /// Names the snapshot has never seen are legal — their atoms are
    /// simply false (and their negations true), matching the
    /// committed-state semantics.
    ///
    /// The compiled query remains valid on *later* snapshots of the
    /// same session (ids are stable under the append-only arena), but
    /// a constant unknown at compile time stays foreign even if a
    /// later commit introduces it — recompile per snapshot when that
    /// matters.
    pub fn prepare(&self, src: &str) -> Result<SnapshotQuery, SessionError> {
        let mut scratch = TermStore::new();
        let goal = parse_goal(&mut scratch, src)?;
        let plan = QueryPlan::compile_foreign(&self.inner.store, &scratch, &goal)?;
        Ok(SnapshotQuery {
            plan,
            names: scratch,
        })
    }

    fn view(&self) -> ModelView<'_> {
        ModelView {
            store: &self.inner.store,
            gp: &self.inner.gp,
            model: &self.inner.model,
            domain: &self.inner.domain,
        }
    }
}

/// A query compiled by [`Snapshot::prepare`] — fully read-only on the
/// snapshot it runs against (`&self` everywhere), so one instance can
/// serve many reader threads.
#[derive(Debug)]
pub struct SnapshotQuery {
    plan: QueryPlan,
    /// The scratch store that parsed the goal; keeps the goal's
    /// variable names for rendering answers.
    names: TermStore,
}

impl SnapshotQuery {
    /// Streams the answers over `snapshot` (each run allocates its own
    /// scratch).
    pub fn execute<'a>(&'a self, snapshot: &'a Snapshot) -> Result<Answers<'a>, SessionError> {
        snapshot.inner.qobs.executions.add(1);
        Answers::start(
            &self.plan,
            snapshot.view(),
            ScratchSlot::Owned(Box::default()),
            snapshot.inner.qobs.clone(),
        )
    }

    /// Governed variant: the stream checks `guard` every
    /// [`crate::govern::TICK_INTERVAL`] backtracking steps and, when a
    /// limit trips, ends early with [`Answers::interrupted`] set.
    pub fn execute_governed<'a>(
        &'a self,
        snapshot: &'a Snapshot,
        guard: &Guard,
    ) -> Result<Answers<'a>, SessionError> {
        let mut out = self.execute(snapshot)?;
        out.guard = guard.clone();
        Ok(out)
    }

    /// The goal's variable names, in binding-slot order.
    pub fn var_names(&self) -> Vec<String> {
        self.plan
            .vars
            .iter()
            .map(|&v| self.names.var_name(v))
            .collect()
    }

    /// Renders one answer's bindings as `"X = a, Y = b"` (empty for a
    /// ground goal): variable names from the parsed goal, terms from
    /// the snapshot's store.
    pub fn render_answer(&self, snapshot: &Snapshot, answer: &Answer) -> String {
        let mut parts = Vec::with_capacity(self.plan.vars.len());
        for &v in &self.plan.vars {
            if let Some(t) = answer.subst.lookup(v) {
                parts.push(format!(
                    "{} = {}",
                    self.names.var_name(v),
                    snapshot.store().display_term(t)
                ));
            }
        }
        parts.join(", ")
    }
}

// ---- the model-backed query engine ----------------------------------

/// A read view the query evaluator runs against: the session's live
/// state, a snapshot's captured state, or the [`crate::Solver`] shim's
/// batch state.
#[derive(Clone, Copy)]
pub(crate) struct ModelView<'a> {
    pub store: &'a TermStore,
    pub gp: &'a GroundProgram,
    pub model: &'a Interp,
    /// Constants for residual (all-negative) enumeration.
    pub domain: &'a [TermId],
}

impl ModelView<'_> {
    #[inline]
    fn truth(&self, id: GroundAtomId) -> Truth {
        self.model.truth(id)
    }
}

/// One literal argument, compiled store-free: evaluation decomposes
/// candidate terms but never constructs any, so it runs read-only
/// against a shared snapshot.
#[derive(Debug, Clone)]
enum PatArg {
    /// A term ground at compile time (hash-consing makes id equality
    /// structural equality).
    Const(TermId),
    /// A goal variable's binding slot.
    Slot(u32),
    /// A non-ground compound pattern (function symbols only).
    App(Symbol, Box<[PatArg]>),
}

#[derive(Debug, Clone)]
struct CompiledLit {
    pred: Pred,
    args: Box<[PatArg]>,
}

/// A goal compiled for the model-backed engine: positive literals (goal
/// order) drive candidate enumeration over the interned atom table,
/// residual slots enumerate the domain, negative literals check last.
#[derive(Debug, Clone)]
pub(crate) struct QueryPlan {
    pos: Vec<CompiledLit>,
    neg: Vec<CompiledLit>,
    /// Goal variables in first-occurrence order; slot `i` belongs to
    /// `vars[i]`.
    vars: Vec<Var>,
    /// Slots no positive literal binds, in slot order.
    residual: Vec<u32>,
}

impl QueryPlan {
    pub(crate) fn compile(store: &TermStore, goal: &Goal) -> Result<QueryPlan, SessionError> {
        let vars = goal.vars(store);
        let slot_of: FxHashMap<Var, u32> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        fn compile_arg(store: &TermStore, slot_of: &FxHashMap<Var, u32>, t: TermId) -> PatArg {
            if store.is_ground(t) {
                return PatArg::Const(t);
            }
            match store.term(t) {
                Term::Var(v) => PatArg::Slot(slot_of[v]),
                Term::App(f, args) => PatArg::App(
                    *f,
                    args.iter()
                        .map(|&a| compile_arg(store, slot_of, a))
                        .collect(),
                ),
            }
        }
        let compile_lit = |atom: &Atom| CompiledLit {
            pred: atom.pred_id(),
            args: atom
                .args
                .iter()
                .map(|&t| compile_arg(store, &slot_of, t))
                .collect(),
        };
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for lit in goal.literals() {
            if lit.is_pos() {
                pos.push(compile_lit(&lit.atom));
            } else {
                let c = compile_lit(&lit.atom);
                if c.args.iter().any(|a| matches!(a, PatArg::App(..))) {
                    return Err(SessionError::Unsupported(
                        "negative literal with a non-ground compound argument \
                         (use the global-tree engine)"
                            .to_owned(),
                    ));
                }
                neg.push(c);
            }
        }
        // Slots some positive literal binds (matching against ground
        // facts binds every variable of the pattern).
        let mut bound = vec![false; vars.len()];
        fn mark(bound: &mut [bool], a: &PatArg) {
            match a {
                PatArg::Const(_) => {}
                PatArg::Slot(s) => bound[*s as usize] = true,
                PatArg::App(_, args) => args.iter().for_each(|a| mark(bound, a)),
            }
        }
        for lit in &pos {
            lit.args.iter().for_each(|a| mark(&mut bound, a));
        }
        let residual = (0..vars.len() as u32)
            .filter(|&s| !bound[s as usize])
            .collect();
        Ok(QueryPlan {
            pos,
            neg,
            vars,
            residual,
        })
    }

    /// Compiles a goal whose terms live in `scratch` into a plan that
    /// evaluates against `target` **without interning anything there**
    /// — the path that lets reader threads prepare queries against a
    /// shared, immutable [`Snapshot`] store. Ground terms translate by
    /// read-only structural lookup; names the target has never seen
    /// become [`FOREIGN_TERM`]/[`FOREIGN_SYM`] sentinels that match no
    /// candidate (unknown atom ⇒ false, its negation ⇒ true).
    fn compile_foreign(
        target: &TermStore,
        scratch: &TermStore,
        goal: &Goal,
    ) -> Result<QueryPlan, SessionError> {
        let vars = goal.vars(scratch);
        let slot_of: FxHashMap<Var, u32> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        fn arg(
            target: &TermStore,
            scratch: &TermStore,
            slot_of: &FxHashMap<Var, u32>,
            t: TermId,
        ) -> PatArg {
            if scratch.is_ground(t) {
                return PatArg::Const(translate_ground(target, scratch, t));
            }
            match scratch.term(t) {
                Term::Var(v) => PatArg::Slot(slot_of[v]),
                Term::App(f, args) => {
                    let sym = target
                        .lookup_symbol(scratch.symbol_name(*f))
                        .unwrap_or(FOREIGN_SYM);
                    let args = args.clone();
                    PatArg::App(
                        sym,
                        args.iter()
                            .map(|&a| arg(target, scratch, slot_of, a))
                            .collect(),
                    )
                }
            }
        }
        let lit_of = |atom: &Atom| CompiledLit {
            pred: Pred {
                sym: target
                    .lookup_symbol(scratch.symbol_name(atom.pred))
                    .unwrap_or(FOREIGN_SYM),
                arity: atom.args.len() as u32,
            },
            args: atom
                .args
                .iter()
                .map(|&t| arg(target, scratch, &slot_of, t))
                .collect(),
        };
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for lit in goal.literals() {
            let c = lit_of(&lit.atom);
            if lit.is_pos() {
                pos.push(c);
            } else {
                if c.args.iter().any(|a| matches!(a, PatArg::App(..))) {
                    return Err(SessionError::Unsupported(
                        "negative literal with a non-ground compound argument \
                         (use the global-tree engine)"
                            .to_owned(),
                    ));
                }
                neg.push(c);
            }
        }
        let mut bound = vec![false; vars.len()];
        fn mark(bound: &mut [bool], a: &PatArg) {
            match a {
                PatArg::Const(_) => {}
                PatArg::Slot(s) => bound[*s as usize] = true,
                PatArg::App(_, args) => args.iter().for_each(|a| mark(bound, a)),
            }
        }
        for lit in &pos {
            lit.args.iter().for_each(|a| mark(&mut bound, a));
        }
        let residual = (0..vars.len() as u32)
            .filter(|&s| !bound[s as usize])
            .collect();
        Ok(QueryPlan {
            pos,
            neg,
            vars,
            residual,
        })
    }
}

/// Translates a ground `scratch` term into `target`'s arena by
/// read-only structural lookup; [`FOREIGN_TERM`] when any symbol or
/// subterm is absent there.
fn translate_ground(target: &TermStore, scratch: &TermStore, t: TermId) -> TermId {
    match scratch.term(t) {
        Term::Var(_) => unreachable!("translate_ground on a non-ground term"),
        Term::App(sym, args) => {
            let Some(tsym) = target.lookup_symbol(scratch.symbol_name(*sym)) else {
                return FOREIGN_TERM;
            };
            let args = args.clone();
            let mut targs = Vec::with_capacity(args.len());
            for &a in args.iter() {
                let ta = translate_ground(target, scratch, a);
                if ta == FOREIGN_TERM {
                    return FOREIGN_TERM;
                }
                targs.push(ta);
            }
            target.lookup_app(tsym, &targs).unwrap_or(FOREIGN_TERM)
        }
    }
}

/// Per-depth iteration state of one [`Answers`] run.
#[derive(Debug, Clone)]
struct DepthState {
    /// Candidate atoms (positive depths only).
    candidates: Vec<GroundAtomId>,
    cursor: usize,
    /// Trail length on entry — advance/backtrack undoes to here.
    mark: usize,
    /// Truth of the matched candidate (positive depths).
    truth: Truth,
}

impl Default for DepthState {
    fn default() -> Self {
        DepthState {
            candidates: Vec::new(),
            cursor: 0,
            mark: 0,
            truth: Truth::True,
        }
    }
}

/// Reusable evaluation scratch, cached inside a [`PreparedQuery`]
/// across executions (snapshot runs allocate their own).
#[derive(Debug, Default, Clone)]
pub(crate) struct QueryScratch {
    bindings: Vec<TermId>,
    depths: Vec<DepthState>,
    trail: Vec<u32>,
    key_buf: Vec<TermId>,
}

enum ScratchSlot<'a> {
    Borrowed(&'a mut QueryScratch),
    Owned(Box<QueryScratch>),
}

impl std::ops::Deref for ScratchSlot<'_> {
    type Target = QueryScratch;
    fn deref(&self) -> &QueryScratch {
        match self {
            ScratchSlot::Borrowed(s) => s,
            ScratchSlot::Owned(s) => s,
        }
    }
}

impl std::ops::DerefMut for ScratchSlot<'_> {
    fn deref_mut(&mut self) -> &mut QueryScratch {
        match self {
            ScratchSlot::Borrowed(s) => s,
            ScratchSlot::Owned(s) => s,
        }
    }
}

/// One streamed answer: a substitution for the goal variables and the
/// truth of that instance (`True` or `Undefined`; false instances are
/// never yielded).
#[derive(Debug, Clone)]
pub struct Answer {
    /// Bindings for the goal's variables.
    pub subst: Subst,
    /// `True` or `Undefined`.
    pub truth: Truth,
}

/// A streaming iterator over the true and undefined instances of a
/// prepared query — answers are produced on demand; nothing is
/// materialized unless the caller collects.
pub struct Answers<'a> {
    plan: &'a QueryPlan,
    view: ModelView<'a>,
    scratch: ScratchSlot<'a>,
    depth: usize,
    started: bool,
    done: bool,
    /// Global-tree engine only: pre-materialized answers + verdict.
    materialized: Option<std::vec::IntoIter<Answer>>,
    overall: Option<(Truth, bool)>,
    /// Resource governance: checked once per backtracking step.
    guard: Guard,
    tick: u32,
    interrupted: Option<InterruptCause>,
    /// Query metric handles plus locally-accumulated counts, flushed
    /// once on drop (zero shared-memory traffic per answer).
    qobs: QueryObs,
    n_answers: u64,
    n_point: u64,
    n_scan: u64,
}

impl<'a> Answers<'a> {
    /// Starts a run of `plan` against `view`. Fails fast if a residual
    /// enumeration would exceed the instance budget.
    fn start(
        plan: &'a QueryPlan,
        view: ModelView<'a>,
        mut scratch: ScratchSlot<'a>,
        qobs: QueryObs,
    ) -> Result<Answers<'a>, SessionError> {
        if !plan.residual.is_empty() {
            let total = view.domain.len().checked_pow(plan.residual.len() as u32);
            if total.is_none_or(|t| t > MAX_QUERY_INSTANCES) {
                return Err(SessionError::Unsupported(format!(
                    "all-negative enumeration over {} variables × {} constants \
                     exceeds the instance budget",
                    plan.residual.len(),
                    view.domain.len()
                )));
            }
        }
        let total = plan.pos.len() + plan.residual.len();
        scratch.bindings.clear();
        scratch.bindings.resize(plan.vars.len(), UNBOUND);
        scratch.trail.clear();
        if scratch.depths.len() < total {
            scratch.depths.resize(total, DepthState::default());
        }
        Ok(Answers {
            plan,
            view,
            scratch,
            depth: 0,
            started: false,
            done: false,
            materialized: None,
            overall: None,
            guard: Guard::none(),
            tick: 0,
            interrupted: None,
            qobs,
            n_answers: 0,
            n_point: 0,
            n_scan: 0,
        })
    }

    /// Why the stream stopped early, if it did. `Some` means the
    /// iterator hit its deadline/cancellation and went quiet — the
    /// answers already yielded remain valid (a *partial* enumeration),
    /// analogous to a resolution engine returning a budget outcome.
    pub fn interrupted(&self) -> Option<InterruptCause> {
        self.interrupted
    }

    /// The term store answers resolve against — lets callers render
    /// streamed substitutions while the iterator still borrows the
    /// session.
    pub fn store(&self) -> &TermStore {
        self.view.store
    }

    fn total_depth(&self) -> usize {
        self.plan.pos.len() + self.plan.residual.len()
    }

    /// Prepares depth `d`'s iteration: candidate list for positive
    /// depths (with a point-lookup fast path when the pattern is fully
    /// bound), cursor reset for residual depths.
    fn enter(&mut self, d: usize) {
        let mark = self.scratch.trail.len();
        if d < self.plan.pos.len() {
            let lit = &self.plan.pos[d];
            // Fast path: every argument already resolvable — one hash
            // lookup instead of a predicate scan.
            let mut resolved = true;
            {
                let s = &mut *self.scratch;
                s.key_buf.clear();
                for a in lit.args.iter() {
                    match a {
                        PatArg::Const(t) => s.key_buf.push(*t),
                        PatArg::Slot(slot) => {
                            let b = s.bindings[*slot as usize];
                            if b == UNBOUND {
                                resolved = false;
                                break;
                            }
                            s.key_buf.push(b);
                        }
                        PatArg::App(..) => {
                            resolved = false;
                            break;
                        }
                    }
                }
            }
            let key = std::mem::take(&mut self.scratch.key_buf);
            let st = &mut self.scratch.depths[d];
            st.candidates.clear();
            if resolved {
                self.n_point += 1;
                if let Some(id) = self.view.gp.lookup_atom_parts(lit.pred.sym, &key) {
                    st.candidates.push(id);
                }
            } else {
                self.n_scan += 1;
                st.candidates.extend(self.view.gp.atoms_with_pred(lit.pred));
            }
            self.scratch.key_buf = key;
        }
        let st = &mut self.scratch.depths[d];
        st.cursor = 0;
        st.mark = mark;
    }

    /// Undoes depth `d`'s bindings and binds its next candidate (or
    /// next domain constant). Returns `false` when exhausted.
    fn advance(&mut self, d: usize) -> bool {
        let mark = self.scratch.depths[d].mark;
        while self.scratch.trail.len() > mark {
            let s = self.scratch.trail.pop().expect("trail mark within bounds");
            self.scratch.bindings[s as usize] = UNBOUND;
        }
        if d < self.plan.pos.len() {
            let lit = &self.plan.pos[d];
            loop {
                let st = &self.scratch.depths[d];
                let Some(&id) = st.candidates.get(st.cursor) else {
                    return false;
                };
                self.scratch.depths[d].cursor += 1;
                let t = self.view.truth(id);
                if t == Truth::False {
                    continue;
                }
                let atom = self.view.gp.atom(id);
                let s = &mut *self.scratch;
                let ok = lit
                    .args
                    .iter()
                    .zip(atom.args.iter())
                    .all(|(p, &tgt)| match_pat(self.view.store, p, tgt, s));
                if ok {
                    self.scratch.depths[d].truth = t;
                    return true;
                }
                let s = &mut *self.scratch;
                while s.trail.len() > mark {
                    let sl = s.trail.pop().expect("trail mark within bounds");
                    s.bindings[sl as usize] = UNBOUND;
                }
            }
        } else {
            let slot = self.plan.residual[d - self.plan.pos.len()];
            let st = &self.scratch.depths[d];
            let Some(&c) = self.view.domain.get(st.cursor) else {
                return false;
            };
            self.scratch.depths[d].cursor += 1;
            let s = &mut *self.scratch;
            s.bindings[slot as usize] = c;
            s.trail.push(slot);
            true
        }
    }

    /// Evaluates the leaf under the current (total) binding: checks the
    /// negative literals, folds the three-valued conjunction, and
    /// builds the answer. `None` = this instance is false.
    fn leaf(&mut self) -> Option<Answer> {
        let mut truth = Truth::True;
        for d in 0..self.plan.pos.len() {
            truth = min_truth(truth, self.scratch.depths[d].truth);
        }
        for lit in &self.plan.neg {
            let s = &mut *self.scratch;
            s.key_buf.clear();
            for a in lit.args.iter() {
                match a {
                    PatArg::Const(t) => s.key_buf.push(*t),
                    PatArg::Slot(slot) => {
                        let b = s.bindings[*slot as usize];
                        debug_assert_ne!(b, UNBOUND, "leaf with unbound slot");
                        s.key_buf.push(b);
                    }
                    PatArg::App(..) => unreachable!("rejected at compile"),
                }
            }
            let t = self
                .view
                .gp
                .lookup_atom_parts(lit.pred.sym, &s.key_buf)
                .map_or(Truth::False, |id| self.view.truth(id));
            let neg_t = match t {
                Truth::True => Truth::False,
                Truth::False => Truth::True,
                Truth::Undefined => Truth::Undefined,
            };
            if neg_t == Truth::False {
                return None;
            }
            truth = min_truth(truth, neg_t);
        }
        let mut subst = Subst::new();
        for (i, &v) in self.plan.vars.iter().enumerate() {
            let b = self.scratch.bindings[i];
            debug_assert_ne!(b, UNBOUND, "leaf with unbound goal variable");
            subst.bind(v, b);
        }
        Some(Answer { subst, truth })
    }

    /// Drains the iterator into a compatibility [`QueryResult`].
    pub fn collect_result(mut self) -> QueryResult {
        let overall = self.overall;
        let mut answers = Vec::new();
        let mut undefined = Vec::new();
        for a in self.by_ref() {
            match a.truth {
                Truth::True => answers.push(a.subst),
                Truth::Undefined => undefined.push(a.subst),
                Truth::False => unreachable!("false instances are never yielded"),
            }
        }
        let (truth, floundered) = match overall {
            Some((t, f)) => (t, f),
            None => {
                let t = if !answers.is_empty() {
                    Truth::True
                } else if !undefined.is_empty() {
                    Truth::Undefined
                } else {
                    Truth::False
                };
                (t, false)
            }
        };
        QueryResult {
            truth,
            answers,
            undefined,
            floundered,
            interrupted: self.interrupted,
        }
    }
}

impl Iterator for Answers<'_> {
    type Item = Answer;

    fn next(&mut self) -> Option<Answer> {
        if let Some(m) = &mut self.materialized {
            let a = m.next();
            if a.is_some() {
                self.n_answers += 1;
            }
            return a;
        }
        if self.done {
            return None;
        }
        let total = self.total_depth();
        if !self.started {
            self.started = true;
            if total == 0 {
                self.done = true;
                let a = self.leaf();
                if a.is_some() {
                    self.n_answers += 1;
                }
                return a;
            }
            self.enter(0);
            self.depth = 0;
        } else {
            self.depth = total - 1;
        }
        loop {
            if let Err(cause) = self.guard.tick(&mut self.tick) {
                self.interrupted = Some(cause);
                self.done = true;
                self.qobs.interrupts.add(1);
                if let Some(obs) = &self.qobs.obs {
                    record_trip_in(
                        obs,
                        InterruptPhase::Query,
                        cause,
                        &TripInfo::from_guard(&self.guard),
                    );
                }
                return None;
            }
            if self.advance(self.depth) {
                if self.depth + 1 == total {
                    if let Some(a) = self.leaf() {
                        self.n_answers += 1;
                        return Some(a);
                    }
                } else {
                    self.depth += 1;
                    self.enter(self.depth);
                }
            } else if self.depth == 0 {
                self.done = true;
                return None;
            } else {
                self.depth -= 1;
            }
        }
    }
}

impl Drop for Answers<'_> {
    fn drop(&mut self) {
        if self.n_answers > 0 {
            self.qobs.answers.add(self.n_answers);
        }
        if self.n_point > 0 {
            self.qobs.point_lookups.add(self.n_point);
        }
        if self.n_scan > 0 {
            self.qobs.scans.add(self.n_scan);
        }
    }
}

/// Structurally matches one compiled pattern argument against a ground
/// target term, binding slots on the trail. Read-only on the store.
fn match_pat(store: &TermStore, pat: &PatArg, tgt: TermId, s: &mut QueryScratch) -> bool {
    match pat {
        PatArg::Const(t) => *t == tgt,
        PatArg::Slot(slot) => {
            let cur = s.bindings[*slot as usize];
            if cur == UNBOUND {
                s.bindings[*slot as usize] = tgt;
                s.trail.push(*slot);
                true
            } else {
                cur == tgt
            }
        }
        PatArg::App(f, args) => match store.term(tgt) {
            Term::App(g, targs) if g == f && targs.len() == args.len() => {
                let targs = targs.clone();
                args.iter()
                    .zip(targs.iter())
                    .all(|(p, &t)| match_pat(store, p, t, s))
            }
            _ => false,
        },
    }
}

pub(crate) fn min_truth(a: Truth, b: Truth) -> Truth {
    fn rank(t: Truth) -> u8 {
        match t {
            Truth::False => 0,
            Truth::Undefined => 1,
            Truth::True => 2,
        }
    }
    if rank(a) <= rank(b) {
        a
    } else {
        b
    }
}

/// A query compiled once and executable many times: goal compilation,
/// engine choice and evaluation scratch are cached across calls.
/// Execute against the live session ([`PreparedQuery::execute`]) or
/// against a [`Snapshot`] from any thread
/// ([`PreparedQuery::execute_on`]).
#[derive(Debug)]
pub struct PreparedQuery {
    goal: Goal,
    engine: Engine,
    plan: Option<QueryPlan>,
    scratch: QueryScratch,
}

impl PreparedQuery {
    /// The compiled goal.
    pub fn goal(&self) -> &Goal {
        &self.goal
    }

    /// The engine this query runs on.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Runs against the live session's committed model, reusing the
    /// cached scratch buffers (zero steady-state allocation for
    /// point queries).
    pub fn execute<'a>(
        &'a mut self,
        session: &'a mut Session,
    ) -> Result<Answers<'a>, SessionError> {
        match self.engine {
            Engine::Tabled => {
                session.sobs.query.executions.add(1);
                let plan = self.plan.as_ref().expect("model engine has a plan");
                Answers::start(
                    plan,
                    session.view(),
                    ScratchSlot::Borrowed(&mut self.scratch),
                    session.sobs.query.clone(),
                )
            }
            Engine::GlobalTree => {
                let tree = GlobalTree::build(
                    &mut session.store,
                    &session.program,
                    &self.goal,
                    session.global_opts,
                );
                let answers: Vec<Answer> = tree
                    .answers(&mut session.store)
                    .into_iter()
                    .map(|a| Answer {
                        subst: a.subst,
                        truth: Truth::True,
                    })
                    .collect();
                let (truth, floundered) = match tree.status() {
                    Status::Successful => (Truth::True, tree.root().flags.floundered),
                    Status::Failed => (Truth::False, false),
                    Status::Floundered => (Truth::Undefined, true),
                    Status::Indeterminate => (Truth::Undefined, false),
                };
                session.sobs.query.executions.add(1);
                let plan = self.plan.get_or_insert_with(QueryPlan::empty);
                let mut out = Answers::start(
                    plan,
                    session.view(),
                    ScratchSlot::Borrowed(&mut self.scratch),
                    session.sobs.query.clone(),
                )?;
                out.done = true;
                out.materialized = Some(answers.into_iter());
                out.overall = Some((truth, floundered));
                Ok(out)
            }
        }
    }

    /// Governed variant of [`PreparedQuery::execute`]: the returned
    /// stream checks `opts` (deadline, fuel) plus the session's
    /// [`Session::interrupt_handle`] every [`TICK_INTERVAL`]
    /// backtracking steps. When a limit trips, the stream simply ends —
    /// answers already yielded stay valid — and
    /// [`Answers::interrupted`] reports the cause.
    ///
    /// Only the model-backed [`Engine::Tabled`] streams incrementally;
    /// the global-tree engine materializes up front and is rejected
    /// here as [`SessionError::Unsupported`].
    pub fn execute_governed<'a>(
        &'a mut self,
        session: &'a mut Session,
        opts: &QueryOpts,
    ) -> Result<Answers<'a>, SessionError> {
        match self.engine {
            Engine::Tabled => {
                session.cancel.store(false, Ordering::SeqCst);
                let guard = guard_for(
                    session.cancel.clone(),
                    opts.deadline,
                    None,
                    opts.fuel,
                    false,
                );
                session.sobs.query.executions.add(1);
                let plan = self.plan.as_ref().expect("model engine has a plan");
                let mut out = Answers::start(
                    plan,
                    session.view(),
                    ScratchSlot::Borrowed(&mut self.scratch),
                    session.sobs.query.clone(),
                )?;
                out.guard = guard;
                Ok(out)
            }
            Engine::GlobalTree => Err(SessionError::Unsupported(
                "the global-tree engine materializes its answers up front; \
                 governed streaming serves the model-backed engine"
                    .to_owned(),
            )),
        }
    }

    /// Runs against a snapshot — `&self`, so one prepared query can be
    /// shared by many reader threads (each run allocates its own
    /// scratch).
    pub fn execute_on<'a>(&'a self, snapshot: &'a Snapshot) -> Result<Answers<'a>, SessionError> {
        match self.engine {
            Engine::Tabled => {
                snapshot.inner.qobs.executions.add(1);
                let plan = self.plan.as_ref().expect("model engine has a plan");
                Answers::start(
                    plan,
                    snapshot.view(),
                    ScratchSlot::Owned(Box::default()),
                    snapshot.inner.qobs.clone(),
                )
            }
            Engine::GlobalTree => Err(SessionError::Unsupported(
                "the global-tree engine needs the live session (it builds terms); \
                 snapshots serve the model-backed engine"
                    .to_owned(),
            )),
        }
    }

    /// Governed variant of [`PreparedQuery::execute_on`]: the caller
    /// supplies the [`Guard`] (snapshots have no session cancel flag;
    /// build one with [`Guard::builder`] and share its
    /// [`InterruptHandle`] across reader threads).
    pub fn execute_on_governed<'a>(
        &'a self,
        snapshot: &'a Snapshot,
        guard: &Guard,
    ) -> Result<Answers<'a>, SessionError> {
        let mut out = self.execute_on(snapshot)?;
        out.guard = guard.clone();
        Ok(out)
    }
}

impl QueryPlan {
    /// The empty plan (used as a placeholder by the global-tree path).
    fn empty() -> QueryPlan {
        QueryPlan {
            pos: Vec::new(),
            neg: Vec::new(),
            vars: Vec::new(),
            residual: Vec::new(),
        }
    }

    /// Runs this plan against a view with caller-owned scratch — the
    /// [`crate::Solver`] shim's entry into the shared evaluator.
    pub(crate) fn run<'a>(
        &'a self,
        view: ModelView<'a>,
        scratch: &'a mut QueryScratch,
    ) -> Result<Answers<'a>, SessionError> {
        Answers::start(
            self,
            view,
            ScratchSlot::Borrowed(scratch),
            QueryObs::default(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Snapshot>();
    }

    #[test]
    fn quickstart_flow() {
        let mut sess = Session::from_source(
            "move(a, b). move(b, a). move(b, c). win(X) :- move(X, Y), ~win(Y).",
        )
        .unwrap();
        assert_eq!(sess.truth("?- win(b).").unwrap(), Truth::True);
        assert_eq!(sess.truth("?- win(a).").unwrap(), Truth::False);
        assert_eq!(sess.truth("?- win(c).").unwrap(), Truth::False);
        let r = sess.query("?- win(X).").unwrap();
        assert_eq!(r.truth, Truth::True);
        assert_eq!(r.answers.len(), 1);
        assert_eq!(r.answers[0].display(sess.store()), "{X = b}");
    }

    #[test]
    fn assert_retract_roundtrip() {
        let mut sess = Session::from_source("move(a, b). win(X) :- move(X, Y), ~win(Y).").unwrap();
        assert_eq!(sess.truth("?- win(a).").unwrap(), Truth::True);
        // Give b an escape: a↔b draw loop.
        sess.assert_facts("move(b, a).").unwrap();
        assert_eq!(sess.truth("?- win(a).").unwrap(), Truth::Undefined);
        assert_eq!(sess.epoch(), 1);
        // Retract it again.
        sess.retract_facts("move(b, a).").unwrap();
        assert_eq!(sess.truth("?- win(a).").unwrap(), Truth::True);
        assert_eq!(sess.truth("?- move(b, a).").unwrap(), Truth::False);
        // Re-assert: re-enable, no new clauses.
        let before = sess.ground_program().clause_count();
        sess.assert_facts("move(b, a).").unwrap();
        assert_eq!(sess.ground_program().clause_count(), before);
        assert_eq!(sess.truth("?- move(b, a).").unwrap(), Truth::True);
    }

    #[test]
    fn transaction_batches_and_rollback() {
        let mut sess = Session::from_source("p :- e, ~q.").unwrap();
        sess.begin().unwrap();
        sess.assert_facts("e.").unwrap();
        // Not yet visible.
        assert_eq!(sess.truth("?- p.").unwrap(), Truth::False);
        assert!(sess.in_transaction());
        assert!(matches!(sess.begin(), Err(SessionError::NestedTransaction)));
        let stats = sess.commit().unwrap();
        assert_eq!(stats.facts_asserted, 1);
        assert_eq!(sess.truth("?- p.").unwrap(), Truth::True);
        // Rollback drops the batch.
        sess.begin().unwrap();
        sess.retract_facts("e.").unwrap();
        sess.rollback();
        sess.commit().unwrap();
        assert_eq!(sess.truth("?- p.").unwrap(), Truth::True);
    }

    #[test]
    fn add_rules_against_live_facts() {
        let mut sess = Session::from_source("e(a, b). e(b, c).").unwrap();
        sess.add_rules("t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).")
            .unwrap();
        assert_eq!(sess.truth("?- t(a, c).").unwrap(), Truth::True);
        // New facts flow through rules added earlier.
        sess.assert_facts("e(c, d).").unwrap();
        assert_eq!(sess.truth("?- t(a, d).").unwrap(), Truth::True);
    }

    #[test]
    fn prepared_query_reuse_across_commits() {
        let mut sess = Session::from_source("d(a). good(X) :- d(X), ~bad(X).").unwrap();
        let mut q = sess.prepare("?- good(X).").unwrap();
        assert_eq!(q.execute(&mut sess).unwrap().count(), 1);
        sess.assert_facts("d(b). d(c). bad(b).").unwrap();
        let answers: Vec<Answer> = q.execute(&mut sess).unwrap().collect();
        assert_eq!(answers.len(), 2, "a and c");
        for a in &answers {
            assert_eq!(a.truth, Truth::True);
        }
    }

    #[test]
    fn answers_stream_lazily() {
        let mut sess = Session::from_source("d(a). d(b). d(c). d(e).").unwrap();
        let mut q = sess.prepare("?- d(X).").unwrap();
        let mut it = q.execute(&mut sess).unwrap();
        assert!(it.next().is_some());
        assert!(it.next().is_some());
        drop(it); // abandoning mid-stream is fine
        assert_eq!(q.execute(&mut sess).unwrap().count(), 4);
    }

    #[test]
    fn snapshot_isolation_under_writes() {
        let mut sess = Session::from_source("q(a). d(a). d(b).").unwrap();
        let q = sess.prepare("?- ~q(X).").unwrap();
        let snap = sess.snapshot();
        let snap2 = sess.snapshot();
        assert_eq!(snap.epoch(), snap2.epoch());
        // Writer moves on.
        sess.assert_facts("q(b).").unwrap();
        let live = sess.query("?- ~q(X).").unwrap();
        assert_eq!(live.answers.len(), 0);
        // The snapshot still sees epoch 0: ~q(b) holds there.
        let frozen: Vec<Answer> = q.execute_on(&snap).unwrap().collect();
        assert_eq!(frozen.len(), 1);
        assert_eq!(frozen[0].subst.display(snap.store()), "{X = b}");
        // Threads: query the same snapshot concurrently.
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let snap = snap.clone();
                std::thread::spawn(move || {
                    let q = PreparedQuery {
                        goal: Goal::empty(),
                        engine: Engine::Tabled,
                        plan: Some(QueryPlan::compile(snap.store(), &Goal::empty()).unwrap()),
                        scratch: QueryScratch::default(),
                    };
                    q.execute_on(&snap).unwrap().count()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 1, "empty goal: one vacuous answer");
        }
    }

    #[test]
    fn empty_session_grows_from_nothing() {
        let mut sess = Session::new();
        assert_eq!(sess.truth("?- p.").unwrap(), Truth::False);
        sess.add_rules("p :- ~q.").unwrap();
        assert_eq!(sess.truth("?- p.").unwrap(), Truth::True);
        sess.assert_facts("q.").unwrap();
        assert_eq!(sess.truth("?- p.").unwrap(), Truth::False);
    }

    #[test]
    fn function_symbols_rejected() {
        assert!(matches!(
            Session::from_source("nat(0). nat(s(X)) :- nat(X)."),
            Err(SessionError::NotFunctionFree)
        ));
        let mut sess = Session::new();
        assert!(matches!(
            sess.add_rules("p(f(X)) :- q(X)."),
            Err(SessionError::NotFunctionFree)
        ));
        assert!(matches!(
            sess.assert_facts("p(f(a))."),
            Err(SessionError::NotFunctionFree)
        ));
        assert!(matches!(
            sess.assert_facts("p(X)."),
            Err(SessionError::NotAFact(_))
        ));
        assert!(matches!(
            sess.assert_facts("p :- q."),
            Err(SessionError::NotAFact(_))
        ));
    }

    #[test]
    fn assert_then_retract_same_fact_in_one_commit_nets_retracted() {
        // Regression: retracts apply last, even against a re-enable
        // queued by the same commit, and the disabled-set stays in sync
        // with the chains so later retracts still work.
        let mut sess = Session::from_source("f.").unwrap();
        sess.retract_facts("f.").unwrap();
        sess.begin().unwrap();
        sess.assert_facts("f.").unwrap();
        sess.retract_facts("f.").unwrap();
        sess.commit().unwrap();
        assert_eq!(sess.truth("?- f.").unwrap(), Truth::False);
        // The inverse order nets asserted? No — retracts always apply
        // last within a batch: still false.
        sess.begin().unwrap();
        sess.retract_facts("f.").unwrap();
        sess.assert_facts("f.").unwrap();
        sess.commit().unwrap();
        assert_eq!(sess.truth("?- f.").unwrap(), Truth::False);
        // And the bookkeeping is intact: a plain assert re-enables, a
        // plain retract disables.
        sess.assert_facts("f.").unwrap();
        assert_eq!(sess.truth("?- f.").unwrap(), Truth::True);
        sess.retract_facts("f.").unwrap();
        assert_eq!(sess.truth("?- f.").unwrap(), Truth::False);
    }

    #[test]
    fn rule_instances_are_not_retractable() {
        // Regression: p(X). derives p(a)/p(b) as permanent rule
        // instances; retract_facts must not be able to switch them off.
        // (The analyzer denies such facts by default; this test is
        // exactly about the active-domain enumeration they trigger.)
        let mut sess = Session::from_source("d(a). d(b).")
            .unwrap()
            .with_lint_config(LintConfig::default().set(Lint::NonGroundFact, LintLevel::Allow));
        sess.add_rules("p(X).").unwrap();
        assert_eq!(sess.truth("?- p(a).").unwrap(), Truth::True);
        sess.retract_facts("p(a).").unwrap();
        assert_eq!(sess.truth("?- p(a).").unwrap(), Truth::True);
        // An asserted fact shadowed by a rule instance survives its own
        // retraction through the rule, matching a scratch rebuild.
        sess.assert_facts("p(c).").unwrap();
        sess.retract_facts("p(c).").unwrap();
        assert_eq!(
            sess.truth("?- p(c).").unwrap(),
            Truth::True,
            "p(X). still derives p(c) for the active-domain constant c"
        );
    }

    #[test]
    fn unsafe_rule_batch_rejected_with_all_violations() {
        // A floundering rule AND an arity conflict in one batch: the
        // rejection lists both (collect-all, not first-error).
        let mut sess = Session::from_source("q(a).").unwrap();
        sess.begin().unwrap();
        sess.add_rules("p(X) :- ~w(X).").unwrap();
        sess.assert_facts("q(a, b).").unwrap();
        let err = sess.commit().unwrap_err();
        let SessionError::Rejected(rej) = &err else {
            panic!("expected rejection, got {err:?}");
        };
        assert_eq!(rej.errors.len(), 2, "{rej}");
        assert!(rej.errors.iter().any(|e| matches!(
            e,
            CommitError::ArityMismatch {
                expected: 1,
                found: 2,
                ..
            }
        )));
        assert!(rej.errors.iter().any(|e| matches!(
            e,
            CommitError::Unsafe(d) if d.lint == Lint::NegativeOnlyVar
        )));
        assert!(!sess.is_poisoned());
        assert_eq!(sess.epoch(), 0, "nothing applied");
        // Still writable.
        sess.assert_facts("q(b).").unwrap();
        assert_eq!(sess.truth("?- q(b).").unwrap(), Truth::True);
    }

    #[test]
    fn permissive_lints_admit_floundering_rules() {
        let mut sess = Session::from_source("f(a).")
            .unwrap()
            .with_lint_config(LintConfig::permissive());
        // Denied by default, admitted here: u ranges over the active
        // domain minus f.
        sess.add_rules("u(X) :- ~f(X).").unwrap();
        sess.assert_facts("f(b). g(c).").unwrap();
        assert_eq!(sess.truth("?- u(c).").unwrap(), Truth::True);
        assert_eq!(sess.truth("?- u(a).").unwrap(), Truth::False);
    }

    #[test]
    fn seed_program_is_gated_too() {
        let err = match Session::from_source("p(X) :- ~q(X). q(a).") {
            Err(e) => e,
            Ok(_) => panic!("floundering seed program must be rejected"),
        };
        assert!(
            matches!(&err, SessionError::Rejected(r)
                if matches!(r.first(), CommitError::Unsafe(d) if d.lint == Lint::NegativeOnlyVar)),
            "got {err:?}"
        );
        // The permissive escape hatch admits the same program.
        let mut store = TermStore::new();
        let program = parse_program(&mut store, "p(X) :- ~q(X). q(a).").unwrap();
        let sess = Session::with_opts_lints(
            store,
            program,
            GrounderOpts::default(),
            LintConfig::permissive(),
        )
        .unwrap();
        assert_eq!(sess.epoch(), 0);
    }

    #[test]
    fn warnings_surface_in_last_lint_report() {
        let mut sess = Session::from_source("e(a, b).").unwrap();
        // Singleton Y: warn-level — the commit succeeds and the report
        // is retrievable.
        sess.add_rules("p(X) :- e(X, Y).").unwrap();
        let report = sess.last_lint_report();
        assert!(!report.has_errors());
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.lint == Lint::SingletonVar && d.witness.as_deref() == Some("Y")),
            "{}",
            report.render()
        );
        assert_eq!(sess.truth("?- p(a).").unwrap(), Truth::True);
        // A fact-only commit skips analysis and leaves a clean report.
        sess.assert_facts("e(b, c).").unwrap();
        assert!(sess.last_lint_report().is_clean());
    }

    #[test]
    fn analyze_reports_on_the_full_program() {
        let mut sess =
            Session::from_source("move(a, b). move(b, a). win(X) :- move(X, Y), ~win(Y).").unwrap();
        // Default config allows unstratified programs — that's the
        // engine's job — so the full-program report is clean.
        assert!(sess.analyze().is_clean(), "{}", sess.analyze().render());
        // Under strict lints the cycle is named with its witness.
        sess.set_lint_config(LintConfig::strict());
        let report = sess.analyze();
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.lint == Lint::Unstratified)
            .expect("win-game is unstratified");
        assert_eq!(d.witness.as_deref(), Some("win → not win"));
        assert!(
            d.message.contains("locally stratified"),
            "ground program is available, the class must be named: {}",
            d.message
        );
    }

    #[test]
    fn rule_batch_facts_are_permanent() {
        // Regression: a fact added via add_rules is program text — it
        // must stay true even if an identical source fact was retracted
        // before (or is retracted after).
        let mut sess = Session::from_source("g.").unwrap();
        sess.retract_facts("g.").unwrap();
        assert_eq!(sess.truth("?- g.").unwrap(), Truth::False);
        sess.add_rules("g.").unwrap();
        assert_eq!(sess.truth("?- g.").unwrap(), Truth::True);
        sess.retract_facts("g.").unwrap();
        assert_eq!(
            sess.truth("?- g.").unwrap(),
            Truth::True,
            "the rule-batch clause is not retractable"
        );
        // Re-asserting and retracting the source fact keeps working.
        sess.assert_facts("g.").unwrap();
        sess.retract_facts("g.").unwrap();
        assert_eq!(sess.truth("?- g.").unwrap(), Truth::True);
    }

    #[test]
    fn session_matches_scratch_rebuild() {
        // A miniature of the workspace property test: after a mixed
        // walk, the session model equals a from-scratch solve of the
        // merged program.
        let mut sess =
            Session::from_source("e(a, b). e(b, c). r(X) :- e(X, Y), ~dead(X). dead(c).").unwrap();
        sess.assert_facts("e(c, a).").unwrap();
        sess.add_rules("t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).")
            .unwrap();
        sess.retract_facts("e(b, c).").unwrap();
        sess.assert_facts("dead(a).").unwrap();
        sess.retract_facts("dead(c).").unwrap();
        sess.assert_facts("e(b, c).").unwrap(); // re-enable
                                                // Rebuild: rules + currently-active facts.
        let mut s2 = TermStore::new();
        let p2 = parse_program(
            &mut s2,
            "e(a, b). e(b, c). r(X) :- e(X, Y), ~dead(X). \
             t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z). e(c, a). dead(a).",
        )
        .unwrap();
        let gp2 = gsls_ground::Grounder::ground(&mut s2, &p2).unwrap();
        let m2 = gsls_wfs::well_founded_model(&gp2);
        // Compare truths over the rebuilt program's atoms...
        for id2 in gp2.atom_ids() {
            let atom2 = gp2.atom(id2);
            let name = atom2.display(&s2);
            let goal = format!("?- {name}.");
            assert_eq!(
                sess.truth(&goal).unwrap(),
                m2.truth(id2),
                "atom {name} diverges"
            );
        }
        // ...and session atoms absent from the rebuild must be false.
        let session_atoms: Vec<String> = sess
            .ground_program()
            .atom_ids()
            .map(|id| sess.ground_program().display_atom(sess.store(), id))
            .collect();
        for name in session_atoms {
            let mut s3 = s2.clone();
            let g = parse_goal(&mut s3, &format!("?- {name}.")).unwrap();
            let known = g.literals()[0]
                .atom
                .is_ground(&s3)
                .then(|| gp2.lookup_atom(&g.literals()[0].atom))
                .flatten();
            if known.is_none() {
                assert_eq!(
                    sess.truth(&format!("?- {name}.")).unwrap(),
                    Truth::False,
                    "session-only atom {name} must be false"
                );
            }
        }
    }
}
