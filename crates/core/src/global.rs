//! Global trees and global SLS-resolution (Def. 3.3 – 3.5).
//!
//! A global tree alternates three node types:
//!
//! * **tree nodes** — SLP-trees for intermediate goals; the root tree
//!   node holds the query, internal tree nodes hold single ground atoms;
//! * **negation nodes** — one per active leaf of a tree node, with one
//!   child per negated subgoal of the leaf (expanded *in parallel*);
//! * **nonground nodes** — children standing for nonground negative
//!   subgoals; they flounder.
//!
//! Identical ground subgoals share one tree node (the status of a tree
//! node depends only on its descendants — Sec. 4 makes this observation —
//! so sharing is semantics-preserving), which turns the "tree" into a
//! graph whose back-edges are precisely the recursions through negation.
//! Statuses are then assigned by a least fixpoint of the Def. 3.3 rules:
//! nodes never determined by the fixpoint are **indeterminate**, exactly
//! the goals on which ideal global SLS-resolution would recurse through
//! infinitely many negation nodes. Levels are computed afterwards by the
//! same rules read as ordinal equations.
//!
//! With the ground loop check of [`crate::slp`] pruning infinite positive
//! branches, this construction is effective (and agrees with the
//! well-founded model — tested extensively) for function-free programs;
//! with function symbols, budgets bound the search and unresolved regions
//! surface as indeterminate-by-budget.

use crate::ordinal::Ordinal;
use crate::slp::{SlpOpts, SlpTree};
use gsls_lang::{Atom, FxHashMap, Goal, Literal, Program, Subst, TermStore};

/// Budgets and options for global-tree construction.
#[derive(Debug, Clone, Copy)]
pub struct GlobalOpts {
    /// SLP-tree budgets (per tree node).
    pub slp: SlpOpts,
    /// Maximum depth of negation nesting explored.
    pub max_neg_depth: u32,
    /// Maximum number of tree nodes in the global tree.
    pub max_tree_nodes: usize,
}

impl Default for GlobalOpts {
    fn default() -> Self {
        GlobalOpts {
            slp: SlpOpts::default(),
            max_neg_depth: 512,
            max_tree_nodes: 100_000,
        }
    }
}

/// The determination status of a node (Def. 3.3, rule 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Proved successful.
    Successful,
    /// Proved failed.
    Failed,
    /// Proved floundered.
    Floundered,
    /// Not well determined (possibly by budget).
    Indeterminate,
}

/// Status flags — a tree node may be *both* successful and floundered
/// (remark after Def. 3.4), so statuses are not mutually exclusive.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatusFlags {
    /// Proved successful.
    pub successful: bool,
    /// Proved failed.
    pub failed: bool,
    /// Proved floundered.
    pub floundered: bool,
}

impl StatusFlags {
    /// Whether any status was proved.
    pub fn well_determined(self) -> bool {
        self.successful || self.failed || self.floundered
    }

    /// The primary status (successful/failed win over floundered; matches
    /// the paper's usage when reporting a single verdict).
    pub fn primary(self) -> Status {
        if self.successful {
            Status::Successful
        } else if self.failed {
            Status::Failed
        } else if self.floundered {
            Status::Floundered
        } else {
            Status::Indeterminate
        }
    }
}

/// A child of a negation node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NegChild {
    /// A tree node for the complement of a ground negative subgoal.
    Tree(u32),
    /// A nonground negative subgoal (always floundered).
    NonGround(Atom),
    /// Not expanded because a budget was reached; status unknown.
    Unexpanded(Atom),
}

/// A negation node: corresponds to one active leaf of its parent tree
/// node; its children correspond to the negated subgoals of the leaf.
#[derive(Debug, Clone)]
pub struct NegNode {
    /// Index of the active leaf inside the parent's SLP tree.
    pub leaf: u32,
    /// Children, one per literal of the leaf.
    pub children: Vec<NegChild>,
    /// Computed status flags.
    pub flags: StatusFlags,
    /// Level when successful or failed.
    pub level: Option<Ordinal>,
}

/// A tree node: an SLP-tree plus one negation node per active leaf.
#[derive(Debug, Clone)]
pub struct TreeNode {
    /// The goal of this tree node.
    pub goal: Goal,
    /// Its SLP-tree.
    pub slp: SlpTree,
    /// Negation nodes (paired with `slp.active_leaves()` in order).
    pub negnodes: Vec<NegNode>,
    /// Computed status flags.
    pub flags: StatusFlags,
    /// Level when failed.
    pub level_fail: Option<Ordinal>,
    /// Level when successful (internal nodes have one; the root may have
    /// several — see [`GlobalTree::answers`]).
    pub level_succ: Option<Ordinal>,
    /// Depth of negation nesting at which this node was first created.
    pub neg_depth: u32,
    /// Whether children were left unexpanded due to budgets.
    pub budget_hit: bool,
}

/// An answer extracted from the root tree node (Def. 3.4).
#[derive(Debug, Clone)]
pub struct GlobalAnswer {
    /// The answer substitution, restricted to the query's variables.
    pub subst: Subst,
    /// The level of the root with respect to this answer.
    pub level: Option<Ordinal>,
}

/// The global tree for a query.
#[derive(Debug, Clone)]
pub struct GlobalTree {
    nodes: Vec<TreeNode>,
    memo: FxHashMap<Atom, u32>,
    budget_hit: bool,
}

impl GlobalTree {
    /// Builds the global tree for `goal` and computes all statuses and
    /// levels.
    pub fn build(
        store: &mut TermStore,
        program: &Program,
        goal: &Goal,
        opts: GlobalOpts,
    ) -> GlobalTree {
        let mut g = GlobalTree {
            nodes: Vec::new(),
            memo: FxHashMap::default(),
            budget_hit: false,
        };
        g.expand_goal(store, program, goal.clone(), 0, opts);
        g.compute_statuses();
        g.compute_levels();
        g
    }

    /// The root tree node.
    pub fn root(&self) -> &TreeNode {
        &self.nodes[0]
    }

    /// All tree nodes (0 is the root).
    pub fn tree_nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// Whether any budget was hit during construction (if so,
    /// indeterminate verdicts may be artefacts of the budget).
    pub fn budget_hit(&self) -> bool {
        self.budget_hit
    }

    /// The status of the whole query.
    pub fn status(&self) -> Status {
        self.root().flags.primary()
    }

    /// The tree node for a previously expanded ground subgoal.
    pub fn node_for(&self, atom: &Atom) -> Option<&TreeNode> {
        self.memo.get(atom).map(|&i| &self.nodes[i as usize])
    }

    /// Answer substitutions at the root (Def. 3.4): the computed mgus of
    /// the root's successful active leaves, with per-answer levels.
    pub fn answers(&self, store: &mut TermStore) -> Vec<GlobalAnswer> {
        let root = &self.nodes[0];
        let gvars = root.goal.vars(store);
        let leaves = root.slp.active_leaves();
        let mut out = Vec::new();
        for (j, neg) in root.negnodes.iter().enumerate() {
            if neg.flags.successful {
                let leaf_idx = leaves[j];
                let mgu = &root.slp.nodes()[leaf_idx as usize].mgu;
                out.push(GlobalAnswer {
                    subst: mgu.restricted_to(store, &gvars),
                    level: neg.level.as_ref().map(|l| l.succ()),
                });
            }
        }
        out
    }

    fn expand_goal(
        &mut self,
        store: &mut TermStore,
        program: &Program,
        goal: Goal,
        neg_depth: u32,
        opts: GlobalOpts,
    ) -> u32 {
        let idx = self.nodes.len() as u32;
        let slp = SlpTree::build(store, program, &goal, opts.slp);
        self.nodes.push(TreeNode {
            goal,
            slp,
            negnodes: Vec::new(),
            flags: StatusFlags::default(),
            level_fail: None,
            level_succ: None,
            neg_depth,
            budget_hit: false,
        });
        let leaves = self.nodes[idx as usize].slp.active_leaves();
        let mut negnodes = Vec::with_capacity(leaves.len());
        for leaf in leaves {
            let literals: Vec<Literal> = self.nodes[idx as usize].slp.nodes()[leaf as usize]
                .goal
                .literals()
                .to_vec();
            let mut children = Vec::with_capacity(literals.len());
            for lit in literals {
                debug_assert!(lit.is_neg(), "active leaves contain only negatives");
                if !lit.atom.is_ground(store) {
                    children.push(NegChild::NonGround(lit.atom.clone()));
                } else if neg_depth >= opts.max_neg_depth || self.nodes.len() >= opts.max_tree_nodes
                {
                    self.budget_hit = true;
                    self.nodes[idx as usize].budget_hit = true;
                    children.push(NegChild::Unexpanded(lit.atom.clone()));
                } else if let Some(&existing) = self.memo.get(&lit.atom) {
                    children.push(NegChild::Tree(existing));
                } else {
                    // Reserve the memo entry before recursion so cycles
                    // through negation become back-edges to this index.
                    let child_goal = Goal::new(vec![Literal::pos(lit.atom.clone())]);
                    // The child index will be the next allocation made by
                    // expand_goal; record it first.
                    let child_idx = self.nodes.len() as u32;
                    self.memo.insert(lit.atom.clone(), child_idx);
                    let actual = self.expand_goal(store, program, child_goal, neg_depth + 1, opts);
                    debug_assert_eq!(actual, child_idx);
                    children.push(NegChild::Tree(child_idx));
                }
            }
            negnodes.push(NegNode {
                leaf,
                children,
                flags: StatusFlags::default(),
                level: None,
            });
        }
        if self.nodes[idx as usize].slp.is_truncated() {
            self.budget_hit = true;
            self.nodes[idx as usize].budget_hit = true;
        }
        self.nodes[idx as usize].negnodes = negnodes;
        idx
    }

    /// Least fixpoint of the Def. 3.3 status rules over the (shared) tree.
    fn compute_statuses(&mut self) {
        loop {
            let mut changed = false;
            for i in 0..self.nodes.len() {
                // Negation-node rules (2a–2c).
                for j in 0..self.nodes[i].negnodes.len() {
                    let mut flags = self.nodes[i].negnodes[j].flags;
                    let children = self.nodes[i].negnodes[j].children.clone();
                    let any_success = children.iter().any(|c| match c {
                        NegChild::Tree(t) => self.nodes[*t as usize].flags.successful,
                        _ => false,
                    });
                    let all_failed = children.iter().all(|c| match c {
                        NegChild::Tree(t) => self.nodes[*t as usize].flags.failed,
                        _ => false,
                    });
                    // 2(c): some child floundered and none can become
                    // successful — require the others to be determined.
                    let some_floundered = children.iter().any(|c| match c {
                        NegChild::Tree(t) => self.nodes[*t as usize].flags.floundered,
                        NegChild::NonGround(_) => true,
                        NegChild::Unexpanded(_) => false,
                    });
                    let all_determined_or_floundered = children.iter().all(|c| match c {
                        NegChild::Tree(t) => self.nodes[*t as usize].flags.well_determined(),
                        NegChild::NonGround(_) => true,
                        NegChild::Unexpanded(_) => false,
                    });
                    if any_success && !flags.failed {
                        flags.failed = true;
                        changed = true;
                    }
                    if all_failed && !flags.successful {
                        flags.successful = true;
                        changed = true;
                    }
                    if some_floundered
                        && !any_success
                        && all_determined_or_floundered
                        && !flags.floundered
                    {
                        flags.floundered = true;
                        changed = true;
                    }
                    self.nodes[i].negnodes[j].flags = flags;
                }
                // Tree-node rules (3a–3c).
                let mut flags = self.nodes[i].flags;
                let any_success = self.nodes[i].negnodes.iter().any(|n| n.flags.successful);
                let all_failed = self.nodes[i].negnodes.iter().all(|n| n.flags.failed);
                let some_floundered = self.nodes[i].negnodes.iter().any(|n| n.flags.floundered);
                // "T is a leaf of Γ (no active leaves)" fails — but only
                // when the SLP-tree is complete (a truncated tree might
                // still grow active leaves) and no budget cut children.
                let complete = !self.nodes[i].slp.is_truncated() && !self.nodes[i].budget_hit;
                if any_success && !flags.successful {
                    flags.successful = true;
                    changed = true;
                }
                if complete && all_failed && !flags.failed {
                    flags.failed = true;
                    changed = true;
                }
                if some_floundered && !flags.floundered {
                    flags.floundered = true;
                    changed = true;
                }
                self.nodes[i].flags = flags;
            }
            if !changed {
                break;
            }
        }
    }

    /// Computes levels for determined nodes per Def. 3.3.
    ///
    /// Levels are assigned in **ascending order** (Dijkstra-style): a
    /// min-heap holds candidate `(level, node)` pairs, and the first
    /// candidate popped for a node is its level. This is what makes the
    /// `min` in rules 2(a)/3(b) computable without waiting for *all*
    /// successful children — the first successful child to receive a
    /// level is the minimum, because assignments only ascend. The `lub`
    /// rules 2(b)/3(a) instead wait (via counters) until every input is
    /// assigned. A naive fixpoint deadlocks here: a failed negation node
    /// can transitively depend on a node whose level depends back on it
    /// through a larger-level sibling.
    fn compute_levels(&mut self) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        /// Heap key: negation node `(tree, j)` or tree node.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
        enum Key {
            Neg(u32, u32),
            Tree(u32),
        }

        let n = self.nodes.len();
        // Waiting counters for the lub rules.
        // J-succ waits for the fail levels of all its children.
        let mut jsucc_wait: FxHashMap<(u32, u32), usize> = FxHashMap::default();
        // T-fail waits for the levels of all its negation nodes.
        let mut tfail_wait: Vec<usize> = vec![usize::MAX; n];
        // Reverse dependencies.
        let mut on_tree_fail: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n]; // notify J-succ
        let mut on_tree_succ: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n]; // notify J-fail
        let mut heap: BinaryHeap<Reverse<(Ordinal, Key)>> = BinaryHeap::new();

        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            let ti = i as u32;
            if self.nodes[i].flags.failed {
                tfail_wait[i] = self.nodes[i].negnodes.len();
                if tfail_wait[i] == 0 {
                    heap.push(Reverse((Ordinal::finite(1), Key::Tree(ti))));
                }
            }
            for (j, neg) in self.nodes[i].negnodes.iter().enumerate() {
                let jj = j as u32;
                if neg.flags.successful {
                    // All children are failed tree nodes (else J could
                    // not be successful).
                    let kids: Vec<u32> = neg
                        .children
                        .iter()
                        .filter_map(|c| match c {
                            NegChild::Tree(t) => Some(*t),
                            _ => None,
                        })
                        .collect();
                    jsucc_wait.insert((ti, jj), kids.len());
                    if kids.is_empty() {
                        heap.push(Reverse((Ordinal::zero(), Key::Neg(ti, jj))));
                    }
                    for t in kids {
                        on_tree_fail[t as usize].push((ti, jj));
                    }
                } else if neg.flags.failed {
                    for c in &neg.children {
                        if let NegChild::Tree(t) = c {
                            if self.nodes[*t as usize].flags.successful {
                                on_tree_succ[*t as usize].push((ti, jj));
                            }
                        }
                    }
                }
            }
        }

        while let Some(Reverse((level, key))) = heap.pop() {
            match key {
                Key::Neg(ti, jj) => {
                    let (i, j) = (ti as usize, jj as usize);
                    if self.nodes[i].negnodes[j].level.is_some() {
                        continue; // later (larger) candidate for the min
                    }
                    self.nodes[i].negnodes[j].level = Some(level.clone());
                    // Notify the parent tree node.
                    if self.nodes[i].flags.successful
                        && self.nodes[i].negnodes[j].flags.successful
                        && self.nodes[i].level_succ.is_none()
                    {
                        heap.push(Reverse((level.succ(), Key::Tree(ti))));
                    }
                    if self.nodes[i].flags.failed {
                        tfail_wait[i] -= 1;
                        if tfail_wait[i] == 0 {
                            let lub = Ordinal::lub(
                                self.nodes[i]
                                    .negnodes
                                    .iter()
                                    .filter_map(|nn| nn.level.as_ref()),
                            );
                            heap.push(Reverse((lub.succ(), Key::Tree(ti))));
                        }
                    }
                }
                Key::Tree(ti) => {
                    let i = ti as usize;
                    if self.nodes[i].flags.successful {
                        if self.nodes[i].level_succ.is_some() {
                            continue;
                        }
                        self.nodes[i].level_succ = Some(level.clone());
                        // J-fail candidates: first assigned child = min.
                        for &(pi, pj) in &on_tree_succ[i].clone() {
                            if self.nodes[pi as usize].negnodes[pj as usize]
                                .level
                                .is_none()
                            {
                                heap.push(Reverse((level.clone(), Key::Neg(pi, pj))));
                            }
                        }
                    } else if self.nodes[i].flags.failed {
                        if self.nodes[i].level_fail.is_some() {
                            continue;
                        }
                        self.nodes[i].level_fail = Some(level.clone());
                        for &(pi, pj) in &on_tree_fail[i].clone() {
                            let w = jsucc_wait.get_mut(&(pi, pj)).expect("registered waiter");
                            *w -= 1;
                            if *w == 0 {
                                // All children fail levels known: lub.
                                let lub = {
                                    let neg = &self.nodes[pi as usize].negnodes[pj as usize];
                                    Ordinal::lub(neg.children.iter().filter_map(|c| match c {
                                        NegChild::Tree(t) => {
                                            self.nodes[*t as usize].level_fail.as_ref()
                                        }
                                        _ => None,
                                    }))
                                };
                                heap.push(Reverse((lub, Key::Neg(pi, pj))));
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsls_lang::{parse_goal, parse_program};

    fn build(src: &str, goal: &str) -> (TermStore, GlobalTree) {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, src).unwrap();
        let g = parse_goal(&mut s, goal).unwrap();
        let t = GlobalTree::build(&mut s, &p, &g, GlobalOpts::default());
        (s, t)
    }

    fn status_of(src: &str, goal: &str) -> Status {
        build(src, goal).1.status()
    }

    #[test]
    fn fact_succeeds_at_level_one() {
        let (_, t) = build("p(a).", "?- p(a).");
        assert_eq!(t.status(), Status::Successful);
        // Empty active leaf → negation node with no children: level 0;
        // root: 0 + 1 = 1.
        assert_eq!(t.root().level_succ, Some(Ordinal::finite(1)));
    }

    #[test]
    fn missing_atom_fails_at_level_one() {
        let (_, t) = build("p(a).", "?- q(a).");
        assert_eq!(t.status(), Status::Failed);
        assert_eq!(t.root().level_fail, Some(Ordinal::finite(1)));
    }

    #[test]
    fn single_negation_levels() {
        // q has no rules: ←q failed at level 1; negation node for {~q}
        // successful at level 1; ←p successful at level 2.
        let (_, t) = build("p :- ~q.", "?- p.");
        assert_eq!(t.status(), Status::Successful);
        assert_eq!(t.root().level_succ, Some(Ordinal::finite(2)));
    }

    #[test]
    fn positive_loop_failed_by_loop_pruning() {
        let (_, t) = build("p :- p.", "?- p.");
        assert_eq!(t.status(), Status::Failed);
        assert_eq!(t.root().level_fail, Some(Ordinal::finite(1)));
    }

    #[test]
    fn negative_cycle_indeterminate() {
        assert_eq!(
            status_of("p :- ~q. q :- ~p.", "?- p."),
            Status::Indeterminate
        );
        assert_eq!(status_of("p :- ~p.", "?- p."), Status::Indeterminate);
    }

    #[test]
    fn cycle_with_escape_resolves() {
        // win over a↔b with escape b→c: win(b) true, win(a) false.
        let src = "move(a, b). move(b, a). move(b, c). win(X) :- move(X, Y), ~win(Y).";
        assert_eq!(status_of(src, "?- win(b)."), Status::Successful);
        assert_eq!(status_of(src, "?- win(a)."), Status::Failed);
    }

    #[test]
    fn pure_cycle_win_indeterminate() {
        let src = "move(a, b). move(b, a). win(X) :- move(X, Y), ~win(Y).";
        assert_eq!(status_of(src, "?- win(a)."), Status::Indeterminate);
    }

    #[test]
    fn example_3_2_preferential_succeeds() {
        // Example 3.2: with the preferential rule the goal ←s succeeds
        // (the deviant leftmost rule is exercised in deviant.rs).
        let src = "p :- q, ~r. q :- r, ~p. r :- p, ~q. s :- ~p, ~q, ~r.";
        assert_eq!(status_of(src, "?- s."), Status::Successful);
        assert_eq!(status_of(src, "?- p."), Status::Failed);
    }

    #[test]
    fn example_3_3_parallel_fails_q() {
        // Example 3.3 (function-free analogue): q ← ¬p, ¬s with p
        // indeterminate but s succeeding: parallel expansion fails q.
        let src = "p :- ~p. q :- ~p, ~s. s.";
        assert_eq!(status_of(src, "?- q."), Status::Failed);
        assert_eq!(status_of(src, "?- p."), Status::Indeterminate);
        assert_eq!(status_of(src, "?- s."), Status::Successful);
    }

    #[test]
    fn floundering_nonground_negation() {
        // p(X) :- ~q(f(X)): the goal ←p(X) flounders.
        let (_, t) = build("p(X) :- ~q(f(X)). q(a).", "?- p(X).");
        assert_eq!(t.status(), Status::Floundered);
    }

    #[test]
    fn ground_instance_of_floundering_goal_succeeds() {
        let src = "p(X) :- ~q(f(X)). q(a).";
        assert_eq!(status_of(src, "?- p(a)."), Status::Successful);
    }

    #[test]
    fn answers_with_substitutions() {
        let (mut s, t) = build(
            "move(a, b). move(a, c). win(c). safe(X) :- move(a, X), ~win(X).",
            "?- safe(X).",
        );
        assert_eq!(t.status(), Status::Successful);
        let answers = t.answers(&mut s);
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].subst.display(&s), "{X = b}");
        assert!(answers[0].level.is_some());
    }

    #[test]
    fn multiple_answers_multiple_levels() {
        // Root tree nodes may have several levels, one per answer.
        let (mut s, t) = build("q(a). p(a). p(b) :- ~q(b).", "?- p(X).");
        let answers = t.answers(&mut s);
        assert_eq!(answers.len(), 2);
        let mut levels: Vec<Ordinal> = answers.iter().filter_map(|a| a.level.clone()).collect();
        levels.sort();
        assert_eq!(levels, vec![Ordinal::finite(1), Ordinal::finite(2)]);
    }

    #[test]
    fn subgoal_sharing() {
        // ~q appears under both p-rules: only one tree node for q.
        let (mut s, t) = build("p :- ~q, ~r. p2 :- ~q. q :- ~z. z.", "?- p, p2.");
        let qsym = s.intern_symbol("q");
        let qatom = Atom::new(qsym, Vec::new());
        assert!(t.node_for(&qatom).is_some());
        let count = t
            .tree_nodes()
            .iter()
            .filter(|n| n.goal.literals().first().map(|l| l.atom.clone()) == Some(qatom.clone()))
            .count();
        assert_eq!(count, 1, "shared subgoal expanded once");
    }

    #[test]
    fn failed_levels_track_depth() {
        // Chain: a1 :- ~a2. a2 :- ~a3. a3. — a3 succ@1, a2 fail@2, a1 succ@3.
        let (_, t) = build("a1 :- ~a2. a2 :- ~a3. a3.", "?- a1.");
        assert_eq!(t.status(), Status::Successful);
        assert_eq!(t.root().level_succ, Some(Ordinal::finite(3)));
    }

    #[test]
    fn budget_produces_indeterminate_not_wrong_answer() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "nat(0). nat(s(X)) :- nat(X). q :- ~nat(s(0)).").unwrap();
        let g = parse_goal(&mut s, "?- q.").unwrap();
        // Tight budgets: nat(s(0)) succeeds quickly, so q should fail
        // even with modest budgets.
        let t = GlobalTree::build(&mut s, &p, &g, GlobalOpts::default());
        assert_eq!(t.status(), Status::Failed);
    }

    #[test]
    fn empty_query_succeeds_at_level_one() {
        let (_, t) = build("p.", "?- .");
        assert_eq!(t.status(), Status::Successful);
        assert_eq!(t.root().level_succ, Some(Ordinal::finite(1)));
    }
}
