//! Computation rules (Def. 3.1 of the paper).
//!
//! * **safe** — never selects a nonground negative literal;
//! * **positivistic** — selects positive literals ahead of negative ones;
//! * **negatively parallel** — from an all-negative query selects *all*
//!   ground negative literals at once;
//! * **preferential** — positivistic and negatively parallel (implies
//!   safe). Global SLS-resolution requires a preferential rule for
//!   completeness (Examples 3.2 and 3.3 show how the two deviant rules
//!   below lose it).

use gsls_lang::{Goal, Literal, TermStore};

/// What a computation rule selects from a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Selection {
    /// A single positive literal at this index.
    Positive(usize),
    /// These ground negative literals, to be expanded together
    /// (negatively parallel: all of them; sequential deviant: one).
    Negatives(Vec<usize>),
    /// Only nonground negative literals remain: the goal flounders.
    Flounder,
    /// The query is empty (success).
    Empty,
}

/// The computation rules implemented by the engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RuleKind {
    /// The paper's rule: positivistic + negatively parallel (safe).
    #[default]
    Preferential,
    /// Deviant rule of Example 3.3: positivistic but expands only the
    /// *leftmost* ground negative literal of an all-negative query.
    SequentialNegative,
    /// Deviant rule of Example 3.2: plain leftmost-literal selection,
    /// negative literals included (not positivistic). A nonground
    /// negative literal in leftmost position **flounders** the goal —
    /// silently skipping it would select from a different goal than the
    /// one given, masking programs the safety lints exist to catch.
    LeftmostLiteral,
}

impl RuleKind {
    /// Whether the rule is positivistic.
    pub fn is_positivistic(self) -> bool {
        !matches!(self, RuleKind::LeftmostLiteral)
    }

    /// Whether the rule is negatively parallel.
    pub fn is_negatively_parallel(self) -> bool {
        matches!(self, RuleKind::Preferential)
    }

    /// Whether the rule is preferential (hence suitable for completeness).
    pub fn is_preferential(self) -> bool {
        matches!(self, RuleKind::Preferential)
    }

    /// Applies the rule to `goal`.
    pub fn select(self, store: &TermStore, goal: &Goal) -> Selection {
        if goal.is_empty() {
            return Selection::Empty;
        }
        match self {
            RuleKind::Preferential => {
                if let Some(i) = goal.literals().iter().position(Literal::is_pos) {
                    return Selection::Positive(i);
                }
                let ground: Vec<usize> = goal
                    .literals()
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| l.is_ground(store))
                    .map(|(i, _)| i)
                    .collect();
                if ground.is_empty() {
                    Selection::Flounder
                } else {
                    Selection::Negatives(ground)
                }
            }
            RuleKind::SequentialNegative => {
                if let Some(i) = goal.literals().iter().position(Literal::is_pos) {
                    return Selection::Positive(i);
                }
                match goal.literals().iter().position(|l| l.is_ground(store)) {
                    Some(i) => Selection::Negatives(vec![i]),
                    None => Selection::Flounder,
                }
            }
            RuleKind::LeftmostLiteral => {
                // Strictly leftmost: a nonground negative literal in
                // front position flounders the goal rather than being
                // silently skipped in favour of literals to its right.
                let l = &goal.literals()[0];
                if l.is_pos() {
                    Selection::Positive(0)
                } else if l.is_ground(store) {
                    Selection::Negatives(vec![0])
                } else {
                    Selection::Flounder
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsls_lang::parse_goal;

    fn goal(src: &str) -> (TermStore, Goal) {
        let mut s = TermStore::new();
        let g = parse_goal(&mut s, src).unwrap();
        (s, g)
    }

    #[test]
    fn preferential_prefers_positive() {
        let (s, g) = goal("~p(a), q(b), ~r(a)");
        assert_eq!(
            RuleKind::Preferential.select(&s, &g),
            Selection::Positive(1)
        );
    }

    #[test]
    fn preferential_takes_all_ground_negatives() {
        let (s, g) = goal("~p(a), ~q(b)");
        assert_eq!(
            RuleKind::Preferential.select(&s, &g),
            Selection::Negatives(vec![0, 1])
        );
    }

    #[test]
    fn preferential_flounders_on_nonground_only() {
        let (s, g) = goal("~p(X)");
        assert_eq!(RuleKind::Preferential.select(&s, &g), Selection::Flounder);
    }

    #[test]
    fn preferential_partial_ground_selection() {
        let (s, g) = goal("~p(X), ~q(a)");
        assert_eq!(
            RuleKind::Preferential.select(&s, &g),
            Selection::Negatives(vec![1])
        );
    }

    #[test]
    fn sequential_takes_one() {
        let (s, g) = goal("~p(a), ~q(b)");
        assert_eq!(
            RuleKind::SequentialNegative.select(&s, &g),
            Selection::Negatives(vec![0])
        );
    }

    #[test]
    fn leftmost_not_positivistic() {
        let (s, g) = goal("~p(a), q(b)");
        assert_eq!(
            RuleKind::LeftmostLiteral.select(&s, &g),
            Selection::Negatives(vec![0])
        );
        assert!(!RuleKind::LeftmostLiteral.is_positivistic());
    }

    #[test]
    fn leftmost_flounders_on_leading_nonground_negative() {
        // Regression: the old rule silently skipped ~p(X) and selected
        // q(X) — evaluating a different goal than the one given. The
        // floundering must surface.
        let (s, g) = goal("~p(X), q(X)");
        assert_eq!(
            RuleKind::LeftmostLiteral.select(&s, &g),
            Selection::Flounder
        );
        // With the binding literal first the same conjunction is fine.
        let (s, g) = goal("q(X), ~p(X)");
        assert_eq!(
            RuleKind::LeftmostLiteral.select(&s, &g),
            Selection::Positive(0)
        );
    }

    #[test]
    fn empty_goal_selected_as_empty() {
        let (s, g) = goal("?- .");
        for rule in [
            RuleKind::Preferential,
            RuleKind::SequentialNegative,
            RuleKind::LeftmostLiteral,
        ] {
            assert_eq!(rule.select(&s, &g), Selection::Empty);
        }
    }

    #[test]
    fn classification_flags() {
        assert!(RuleKind::Preferential.is_preferential());
        assert!(RuleKind::SequentialNegative.is_positivistic());
        assert!(!RuleKind::SequentialNegative.is_negatively_parallel());
        assert!(!RuleKind::LeftmostLiteral.is_preferential());
    }
}
