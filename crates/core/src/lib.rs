//! # gsls-core — Global SLS-resolution
//!
//! The paper's primary contribution (Ross, *A Procedural Semantics for
//! Well-Founded Negation in Logic Programs*, PODS 1989 / JLP 1992),
//! implemented in full:
//!
//! * [`ordinal`] — levels as ordinals below ω^ω (Def. 3.3, Example 3.1);
//! * [`rule`] — safe / positivistic / negatively-parallel / preferential
//!   computation rules, plus the two deviant rules of Examples 3.2–3.3;
//! * [`slp`] — SLP-trees with active/dead leaves, computed mgus, and
//!   sound ground-loop pruning (the ideal "infinite branch = failed");
//! * [`global`] — global trees with negation/tree/nonground nodes,
//!   bottom-up status assignment (successful / failed / floundered /
//!   indeterminate) and ordinal levels, with shared ground subgoals;
//! * [`deviant`] — goal evaluation under non-preferential rules,
//!   demonstrating the completeness counterexamples;
//! * [`tabled`] — the **effective** memoized engine for function-free
//!   programs (Sec. 7): relevant-subprogram extraction + SCC-local
//!   alternating fixpoints; agrees with the well-founded model;
//! * [`trace`] — ASCII rendering of SLP and global trees (Figures 1–4);
//! * [`solver`] — the user-facing facade.
//!
//! ```
//! use gsls_core::{Engine, Solver};
//! use gsls_lang::{parse_goal, parse_program, TermStore};
//! use gsls_wfs::Truth;
//!
//! let mut store = TermStore::new();
//! let program = parse_program(
//!     &mut store,
//!     "move(a, b). move(b, a). move(b, c). win(X) :- move(X, Y), ~win(Y).",
//! ).unwrap();
//! let mut solver = Solver::new(program);
//! let goal = parse_goal(&mut store, "?- win(b).").unwrap();
//! let result = solver.query(&mut store, &goal, Engine::Tabled).unwrap();
//! assert_eq!(result.truth, Truth::True);
//! ```

pub mod deviant;
pub mod global;
pub mod govern;
pub mod ground_tree;
pub mod ordinal;
pub mod rule;
pub mod scc;
pub mod session;
pub mod slp;
pub mod solver;
pub mod tabled;
pub mod trace;

pub use deviant::{evaluate as deviant_evaluate, DeviantOpts, Verdict};
pub use global::{
    GlobalAnswer, GlobalOpts, GlobalTree, NegChild, NegNode, Status, StatusFlags, TreeNode,
};
pub use govern::{
    CommitOpts, Guard, GuardBuilder, InterruptCause, InterruptHandle, InterruptPhase, QueryOpts,
    TripInfo, TICK_INTERVAL,
};
pub use ground_tree::{GroundStatus, GroundTreeAnalysis};
pub use ordinal::Ordinal;
pub use rule::{RuleKind, Selection};
pub use scc::SccSolver;
pub use session::{
    Answer, Answers, CommitError, CommitRejection, CommitStats, PreparedQuery, Session,
    SessionError, Snapshot, SnapshotQuery, UpdateBatch,
};
pub use slp::{SlpNode, SlpNodeKind, SlpOpts, SlpTree};
pub use solver::{Engine, QueryResult, Solver, SolverError};
pub use tabled::{TabledEngine, TabledStats};
pub use trace::{render_global, render_slp};
