//! ASCII rendering of SLP-trees and global trees.
//!
//! Regenerates the paper's Figures 1–4 (Example 3.1) as text: SLP-trees
//! with goals at nodes (the `←` is omitted, as in the paper, "for
//! clarity"), and global trees with `[ ]` tree nodes and `(not …)`
//! negation nodes annotated with status and level.

use crate::global::{GlobalTree, NegChild, Status, StatusFlags};
use crate::slp::{SlpNodeKind, SlpTree};
use gsls_lang::pretty::bare_goal;
use gsls_lang::{FxHashSet, TermStore};

/// Renders an SLP-tree, one node per line, children indented.
pub fn render_slp(store: &TermStore, tree: &SlpTree) -> String {
    let mut out = String::new();
    render_slp_node(store, tree, 0, 0, &mut out);
    out
}

fn render_slp_node(store: &TermStore, tree: &SlpTree, idx: u32, indent: usize, out: &mut String) {
    let node = &tree.nodes()[idx as usize];
    for _ in 0..indent {
        out.push_str("  ");
    }
    out.push_str(&bare_goal(store, &node.goal));
    match node.kind {
        SlpNodeKind::ActiveLeaf => out.push_str("   (active)"),
        SlpNodeKind::DeadLeaf => out.push_str("   (dead)"),
        SlpNodeKind::LoopLeaf => out.push_str("   (loop: failed)"),
        SlpNodeKind::Truncated => out.push_str("   (…budget)"),
        SlpNodeKind::Internal => {}
    }
    out.push('\n');
    for &c in &node.children {
        render_slp_node(store, tree, c, indent + 1, out);
    }
}

fn status_tag(flags: StatusFlags, level: Option<&crate::ordinal::Ordinal>) -> String {
    let mut tag = match flags.primary() {
        Status::Successful => "successful".to_owned(),
        Status::Failed => "failed".to_owned(),
        Status::Floundered => "floundered".to_owned(),
        Status::Indeterminate => "indeterminate".to_owned(),
    };
    if flags.successful && flags.floundered {
        tag = "successful+floundered".to_owned();
    }
    if let Some(l) = level {
        tag.push_str(&format!(", level {l}"));
    }
    tag
}

/// Renders a global tree: tree nodes as `[goal]`, negation nodes as
/// `(not l1, l2, …)`, shared subtrees referenced once (`@ see above`).
pub fn render_global(store: &TermStore, tree: &GlobalTree) -> String {
    let mut out = String::new();
    let mut visited = FxHashSet::default();
    render_tree_node(store, tree, 0, 0, &mut visited, &mut out);
    out
}

fn render_tree_node(
    store: &TermStore,
    tree: &GlobalTree,
    idx: u32,
    indent: usize,
    visited: &mut FxHashSet<u32>,
    out: &mut String,
) {
    let node = &tree.tree_nodes()[idx as usize];
    for _ in 0..indent {
        out.push_str("  ");
    }
    let level = if node.flags.successful {
        node.level_succ.as_ref()
    } else {
        node.level_fail.as_ref()
    };
    out.push_str(&format!(
        "[{}]   ({})\n",
        bare_goal(store, &node.goal),
        status_tag(node.flags, level)
    ));
    if !visited.insert(idx) {
        for _ in 0..=indent {
            out.push_str("  ");
        }
        out.push_str("@ shared subtree, see above\n");
        return;
    }
    let leaves = node.slp.active_leaves();
    for (j, neg) in node.negnodes.iter().enumerate() {
        for _ in 0..=indent {
            out.push_str("  ");
        }
        let leaf_goal = &node.slp.nodes()[leaves[j] as usize].goal;
        out.push_str(&format!(
            "(not: {})   ({})\n",
            bare_goal(store, leaf_goal),
            status_tag(neg.flags, neg.level.as_ref())
        ));
        for child in &neg.children {
            match child {
                NegChild::Tree(t) => render_tree_node(store, tree, *t, indent + 2, visited, out),
                NegChild::NonGround(atom) => {
                    for _ in 0..indent + 2 {
                        out.push_str("  ");
                    }
                    out.push_str(&format!(
                        "<nonground {}>   (floundered)\n",
                        atom.display(store)
                    ));
                }
                NegChild::Unexpanded(atom) => {
                    for _ in 0..indent + 2 {
                        out.push_str("  ");
                    }
                    out.push_str(&format!(
                        "<unexpanded {}>   (…budget)\n",
                        atom.display(store)
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::GlobalOpts;
    use crate::slp::SlpOpts;
    use gsls_lang::{parse_goal, parse_program};

    #[test]
    fn slp_rendering_shows_leaf_kinds() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "win(X) :- move(X, Y), ~win(Y). move(a, b).").unwrap();
        let g = parse_goal(&mut s, "?- win(a).").unwrap();
        let t = SlpTree::build(&mut s, &p, &g, SlpOpts::default());
        let text = render_slp(&s, &t);
        assert!(text.contains("win(a)"));
        assert!(text.contains("(active)"));
        assert!(text.contains("~win(b)"));
    }

    #[test]
    fn global_rendering_shows_statuses_and_levels() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "p :- ~q.").unwrap();
        let g = parse_goal(&mut s, "?- p.").unwrap();
        let t = GlobalTree::build(&mut s, &p, &g, GlobalOpts::default());
        let text = render_global(&s, &t);
        assert!(text.contains("successful, level 2"), "{text}");
        assert!(text.contains("failed, level 1"), "{text}");
        assert!(text.contains("(not: ~q)"), "{text}");
    }

    #[test]
    fn shared_subtrees_marked() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "p :- ~q, ~q2. p2 :- ~q. q :- ~z. q2 :- ~q.").unwrap();
        let g = parse_goal(&mut s, "?- p, p2.").unwrap();
        let t = GlobalTree::build(&mut s, &p, &g, GlobalOpts::default());
        let text = render_global(&s, &t);
        assert!(text.contains("@ shared subtree"), "{text}");
    }

    #[test]
    fn floundered_nodes_rendered() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "p(X) :- ~q(f(X)). q(a).").unwrap();
        let g = parse_goal(&mut s, "?- p(X).").unwrap();
        let t = GlobalTree::build(&mut s, &p, &g, GlobalOpts::default());
        let text = render_global(&s, &t);
        assert!(text.contains("<nonground"), "{text}");
        assert!(text.contains("floundered"), "{text}");
    }

    #[test]
    fn empty_goal_renders_box() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "p.").unwrap();
        let g = parse_goal(&mut s, "?- p.").unwrap();
        let t = GlobalTree::build(&mut s, &p, &g, GlobalOpts::default());
        let text = render_global(&s, &t);
        assert!(text.contains('□'), "{text}");
    }
}
