//! The solver facade: one entry point over all engines.
//!
//! A [`Solver`] owns the program and chooses the engine:
//!
//! * [`Engine::Tabled`] — the effective memoized engine (Sec. 7), exact
//!   for function-free programs; ground queries and nonground
//!   single-literal queries;
//! * [`Engine::GlobalTree`] — explicit global-tree construction: needed
//!   when you want the tree itself (traces, levels, floundering
//!   diagnosis) or when the program has function symbols (budgeted);
//! * the SLDNF and SLS baselines live in `gsls-resolution` and are
//!   compared in the experiment harness, not proxied here.

use crate::global::{GlobalOpts, GlobalTree, Status};
use crate::tabled::TabledEngine;
use gsls_ground::{Grounder, GrounderOpts};
use gsls_lang::{match_term, Atom, Goal, Literal, Program, Subst, TermStore};
use gsls_wfs::Truth;
use std::fmt;

/// Engine selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Memoized effective engine (function-free programs).
    #[default]
    Tabled,
    /// Explicit (budgeted) global-tree construction.
    GlobalTree,
}

/// A three-valued query verdict with optional answer substitutions.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The verdict for the query as a whole. For nonground queries,
    /// `True` means *some* instance is true; `False` means *every*
    /// instance is false.
    pub truth: Truth,
    /// Substitutions whose instances are true (for queries with
    /// variables; ground queries get at most the empty substitution).
    pub answers: Vec<Subst>,
    /// Substitutions whose instances are undefined.
    pub undefined: Vec<Subst>,
    /// Whether the evaluation floundered (global-tree engine only).
    pub floundered: bool,
}

/// Solver errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolverError {
    /// The tabled engine requires function-free programs.
    NotFunctionFree,
    /// Grounding exceeded its budget.
    Grounding(String),
    /// Query shape not supported by the selected engine.
    Unsupported(String),
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::NotFunctionFree => {
                write!(f, "tabled engine requires a function-free program")
            }
            SolverError::Grounding(e) => write!(f, "grounding failed: {e}"),
            SolverError::Unsupported(e) => write!(f, "unsupported query: {e}"),
        }
    }
}

impl std::error::Error for SolverError {}

/// The solver facade.
pub struct Solver {
    program: Program,
    tabled: Option<TabledEngine>,
    global_opts: GlobalOpts,
    grounder_opts: GrounderOpts,
}

impl Solver {
    /// Creates a solver for `program`.
    pub fn new(program: Program) -> Self {
        Solver {
            program,
            tabled: None,
            global_opts: GlobalOpts::default(),
            grounder_opts: GrounderOpts::default(),
        }
    }

    /// Overrides the global-tree budgets.
    pub fn with_global_opts(mut self, opts: GlobalOpts) -> Self {
        self.global_opts = opts;
        self
    }

    /// Overrides the grounding options.
    pub fn with_grounder_opts(mut self, opts: GrounderOpts) -> Self {
        self.grounder_opts = opts;
        self
    }

    /// The program under evaluation.
    pub fn program(&self) -> &Program {
        &self.program
    }

    fn ensure_tabled(&mut self, store: &mut TermStore) -> Result<&mut TabledEngine, SolverError> {
        if !self.program.is_function_free(store) {
            return Err(SolverError::NotFunctionFree);
        }
        if self.tabled.is_none() {
            let gp = Grounder::ground_with(store, &self.program, self.grounder_opts)
                .map_err(|e| SolverError::Grounding(e.to_string()))?;
            self.tabled = Some(TabledEngine::new(gp));
        }
        Ok(self.tabled.as_mut().expect("just initialised"))
    }

    /// Truth of a single ground literal under the selected engine.
    pub fn literal_truth(
        &mut self,
        store: &mut TermStore,
        lit: &Literal,
        engine: Engine,
    ) -> Result<Truth, SolverError> {
        let goal = Goal::new(vec![lit.clone()]);
        let r = self.query(store, &goal, engine)?;
        Ok(r.truth)
    }

    /// Evaluates a query.
    ///
    /// Supported shapes: any ground query; nonground queries whose
    /// positive literals can enumerate bindings (tabled engine: via the
    /// interned atom table; global-tree engine: via SLP search).
    pub fn query(
        &mut self,
        store: &mut TermStore,
        goal: &Goal,
        engine: Engine,
    ) -> Result<QueryResult, SolverError> {
        match engine {
            Engine::Tabled => self.query_tabled(store, goal),
            Engine::GlobalTree => Ok(self.query_global(store, goal)),
        }
    }

    fn query_tabled(
        &mut self,
        store: &mut TermStore,
        goal: &Goal,
    ) -> Result<QueryResult, SolverError> {
        if goal.is_ground(store) {
            let eng = self.ensure_tabled(store)?;
            let mut truth = Truth::True;
            for lit in goal.literals() {
                let atom_truth = match eng.ground_program().lookup_atom(&lit.atom) {
                    Some(id) => eng.truth(id),
                    None => Truth::False, // never derivable
                };
                let lit_truth = match (lit.is_pos(), atom_truth) {
                    (true, t) => t,
                    (false, Truth::True) => Truth::False,
                    (false, Truth::False) => Truth::True,
                    (false, Truth::Undefined) => Truth::Undefined,
                };
                truth = min_truth(truth, lit_truth);
            }
            let (answers, undefined) = match truth {
                Truth::True => (vec![Subst::new()], Vec::new()),
                Truth::Undefined => (Vec::new(), vec![Subst::new()]),
                Truth::False => (Vec::new(), Vec::new()),
            };
            return Ok(QueryResult {
                truth,
                answers,
                undefined,
                floundered: false,
            });
        }
        // Nonground: enumerate instances of the first positive literal
        // from the interned atom table, recurse on each instance.
        let Some(pos_idx) = goal.literals().iter().position(Literal::is_pos) else {
            // All-negative nonground query: the tree procedure flounders
            // here, but over a function-free program the Herbrand
            // universe is the finite constant set, so the query can be
            // answered by domain enumeration — the finite-domain
            // counterpart of the constructive-negation escape hatch the
            // paper's Section 6 points to [4, 20].
            return self.query_all_negative(store, goal);
        };
        let pattern = goal.literals()[pos_idx].atom.clone();
        let goal_vars = goal.vars(store);
        let candidates: Vec<Atom> = {
            let eng = self.ensure_tabled(store)?;
            let gp = eng.ground_program();
            // The per-predicate index from `finalize` replaces a scan
            // (and clone) of the entire atom table.
            gp.atoms_with_pred(pattern.pred_id())
                .map(|a| gp.atom(a).clone())
                .collect()
        };
        let mut answers = Vec::new();
        let mut undefined = Vec::new();
        let mut any_undef_overall = false;
        for cand in candidates {
            let mut sub = Subst::new();
            let matches = pattern
                .args
                .iter()
                .zip(cand.args.iter())
                .all(|(&p, &t)| match_term(store, &mut sub, p, t));
            if !matches {
                continue;
            }
            let inst = sub.resolve_goal(store, goal);
            let r = self.query_tabled(store, &inst)?;
            let binding = sub.restricted_to(store, &goal_vars);
            match r.truth {
                Truth::True => answers.push(binding),
                Truth::Undefined => {
                    undefined.push(binding);
                    any_undef_overall = true;
                }
                Truth::False => {}
            }
        }
        let truth = if !answers.is_empty() {
            Truth::True
        } else if any_undef_overall {
            Truth::Undefined
        } else {
            Truth::False
        };
        Ok(QueryResult {
            truth,
            answers,
            undefined,
            floundered: false,
        })
    }

    /// Answers a nonground all-negative query by enumerating the finite
    /// Herbrand universe (constants) for its variables.
    fn query_all_negative(
        &mut self,
        store: &mut TermStore,
        goal: &Goal,
    ) -> Result<QueryResult, SolverError> {
        const MAX_INSTANCES: usize = 100_000;
        let universe: Vec<gsls_lang::TermId> =
            gsls_ground::herbrand::constants_with_default(store, &self.program)
                .into_iter()
                .map(|c| store.app(c, &[]))
                .collect();
        let vars = goal.vars(store);
        let total = universe.len().checked_pow(vars.len() as u32);
        if total.is_none_or(|t| t > MAX_INSTANCES) {
            return Err(SolverError::Unsupported(format!(
                "all-negative query over {} variables × {} constants exceeds the \
                 enumeration budget",
                vars.len(),
                universe.len()
            )));
        }
        let mut answers = Vec::new();
        let mut undefined = Vec::new();
        let mut indices = vec![0usize; vars.len()];
        loop {
            let mut sub = Subst::new();
            for (v, &i) in vars.iter().zip(&indices) {
                sub.bind(*v, universe[i]);
            }
            let inst = sub.resolve_goal(store, goal);
            let r = self.query_tabled(store, &inst)?;
            let binding = sub.restricted_to(store, &vars);
            match r.truth {
                Truth::True => answers.push(binding),
                Truth::Undefined => undefined.push(binding),
                Truth::False => {}
            }
            // Odometer increment.
            let mut k = 0;
            loop {
                if k == indices.len() {
                    let truth = if !answers.is_empty() {
                        Truth::True
                    } else if !undefined.is_empty() {
                        Truth::Undefined
                    } else {
                        Truth::False
                    };
                    return Ok(QueryResult {
                        truth,
                        answers,
                        undefined,
                        floundered: false,
                    });
                }
                indices[k] += 1;
                if indices[k] < universe.len() {
                    break;
                }
                indices[k] = 0;
                k += 1;
            }
        }
    }

    fn query_global(&self, store: &mut TermStore, goal: &Goal) -> QueryResult {
        let tree = GlobalTree::build(store, &self.program, goal, self.global_opts);
        let answers = tree
            .answers(store)
            .into_iter()
            .map(|a| a.subst)
            .collect::<Vec<_>>();
        let (truth, floundered) = match tree.status() {
            Status::Successful => (Truth::True, tree.root().flags.floundered),
            Status::Failed => (Truth::False, false),
            Status::Floundered => (Truth::Undefined, true),
            Status::Indeterminate => (Truth::Undefined, false),
        };
        QueryResult {
            truth,
            answers,
            undefined: Vec::new(),
            floundered,
        }
    }

    /// Builds (and returns) the global tree for a goal — for traces and
    /// level inspection.
    pub fn global_tree(&self, store: &mut TermStore, goal: &Goal) -> GlobalTree {
        GlobalTree::build(store, &self.program, goal, self.global_opts)
    }
}

fn min_truth(a: Truth, b: Truth) -> Truth {
    fn rank(t: Truth) -> u8 {
        match t {
            Truth::False => 0,
            Truth::Undefined => 1,
            Truth::True => 2,
        }
    }
    if rank(a) <= rank(b) {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsls_lang::{parse_goal, parse_program};

    fn solver(src: &str) -> (TermStore, Solver) {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, src).unwrap();
        (s, Solver::new(p))
    }

    const WINGAME: &str = "move(a, b). move(b, a). move(b, c). win(X) :- move(X, Y), ~win(Y).";

    #[test]
    fn ground_query_both_engines_agree() {
        for engine in [Engine::Tabled, Engine::GlobalTree] {
            let (mut s, mut solver) = solver(WINGAME);
            let g = parse_goal(&mut s, "?- win(b).").unwrap();
            let r = solver.query(&mut s, &g, engine).unwrap();
            assert_eq!(r.truth, Truth::True, "{engine:?}");
            let g2 = parse_goal(&mut s, "?- win(a).").unwrap();
            let r2 = solver.query(&mut s, &g2, engine).unwrap();
            assert_eq!(r2.truth, Truth::False, "{engine:?}");
        }
    }

    #[test]
    fn nonground_enumeration_tabled() {
        let (mut s, mut solver) = solver(WINGAME);
        let g = parse_goal(&mut s, "?- win(X).").unwrap();
        let r = solver.query(&mut s, &g, Engine::Tabled).unwrap();
        assert_eq!(r.truth, Truth::True);
        assert_eq!(r.answers.len(), 1);
        assert_eq!(r.answers[0].display(&s), "{X = b}");
        assert!(r.undefined.is_empty());
    }

    #[test]
    fn undefined_instances_reported() {
        let src = "move(a, b). move(b, a). win(X) :- move(X, Y), ~win(Y).";
        let (mut s, mut solver) = solver(src);
        let g = parse_goal(&mut s, "?- win(X).").unwrap();
        let r = solver.query(&mut s, &g, Engine::Tabled).unwrap();
        assert_eq!(r.truth, Truth::Undefined);
        assert_eq!(r.undefined.len(), 2);
    }

    #[test]
    fn conjunctive_ground_query() {
        let (mut s, mut solver) = solver("p. q :- ~r.");
        let g = parse_goal(&mut s, "?- p, q.").unwrap();
        let r = solver.query(&mut s, &g, Engine::Tabled).unwrap();
        assert_eq!(r.truth, Truth::True);
        let g2 = parse_goal(&mut s, "?- p, ~q.").unwrap();
        let r2 = solver.query(&mut s, &g2, Engine::Tabled).unwrap();
        assert_eq!(r2.truth, Truth::False);
    }

    #[test]
    fn join_with_negative_literal() {
        let (mut s, mut solver) = solver("d(a). d(b). d(c). bad(b). good(X) :- d(X), ~bad(X).");
        let g = parse_goal(&mut s, "?- d(X), ~bad(X).").unwrap();
        let r = solver.query(&mut s, &g, Engine::Tabled).unwrap();
        assert_eq!(r.answers.len(), 2);
    }

    #[test]
    fn function_symbols_rejected_by_tabled() {
        let (mut s, mut solver) = solver("nat(0). nat(s(X)) :- nat(X).");
        let g = parse_goal(&mut s, "?- nat(0).").unwrap();
        assert_eq!(
            solver.query(&mut s, &g, Engine::Tabled).unwrap_err(),
            SolverError::NotFunctionFree
        );
        // The global-tree engine handles it.
        let r = solver.query(&mut s, &g, Engine::GlobalTree).unwrap();
        assert_eq!(r.truth, Truth::True);
    }

    #[test]
    fn all_negative_nonground_enumerated() {
        // The tree procedure flounders on ?- ~q(X); the tabled engine
        // answers by finite-domain enumeration: q(a) true, q(b) false.
        let (mut s, mut solver) = solver("q(a). d(b).");
        let g = parse_goal(&mut s, "?- ~q(X).").unwrap();
        let r = solver.query(&mut s, &g, Engine::Tabled).unwrap();
        assert_eq!(r.truth, Truth::True);
        assert_eq!(r.answers.len(), 1);
        assert_eq!(r.answers[0].display(&s), "{X = b}");
    }

    #[test]
    fn all_negative_two_variables() {
        let (mut s, mut solver) = solver("e(a, b). d(a). d(b).");
        let g = parse_goal(&mut s, "?- ~e(X, Y).").unwrap();
        let r = solver.query(&mut s, &g, Engine::Tabled).unwrap();
        // 4 pairs, only (a,b) is an edge.
        assert_eq!(r.answers.len(), 3);
    }

    #[test]
    fn global_engine_reports_floundering() {
        let (mut s, solver) = solver("p(X) :- ~q(f(X)). q(a).");
        let g = parse_goal(&mut s, "?- p(X).").unwrap();
        let r = solver.query_global(&mut s, &g);
        assert!(r.floundered);
    }

    #[test]
    fn literal_truth_shorthand() {
        let (mut s, mut solver) = solver("p.");
        let g = parse_goal(&mut s, "?- ~p.").unwrap();
        let t = solver
            .literal_truth(&mut s, &g.literals()[0], Engine::Tabled)
            .unwrap();
        assert_eq!(t, Truth::False);
    }

    #[test]
    fn unknown_atom_is_false() {
        let (mut s, mut solver) = solver("p.");
        let g = parse_goal(&mut s, "?- zzz.").unwrap();
        let r = solver.query(&mut s, &g, Engine::Tabled).unwrap();
        assert_eq!(r.truth, Truth::False);
    }
}
