//! The batch-compatibility facade: one-shot programs, caller-owned
//! [`TermStore`]s.
//!
//! [`Solver`] predates [`crate::Session`] and survives as a **thin
//! shim over the session machinery**: the `Tabled` engine grounds the
//! program once, materializes the well-founded model, and evaluates
//! queries through the same compiled-plan streaming evaluator
//! (`QueryPlan` / `Answers`) a session's prepared queries use — only
//! the incremental layers (delta grounding, warm-chain maintenance,
//! snapshots) are absent, because a `Solver`'s program never changes.
//! New code should use [`crate::Session`]; see the crate-root
//! migration notes.
//!
//! * [`Engine::Tabled`] — the memoized/model-backed engine, exact for
//!   function-free programs; any query shape over the finite domain;
//! * [`Engine::GlobalTree`] — explicit global-tree construction: needed
//!   when you want the tree itself (traces, levels, floundering
//!   diagnosis) or when the program has function symbols (budgeted);
//! * the SLDNF and SLS baselines live in `gsls-resolution` and are
//!   compared in the experiment harness, not proxied here.

use crate::global::{GlobalOpts, GlobalTree, Status};
use crate::session::{ModelView, QueryPlan, QueryScratch, SessionError};
use gsls_ground::{herbrand, GroundProgram, Grounder, GrounderOpts};
use gsls_lang::{Goal, Literal, Program, Subst, TermStore};
use gsls_wfs::{well_founded_model, Interp, Truth};
use std::fmt;

/// Engine selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Memoized effective engine (function-free programs): the
    /// materialized well-founded model behind the streaming query
    /// evaluator.
    #[default]
    Tabled,
    /// Explicit (budgeted) global-tree construction.
    GlobalTree,
}

/// A three-valued query verdict with optional answer substitutions.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The verdict for the query as a whole. For nonground queries,
    /// `True` means *some* instance is true; `False` means *every*
    /// instance is false.
    pub truth: Truth,
    /// Substitutions whose instances are true (for queries with
    /// variables; ground queries get at most the empty substitution).
    pub answers: Vec<Subst>,
    /// Substitutions whose instances are undefined.
    pub undefined: Vec<Subst>,
    /// Whether the evaluation floundered (global-tree engine only).
    pub floundered: bool,
    /// `Some(cause)` when a governed enumeration stopped early
    /// (deadline, cancellation, fuel): the answers above are a valid
    /// *partial* set and `truth` reflects only what was enumerated.
    /// Always `None` for ungoverned runs.
    pub interrupted: Option<crate::govern::InterruptCause>,
}

/// Solver errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolverError {
    /// The tabled engine requires function-free programs.
    NotFunctionFree,
    /// Grounding exceeded its budget.
    Grounding(String),
    /// Query shape not supported by the selected engine.
    Unsupported(String),
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::NotFunctionFree => {
                write!(f, "tabled engine requires a function-free program")
            }
            SolverError::Grounding(e) => write!(f, "grounding failed: {e}"),
            SolverError::Unsupported(e) => write!(f, "unsupported query: {e}"),
        }
    }
}

impl std::error::Error for SolverError {}

impl From<SessionError> for SolverError {
    fn from(e: SessionError) -> Self {
        match e {
            SessionError::NotFunctionFree => SolverError::NotFunctionFree,
            SessionError::Grounding(g) => SolverError::Grounding(g),
            other => SolverError::Unsupported(other.to_string()),
        }
    }
}

/// The ground-and-solve state behind the `Tabled` engine, built on the
/// first tabled query.
struct ModelState {
    gp: GroundProgram,
    model: Interp,
    /// Constants (with the invented default if the program has none)
    /// for all-negative enumeration — the finite-domain counterpart of
    /// the constructive-negation escape hatch the paper's Section 6
    /// points to [4, 20].
    domain: Vec<gsls_lang::TermId>,
}

/// The compatibility facade.
pub struct Solver {
    program: Program,
    ready: Option<ModelState>,
    global_opts: GlobalOpts,
    grounder_opts: GrounderOpts,
}

impl Solver {
    /// Creates a solver for `program`.
    pub fn new(program: Program) -> Self {
        Solver {
            program,
            ready: None,
            global_opts: GlobalOpts::default(),
            grounder_opts: GrounderOpts::default(),
        }
    }

    /// Overrides the global-tree budgets.
    pub fn with_global_opts(mut self, opts: GlobalOpts) -> Self {
        self.global_opts = opts;
        self
    }

    /// Overrides the grounding options.
    pub fn with_grounder_opts(mut self, opts: GrounderOpts) -> Self {
        self.grounder_opts = opts;
        self
    }

    /// The program under evaluation.
    pub fn program(&self) -> &Program {
        &self.program
    }

    fn ensure_ready(&mut self, store: &mut TermStore) -> Result<&ModelState, SolverError> {
        if !self.program.is_function_free(store) {
            return Err(SolverError::NotFunctionFree);
        }
        if self.ready.is_none() {
            let gp = Grounder::ground_with(store, &self.program, self.grounder_opts)
                .map_err(|e| SolverError::Grounding(e.to_string()))?;
            let model = well_founded_model(&gp);
            let domain = herbrand::constants_with_default(store, &self.program)
                .into_iter()
                .map(|c| store.app(c, &[]))
                .collect();
            self.ready = Some(ModelState { gp, model, domain });
        }
        Ok(self.ready.as_ref().expect("just initialised"))
    }

    /// Truth of a single ground literal under the selected engine.
    pub fn literal_truth(
        &mut self,
        store: &mut TermStore,
        lit: &Literal,
        engine: Engine,
    ) -> Result<Truth, SolverError> {
        let goal = Goal::new(vec![lit.clone()]);
        let r = self.query(store, &goal, engine)?;
        Ok(r.truth)
    }

    /// Evaluates a query.
    ///
    /// Supported shapes under the tabled engine: any conjunction of
    /// literals over the finite domain — positive literals enumerate
    /// candidates from the interned atom table, variables bound by no
    /// positive literal are enumerated over the constant domain
    /// (budgeted).
    pub fn query(
        &mut self,
        store: &mut TermStore,
        goal: &Goal,
        engine: Engine,
    ) -> Result<QueryResult, SolverError> {
        match engine {
            Engine::Tabled => self.query_tabled(store, goal),
            Engine::GlobalTree => Ok(self.query_global(store, goal)),
        }
    }

    fn query_tabled(
        &mut self,
        store: &mut TermStore,
        goal: &Goal,
    ) -> Result<QueryResult, SolverError> {
        self.ensure_ready(store)?;
        let plan = QueryPlan::compile(store, goal)?;
        let st = self.ready.as_ref().expect("ensure_ready succeeded");
        let view = ModelView {
            store,
            gp: &st.gp,
            model: &st.model,
            domain: &st.domain,
        };
        let mut scratch = QueryScratch::default();
        let answers = plan.run(view, &mut scratch)?;
        Ok(answers.collect_result())
    }

    fn query_global(&self, store: &mut TermStore, goal: &Goal) -> QueryResult {
        let tree = GlobalTree::build(store, &self.program, goal, self.global_opts);
        let answers = tree
            .answers(store)
            .into_iter()
            .map(|a| a.subst)
            .collect::<Vec<_>>();
        let (truth, floundered) = match tree.status() {
            Status::Successful => (Truth::True, tree.root().flags.floundered),
            Status::Failed => (Truth::False, false),
            Status::Floundered => (Truth::Undefined, true),
            Status::Indeterminate => (Truth::Undefined, false),
        };
        QueryResult {
            truth,
            answers,
            undefined: Vec::new(),
            floundered,
            interrupted: None,
        }
    }

    /// Builds (and returns) the global tree for a goal — for traces and
    /// level inspection.
    pub fn global_tree(&self, store: &mut TermStore, goal: &Goal) -> GlobalTree {
        GlobalTree::build(store, &self.program, goal, self.global_opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsls_lang::{parse_goal, parse_program};

    fn solver(src: &str) -> (TermStore, Solver) {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, src).unwrap();
        (s, Solver::new(p))
    }

    const WINGAME: &str = "move(a, b). move(b, a). move(b, c). win(X) :- move(X, Y), ~win(Y).";

    #[test]
    fn ground_query_both_engines_agree() {
        for engine in [Engine::Tabled, Engine::GlobalTree] {
            let (mut s, mut solver) = solver(WINGAME);
            let g = parse_goal(&mut s, "?- win(b).").unwrap();
            let r = solver.query(&mut s, &g, engine).unwrap();
            assert_eq!(r.truth, Truth::True, "{engine:?}");
            let g2 = parse_goal(&mut s, "?- win(a).").unwrap();
            let r2 = solver.query(&mut s, &g2, engine).unwrap();
            assert_eq!(r2.truth, Truth::False, "{engine:?}");
        }
    }

    #[test]
    fn nonground_enumeration_tabled() {
        let (mut s, mut solver) = solver(WINGAME);
        let g = parse_goal(&mut s, "?- win(X).").unwrap();
        let r = solver.query(&mut s, &g, Engine::Tabled).unwrap();
        assert_eq!(r.truth, Truth::True);
        assert_eq!(r.answers.len(), 1);
        assert_eq!(r.answers[0].display(&s), "{X = b}");
        assert!(r.undefined.is_empty());
    }

    #[test]
    fn undefined_instances_reported() {
        let src = "move(a, b). move(b, a). win(X) :- move(X, Y), ~win(Y).";
        let (mut s, mut solver) = solver(src);
        let g = parse_goal(&mut s, "?- win(X).").unwrap();
        let r = solver.query(&mut s, &g, Engine::Tabled).unwrap();
        assert_eq!(r.truth, Truth::Undefined);
        assert_eq!(r.undefined.len(), 2);
    }

    #[test]
    fn conjunctive_ground_query() {
        let (mut s, mut solver) = solver("p. q :- ~r.");
        let g = parse_goal(&mut s, "?- p, q.").unwrap();
        let r = solver.query(&mut s, &g, Engine::Tabled).unwrap();
        assert_eq!(r.truth, Truth::True);
        let g2 = parse_goal(&mut s, "?- p, ~q.").unwrap();
        let r2 = solver.query(&mut s, &g2, Engine::Tabled).unwrap();
        assert_eq!(r2.truth, Truth::False);
    }

    #[test]
    fn join_with_negative_literal() {
        let (mut s, mut solver) = solver("d(a). d(b). d(c). bad(b). good(X) :- d(X), ~bad(X).");
        let g = parse_goal(&mut s, "?- d(X), ~bad(X).").unwrap();
        let r = solver.query(&mut s, &g, Engine::Tabled).unwrap();
        assert_eq!(r.answers.len(), 2);
    }

    #[test]
    fn function_symbols_rejected_by_tabled() {
        let (mut s, mut solver) = solver("nat(0). nat(s(X)) :- nat(X).");
        let g = parse_goal(&mut s, "?- nat(0).").unwrap();
        assert_eq!(
            solver.query(&mut s, &g, Engine::Tabled).unwrap_err(),
            SolverError::NotFunctionFree
        );
        // The global-tree engine handles it.
        let r = solver.query(&mut s, &g, Engine::GlobalTree).unwrap();
        assert_eq!(r.truth, Truth::True);
    }

    #[test]
    fn all_negative_nonground_enumerated() {
        // The tree procedure flounders on ?- ~q(X); the tabled engine
        // answers by finite-domain enumeration: q(a) true, q(b) false.
        let (mut s, mut solver) = solver("q(a). d(b).");
        let g = parse_goal(&mut s, "?- ~q(X).").unwrap();
        let r = solver.query(&mut s, &g, Engine::Tabled).unwrap();
        assert_eq!(r.truth, Truth::True);
        assert_eq!(r.answers.len(), 1);
        assert_eq!(r.answers[0].display(&s), "{X = b}");
    }

    #[test]
    fn all_negative_two_variables() {
        let (mut s, mut solver) = solver("e(a, b). d(a). d(b).");
        let g = parse_goal(&mut s, "?- ~e(X, Y).").unwrap();
        let r = solver.query(&mut s, &g, Engine::Tabled).unwrap();
        // 4 pairs, only (a,b) is an edge.
        assert_eq!(r.answers.len(), 3);
    }

    #[test]
    fn global_engine_reports_floundering() {
        let (mut s, solver) = solver("p(X) :- ~q(f(X)). q(a).");
        let g = parse_goal(&mut s, "?- p(X).").unwrap();
        let r = solver.query_global(&mut s, &g);
        assert!(r.floundered);
    }

    #[test]
    fn literal_truth_shorthand() {
        let (mut s, mut solver) = solver("p.");
        let g = parse_goal(&mut s, "?- ~p.").unwrap();
        let t = solver
            .literal_truth(&mut s, &g.literals()[0], Engine::Tabled)
            .unwrap();
        assert_eq!(t, Truth::False);
    }

    #[test]
    fn unknown_atom_is_false() {
        let (mut s, mut solver) = solver("p.");
        let g = parse_goal(&mut s, "?- zzz.").unwrap();
        let r = solver.query(&mut s, &g, Engine::Tabled).unwrap();
        assert_eq!(r.truth, Truth::False);
    }
}
