//! # gsls-ground — Herbrand machinery and program analyses
//!
//! This crate provides everything between the object language and the
//! fixpoint/resolution engines:
//!
//! * [`herbrand`] — Herbrand universe enumeration (Def. 1.2), the
//!   **augmented program** P′ of Def. 6.1 (universal query problem), and
//!   the `term/1` anti-floundering transform of Sec. 6;
//! * [`grounder`] — Herbrand instantiation (Def. 1.5): compiles a program
//!   to a dense [`GroundProgram`] over interned ground-atom ids, using a
//!   **semi-naive** relevant-grounding fixpoint so only rules whose
//!   positive bodies are potentially derivable are emitted. Rule bodies
//!   are compiled once into **join plans** (selectivity-ordered literals,
//!   composite bound-argument indexes, delta sub-ranges, a relevance
//!   index routing each round to the plans whose delta grew — see the
//!   `plan` and `factstore` module docs), with a deliberately simple
//!   [`JoinStrategy::Naive`] oracle retained for differential testing;
//! * [`depgraph`] — predicate/atom dependency graphs, Tarjan SCCs,
//!   stratification, local stratification and acyclicity tests for the
//!   program classes discussed in Sec. 7 of the paper.
//!
//! ## CSR ground-program layout
//!
//! [`GroundProgram`] is the substrate every fixpoint engine runs on, so
//! its layout is optimised for iteration, not mutation:
//!
//! * clause bodies live in **one flat `Vec<GroundAtomId>`** (positive
//!   literals first, then negative), delimited per clause by two offset
//!   tables — no per-clause boxes, no pointer chasing;
//! * [`GroundProgram::clause`] returns a borrowed [`ClauseRef`] view
//!   (`head` + `pos`/`neg` slices); the owned [`GroundClause`] exists
//!   only as a builder/dedup key;
//! * [`GroundProgram::finalize`] precomputes four reverse indexes in one
//!   pass: head → clauses, atom → positively-watching clauses (one entry
//!   per occurrence, so counter propagation decrements per watch), atom →
//!   negatively-watching clauses, and predicate → atoms. Engines
//!   (`gsls_wfs::Propagator`, the tabled engine, the solver) read these
//!   instead of rebuilding watch lists per call.
//!
//! **Mutation contract:** `push_clause` / fresh-atom `intern_atom`
//! invalidate the indexes; call `finalize` again before using any
//! index-backed accessor (they panic otherwise). [`Grounder::ground`]
//! returns programs already finalized.

pub mod depgraph;
mod factstore;
pub mod grounder;
pub mod herbrand;
mod plan;
pub mod testutil;

pub use depgraph::{AtomDepGraph, DepGraph, ProgramClass};
pub use grounder::{
    ClauseRef, Csr, GroundAtomId, GroundClause, GroundProgram, GroundStats, Grounder, GrounderOpts,
    GroundingError, GroundingMode, IncrementalGrounder, JoinStrategy,
};
pub use herbrand::{augment_program, herbrand_universe, term_transform, HerbrandOpts};
