//! # gsls-ground — Herbrand machinery and program analyses
//!
//! This crate provides everything between the object language and the
//! fixpoint/resolution engines:
//!
//! * [`herbrand`] — Herbrand universe enumeration (Def. 1.2), the
//!   **augmented program** P′ of Def. 6.1 (universal query problem), and
//!   the `term/1` anti-floundering transform of Sec. 6;
//! * [`grounder`] — Herbrand instantiation (Def. 1.5): compiles a program
//!   to a dense [`GroundProgram`] over interned ground-atom ids, using a
//!   relevant-grounding fixpoint so only rules whose positive bodies are
//!   potentially derivable are emitted;
//! * [`depgraph`] — predicate/atom dependency graphs, Tarjan SCCs,
//!   stratification, local stratification and acyclicity tests for the
//!   program classes discussed in Sec. 7 of the paper.

pub mod depgraph;
pub mod grounder;
pub mod herbrand;

pub use depgraph::{AtomDepGraph, DepGraph, ProgramClass};
pub use grounder::{
    GroundAtomId, GroundClause, GroundProgram, Grounder, GrounderOpts, GroundingError,
    GroundingMode,
};
pub use herbrand::{augment_program, herbrand_universe, term_transform, HerbrandOpts};
