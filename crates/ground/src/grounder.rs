//! Herbrand instantiation: compiling programs to dense ground form.
//!
//! A [`GroundProgram`] stores interned ground atoms as `u32` ids and
//! clauses in **CSR (compressed-sparse-row) form**: one flat array holds
//! every body atom of every clause (positive literals first, then
//! negative), and per-clause offset tables delimit the slices. On top of
//! the clause store, [`GroundProgram::finalize`] precomputes three CSR
//! reverse indexes — head → clauses, atom → clauses watching it
//! positively, atom → clauses watching it negatively — so fixpoint
//! engines never rebuild watch lists per call. See the crate docs for the
//! full layout contract.
//!
//! [`Grounder::ground`] performs **relevant grounding**: instead of the
//! full Herbrand instantiation (Def. 1.5), which is wasteful or infinite,
//! it computes the least fixpoint of the positive-closure operator
//! (negative literals ignored) and emits only rule instances whose
//! positive bodies are potentially derivable. Rule instances pruned this
//! way can never fire in any fixpoint of `W_P`, so the well-founded model
//! restricted to derivable atoms is unchanged, and atoms never interned
//! are false in the well-founded model. Variables not bound by the
//! positive body are enumerated over the (depth-bounded) Herbrand
//! universe.
//!
//! The relevant-grounding loop is **semi-naive** and **plan-compiled**:
//! each `rule × delta-position` pair is compiled once into a
//! [`crate::plan::JoinPlan`] — a selectivity-ordered body-literal
//! sequence with precomputed bound-argument signatures, composite-index
//! handles, and cached residual variables — and each round executes only
//! the plans whose delta predicate actually grew (the relevance index).
//! Facts live in the [`crate::factstore::FactStore`] as interned-id
//! rows; candidate lookups are composite-index probes clamped to the
//! delta/old row range by binary search. See the `plan` and `factstore`
//! module docs for the invariants.
//!
//! [`JoinStrategy::Naive`] keeps a deliberately simple join (original
//! literal order, full fact scans, whole-store re-joins per pass) as the
//! differential oracle: both strategies must produce the same clause
//! set, and the microbench smoke target plus the workspace property
//! tests pin that.

use crate::factstore::{
    atom_hash, clause_hash, shard_of, FactStore, IdTable, Role, ShardedIdTable, SHARDS,
};
use crate::herbrand::{herbrand_universe, HerbrandOpts};
use crate::plan::{
    append_plans, build_plans, build_templates, residual_vars, template_of, ArgSpec, JoinPlan,
    Planner, RuleTemplate, NO_INDEX, UNBOUND,
};
use gsls_lang::{
    match_term_recording, Atom, Clause, FxHashMap, FxHashSet, Pred, Program, Subst, Symbol, Term,
    TermId, TermStore, Var,
};
use gsls_par::govern::{Guard, InterruptCause};
use std::fmt;
use std::time::Instant;

/// Identity of an interned ground atom within a [`GroundProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroundAtomId(pub u32);

impl GroundAtomId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An owned ground clause `head ← pos₁,…,posₘ, ¬neg₁,…,¬negₖ`.
///
/// This is the *builder* form: [`GroundProgram::push_clause`] copies it
/// into the CSR store. Engines never see it — they work on borrowed
/// [`ClauseRef`] views, and the grounder deduplicates against the CSR
/// store directly (id-triple hashing), so no owned clause is built per
/// candidate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroundClause {
    /// Head atom.
    pub head: GroundAtomId,
    /// Positive body atoms.
    pub pos: Box<[GroundAtomId]>,
    /// Atoms appearing negated in the body.
    pub neg: Box<[GroundAtomId]>,
}

impl GroundClause {
    /// Whether this is a fact.
    pub fn is_fact(&self) -> bool {
        self.pos.is_empty() && self.neg.is_empty()
    }

    /// Total body length.
    pub fn body_len(&self) -> usize {
        self.pos.len() + self.neg.len()
    }
}

/// A borrowed view of one clause inside the CSR store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClauseRef<'a> {
    /// Head atom.
    pub head: GroundAtomId,
    /// Positive body atoms.
    pub pos: &'a [GroundAtomId],
    /// Atoms appearing negated in the body.
    pub neg: &'a [GroundAtomId],
}

impl ClauseRef<'_> {
    /// Whether this is a fact.
    pub fn is_fact(&self) -> bool {
        self.pos.is_empty() && self.neg.is_empty()
    }

    /// Total body length.
    pub fn body_len(&self) -> usize {
        self.pos.len() + self.neg.len()
    }

    /// Copies into an owned [`GroundClause`].
    pub fn to_owned(&self) -> GroundClause {
        GroundClause {
            head: self.head,
            pos: self.pos.into(),
            neg: self.neg.into(),
        }
    }
}

/// A compressed-sparse-row map from `u32` keys to lists of `u32` items:
/// row `k` is `items[off[k] .. off[k+1]]`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Csr {
    off: Vec<u32>,
    items: Vec<u32>,
}

impl Csr {
    /// Builds from `(key, item)` pairs produced by calling `each` with a
    /// sink; `n_keys` bounds the key space. Two passes: count, then fill.
    fn build(n_keys: usize, each: impl Fn(&mut dyn FnMut(u32, u32))) -> Csr {
        let mut counts = vec![0u32; n_keys + 1];
        each(&mut |k, _| counts[k as usize + 1] += 1);
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let mut items = vec![0u32; *counts.last().unwrap_or(&0) as usize];
        let mut cursor = counts.clone();
        each(&mut |k, v| {
            let c = &mut cursor[k as usize];
            items[*c as usize] = v;
            *c += 1;
        });
        Csr { off: counts, items }
    }

    /// The item list for `key`.
    #[inline]
    pub fn row(&self, key: usize) -> &[u32] {
        &self.items[self.off[key] as usize..self.off[key + 1] as usize]
    }

    /// O(delta) in-place growth for the common append case: when every
    /// delta pair's key is a **new** key (≥ the current key count), the
    /// new rows land entirely after the existing items, so the arrays
    /// extend without any re-layout. Returns `false` (leaving `self`
    /// untouched) when some delta key is an existing one — the caller
    /// falls back to the full [`Csr::extend`] merge.
    ///
    /// This is what makes a session commit's re-index cheap: a fresh
    /// fact's head and positive watches index under fresh atom ids;
    /// typically only the negative-watch index (whose delta can point
    /// at old atoms) pays the merge.
    fn try_append_tail(
        &mut self,
        n_keys: usize,
        each_new: &impl Fn(&mut dyn FnMut(u32, u32)),
    ) -> bool {
        let old_keys = self.len();
        debug_assert!(n_keys >= old_keys);
        let mut ok = true;
        each_new(&mut |k, _| ok &= k as usize >= old_keys);
        if !ok {
            return false;
        }
        let mut counts = vec![0u32; n_keys - old_keys];
        each_new(&mut |k, _| counts[k as usize - old_keys] += 1);
        let total = self.items.len() as u32;
        // Per-new-key start cursors, then the off tail (end offsets).
        let mut cursor = counts;
        let mut run = total;
        for c in cursor.iter_mut() {
            let len = *c;
            *c = run;
            run += len;
            self.off.push(run);
        }
        self.items.resize(run as usize, 0);
        let items = &mut self.items;
        each_new(&mut |k, v| {
            let c = &mut cursor[k as usize - old_keys];
            items[*c as usize] = v;
            *c += 1;
        });
        true
    }

    /// Builds the CSR holding every `(key, item)` pair of `self` plus
    /// the pairs `each_new` produces, over a possibly larger key space —
    /// the merge step behind the incremental `finalize`: old rows are
    /// block-copied, only the delta re-runs the counting pass. `spare`
    /// (the generation-before-last's arrays) is recycled so steady-state
    /// session commits allocate nothing here.
    fn extend(
        &self,
        n_keys: usize,
        each_new: impl Fn(&mut dyn FnMut(u32, u32)),
        spare: Option<Csr>,
    ) -> Csr {
        debug_assert!(n_keys >= self.len());
        let (mut counts, mut spare_items) = match spare {
            Some(c) => (c.off, Some(c.items)),
            None => (Vec::new(), None),
        };
        counts.clear();
        counts.resize(n_keys + 1, 0);
        each_new(&mut |k, _| counts[k as usize + 1] += 1);
        for k in 0..self.len() {
            counts[k + 1] += self.off[k + 1] - self.off[k];
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let total = *counts.last().unwrap_or(&0) as usize;
        let mut items = spare_items.take().unwrap_or_default();
        // Every slot is written below (old-row copy + delta fill cover
        // the whole count), so stale spare contents are harmless.
        items.clear();
        items.resize(total, 0);
        let mut cursor = counts.clone();
        for (k, c) in cursor.iter_mut().enumerate().take(self.len()) {
            let row = &self.items[self.off[k] as usize..self.off[k + 1] as usize];
            let start = *c as usize;
            items[start..start + row.len()].copy_from_slice(row);
            *c += row.len() as u32;
        }
        each_new(&mut |k, v| {
            let c = &mut cursor[k as usize];
            items[*c as usize] = v;
            *c += 1;
        });
        Csr { off: counts, items }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.off.len().saturating_sub(1)
    }

    /// Whether there are no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The reverse indexes precomputed by [`GroundProgram::finalize`].
#[derive(Debug, Clone)]
struct Indexes {
    /// head atom → clause indices.
    by_head: Csr,
    /// atom → clauses whose *positive* body contains it (one entry per
    /// occurrence, so counter-based propagation can decrement per watch).
    watch_pos: Csr,
    /// atom → clauses whose *negative* body contains it.
    watch_neg: Csr,
    /// The atom/clause counts these indexes cover. A mismatch with the
    /// live store means the indexes are stale — accessors panic, and
    /// `finalize` **extends** them over the appended suffix instead of
    /// rebuilding (sessions commit small deltas against big programs).
    n_atoms: usize,
    n_clauses: usize,
}

/// A program compiled to ground form (CSR clause storage).
#[derive(Debug)]
pub struct GroundProgram {
    atoms: Vec<Atom>,
    /// Open-addressing interning table over `atoms` (identity = `(pred,
    /// args)`; probes hash borrowed parts, so lookups allocate nothing).
    /// Sharded by high hash bits so growth rehashes one shard at a time
    /// and the parallel seed round can dedup shards on separate workers.
    atom_table: ShardedIdTable,
    /// Clause heads, one per clause.
    heads: Vec<GroundAtomId>,
    /// Flat body store: clause `c`'s positive atoms then negative atoms.
    body: Vec<GroundAtomId>,
    /// `body_start[c] .. body_start[c+1]` delimits clause `c`'s body.
    body_start: Vec<u32>,
    /// Within that range, negatives start at `neg_start[c]`.
    neg_start: Vec<u32>,
    /// predicate → interned atom ids (query-enumeration index).
    /// Maintained incrementally at interning time — unlike the CSR
    /// reverse indexes it never needs a rebuild, so sessions that
    /// append atoms per commit pay one hash-push per *new* atom instead
    /// of a full re-scan in `finalize`.
    by_pred: FxHashMap<Pred, Vec<u32>>,
    /// Reverse indexes; `None` until [`GroundProgram::finalize`] runs (or
    /// after any mutation, which invalidates them).
    index: Option<Indexes>,
    /// The previous generation's index arrays, recycled by the next
    /// incremental `finalize` (double buffering: steady-state session
    /// commits re-index without allocating). Never cloned.
    index_spare: Option<Indexes>,
}

impl Default for GroundProgram {
    fn default() -> Self {
        GroundProgram {
            atoms: Vec::new(),
            atom_table: ShardedIdTable::default(),
            heads: Vec::new(),
            body: Vec::new(),
            body_start: vec![0],
            neg_start: Vec::new(),
            by_pred: FxHashMap::default(),
            index: None,
            index_spare: None,
        }
    }
}

impl Clone for GroundProgram {
    fn clone(&self) -> Self {
        GroundProgram {
            atoms: self.atoms.clone(),
            atom_table: self.atom_table.clone(),
            heads: self.heads.clone(),
            body: self.body.clone(),
            body_start: self.body_start.clone(),
            neg_start: self.neg_start.clone(),
            by_pred: self.by_pred.clone(),
            index: self.index.clone(),
            // The recycling buffer is an allocation cache, not state —
            // snapshots must not pay for (or carry) it.
            index_spare: None,
        }
    }
}

impl GroundProgram {
    /// Creates an empty ground program.
    pub fn new() -> Self {
        Self::default()
    }

    /// One probe walk: the existing id for `(pred, args)`, or the slot
    /// claimed for the next id (in which case the caller pushes the
    /// atom). Keeps the hot interning path at a single table traversal.
    fn intern_probe(&mut self, pred: Symbol, args: &[TermId]) -> Option<GroundAtomId> {
        let hash = atom_hash(pred, args);
        let candidate = u32::try_from(self.atoms.len()).expect("ground atom overflow");
        let atoms = &self.atoms;
        self.atom_table
            .find_or_insert(
                hash,
                candidate,
                |id| {
                    let a = &atoms[id as usize];
                    a.pred == pred && a.args[..] == *args
                },
                |id| {
                    let a = &atoms[id as usize];
                    atom_hash(a.pred, &a.args)
                },
            )
            .map(GroundAtomId)
    }

    /// Interns a ground atom, returning its id.
    pub fn intern_atom(&mut self, atom: Atom) -> GroundAtomId {
        match self.intern_probe(atom.pred, &atom.args) {
            Some(id) => id,
            None => {
                let id = GroundAtomId(self.atoms.len() as u32);
                self.by_pred.entry(atom.pred_id()).or_default().push(id.0);
                // A fresh atom widens the id space the reverse indexes
                // cover; they go stale (count mismatch) until the next
                // `finalize`, which extends them over the new suffix.
                self.atoms.push(atom);
                id
            }
        }
    }

    /// Interns a ground atom from borrowed parts; the owned [`Atom`] is
    /// built only when the atom is genuinely new. This is the grounder's
    /// hot interning path — duplicate candidates allocate nothing.
    pub fn intern_atom_parts(&mut self, pred: Symbol, args: &[TermId]) -> GroundAtomId {
        match self.intern_probe(pred, args) {
            Some(id) => id,
            None => {
                let id = GroundAtomId(self.atoms.len() as u32);
                self.by_pred
                    .entry(Pred::new(pred, args.len() as u32))
                    .or_default()
                    .push(id.0);
                self.atoms.push(Atom::new(pred, args.to_vec()));
                id
            }
        }
    }

    /// Appends an atom **without** touching the interning table. Only
    /// the parallel seed merge may use this: it deduplicated the atoms
    /// per shard already and bulk-loads the table afterwards
    /// ([`GroundProgram::bulk_intern_unique`]).
    fn push_atom_raw(&mut self, atom: Atom) -> GroundAtomId {
        let id = GroundAtomId(u32::try_from(self.atoms.len()).expect("ground atom overflow"));
        self.by_pred.entry(atom.pred_id()).or_default().push(id.0);
        self.atoms.push(atom);
        id
    }

    /// Bulk-loads interning entries `(hash, id)` whose atoms were
    /// appended by [`GroundProgram::push_atom_raw`]. Keys must be
    /// distinct from each other and from every stored entry.
    fn bulk_intern_unique(&mut self, entries: impl Iterator<Item = (u64, u32)>) {
        let Self {
            atoms, atom_table, ..
        } = self;
        for (h, id) in entries {
            atom_table.insert_unique(h, id, |i| {
                let a = &atoms[i as usize];
                atom_hash(a.pred, &a.args)
            });
        }
    }

    /// Pre-sizes the atom arena and interning table for about `n_atoms`
    /// entries and the clause store for `n_clauses`, so bulk grounding
    /// skips the grow-and-rehash cascade.
    pub fn reserve(&mut self, n_atoms: usize, n_clauses: usize) {
        self.atoms.reserve(n_atoms.saturating_sub(self.atoms.len()));
        let atoms = &self.atoms;
        self.atom_table.reserve(n_atoms, |id| {
            let a = &atoms[id as usize];
            atom_hash(a.pred, &a.args)
        });
        self.heads
            .reserve(n_clauses.saturating_sub(self.heads.len()));
        self.body_start.reserve(n_clauses);
        self.neg_start.reserve(n_clauses);
    }

    /// Looks up a ground atom from borrowed parts without interning (and
    /// without building an owned [`Atom`]) — the query engines' hot
    /// point-lookup path.
    pub fn lookup_atom_parts(&self, pred: Symbol, args: &[TermId]) -> Option<GroundAtomId> {
        let atoms = &self.atoms;
        self.atom_table
            .find(atom_hash(pred, args), |id| {
                let a = &atoms[id as usize];
                a.pred == pred && a.args[..] == *args
            })
            .map(GroundAtomId)
    }

    /// Looks up a ground atom without interning.
    pub fn lookup_atom(&self, atom: &Atom) -> Option<GroundAtomId> {
        let atoms = &self.atoms;
        self.atom_table
            .find(atom_hash(atom.pred, &atom.args), |id| {
                let a = &atoms[id as usize];
                a.pred == atom.pred && a.args == atom.args
            })
            .map(GroundAtomId)
    }

    /// The atom for `id`.
    pub fn atom(&self, id: GroundAtomId) -> &Atom {
        &self.atoms[id.index()]
    }

    /// Number of interned atoms.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Iterates over all atom ids.
    pub fn atom_ids(&self) -> impl Iterator<Item = GroundAtomId> {
        (0..self.atoms.len() as u32).map(GroundAtomId)
    }

    /// Approximate heap footprint of the CSR store, interning table,
    /// and reverse indexes, in bytes. O(number of predicates), computed
    /// from capacities and counts (never by walking atoms or clauses),
    /// so governance can poll it every grounding round. Per-atom and
    /// per-entry constants stand in for boxed argument lists and
    /// hash-table overhead; budgets are approximate by contract.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let atoms = self.atoms.capacity() * size_of::<Atom>() + self.atoms.len() * 16;
        let table = self.atoms.len() * 16; // sharded interning entries
        let csr = (self.heads.capacity() + self.body.capacity()) * 4
            + (self.body_start.capacity() + self.neg_start.capacity()) * 4;
        let by_pred: usize = self.by_pred.values().map(|v| v.capacity() * 4 + 48).sum();
        // Reverse indexes: by_head + watch_pos + watch_neg each hold one
        // offset per atom and one item per watch occurrence (≈ body len).
        let index = match &self.index {
            Some(_) => 3 * (self.atoms.len() + 1) * 4 + (self.body.len() + self.heads.len()) * 12,
            None => 0,
        };
        atoms + table + csr + by_pred + index
    }

    /// Adds a clause (deduplication is the grounder's responsibility).
    pub fn push_clause(&mut self, clause: GroundClause) {
        self.push_clause_parts(clause.head, &clause.pos, &clause.neg);
    }

    /// Adds a clause from borrowed parts, avoiding the boxed builder.
    pub fn push_clause_parts(
        &mut self,
        head: GroundAtomId,
        pos: &[GroundAtomId],
        neg: &[GroundAtomId],
    ) {
        self.heads.push(head);
        self.body.extend_from_slice(pos);
        self.neg_start
            .push(u32::try_from(self.body.len()).expect("ground body overflow"));
        self.body.extend_from_slice(neg);
        self.body_start
            .push(u32::try_from(self.body.len()).expect("ground body overflow"));
    }

    /// Iterates over all clauses as borrowed views.
    pub fn clauses(&self) -> impl Iterator<Item = ClauseRef<'_>> + '_ {
        (0..self.clause_count() as u32).map(move |i| self.clause(i))
    }

    /// Number of clauses.
    pub fn clause_count(&self) -> usize {
        self.heads.len()
    }

    /// The clause at `idx`.
    #[inline]
    pub fn clause(&self, idx: u32) -> ClauseRef<'_> {
        let i = idx as usize;
        let (start, end) = (self.body_start[i] as usize, self.body_start[i + 1] as usize);
        let mid = self.neg_start[i] as usize;
        ClauseRef {
            head: self.heads[i],
            pos: &self.body[start..mid],
            neg: &self.body[mid..end],
        }
    }

    /// Number of positive body atoms of clause `idx` (O(1), no slice
    /// construction — used by propagator init loops).
    #[inline]
    pub fn pos_len(&self, idx: u32) -> u32 {
        self.neg_start[idx as usize] - self.body_start[idx as usize]
    }

    /// All clause heads, indexed by clause (O(1) head access for hot
    /// propagation loops that don't need the bodies).
    #[inline]
    pub fn heads(&self) -> &[GroundAtomId] {
        &self.heads
    }

    /// The atom → positively-watching-clauses index as a raw [`Csr`],
    /// for hot loops that hoist the per-lookup indirection (same panics
    /// as [`GroundProgram::clauses_for`]).
    pub fn watch_pos_index(&self) -> &Csr {
        &self.index().watch_pos
    }

    /// Builds the reverse indexes (head → clauses and the two watch
    /// maps). Idempotent; must be re-run after any `push_clause` /
    /// fresh-atom `intern_atom`. [`Grounder::ground`] returns programs
    /// already finalized.
    ///
    /// **Incremental:** when stale indexes exist and the store only
    /// grew (the append-only session path), the new indexes are built
    /// by block-copying the old rows and counting only the appended
    /// clause suffix — a commit's finalize cost tracks the delta's
    /// watch entries plus one pass over the key space, not the whole
    /// body store.
    pub fn finalize(&mut self) {
        let n = self.atom_count();
        let nc = self.heads.len();
        let from = match &self.index {
            Some(idx) if idx.n_atoms == n && idx.n_clauses == nc => return,
            Some(idx) if idx.n_atoms <= n && idx.n_clauses <= nc => idx.n_clauses,
            _ => 0,
        };
        let (heads, body, body_start, neg_start) =
            (&self.heads, &self.body, &self.body_start, &self.neg_start);
        let new_by_head = |sink: &mut dyn FnMut(u32, u32)| {
            for (ci, &h) in heads.iter().enumerate().skip(from) {
                sink(h.0, ci as u32);
            }
        };
        let new_watch_pos = |sink: &mut dyn FnMut(u32, u32)| {
            for ci in from..nc {
                let (start, mid) = (body_start[ci] as usize, neg_start[ci] as usize);
                for a in &body[start..mid] {
                    sink(a.0, ci as u32);
                }
            }
        };
        let new_watch_neg = |sink: &mut dyn FnMut(u32, u32)| {
            for ci in from..nc {
                let (mid, end) = (neg_start[ci] as usize, body_start[ci + 1] as usize);
                for a in &body[mid..end] {
                    sink(a.0, ci as u32);
                }
            }
        };
        if from > 0 {
            // Incremental: tail-append per index when the delta only
            // touches new keys; full merge (through the recycled spare
            // buffers — the replaced generation becomes the next spare)
            // otherwise.
            let mut idx = self.index.take().expect("from > 0 implies an index");
            let mut spare = self.index_spare.take().unwrap_or(Indexes {
                by_head: Csr::default(),
                watch_pos: Csr::default(),
                watch_neg: Csr::default(),
                n_atoms: 0,
                n_clauses: 0,
            });
            if !idx.by_head.try_append_tail(n, &new_by_head) {
                let merged =
                    idx.by_head
                        .extend(n, new_by_head, Some(std::mem::take(&mut spare.by_head)));
                spare.by_head = std::mem::replace(&mut idx.by_head, merged);
            }
            if !idx.watch_pos.try_append_tail(n, &new_watch_pos) {
                let merged = idx.watch_pos.extend(
                    n,
                    new_watch_pos,
                    Some(std::mem::take(&mut spare.watch_pos)),
                );
                spare.watch_pos = std::mem::replace(&mut idx.watch_pos, merged);
            }
            if !idx.watch_neg.try_append_tail(n, &new_watch_neg) {
                let merged = idx.watch_neg.extend(
                    n,
                    new_watch_neg,
                    Some(std::mem::take(&mut spare.watch_neg)),
                );
                spare.watch_neg = std::mem::replace(&mut idx.watch_neg, merged);
            }
            idx.n_atoms = n;
            idx.n_clauses = nc;
            self.index_spare = Some(spare);
            self.index = Some(idx);
            return;
        }
        let built = Indexes {
            by_head: Csr::build(n, new_by_head),
            watch_pos: Csr::build(n, new_watch_pos),
            watch_neg: Csr::build(n, new_watch_neg),
            n_atoms: n,
            n_clauses: nc,
        };
        self.index_spare = self.index.replace(built);
    }

    /// Whether the reverse indexes are current.
    pub fn is_finalized(&self) -> bool {
        self.index
            .as_ref()
            .is_some_and(|i| i.n_atoms == self.atoms.len() && i.n_clauses == self.heads.len())
    }

    fn index(&self) -> &Indexes {
        let idx = self
            .index
            .as_ref()
            .expect("GroundProgram::finalize must be called after mutation");
        assert!(
            idx.n_atoms == self.atoms.len() && idx.n_clauses == self.heads.len(),
            "GroundProgram::finalize must be called after mutation"
        );
        idx
    }

    /// Indices of clauses with head `id`.
    ///
    /// # Panics
    /// Panics if the program was mutated since the last
    /// [`GroundProgram::finalize`].
    pub fn clauses_for(&self, id: GroundAtomId) -> &[u32] {
        self.index().by_head.row(id.index())
    }

    /// Clauses whose positive body contains `id`, one entry per
    /// occurrence (same panics as [`GroundProgram::clauses_for`]).
    pub fn watch_pos(&self, id: GroundAtomId) -> &[u32] {
        self.index().watch_pos.row(id.index())
    }

    /// Clauses whose negative body contains `id`, one entry per
    /// occurrence (same panics as [`GroundProgram::clauses_for`]).
    pub fn watch_neg(&self, id: GroundAtomId) -> &[u32] {
        self.index().watch_neg.row(id.index())
    }

    /// Interned atoms of predicate `pred`, in interning (id) order. Lets
    /// query engines enumerate candidate instances without scanning the
    /// whole atom table. Maintained at interning time, so — unlike the
    /// clause-side accessors — it is valid even before
    /// [`GroundProgram::finalize`].
    pub fn atoms_with_pred(&self, pred: Pred) -> impl Iterator<Item = GroundAtomId> + '_ {
        self.by_pred
            .get(&pred)
            .map_or(&[][..], |v| v.as_slice())
            .iter()
            .map(|&i| GroundAtomId(i))
    }

    /// Ground-atom counts per predicate — FactStore-style cardinality
    /// hints for cost estimation (the `gsls-analyze` instantiation
    /// lints). Like [`GroundProgram::atoms_with_pred`], valid before
    /// finalization.
    pub fn pred_cardinalities(&self) -> gsls_lang::FxHashMap<Pred, usize> {
        self.by_pred.iter().map(|(&p, v)| (p, v.len())).collect()
    }

    /// Renders an atom.
    pub fn display_atom(&self, store: &TermStore, id: GroundAtomId) -> String {
        self.atom(id).display(store)
    }

    /// Renders the whole ground program.
    pub fn display(&self, store: &TermStore) -> String {
        let mut s = String::new();
        for c in self.clauses() {
            s.push_str(&self.display_atom(store, c.head));
            if !c.is_fact() {
                s.push_str(" :- ");
                let mut first = true;
                for &p in c.pos.iter() {
                    if !first {
                        s.push_str(", ");
                    }
                    first = false;
                    s.push_str(&self.display_atom(store, p));
                }
                for &n in c.neg.iter() {
                    if !first {
                        s.push_str(", ");
                    }
                    first = false;
                    s.push('~');
                    s.push_str(&self.display_atom(store, n));
                }
            }
            s.push_str(".\n");
        }
        s
    }
}

/// How clause instances are enumerated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GroundingMode {
    /// Relevant grounding: positive bodies are joined against the
    /// positive-closure fixpoint, pruning rule instances that can never
    /// fire. Smaller output, same well-founded model on derivable atoms.
    #[default]
    Relevant,
    /// Full Herbrand instantiation (Def. 1.5) over the (depth-bounded)
    /// universe: every substitution of universe terms for clause
    /// variables. Needed when the syntactic shape of *all* instances
    /// matters (ground global trees, local-stratification analyses).
    Full,
}

/// How [`GroundingMode::Relevant`] joins rule bodies against the fact
/// store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinStrategy {
    /// Precompiled join plans: selectivity-ordered literals, composite
    /// indexes, delta sub-ranges, relevance-driven rounds (see the
    /// [`crate::plan`] module docs). The production path.
    #[default]
    Planned,
    /// Unordered full-scan joins, re-run over every rule each pass.
    /// Quadratically slower, but so simple it is obviously correct —
    /// kept exclusively as the differential-testing oracle for
    /// [`JoinStrategy::Planned`].
    Naive,
}

/// Options controlling grounding.
#[derive(Debug, Clone, Copy)]
pub struct GrounderOpts {
    /// Universe enumeration bounds (relevant only with function symbols).
    pub universe: HerbrandOpts,
    /// Hard cap on emitted ground clauses.
    pub max_clauses: usize,
    /// Instance enumeration strategy.
    pub mode: GroundingMode,
    /// Join evaluation strategy for [`GroundingMode::Relevant`].
    pub strategy: JoinStrategy,
    /// Worker threads for the seed round. `1` (the default) is the
    /// sequential path, bit-identical to every previous release; larger
    /// counts shard the ground facts across workers (`gsls-par`) and
    /// merge with deterministic first-occurrence ordering, so the
    /// emitted **clause set** is identical at every count (pinned by
    /// `tests/parallel_diff.rs`). Pick a count with [`gsls_par::threads`].
    pub threads: usize,
}

impl Default for GrounderOpts {
    fn default() -> Self {
        GrounderOpts {
            universe: HerbrandOpts::default(),
            max_clauses: 2_000_000,
            mode: GroundingMode::Relevant,
            strategy: JoinStrategy::Planned,
            threads: 1,
        }
    }
}

/// Grounding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroundingError {
    /// The `max_clauses` budget was exceeded.
    ClauseBudget(usize),
    /// A governance [`Guard`] tripped mid-run (cancel, deadline, or
    /// memory budget); the half-built delta is the caller's to unwind.
    Interrupted(InterruptCause),
}

impl fmt::Display for GroundingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroundingError::ClauseBudget(n) => {
                write!(f, "grounding exceeded the clause budget of {n}")
            }
            GroundingError::Interrupted(cause) => {
                write!(f, "grounding interrupted: {cause}")
            }
        }
    }
}

impl std::error::Error for GroundingError {}

/// Per-stage instrumentation of one grounding run, from
/// [`Grounder::ground_with_stats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct GroundStats {
    /// Semi-naive rounds after the seed round.
    pub rounds: u32,
    /// Join plans compiled (`rule × delta-position` pairs).
    pub plans: u32,
    /// Composite indexes registered in the fact store.
    pub indexes: u32,
    /// Candidate fact rows examined across all joins (scans + posting
    /// sub-ranges).
    pub join_candidates: u64,
    /// Composite-index probes (one hash lookup + two binary searches).
    pub index_probes: u64,
    /// Candidate instances discarded as already-emitted clauses.
    pub dedup_hits: u64,
    /// Wall time of the seed round (rules without positive body).
    pub seed_ns: u64,
    /// Wall time of plan compilation + index registration/backfill.
    pub plan_ns: u64,
    /// Wall time of the semi-naive join rounds.
    pub join_ns: u64,
    /// Wall time of [`GroundProgram::finalize`].
    pub finalize_ns: u64,
}

impl GroundStats {
    /// Field-wise `self - earlier`, saturating. The incremental
    /// grounder accumulates for its lifetime; callers that want
    /// per-commit readings diff against a baseline captured before the
    /// commit (`plans`/`indexes` are running totals, not deltas, and
    /// are reported as-is).
    pub fn delta_since(&self, earlier: &GroundStats) -> GroundStats {
        GroundStats {
            rounds: self.rounds.saturating_sub(earlier.rounds),
            plans: self.plans,
            indexes: self.indexes,
            join_candidates: self.join_candidates.saturating_sub(earlier.join_candidates),
            index_probes: self.index_probes.saturating_sub(earlier.index_probes),
            dedup_hits: self.dedup_hits.saturating_sub(earlier.dedup_hits),
            seed_ns: self.seed_ns.saturating_sub(earlier.seed_ns),
            plan_ns: self.plan_ns.saturating_sub(earlier.plan_ns),
            join_ns: self.join_ns.saturating_sub(earlier.join_ns),
            finalize_ns: self.finalize_ns.saturating_sub(earlier.finalize_ns),
        }
    }
}

/// The Herbrand instantiation engine.
pub struct Grounder<'a> {
    store: &'a mut TermStore,
    universe: Vec<TermId>,
    opts: GrounderOpts,
    /// Maximum term depth allowed in emitted atoms: heads like `e(s(X),0)`
    /// can otherwise escape the bounded universe and diverge.
    max_depth: u32,
    gp: GroundProgram,
    /// `derivable[atom id]`: the atom heads an emitted instance, so it is
    /// in the positive closure and has been queued through the delta.
    derivable: Vec<bool>,
    /// `fact_seen[atom id]`: a fact-shaped clause with this head was
    /// already stored (fact dedup without touching the clause table).
    fact_seen: Vec<bool>,
    /// Clause dedup: id-triple hashes over the CSR store.
    clause_table: IdTable,
    /// Backtracking trail for `Subst`-based matching (naive oracle).
    trail: Vec<Var>,
    /// Dense binding slots for the planned path: `bindings[slot]` is the
    /// ground value of the current rule's variable `slot`, or
    /// [`UNBOUND`]. Sized to the largest rule once per run.
    bindings: Vec<TermId>,
    /// Backtracking trail of slot numbers for the planned path.
    slot_trail: Vec<u32>,
    /// `matched_buf[p]`: the interned atom id of the fact row matched by
    /// positive body literal `p` (clause order) — emission reuses these
    /// ids instead of re-interning the atoms.
    matched_buf: Vec<GroundAtomId>,
    stats: GroundStats,
    /// Reusable buffers (probe keys, resolved head/body arguments,
    /// interned body ids) — the join inner loop allocates nothing.
    key_buf: Vec<TermId>,
    head_buf: Vec<TermId>,
    body_buf: Vec<TermId>,
    neg_buf: Vec<GroundAtomId>,
    /// Session mode ([`IncrementalGrounder`]): fact-clause indices are
    /// tracked, every bodied rule consults the clause-dedup table (new
    /// rules added later could collide with any existing signature),
    /// and the fact store is never frozen (a later rule may join a
    /// predicate no current plan touches).
    persistent: bool,
    /// When set, [`Grounder::exec`] ranges every literal over the full
    /// fact store instead of its semi-naive role — the one-shot
    /// catch-up join for rules added to a live session.
    force_full: bool,
    /// Persistent mode: the current emission is a **source fact** — a
    /// ground fact the session can later retract (initial program facts
    /// and `assert`ed facts). Everything else fact-shaped (residual
    /// rule instances, facts arriving in an `add_rules` batch) is
    /// *permanent*: it dedups separately and is never switchable, so
    /// retracting a source fact can never falsify a rule-derived or
    /// rule-batch duplicate.
    source_fact: bool,
    /// head atom id → clause index of its **source** fact clause
    /// (persistent mode only) — the retraction hook a session flips
    /// clauses with.
    fact_clause: FxHashMap<u32, u32>,
    /// `free_fact_seen[atom id]`: a *permanent* (untracked) fact clause
    /// with this head exists (persistent mode's second dedup space).
    free_fact_seen: Vec<bool>,
    /// Governance: polled every [`gsls_par::TICK_INTERVAL`] join
    /// candidates / emissions and once per semi-naive round (where the
    /// memory budget is also enforced). [`Guard::none`] costs one
    /// branch per tick site.
    guard: Guard,
    /// Local tick counter for `guard` (caller-owned cadence).
    tick: u32,
}

impl<'a> Grounder<'a> {
    /// Grounds `program` with default options.
    pub fn ground(
        store: &'a mut TermStore,
        program: &Program,
    ) -> Result<GroundProgram, GroundingError> {
        Self::ground_with(store, program, GrounderOpts::default())
    }

    /// Grounds `program` with explicit options. The returned program is
    /// finalized (reverse indexes built).
    pub fn ground_with(
        store: &'a mut TermStore,
        program: &Program,
        opts: GrounderOpts,
    ) -> Result<GroundProgram, GroundingError> {
        Self::ground_with_stats(store, program, opts).map(|(gp, _)| gp)
    }

    /// [`Grounder::ground_with`] plus per-stage instrumentation.
    pub fn ground_with_stats(
        store: &'a mut TermStore,
        program: &Program,
        opts: GrounderOpts,
    ) -> Result<(GroundProgram, GroundStats), GroundingError> {
        // With function symbols the universe is depth-truncated; emitted
        // atoms must respect the same bound or grounding diverges. For
        // function-free programs terms never grow, so no bound is needed.
        let max_depth = if program.is_function_free(store) {
            u32::MAX
        } else {
            opts.universe.max_depth
        };
        let mut g = Grounder {
            store,
            // Computed on demand: joins only consult the universe for
            // residual variables, and purely extensional workloads have
            // none (see `ensure_universe`).
            universe: Vec::new(),
            opts,
            max_depth,
            gp: GroundProgram::new(),
            derivable: Vec::new(),
            fact_seen: Vec::new(),
            clause_table: IdTable::default(),
            trail: Vec::new(),
            bindings: Vec::new(),
            slot_trail: Vec::new(),
            matched_buf: Vec::new(),
            stats: GroundStats::default(),
            key_buf: Vec::new(),
            head_buf: Vec::new(),
            body_buf: Vec::new(),
            neg_buf: Vec::new(),
            persistent: false,
            force_full: false,
            source_fact: false,
            fact_clause: FxHashMap::default(),
            free_fact_seen: Vec::new(),
            guard: Guard::none(),
            tick: 0,
        };
        g.run(program)?;
        let t = Instant::now();
        g.gp.finalize();
        g.stats.finalize_ns = t.elapsed().as_nanos() as u64;
        Ok((g.gp, g.stats))
    }

    fn run(&mut self, program: &Program) -> Result<(), GroundingError> {
        match (self.opts.mode, self.opts.strategy) {
            (GroundingMode::Full, _) => self.run_full(program),
            (GroundingMode::Relevant, JoinStrategy::Planned) => self.run_planned(program),
            (GroundingMode::Relevant, JoinStrategy::Naive) => self.run_naive(program),
        }
    }

    /// Enumerates the (depth-bounded) Herbrand universe, once per run.
    /// Deferred so that runs which never enumerate a residual variable —
    /// every rule's variables bound by its positive body — skip the
    /// constant/function sweep over the whole program.
    fn ensure_universe(&mut self, program: &Program) {
        if self.universe.is_empty() {
            self.universe = herbrand_universe(self.store, program, self.opts.universe);
        }
    }

    /// Full instantiation doesn't consult the derivable closure: one
    /// enumeration pass emits everything.
    fn run_full(&mut self, program: &Program) -> Result<(), GroundingError> {
        let t = Instant::now();
        self.ensure_universe(program);
        let mut ignored = Vec::new();
        for clause in program.clauses() {
            let free = clause.vars(self.store);
            let mut subst = Subst::new();
            self.enumerate_free(clause, &free, 0, &mut subst, &mut ignored)?;
        }
        self.stats.seed_ns = t.elapsed().as_nanos() as u64;
        Ok(())
    }

    /// The production path: rule-template compilation, seed round, plan
    /// compilation, then relevance-driven semi-naive rounds over the
    /// compiled plans using dense binding slots.
    fn run_planned(&mut self, program: &Program) -> Result<(), GroundingError> {
        self.run_planned_core(program).map(|_| ())
    }

    /// [`Grounder::run_planned`], returning the compiled templates,
    /// planner and fact store so a persistent session
    /// ([`IncrementalGrounder`]) can keep joining deltas against them.
    fn run_planned_core(
        &mut self,
        program: &Program,
    ) -> Result<(Vec<Option<RuleTemplate>>, Planner, FactStore), GroundingError> {
        // Seed round: rules without positive body — their instances don't
        // depend on the closure and are emitted exactly once. Ground
        // facts (template `None`) bypass enumeration entirely.
        let t = Instant::now();
        let templates = build_templates(self.store, program);
        let max_slots = templates
            .iter()
            .flatten()
            .map(|t| t.n_slots)
            .max()
            .unwrap_or(0);
        let max_pos = templates
            .iter()
            .flatten()
            .map(|t| t.n_pos)
            .max()
            .unwrap_or(0);
        if templates.iter().flatten().any(|t| !t.residual.is_empty()) {
            self.ensure_universe(program);
        }
        self.bindings = vec![UNBOUND; max_slots as usize];
        self.matched_buf = vec![GroundAtomId(0); max_pos as usize];
        // Size the arenas for the extensional load: most programs are
        // dominated by their facts, each contributing one atom and one
        // clause (further growth is the usual amortized doubling).
        self.gp.reserve(program.len(), program.len());
        let mut new_atoms: Vec<GroundAtomId> = Vec::new();
        let par_seed = self.opts.threads > 1 && templates.iter().any(Option::is_none);
        if par_seed {
            // Ground facts go through the sharded parallel round; the
            // (rare) seed rules with residual variables follow
            // sequentially, exactly as below.
            self.seed_facts_parallel(program, &templates, &mut new_atoms)?;
        }
        for (ci, clause) in program.clauses().iter().enumerate() {
            match &templates[ci] {
                None if !par_seed && !self.exceeds_depth(&clause.head.args) => {
                    let head_id = self
                        .gp
                        .intern_atom_parts(clause.head.pred, &clause.head.args);
                    self.neg_buf.clear();
                    // Initial-program ground facts are source facts: a
                    // session may retract them.
                    self.source_fact = true;
                    let r = self.push_unique(head_id, 0, false, &mut new_atoms);
                    self.source_fact = false;
                    r?;
                }
                None => {}
                Some(tmpl) if clause.pos_body().next().is_none() => {
                    self.enumerate_residual(tmpl, 0, &mut new_atoms)?;
                }
                Some(_) => {}
            }
        }
        self.stats.seed_ns = t.elapsed().as_nanos() as u64;

        // Compile plans once, after the seed round, so the selectivity
        // order can use observed cardinalities; index registration
        // backfills over the seed facts.
        let t = Instant::now();
        let mut facts = FactStore::default();
        let mut grown: Vec<u32> = Vec::new();
        facts.advance(&self.gp, &new_atoms, &mut grown);
        new_atoms.clear();
        let planner = build_plans(self.store, program, &templates, &mut facts);
        // Every joinable predicate now has a slot; anything else is
        // dead weight and gets dropped by subsequent advances. A
        // persistent session must keep everything: a rule added later
        // may join a predicate no current plan touches.
        if !self.persistent {
            facts.freeze();
        }
        self.stats.plans = planner.plans.len() as u32;
        self.stats.indexes = facts.index_count() as u32;
        self.stats.plan_ns = t.elapsed().as_nanos() as u64;

        // Interning micro-fix: pre-size for the join rounds from the
        // seed round's observed cardinality. On relational workloads
        // derived heads track the delta rows — about one new atom and
        // clause per seed fact — so doubling the seeded counts removes
        // the grow-and-rehash cascade that dominated the 10^6-atom
        // profiles (each sharded grow rehashes 1/16th of the store, and
        // after this reserve the join rounds trigger none at all).
        let seeded_atoms = self.gp.atom_count();
        let seeded_clauses = self.gp.clause_count();
        self.gp.reserve(seeded_atoms * 2, seeded_clauses * 2);

        // Semi-naive rounds: only plans whose delta predicate grew are
        // re-joined (relevance index).
        let t = Instant::now();
        self.drain_rounds(&templates, &planner, &mut facts, &mut new_atoms, &mut grown)?;
        self.stats.join_ns += t.elapsed().as_nanos() as u64;
        Ok((templates, planner, facts))
    }

    /// Runs relevance-driven semi-naive rounds to quiescence: while some
    /// predicate grew, re-join exactly the plans whose delta predicate
    /// it is, then advance the fact store. `grown` carries the slots of
    /// the most recent advance in; both buffers come back empty.
    fn drain_rounds(
        &mut self,
        templates: &[Option<RuleTemplate>],
        planner: &Planner,
        facts: &mut FactStore,
        new_atoms: &mut Vec<GroundAtomId>,
        grown: &mut Vec<u32>,
    ) -> Result<(), GroundingError> {
        while !grown.is_empty() {
            self.stats.rounds += 1;
            self.check_guard_memory(facts)?;
            for &slot in grown.iter() {
                for &pid in planner.dependents_of(slot) {
                    let plan = &planner.plans[pid as usize];
                    let tmpl = templates[plan.rule as usize]
                        .as_ref()
                        .expect("planned rules have templates");
                    self.exec(plan, tmpl, 0, facts, new_atoms)?;
                }
            }
            facts.advance(&self.gp, new_atoms, grown);
            new_atoms.clear();
        }
        Ok(())
    }

    /// The sharded parallel seed round (`opts.threads > 1`).
    ///
    /// Ground facts dominate real programs, and seeding them is pure
    /// interning — the superlinear 10^6-atom cost the ROADMAP tracked.
    /// Three phases, each deterministic:
    ///
    /// 1. **Route** (parallel over fact chunks): hash every fact head
    ///    and route `(hash, stream index)` into its interning shard —
    ///    keys of different shards can never collide, so shards are
    ///    independent dedup problems.
    /// 2. **Dedup** (parallel over shards): each shard replays its
    ///    entries in stream order against a private [`IdTable`],
    ///    recording the distinct atoms with their first-occurrence
    ///    index.
    /// 3. **Merge** (sequential, no hashing): walk the fact stream
    ///    once, assigning global ids at each first occurrence — the
    ///    same first-occurrence order the sequential seed round interns
    ///    in — emitting the fact clauses, then bulk-load the sharded
    ///    table with the now-final ids (no probes: entries are unique
    ///    by construction).
    ///
    /// The emitted clause set is therefore identical at every thread
    /// count, and identical to the sequential path whenever ground
    /// facts precede the residual seed rules (it differs only in
    /// emission order otherwise — `tests/parallel_diff.rs` pins the
    /// set identity).
    fn seed_facts_parallel(
        &mut self,
        program: &Program,
        templates: &[Option<RuleTemplate>],
        new_atoms: &mut Vec<GroundAtomId>,
    ) -> Result<(), GroundingError> {
        let facts: Vec<&Atom> = program
            .clauses()
            .iter()
            .zip(templates)
            .filter_map(|(c, t)| t.is_none().then_some(&c.head))
            .collect();
        let n_threads = self.opts.threads;
        let store: &TermStore = self.store;
        let max_depth = self.max_depth;
        // Phase 1: hash and route, chunks in stream order.
        let routed: Vec<Vec<Vec<(u64, u32)>>> =
            gsls_par::par_chunks(n_threads, &facts, n_threads * 4, |offset, chunk| {
                let mut buckets: Vec<Vec<(u64, u32)>> = vec![Vec::new(); SHARDS];
                for (i, head) in chunk.iter().enumerate() {
                    if max_depth != u32::MAX
                        && head.args.iter().any(|&a| store.depth(a) > max_depth)
                    {
                        continue;
                    }
                    let h = atom_hash(head.pred, &head.args);
                    buckets[shard_of(h)].push((h, (offset + i) as u32));
                }
                buckets
            });
        // Phase 2: per-shard dedup against a private table.
        struct ShardOut {
            /// `(first-occurrence fact index, hash)` per distinct atom.
            uniq: Vec<(u32, u64)>,
            /// `(fact index, uniq index)` per routed entry.
            assign: Vec<(u32, u32)>,
        }
        let shard_outs: Vec<ShardOut> = gsls_par::par_map(n_threads, SHARDS, |s| {
            let total: usize = routed.iter().map(|b| b[s].len()).sum();
            let mut table = IdTable::default();
            table.reserve(total, |_| unreachable!("rehash of an empty table"));
            let mut uniq: Vec<(u32, u64)> = Vec::new();
            let mut assign: Vec<(u32, u32)> = Vec::with_capacity(total);
            for buckets in &routed {
                for &(h, fi) in &buckets[s] {
                    let head = facts[fi as usize];
                    let cand = uniq.len() as u32;
                    let found = table.find_or_insert(
                        h,
                        cand,
                        |u| {
                            let first = facts[uniq[u as usize].0 as usize];
                            first.pred == head.pred && first.args == head.args
                        },
                        |u| uniq[u as usize].1,
                    );
                    match found {
                        Some(u) => assign.push((fi, u)),
                        None => {
                            uniq.push((fi, h));
                            assign.push((fi, cand));
                        }
                    }
                }
            }
            ShardOut { uniq, assign }
        });
        // Phase 3: deterministic merge. `SHARDS` in the shard byte
        // marks depth-pruned facts, which emit nothing.
        let mut of_fact: Vec<(u8, u32)> = vec![(SHARDS as u8, 0); facts.len()];
        for (s, out) in shard_outs.iter().enumerate() {
            for &(fi, u) in &out.assign {
                of_fact[fi as usize] = (s as u8, u);
            }
        }
        let total_uniq: usize = shard_outs.iter().map(|o| o.uniq.len()).sum();
        self.gp
            .reserve(self.gp.atom_count() + total_uniq, total_uniq);
        let mut global: Vec<Vec<u32>> = shard_outs
            .iter()
            .map(|o| vec![u32::MAX; o.uniq.len()])
            .collect();
        for (fi, &(s, u)) in of_fact.iter().enumerate() {
            if s as usize == SHARDS {
                continue;
            }
            let slot = &mut global[s as usize][u as usize];
            if *slot != u32::MAX {
                self.stats.dedup_hits += 1;
                continue;
            }
            // (On a budget error the half-built program is discarded,
            // so the atom pushed ahead of emit_fact's check is fine.)
            let id = self.gp.push_atom_raw(facts[fi].clone());
            *slot = id.0;
            self.source_fact = true;
            let r = self.emit_fact(id, new_atoms);
            self.source_fact = false;
            r?;
        }
        for (s, out) in shard_outs.iter().enumerate() {
            self.gp.bulk_intern_unique(
                out.uniq
                    .iter()
                    .enumerate()
                    .map(|(u, &(_fi, h))| (h, global[s][u])),
            );
        }
        Ok(())
    }

    /// The differential oracle: per pass, every rule is re-joined
    /// against the whole fact store with unordered full scans, until a
    /// pass emits nothing new. See [`JoinStrategy::Naive`].
    fn run_naive(&mut self, program: &Program) -> Result<(), GroundingError> {
        let t = Instant::now();
        self.ensure_universe(program);
        let mut new_atoms: Vec<GroundAtomId> = Vec::new();
        let mut facts = FactStore::default();
        let mut grown: Vec<u32> = Vec::new();
        let mut subst = Subst::new();
        loop {
            let before = self.gp.clause_count();
            for clause in program.clauses() {
                let pats: Vec<&Atom> = clause.pos_body().map(|l| &l.atom).collect();
                if pats.is_empty() {
                    let free = clause.vars(self.store);
                    self.enumerate_free(clause, &free, 0, &mut subst, &mut new_atoms)?;
                } else {
                    let residual = residual_vars(self.store, clause);
                    self.naive_join(
                        clause,
                        &pats,
                        &residual,
                        0,
                        &mut subst,
                        &facts,
                        &mut new_atoms,
                    )?;
                }
            }
            facts.advance(&self.gp, &new_atoms, &mut grown);
            new_atoms.clear();
            if self.gp.clause_count() == before {
                break;
            }
            self.stats.rounds += 1;
        }
        self.stats.join_ns = t.elapsed().as_nanos() as u64;
        Ok(())
    }

    /// Executes plan literal `li` under the current bindings: an index
    /// probe clamped to the literal's role sub-range, or a row-range
    /// scan when nothing is bound at this slot.
    fn exec(
        &mut self,
        plan: &JoinPlan,
        tmpl: &RuleTemplate,
        li: usize,
        facts: &FactStore,
        new_atoms: &mut Vec<GroundAtomId>,
    ) -> Result<(), GroundingError> {
        let Some(lit) = plan.literals.get(li) else {
            return self.enumerate_residual(tmpl, 0, new_atoms);
        };
        let role = if self.force_full {
            Role::Full
        } else {
            match lit.orig.cmp(&plan.delta_pos) {
                std::cmp::Ordering::Less => Role::Full,
                std::cmp::Ordering::Equal => Role::Delta,
                std::cmp::Ordering::Greater => Role::Old,
            }
        };
        let (lo, hi) = facts.range(lit.pred_slot, role);
        if lo >= hi {
            return Ok(());
        }
        if lit.handle != NO_INDEX {
            let mark = self.key_buf.len();
            for &p in lit.bound.iter() {
                let value = match lit.specs[p as usize] {
                    ArgSpec::Ground(id) => id,
                    ArgSpec::Slot(s) => self.bindings[s as usize],
                    ArgSpec::Compound(_) => unreachable!("compound args never join signatures"),
                };
                debug_assert_ne!(value, UNBOUND, "bound signature slot unbound");
                self.key_buf.push(value);
            }
            self.stats.index_probes += 1;
            let posting = facts.posting(lit.handle, &self.key_buf[mark..]);
            self.key_buf.truncate(mark);
            // Sorted posting list: the role restriction is a contiguous
            // sub-range, not a filter over the whole list.
            let a = posting.partition_point(|&r| r < lo);
            let b = posting.partition_point(|&r| r < hi);
            for &row in &posting[a..b] {
                self.try_row(plan, tmpl, li, row, facts, new_atoms)?;
            }
        } else {
            for row in lo..hi {
                self.try_row(plan, tmpl, li, row, facts, new_atoms)?;
            }
        }
        Ok(())
    }

    /// Matches plan literal `li` against fact `row` (skipping the
    /// index-guaranteed bound positions), recursing on success and
    /// undoing the slot bindings afterwards.
    fn try_row(
        &mut self,
        plan: &JoinPlan,
        tmpl: &RuleTemplate,
        li: usize,
        row: u32,
        facts: &FactStore,
        new_atoms: &mut Vec<GroundAtomId>,
    ) -> Result<(), GroundingError> {
        let lit = &plan.literals[li];
        self.stats.join_candidates += 1;
        self.tick_guard()?;
        let targs = facts.row_args(lit.pred_slot, row);
        let mark = self.slot_trail.len();
        let mut ok = true;
        let mut bi = 0usize;
        for (p, (&spec, &tgt)) in lit.specs.iter().zip(targs.iter()).enumerate() {
            if bi < lit.bound.len() && lit.bound[bi] as usize == p {
                // The index key already pinned this position.
                bi += 1;
                continue;
            }
            let matched = match spec {
                // Hash-consing: id equality is structural equality, so
                // deep ground terms (numerals) compare in O(1).
                ArgSpec::Ground(id) => id == tgt,
                ArgSpec::Slot(s) => {
                    let cur = self.bindings[s as usize];
                    if cur == UNBOUND {
                        self.bindings[s as usize] = tgt;
                        self.slot_trail.push(s);
                        true
                    } else {
                        cur == tgt
                    }
                }
                ArgSpec::Compound(pat) => match_compound(
                    self.store,
                    pat,
                    tgt,
                    &tmpl.var_slots,
                    &mut self.bindings,
                    &mut self.slot_trail,
                ),
            };
            if !matched {
                ok = false;
                break;
            }
        }
        if ok {
            self.matched_buf[lit.orig as usize] = facts.row_atom(lit.pred_slot, row);
            self.exec(plan, tmpl, li + 1, facts, new_atoms)?;
        }
        while self.slot_trail.len() > mark {
            let s = self
                .slot_trail
                .pop()
                .expect("slot trail mark within bounds");
            self.bindings[s as usize] = UNBOUND;
        }
        Ok(())
    }

    /// Enumerates the rule's residual slots over the universe, emitting
    /// the instance when all are bound.
    fn enumerate_residual(
        &mut self,
        tmpl: &RuleTemplate,
        j: usize,
        new_atoms: &mut Vec<GroundAtomId>,
    ) -> Result<(), GroundingError> {
        let Some(&slot) = tmpl.residual.get(j) else {
            return self.emit_template(tmpl, new_atoms);
        };
        for u in 0..self.universe.len() {
            self.tick_guard()?;
            self.bindings[slot as usize] = self.universe[u];
            self.enumerate_residual(tmpl, j + 1, new_atoms)?;
        }
        self.bindings[slot as usize] = UNBOUND;
        Ok(())
    }

    /// Resolves one template argument to its ground term.
    fn resolve_spec(&mut self, spec: ArgSpec, tmpl: &RuleTemplate) -> TermId {
        match spec {
            ArgSpec::Ground(id) => id,
            ArgSpec::Slot(s) => {
                let t = self.bindings[s as usize];
                debug_assert_ne!(t, UNBOUND, "unbound slot at emit");
                t
            }
            ArgSpec::Compound(t) => self.resolve_compound(t, tmpl),
        }
    }

    /// Substitutes slot values into a non-ground compound argument,
    /// interning the new terms (cold path: function symbols only).
    fn resolve_compound(&mut self, t: TermId, tmpl: &RuleTemplate) -> TermId {
        if self.store.is_ground(t) {
            return t;
        }
        match self.store.term(t).clone() {
            Term::Var(v) => {
                let b = self.bindings[tmpl.var_slots[&v] as usize];
                debug_assert_ne!(b, UNBOUND, "unbound variable at emit");
                b
            }
            Term::App(f, args) => {
                let new_args: Vec<TermId> = args
                    .iter()
                    .map(|&a| self.resolve_compound(a, tmpl))
                    .collect();
                self.store.app(f, &new_args)
            }
        }
    }

    /// Template analogue of [`Grounder::emit`]: the positive body ids
    /// come straight from the matched fact rows; only the head and the
    /// negative body atoms are resolved and interned.
    fn emit_template(
        &mut self,
        tmpl: &RuleTemplate,
        new_atoms: &mut Vec<GroundAtomId>,
    ) -> Result<(), GroundingError> {
        // Resolve before interning anything: an instance that escapes
        // the bounded universe must leave no trace in the atom table.
        // (Positive body atoms are matched fact rows, i.e. previously
        // emitted heads, so they are within depth by induction.)
        self.head_buf.clear();
        for i in 0..tmpl.head.args.len() {
            let t = self.resolve_spec(tmpl.head.args[i], tmpl);
            self.head_buf.push(t);
        }
        if self.exceeds_depth(&self.head_buf) {
            return Ok(());
        }
        self.body_buf.clear();
        for ni in 0..tmpl.neg.len() {
            let start = self.body_buf.len();
            for ai in 0..tmpl.neg[ni].args.len() {
                let t = self.resolve_spec(tmpl.neg[ni].args[ai], tmpl);
                self.body_buf.push(t);
            }
            if self.exceeds_depth(&self.body_buf[start..]) {
                return Ok(());
            }
        }
        let head_id = self.gp.intern_atom_parts(tmpl.head.pred, &self.head_buf);
        self.neg_buf.clear();
        let mut off = 0usize;
        for nt in tmpl.neg.iter() {
            let n = nt.args.len();
            let id = self
                .gp
                .intern_atom_parts(nt.pred, &self.body_buf[off..off + n]);
            off += n;
            self.neg_buf.push(id);
        }
        self.push_unique(head_id, tmpl.n_pos as usize, tmpl.table_dedup, new_atoms)
    }

    /// Dedups and stores the clause `head ← matched positives, ¬negs`,
    /// queueing a first-time head through the delta.
    ///
    /// Fact-shaped instances (empty body) dedup by head atom alone — two
    /// such clauses are equal iff their heads are. Bodied instances
    /// consult the id-triple clause table only when `use_table` says a
    /// colliding rule exists (see `RuleTemplate::table_dedup`); planned
    /// semi-naive enumeration is duplicate-free within one rule.
    fn push_unique(
        &mut self,
        head_id: GroundAtomId,
        n_pos: usize,
        use_table: bool,
        new_atoms: &mut Vec<GroundAtomId>,
    ) -> Result<(), GroundingError> {
        self.tick_guard()?;
        if n_pos == 0 && self.neg_buf.is_empty() {
            if self.fact_seen.len() <= head_id.index() {
                self.fact_seen.resize(head_id.index() + 1, false);
            }
            if !self.persistent {
                if self.fact_seen[head_id.index()] {
                    self.stats.dedup_hits += 1;
                    return Ok(());
                }
                return self.emit_fact(head_id, new_atoms);
            }
            // Persistent mode dedups source and permanent fact clauses
            // separately: a session may switch a source clause off, so
            // a permanent duplicate (rule instance / rule-batch fact)
            // must get its own always-on clause, and vice versa — a
            // later `assert` over a permanent clause still needs a
            // switchable one to retract.
            let duplicate = if self.source_fact {
                self.fact_clause.contains_key(&head_id.0)
            } else {
                if self.free_fact_seen.len() <= head_id.index() {
                    self.free_fact_seen.resize(head_id.index() + 1, false);
                }
                self.free_fact_seen[head_id.index()]
            };
            if duplicate {
                self.stats.dedup_hits += 1;
                return Ok(());
            }
            return self.emit_fact(head_id, new_atoms);
        }
        if use_table || self.persistent {
            let pos = &self.matched_buf[..n_pos];
            let neg = &self.neg_buf;
            let hash = clause_hash(head_id.0, pos, neg);
            let gp = &self.gp;
            let eq = |ci: u32| {
                let c = gp.clause(ci);
                c.head == head_id && c.pos == pos && c.neg == &neg[..]
            };
            let ci = gp.clause_count() as u32;
            if (ci as usize) >= self.opts.max_clauses {
                // At the budget only duplicates may still arrive cleanly.
                if self.clause_table.find(hash, eq).is_some() {
                    self.stats.dedup_hits += 1;
                    return Ok(());
                }
                return Err(GroundingError::ClauseBudget(self.opts.max_clauses));
            }
            let existing = self.clause_table.find_or_insert(hash, ci, eq, |i| {
                let c = gp.clause(i);
                clause_hash(c.head.0, c.pos, c.neg)
            });
            if existing.is_some() {
                self.stats.dedup_hits += 1;
                return Ok(());
            }
        } else if self.gp.clause_count() >= self.opts.max_clauses {
            return Err(GroundingError::ClauseBudget(self.opts.max_clauses));
        }
        let (gp, matched) = (&mut self.gp, &self.matched_buf);
        gp.push_clause_parts(head_id, &matched[..n_pos], &self.neg_buf);
        self.queue_derivable(head_id, new_atoms)
    }

    /// Emits the fact clause for a head already known novel: budget
    /// check, `fact_seen` mark, clause push, delta queue. The single
    /// emission step shared by [`Grounder::push_unique`]'s fact branch
    /// and the parallel seed merge — keep the invariants in one place.
    fn emit_fact(
        &mut self,
        head_id: GroundAtomId,
        new_atoms: &mut Vec<GroundAtomId>,
    ) -> Result<(), GroundingError> {
        if self.gp.clause_count() >= self.opts.max_clauses {
            return Err(GroundingError::ClauseBudget(self.opts.max_clauses));
        }
        if self.fact_seen.len() <= head_id.index() {
            self.fact_seen.resize(head_id.index() + 1, false);
        }
        self.fact_seen[head_id.index()] = true;
        if self.persistent {
            if self.source_fact {
                let ci = u32::try_from(self.gp.clause_count()).expect("ground clause overflow");
                self.fact_clause.insert(head_id.0, ci);
            } else {
                if self.free_fact_seen.len() <= head_id.index() {
                    self.free_fact_seen.resize(head_id.index() + 1, false);
                }
                self.free_fact_seen[head_id.index()] = true;
            }
        }
        self.gp.push_clause_parts(head_id, &[], &[]);
        self.queue_derivable(head_id, new_atoms)
    }

    /// Marks `head_id` derivable, queueing it through the delta on the
    /// first derivation.
    fn queue_derivable(
        &mut self,
        head_id: GroundAtomId,
        new_atoms: &mut Vec<GroundAtomId>,
    ) -> Result<(), GroundingError> {
        if self.derivable.len() <= head_id.index() {
            self.derivable.resize(head_id.index() + 1, false);
        }
        if !self.derivable[head_id.index()] {
            self.derivable[head_id.index()] = true;
            new_atoms.push(head_id);
        }
        Ok(())
    }

    /// Matches naive-order literal `i` against every fact row of its
    /// predicate — the oracle join.
    #[allow(clippy::too_many_arguments)]
    fn naive_join(
        &mut self,
        clause: &Clause,
        pats: &[&Atom],
        residual: &[Var],
        i: usize,
        subst: &mut Subst,
        facts: &FactStore,
        new_atoms: &mut Vec<GroundAtomId>,
    ) -> Result<(), GroundingError> {
        if i == pats.len() {
            return self.enumerate_free(clause, residual, 0, subst, new_atoms);
        }
        let pat = pats[i];
        let Some(slot) = facts.slot_of(pat.pred_id()) else {
            return Ok(());
        };
        let (lo, hi) = facts.range(slot, Role::Full);
        for row in lo..hi {
            self.stats.join_candidates += 1;
            let targs = facts.row_args(slot, row);
            let mark = self.trail.len();
            let mut ok = true;
            for (&p, &t) in pat.args.iter().zip(targs.iter()) {
                if !match_term_recording(self.store, subst, p, t, &mut self.trail) {
                    ok = false;
                    break;
                }
            }
            if ok {
                self.naive_join(clause, pats, residual, i + 1, subst, facts, new_atoms)?;
            }
            while self.trail.len() > mark {
                let v = self.trail.pop().expect("trail mark within bounds");
                subst.remove(v);
            }
        }
        Ok(())
    }

    fn enumerate_free(
        &mut self,
        clause: &Clause,
        free: &[Var],
        j: usize,
        subst: &mut Subst,
        new_atoms: &mut Vec<GroundAtomId>,
    ) -> Result<(), GroundingError> {
        if j == free.len() {
            return self.emit(clause, subst, new_atoms);
        }
        for u in 0..self.universe.len() {
            let t = self.universe[u];
            subst.bind(free[j], t);
            self.enumerate_free(clause, free, j + 1, subst, new_atoms)?;
            subst.remove(free[j]);
        }
        Ok(())
    }

    /// Resolves the instance under `subst`, interns its atoms, and —
    /// unless the id-triple dedup has seen the clause — pushes it into
    /// the CSR store, queueing a first-time head through the delta.
    fn emit(
        &mut self,
        clause: &Clause,
        subst: &Subst,
        new_atoms: &mut Vec<GroundAtomId>,
    ) -> Result<(), GroundingError> {
        // Resolve every atom before interning anything: an instance that
        // escapes the bounded universe belongs to a deeper prefix of the
        // (infinite) Herbrand instantiation than this grounding
        // approximates, and must leave no trace in the atom table.
        self.head_buf.clear();
        for &a in clause.head.args.iter() {
            let t = subst.resolve(self.store, a);
            debug_assert!(self.store.is_ground(t), "unbound head variable at emit");
            self.head_buf.push(t);
        }
        if self.exceeds_depth(&self.head_buf) {
            return Ok(());
        }
        self.body_buf.clear();
        for lit in &clause.body {
            let start = self.body_buf.len();
            for &a in lit.atom.args.iter() {
                let t = subst.resolve(self.store, a);
                debug_assert!(self.store.is_ground(t), "unbound variable at emit");
                self.body_buf.push(t);
            }
            if self.exceeds_depth(&self.body_buf[start..]) {
                return Ok(());
            }
        }
        let head_id = self.gp.intern_atom_parts(clause.head.pred, &self.head_buf);
        // The planned path never runs this emit, so `matched_buf` is
        // free to serve as the positive-id buffer here.
        self.matched_buf.clear();
        self.neg_buf.clear();
        let mut off = 0usize;
        for lit in &clause.body {
            let n = lit.atom.args.len();
            let id = self
                .gp
                .intern_atom_parts(lit.atom.pred, &self.body_buf[off..off + n]);
            off += n;
            if lit.is_pos() {
                self.matched_buf.push(id);
            } else {
                self.neg_buf.push(id);
            }
        }
        let n_pos = self.matched_buf.len();
        self.push_unique(head_id, n_pos, true, new_atoms)
    }

    fn exceeds_depth(&self, args: &[TermId]) -> bool {
        self.max_depth != u32::MAX && args.iter().any(|&t| self.store.depth(t) > self.max_depth)
    }

    /// One governance tick (amortized check) charged to this run.
    #[inline]
    fn tick_guard(&mut self) -> Result<(), GroundingError> {
        self.guard
            .tick(&mut self.tick)
            .map_err(GroundingError::Interrupted)
    }

    /// A real governance check plus memory accounting over the term
    /// store, the CSR program, and the fact-store indexes — the
    /// per-round boundary check.
    fn check_guard_memory(&mut self, facts: &FactStore) -> Result<(), GroundingError> {
        if !self.guard.is_governed() {
            return Ok(());
        }
        let r = if self.guard.memory_budget().is_some() {
            let used = self.store.approx_bytes() + self.gp.approx_bytes() + facts.approx_bytes();
            self.guard.check_memory(used)
        } else {
            self.guard.check()
        };
        r.map_err(GroundingError::Interrupted)
    }

    /// Builds a transient grounder over a session kernel's state: every
    /// owned field moves out of the kernel (cheap pointer moves) and
    /// [`Grounder::detach`] moves them back. Persistent mode is implied.
    fn attach<'s>(store: &'s mut TermStore, k: &mut IncrementalGrounder) -> Grounder<'s> {
        Grounder {
            store,
            universe: std::mem::take(&mut k.universe),
            opts: k.opts,
            max_depth: k.max_depth,
            gp: std::mem::take(&mut k.gp),
            derivable: std::mem::take(&mut k.derivable),
            fact_seen: std::mem::take(&mut k.fact_seen),
            clause_table: std::mem::take(&mut k.clause_table),
            trail: std::mem::take(&mut k.trail),
            bindings: std::mem::take(&mut k.bindings),
            slot_trail: std::mem::take(&mut k.slot_trail),
            matched_buf: std::mem::take(&mut k.matched_buf),
            stats: k.stats,
            key_buf: std::mem::take(&mut k.key_buf),
            head_buf: std::mem::take(&mut k.head_buf),
            body_buf: std::mem::take(&mut k.body_buf),
            neg_buf: std::mem::take(&mut k.neg_buf),
            persistent: true,
            force_full: false,
            source_fact: false,
            fact_clause: std::mem::take(&mut k.fact_clause),
            free_fact_seen: std::mem::take(&mut k.free_fact_seen),
            guard: k.guard.clone(),
            tick: 0,
        }
    }

    /// Moves the state of an [`Grounder::attach`]ed run back into its
    /// kernel.
    fn detach(self, k: &mut IncrementalGrounder) {
        k.universe = self.universe;
        k.gp = self.gp;
        k.derivable = self.derivable;
        k.fact_seen = self.fact_seen;
        k.clause_table = self.clause_table;
        k.trail = self.trail;
        k.bindings = self.bindings;
        k.slot_trail = self.slot_trail;
        k.matched_buf = self.matched_buf;
        k.stats = self.stats;
        k.key_buf = self.key_buf;
        k.head_buf = self.head_buf;
        k.body_buf = self.body_buf;
        k.neg_buf = self.neg_buf;
        k.fact_clause = self.fact_clause;
        k.free_fact_seen = self.free_fact_seen;
    }

    /// Re-joins every residual-slot rule in full — the catch-up pass
    /// after the active domain (universe) grows. The dedup table and
    /// `fact_seen` absorb the instances that already exist; only the
    /// combinations touching new constants survive to emission.
    fn rerun_rules_full(
        &mut self,
        parts: &mut KernelParts<'_>,
        new_atoms: &mut Vec<GroundAtomId>,
    ) -> Result<(), GroundingError> {
        for &ri in parts.residual_rules {
            let tmpl = parts.templates[ri as usize]
                .as_ref()
                .expect("residual rules have templates");
            let r = if tmpl.n_pos == 0 {
                self.enumerate_residual(tmpl, 0, new_atoms)
            } else {
                self.force_full = true;
                let plan = parts
                    .planner
                    .plans
                    .iter()
                    .find(|p| p.rule == ri && p.delta_pos == 0)
                    .expect("bodied rules compile at least one plan");
                let r = self.exec(plan, tmpl, 0, parts.facts, new_atoms);
                self.force_full = false;
                r
            };
            r?;
        }
        Ok(())
    }
}

/// Structurally matches a non-ground compound pattern (e.g. `s(X)`)
/// against a ground target, binding pattern variables into the rule's
/// dense slots and recording each new binding on the slot trail. The
/// cold path of [`Grounder::try_row`] — only reachable in programs with
/// function symbols.
fn match_compound(
    store: &TermStore,
    pat: TermId,
    tgt: TermId,
    var_slots: &FxHashMap<Var, u32>,
    bindings: &mut [TermId],
    slot_trail: &mut Vec<u32>,
) -> bool {
    if store.is_ground(pat) {
        // Hash-consing: ground ids are equal iff the terms are.
        return pat == tgt;
    }
    match store.term(pat) {
        Term::Var(v) => {
            let s = var_slots[v] as usize;
            let cur = bindings[s];
            if cur == UNBOUND {
                bindings[s] = tgt;
                slot_trail.push(s as u32);
                true
            } else {
                cur == tgt
            }
        }
        Term::App(f, pargs) => match store.term(tgt) {
            Term::App(g, targs) if f == g && pargs.len() == targs.len() => {
                // Clone the id slices (Copy elements) so we can recurse
                // while mutating the bindings.
                let pargs: Vec<TermId> = pargs.to_vec();
                let targs: Vec<TermId> = targs.to_vec();
                pargs
                    .into_iter()
                    .zip(targs)
                    .all(|(p, t)| match_compound(store, p, t, var_slots, bindings, slot_trail))
            }
            _ => false,
        },
    }
}

/// The **persistent** grounder backing `global_sls::Session` — the
/// `Grounder::extend` path: the same join machinery as
/// [`Grounder::ground`], but all run state (fact store, compiled
/// templates and plans, dedup tables, derivability closure, scratch
/// buffers) survives between calls, so committing a fact delta re-joins
/// only the plans whose predicates actually grew instead of re-grounding
/// from scratch.
///
/// Contract differences from the batch path:
///
/// * **Function-free only** ([`IncrementalGrounder::new`] rejects
///   programs with proper function symbols): the Herbrand universe is
///   then exactly the constant set, which the session can maintain as
///   facts and rules arrive.
/// * **Append-only output**: [`GroundProgram`] atoms and clauses are
///   only ever added (retraction is a model-level clause switch — see
///   [`IncrementalGrounder::fact_clause_of`] and
///   `gsls_wfs::IncrementalLfp::set_clauses_enabled`). Grounding stays
///   monotone over everything *ever* asserted, so a retracted fact's
///   rule instances remain stored (harmlessly: their bodies are
///   underivable once the fact clause is switched off) and re-asserting
///   is a pure re-enable.
/// * **Active-domain enumeration**: rules whose variables no positive
///   body literal binds are enumerated over the constants seen so far;
///   when a commit introduces new constants, every such rule is
///   re-joined in full (the dedup table absorbs the overlap), so the
///   emitted instance set always equals a from-scratch grounding of the
///   merged program. (Corner case: if the *initial* program had no
///   constants at all, the batch grounder's invented constant persists
///   in the session universe.)
/// * The returned program is re-[`finalized`](GroundProgram::finalize)
///   after every operation.
pub struct IncrementalGrounder {
    opts: GrounderOpts,
    max_depth: u32,
    universe: Vec<TermId>,
    /// Membership view of `universe` (constants, function-free).
    uni_set: FxHashSet<TermId>,
    gp: GroundProgram,
    derivable: Vec<bool>,
    fact_seen: Vec<bool>,
    clause_table: IdTable,
    trail: Vec<Var>,
    bindings: Vec<TermId>,
    slot_trail: Vec<u32>,
    matched_buf: Vec<GroundAtomId>,
    stats: GroundStats,
    key_buf: Vec<TermId>,
    head_buf: Vec<TermId>,
    body_buf: Vec<TermId>,
    neg_buf: Vec<GroundAtomId>,
    fact_clause: FxHashMap<u32, u32>,
    free_fact_seen: Vec<bool>,
    /// Per-rule compilation, indexed like the session program's clauses.
    templates: Vec<Option<RuleTemplate>>,
    planner: Planner,
    facts: FactStore,
    /// Rule indices with residual (universe-enumerated) slots — the
    /// rules that must re-join in full when the universe grows.
    residual_rules: Vec<u32>,
    /// Governance guard the next attached run polls; [`Guard::none`]
    /// unless a session installed one for the current commit.
    guard: Guard,
}

impl IncrementalGrounder {
    /// Grounds `program` and keeps every piece of run state for later
    /// [`IncrementalGrounder::extend`] / [`IncrementalGrounder::
    /// add_rules`] calls. The program must be function-free.
    pub fn new(
        store: &mut TermStore,
        program: &Program,
        opts: GrounderOpts,
    ) -> Result<Self, GroundingError> {
        assert!(
            program.is_function_free(store),
            "IncrementalGrounder requires a function-free program"
        );
        // Active-domain universe: the constant set, computed eagerly so
        // later deltas only need to diff against it. (`ensure_universe`
        // skips its sweep when this is non-empty; when the program has
        // no constants at all it may still invent the batch grounder's
        // default one — see the corner case in the type docs.)
        let consts = program.constants(store);
        let universe: Vec<TermId> = consts.into_iter().map(|c| store.app(c, &[])).collect();
        let mut k = IncrementalGrounder {
            opts,
            max_depth: u32::MAX,
            universe,
            uni_set: FxHashSet::default(),
            gp: GroundProgram::new(),
            derivable: Vec::new(),
            fact_seen: Vec::new(),
            clause_table: IdTable::default(),
            trail: Vec::new(),
            bindings: Vec::new(),
            slot_trail: Vec::new(),
            matched_buf: Vec::new(),
            stats: GroundStats::default(),
            key_buf: Vec::new(),
            head_buf: Vec::new(),
            body_buf: Vec::new(),
            neg_buf: Vec::new(),
            fact_clause: FxHashMap::default(),
            free_fact_seen: Vec::new(),
            templates: Vec::new(),
            planner: Planner::default(),
            facts: FactStore::default(),
            residual_rules: Vec::new(),
            guard: Guard::none(),
        };
        let mut g = Grounder::attach(store, &mut k);
        let r = g.run_planned_core(program);
        g.detach(&mut k);
        let (templates, planner, facts) = r?;
        k.residual_rules = residual_rules_of(&templates);
        k.templates = templates;
        k.planner = planner;
        k.facts = facts;
        k.uni_set = k.universe.iter().copied().collect();
        let t = Instant::now();
        k.gp.finalize();
        k.stats.finalize_ns += t.elapsed().as_nanos() as u64;
        Ok(k)
    }

    /// The (finalized) ground program.
    pub fn ground_program(&self) -> &GroundProgram {
        &self.gp
    }

    /// The active domain: every constant seen so far, as interned
    /// terms. Query engines enumerate unbound all-negative variables
    /// over exactly this set.
    pub fn universe(&self) -> &[TermId] {
        &self.universe
    }

    /// Cumulative grounding statistics across all operations so far.
    pub fn stats(&self) -> GroundStats {
        self.stats
    }

    /// Installs the governance guard that subsequent
    /// [`IncrementalGrounder::extend`] / [`IncrementalGrounder::
    /// add_rules`] runs poll. A session sets a per-commit guard before
    /// applying a batch and resets to [`Guard::none`] afterwards.
    pub fn set_guard(&mut self, guard: Guard) {
        self.guard = guard;
    }

    /// Approximate heap footprint of the persistent ground state — CSR
    /// program plus fact store and composite indexes — in bytes. The
    /// session adds the term store's own accounting on top.
    pub fn approx_bytes(&self) -> usize {
        self.gp.approx_bytes() + self.facts.approx_bytes()
    }

    /// Number of program clauses (rules and source facts) compiled so
    /// far — the index the next [`IncrementalGrounder::add_rules`] call
    /// must pass as `first_new`.
    pub fn rules_compiled(&self) -> usize {
        self.templates.len()
    }

    /// The clause index of the **source** fact clause for `id`, if one
    /// was ever emitted (initial-program facts and `extend`ed facts) —
    /// the handle retraction switches off (and re-assertion back on) at
    /// the model layer. Fact-shaped *rule instances* and facts arriving
    /// through [`IncrementalGrounder::add_rules`] are permanent program
    /// text and have no entry here.
    pub fn fact_clause_of(&self, id: GroundAtomId) -> Option<u32> {
        self.fact_clause.get(&id.0).copied()
    }

    /// Grounds a batch of **new ground facts** into the live program:
    /// interns the heads, emits their fact clauses, then runs
    /// relevance-driven semi-naive rounds so every rule instance the new
    /// facts enable is emitted. Facts whose atoms already have a fact
    /// clause are skipped (re-assertion after retraction is a clause
    /// re-enable, not a grounding change). Atoms and clauses are only
    /// appended; the program is re-finalized on return.
    ///
    /// The caller is expected to append the same facts (in order) to
    /// the session's source [`Program`]; the kernel keeps its per-clause
    /// compilation aligned with those indices.
    pub fn extend(
        &mut self,
        store: &mut TermStore,
        new_facts: &[Atom],
    ) -> Result<(), GroundingError> {
        // Keep templates index-aligned with the session program, which
        // records each asserted fact as a ground fact clause.
        self.templates
            .extend(std::iter::repeat_with(|| None).take(new_facts.len()));
        // New constants grow the active domain: every rule with
        // universe-enumerated slots must then re-join in full.
        let mut universe_grew = false;
        for atom in new_facts {
            for &arg in atom.args.iter() {
                debug_assert!(store.is_ground(arg), "asserted facts must be ground");
                if self.uni_set.insert(arg) {
                    self.universe.push(arg);
                    universe_grew = true;
                }
            }
        }
        let rerun = universe_grew && !self.residual_rules.is_empty();
        self.with_grounder(store, |g, parts| {
            let t = Instant::now();
            let mut new_atoms: Vec<GroundAtomId> = Vec::new();
            for atom in new_facts {
                let id = g.gp.intern_atom_parts(atom.pred, &atom.args);
                g.neg_buf.clear();
                // `assert`ed facts are source facts (retractable).
                g.source_fact = true;
                let r = g.push_unique(id, 0, false, &mut new_atoms);
                g.source_fact = false;
                r?;
            }
            if rerun {
                g.rerun_rules_full(parts, &mut new_atoms)?;
            }
            g.stats.seed_ns += t.elapsed().as_nanos() as u64;
            let t = Instant::now();
            let mut grown = Vec::new();
            parts.facts.advance(&g.gp, &new_atoms, &mut grown);
            new_atoms.clear();
            g.drain_rounds(
                parts.templates,
                parts.planner,
                parts.facts,
                &mut new_atoms,
                &mut grown,
            )?;
            g.stats.join_ns += t.elapsed().as_nanos() as u64;
            Ok(())
        })
    }

    /// Compiles and grounds clauses appended to the session program:
    /// `program` is the full updated program whose clauses from
    /// `first_new` on are new (rules or facts). New rules are compiled
    /// to templates and plans, joined once **in full** against the live
    /// fact store, and then participate in semi-naive rounds like any
    /// other rule. Constants the new clauses introduce grow the active
    /// domain exactly as in [`IncrementalGrounder::extend`].
    pub fn add_rules(
        &mut self,
        store: &mut TermStore,
        program: &Program,
        first_new: usize,
    ) -> Result<(), GroundingError> {
        assert_eq!(
            first_new,
            self.templates.len(),
            "add_rules must receive exactly the clauses after the last compiled one"
        );
        assert!(
            program.is_function_free(store),
            "IncrementalGrounder requires a function-free program"
        );
        let new_clauses = &program.clauses()[first_new..];
        // Absorb new constants (every ground argument of a function-free
        // clause is one).
        let mut universe_grew = false;
        for clause in new_clauses {
            let mut absorb = |args: &[TermId]| {
                for &arg in args {
                    if store.is_ground(arg) && self.uni_set.insert(arg) {
                        self.universe.push(arg);
                        universe_grew = true;
                    }
                }
            };
            absorb(&clause.head.args);
            for lit in &clause.body {
                absorb(&lit.atom.args);
            }
        }
        // Compile the new clauses (the session forces the dedup table at
        // emission time, so the per-template flag is moot).
        let t = Instant::now();
        for clause in new_clauses {
            let tmpl = template_of(store, clause, |_| true);
            if let Some(t) = &tmpl {
                if !t.residual.is_empty() {
                    self.residual_rules.push(self.templates.len() as u32);
                }
            }
            self.templates.push(tmpl);
        }
        append_plans(
            store,
            program,
            &self.templates,
            &mut self.facts,
            first_new,
            &mut self.planner,
        );
        // Re-size the dense binding scratch for the widest rule.
        let max_slots = self.templates.iter().flatten().map(|t| t.n_slots).max();
        let max_pos = self.templates.iter().flatten().map(|t| t.n_pos).max();
        if self.bindings.len() < max_slots.unwrap_or(0) as usize {
            self.bindings
                .resize(max_slots.unwrap_or(0) as usize, UNBOUND);
        }
        if self.matched_buf.len() < max_pos.unwrap_or(0) as usize {
            self.matched_buf
                .resize(max_pos.unwrap_or(0) as usize, GroundAtomId(0));
        }
        self.stats.plans = self.planner.plans.len() as u32;
        self.stats.indexes = self.facts.index_count() as u32;
        self.stats.plan_ns += t.elapsed().as_nanos() as u64;
        let rerun_all = universe_grew && !self.residual_rules.is_empty();
        self.with_grounder(store, |g, parts| {
            let t = Instant::now();
            let mut new_atoms: Vec<GroundAtomId> = Vec::new();
            // One catch-up pass per new clause: facts emit directly,
            // seed rules enumerate their residual slots, bodied rules
            // join once with every literal at full range.
            for (ci, clause) in new_clauses.iter().enumerate() {
                match &parts.templates[first_new + ci] {
                    None => {
                        let id = g.gp.intern_atom_parts(clause.head.pred, &clause.head.args);
                        g.neg_buf.clear();
                        g.push_unique(id, 0, false, &mut new_atoms)?;
                    }
                    Some(tmpl) if tmpl.n_pos == 0 => {
                        g.enumerate_residual(tmpl, 0, &mut new_atoms)?;
                    }
                    Some(tmpl) => {
                        g.force_full = true;
                        let plan = parts
                            .planner
                            .plans
                            .iter()
                            .find(|p| p.rule as usize == first_new + ci && p.delta_pos == 0)
                            .expect("bodied rules compile at least one plan");
                        let r = g.exec(plan, tmpl, 0, parts.facts, &mut new_atoms);
                        g.force_full = false;
                        r?;
                    }
                }
            }
            if rerun_all {
                g.rerun_rules_full(parts, &mut new_atoms)?;
            }
            g.stats.seed_ns += t.elapsed().as_nanos() as u64;
            let t = Instant::now();
            let mut grown = Vec::new();
            parts.facts.advance(&g.gp, &new_atoms, &mut grown);
            new_atoms.clear();
            g.drain_rounds(
                parts.templates,
                parts.planner,
                parts.facts,
                &mut new_atoms,
                &mut grown,
            )?;
            g.stats.join_ns += t.elapsed().as_nanos() as u64;
            Ok(())
        })
    }

    /// Runs `op` on a transient [`Grounder`] attached to this kernel's
    /// state, handing it the compiled parts, then re-absorbs the state
    /// and re-finalizes the program (even on error, so a failed commit
    /// leaves a structurally consistent — if semantically partial —
    /// program behind for the session to poison).
    fn with_grounder(
        &mut self,
        store: &mut TermStore,
        op: impl FnOnce(&mut Grounder<'_>, &mut KernelParts<'_>) -> Result<(), GroundingError>,
    ) -> Result<(), GroundingError> {
        let templates = std::mem::take(&mut self.templates);
        let planner = std::mem::take(&mut self.planner);
        let mut facts = std::mem::take(&mut self.facts);
        let residual_rules = std::mem::take(&mut self.residual_rules);
        let mut g = Grounder::attach(store, self);
        let mut parts = KernelParts {
            templates: &templates,
            planner: &planner,
            facts: &mut facts,
            residual_rules: &residual_rules,
        };
        let r = op(&mut g, &mut parts);
        g.detach(self);
        self.templates = templates;
        self.planner = planner;
        self.facts = facts;
        self.residual_rules = residual_rules;
        let t = Instant::now();
        self.gp.finalize();
        self.stats.finalize_ns += t.elapsed().as_nanos() as u64;
        r
    }
}

/// The compiled parts a kernel operation joins against, borrowed out of
/// the kernel for the duration of one attached-[`Grounder`] run.
struct KernelParts<'p> {
    templates: &'p [Option<RuleTemplate>],
    planner: &'p Planner,
    facts: &'p mut FactStore,
    residual_rules: &'p [u32],
}

/// Rule indices whose templates have residual (universe-enumerated)
/// slots.
fn residual_rules_of(templates: &[Option<RuleTemplate>]) -> Vec<u32> {
    templates
        .iter()
        .enumerate()
        .filter_map(|(i, t)| {
            t.as_ref()
                .is_some_and(|t| !t.residual.is_empty())
                .then_some(i as u32)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsls_lang::parse_program;

    fn ground(src: &str) -> (TermStore, GroundProgram) {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, src).unwrap();
        let gp = Grounder::ground(&mut s, &p).unwrap();
        (s, gp)
    }

    use crate::testutil::sorted_clauses;

    #[test]
    fn facts_ground_to_themselves() {
        let (s, gp) = ground("p(a). q(b).");
        assert_eq!(gp.clause_count(), 2);
        assert_eq!(gp.atom_count(), 2);
        assert!(gp.clauses().all(|c| c.is_fact()));
        let text = gp.display(&s);
        assert!(text.contains("p(a)."));
    }

    #[test]
    fn positive_join_restricts_instances() {
        // p(X) :- e(X). Only e(a) derivable, so only p(a) emitted even
        // though the universe has two constants.
        let (s, gp) = ground("e(a). other(b). p(X) :- e(X).");
        let text = gp.display(&s);
        assert!(text.contains("p(a) :- e(a)."));
        assert!(!text.contains("p(b)"));
    }

    #[test]
    fn unbound_vars_enumerated_over_universe() {
        let (s, gp) = ground("q(a). q(b). p(X) :- ~q(X).");
        let text = gp.display(&s);
        assert!(text.contains("p(a) :- ~q(a)."));
        assert!(text.contains("p(b) :- ~q(b)."));
    }

    #[test]
    fn negative_atoms_interned_even_if_underivable() {
        let (s, gp) = ground("p :- ~q.");
        // q has no rules but must still get an id so engines can see the
        // body literal.
        let q = gp
            .atom_ids()
            .find(|&id| gp.display_atom(&s, id) == "q")
            .expect("q interned");
        assert!(gp.clauses_for(q).is_empty());
    }

    #[test]
    fn recursive_rules_reach_fixpoint() {
        let (s, gp) = ground("e(a, b). e(b, c). t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).");
        let text = gp.display(&s);
        assert!(text.contains("t(a, c) :- e(a, b), t(b, c)."));
        // t(a,b), t(b,c), t(a,c) derivable — no spurious t(c, _).
        assert!(!text.contains("t(c,"));
    }

    #[test]
    fn function_symbols_ground_to_depth() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "e(s(X), 0) :- e(X, 0). e(s(s(s(0))), 0).").unwrap();
        let gp = Grounder::ground_with(
            &mut s,
            &p,
            GrounderOpts {
                universe: HerbrandOpts {
                    max_depth: 6,
                    max_terms: 1000,
                },
                max_clauses: 10_000,
                ..GrounderOpts::default()
            },
        )
        .unwrap();
        let text = gp.display(&s);
        assert!(text.contains("e(s(s(s(s(0)))), 0) :- e(s(s(s(0))), 0)."));
    }

    #[test]
    fn win_move_game_grounding() {
        let (s, gp) = ground("move(a, b). move(b, a). move(b, c). win(X) :- move(X, Y), ~win(Y).");
        let text = gp.display(&s);
        assert!(text.contains("win(a) :- move(a, b), ~win(b)."));
        assert!(text.contains("win(b) :- move(b, a), ~win(a)."));
        assert!(text.contains("win(b) :- move(b, c), ~win(c)."));
        // win(c) has no move: no rule instance with head win(c).
        assert!(!text.contains("win(c) :-"));
    }

    #[test]
    fn duplicate_instances_deduped() {
        let (_, gp) = ground("p(a). p(a). q :- p(a), p(a).");
        // The two p(a) facts collapse to one; the q rule appears once.
        assert_eq!(gp.clause_count(), 2);
    }

    #[test]
    fn clause_budget_enforced() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "d(a). d(b). d(c). p(X, Y, Z) :- ~q(X, Y, Z).").unwrap();
        let err = Grounder::ground_with(
            &mut s,
            &p,
            GrounderOpts {
                max_clauses: 5,
                ..GrounderOpts::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, GroundingError::ClauseBudget(5));
    }

    #[test]
    fn zero_arity_program() {
        let (s, gp) = ground("p :- ~q. q :- ~p. r :- p.");
        assert_eq!(gp.clause_count(), 3);
        assert_eq!(gp.atom_count(), 3);
        let text = gp.display(&s);
        assert!(text.contains("r :- p."));
    }

    #[test]
    fn lookup_vs_intern() {
        let (mut s, mut gp) = ground("p(a).");
        let p = s.intern_symbol("p");
        let b = s.constant("b");
        let pb = Atom::new(p, vec![b]);
        assert!(gp.lookup_atom(&pb).is_none());
        let id = gp.intern_atom(pb.clone());
        assert_eq!(gp.lookup_atom(&pb), Some(id));
        assert_eq!(gp.atom(id), &pb);
        // Parts-based interning agrees with the owned-atom path.
        assert_eq!(gp.intern_atom_parts(p, &pb.args), id);
    }

    #[test]
    fn csr_views_match_pushed_clauses() {
        // Round-trip: clauses pushed as owned builders come back
        // identical through the CSR views, in order.
        let mut s = TermStore::new();
        let mut gp = GroundProgram::new();
        let mut mk = |name: &str| {
            let sym = s.intern_symbol(name);
            gp.intern_atom(Atom::new(sym, Vec::new()))
        };
        let (a, b, c, d) = (mk("a"), mk("b"), mk("c"), mk("d"));
        let cls = vec![
            GroundClause {
                head: a,
                pos: vec![b, c].into(),
                neg: vec![d].into(),
            },
            GroundClause {
                head: b,
                pos: Vec::new().into(),
                neg: Vec::new().into(),
            },
            GroundClause {
                head: c,
                pos: vec![b, b].into(), // duplicate body literal survives
                neg: vec![a, d].into(),
            },
        ];
        for cl in &cls {
            gp.push_clause(cl.clone());
        }
        assert_eq!(gp.clause_count(), cls.len());
        for (i, cl) in cls.iter().enumerate() {
            let view = gp.clause(i as u32);
            assert_eq!(&view.to_owned(), cl, "clause {i}");
            assert_eq!(view.pos.len() as u32, gp.pos_len(i as u32));
        }
        // Reverse indexes agree with a brute-force scan.
        gp.finalize();
        for atom in gp.atom_ids() {
            let heads: Vec<u32> = (0..cls.len() as u32)
                .filter(|&ci| gp.clause(ci).head == atom)
                .collect();
            assert_eq!(gp.clauses_for(atom), &heads[..], "by_head {atom:?}");
            let mut pos_watch = Vec::new();
            let mut neg_watch = Vec::new();
            for ci in 0..cls.len() as u32 {
                for &p in gp.clause(ci).pos {
                    if p == atom {
                        pos_watch.push(ci);
                    }
                }
                for &q in gp.clause(ci).neg {
                    if q == atom {
                        neg_watch.push(ci);
                    }
                }
            }
            assert_eq!(gp.watch_pos(atom), &pos_watch[..], "watch_pos {atom:?}");
            assert_eq!(gp.watch_neg(atom), &neg_watch[..], "watch_neg {atom:?}");
        }
    }

    #[test]
    fn incremental_finalize_matches_full_rebuild() {
        // Finalize, append clauses that watch both old and brand-new
        // atoms (tail-append AND merge paths), finalize again — every
        // reverse index must equal a single from-scratch finalize of
        // the same store. Repeated rounds exercise spare recycling.
        let mut s = TermStore::new();
        let p =
            parse_program(&mut s, "e(a). e(b). p(X) :- e(X), ~q(X). q(a). r :- ~p(a).").unwrap();
        let mut gp = Grounder::ground(&mut s, &p).unwrap();
        let mut oracle = GroundProgram::new();
        for a in gp.atom_ids() {
            oracle.intern_atom(gp.atom(a).clone());
        }
        for c in gp.clauses() {
            oracle.push_clause_parts(c.head, c.pos, c.neg);
        }
        for round in 0..4 {
            // New head atom + body mixing an old atom and a new atom.
            let sym = s.intern_symbol(&format!("n{round}"));
            let dep = s.intern_symbol(&format!("m{round}"));
            let h = gp.intern_atom(Atom::new(sym, Vec::new()));
            let d = gp.intern_atom(Atom::new(dep, Vec::new()));
            let old = GroundAtomId(round as u32 % 3);
            gp.push_clause_parts(h, &[old, d], &[GroundAtomId(0)]);
            gp.push_clause_parts(d, &[], &[]);
            gp.finalize();
            let h2 = oracle.intern_atom(Atom::new(sym, Vec::new()));
            let d2 = oracle.intern_atom(Atom::new(dep, Vec::new()));
            assert_eq!((h, d), (h2, d2), "interning order preserved");
            oracle.push_clause_parts(h2, &[old, d2], &[GroundAtomId(0)]);
            oracle.push_clause_parts(d2, &[], &[]);
            let mut fresh = GroundProgram::new();
            for a in oracle.atom_ids() {
                fresh.intern_atom(oracle.atom(a).clone());
            }
            for c in oracle.clauses() {
                fresh.push_clause_parts(c.head, c.pos, c.neg);
            }
            fresh.finalize();
            for a in gp.atom_ids() {
                assert_eq!(gp.clauses_for(a), fresh.clauses_for(a), "by_head {a:?}");
                assert_eq!(gp.watch_pos(a), fresh.watch_pos(a), "watch_pos {a:?}");
                assert_eq!(gp.watch_neg(a), fresh.watch_neg(a), "watch_neg {a:?}");
            }
        }
    }

    #[test]
    fn mutation_invalidates_indexes() {
        let (_, mut gp) = ground("p :- ~q.");
        assert!(gp.is_finalized());
        let p = GroundAtomId(0);
        gp.push_clause(GroundClause {
            head: p,
            pos: Vec::new().into(),
            neg: Vec::new().into(),
        });
        assert!(!gp.is_finalized());
        gp.finalize();
        assert!(gp.is_finalized());
        assert!(gp.clauses_for(p).len() >= 2 || gp.clauses_for(p).len() == 1);
    }

    #[test]
    fn semi_naive_matches_long_chain() {
        // A linear chain forces many rounds; every hop must appear.
        let mut src = String::new();
        src.push_str("r(v0).\n");
        for i in 0..12 {
            src.push_str(&format!("e(v{i}, v{}).\n", i + 1));
        }
        src.push_str("r(Y) :- r(X), e(X, Y).\n");
        let (s, gp) = ground(&src);
        let text = gp.display(&s);
        for i in 0..=12 {
            assert!(text.contains(&format!("r(v{i})")), "r(v{i}) missing");
        }
        assert!(!text.contains("r(v13)"));
    }

    #[test]
    fn planned_and_naive_agree_on_core_programs() {
        for src in [
            "e(a). other(b). p(X) :- e(X).",
            "q(a). q(b). p(X) :- ~q(X).",
            "e(a, b). e(b, c). t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).",
            "move(a, b). move(b, a). move(b, c). win(X) :- move(X, Y), ~win(Y).",
            "p :- ~q. q :- ~p. r :- p.",
            // Wide rule with shared variables across four positive
            // literals plus a residual-only negative.
            "a(x, y). a(y, z). b(y). c(y, z). d(z). \
             p(X, Z) :- a(X, Y), b(Y), c(Y, Z), d(Z), ~p(Z, X).",
        ] {
            let mut s1 = TermStore::new();
            let p1 = parse_program(&mut s1, src).unwrap();
            let planned = Grounder::ground(&mut s1, &p1).unwrap();
            let mut s2 = TermStore::new();
            let p2 = parse_program(&mut s2, src).unwrap();
            let naive = Grounder::ground_with(
                &mut s2,
                &p2,
                GrounderOpts {
                    strategy: JoinStrategy::Naive,
                    ..GrounderOpts::default()
                },
            )
            .unwrap();
            assert_eq!(
                sorted_clauses(&s1, &planned),
                sorted_clauses(&s2, &naive),
                "strategy divergence on {src}"
            );
        }
    }

    #[test]
    fn parallel_seed_matches_sequential_bit_for_bit() {
        // Facts-first programs: the parallel merge assigns ids in the
        // same first-occurrence order as sequential interning, so even
        // the id assignment (not just the clause set) must agree.
        let mut src = String::new();
        for i in 0..300 {
            src.push_str(&format!("e(v{}, v{}).\n", i % 40, (i * 7 + 3) % 40));
        }
        src.push_str("t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).\n");
        let mut s1 = TermStore::new();
        let p1 = parse_program(&mut s1, &src).unwrap();
        let seq = Grounder::ground(&mut s1, &p1).unwrap();
        for threads in [2, 8] {
            let mut s2 = TermStore::new();
            let p2 = parse_program(&mut s2, &src).unwrap();
            let par = Grounder::ground_with(
                &mut s2,
                &p2,
                GrounderOpts {
                    threads,
                    ..GrounderOpts::default()
                },
            )
            .unwrap();
            assert_eq!(par.atom_count(), seq.atom_count(), "{threads} threads");
            assert_eq!(par.clause_count(), seq.clause_count());
            for (a, b) in seq.clauses().zip(par.clauses()) {
                assert_eq!(a, b, "clause divergence at {threads} threads");
            }
            // The interning table must resolve every atom to its id.
            for id in par.atom_ids() {
                assert_eq!(par.lookup_atom(par.atom(id)), Some(id));
            }
        }
    }

    #[test]
    fn parallel_seed_dedups_and_respects_budget() {
        let src = "p(a). p(a). p(b). q(X) :- p(X).";
        let mut s = TermStore::new();
        let p = parse_program(&mut s, src).unwrap();
        let gp = Grounder::ground_with(
            &mut s,
            &p,
            GrounderOpts {
                threads: 4,
                ..GrounderOpts::default()
            },
        )
        .unwrap();
        // Two distinct p facts (one duplicate dropped) + two q rules.
        assert_eq!(gp.clause_count(), 4);
        let mut s2 = TermStore::new();
        let p2 = parse_program(&mut s2, "d(a). d(b). d(c). d(d).").unwrap();
        let err = Grounder::ground_with(
            &mut s2,
            &p2,
            GrounderOpts {
                threads: 4,
                max_clauses: 3,
                ..GrounderOpts::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, GroundingError::ClauseBudget(3));
    }

    #[test]
    fn ground_program_is_shareable_across_workers() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<GroundProgram>();
        assert_sync::<GroundProgram>();
        assert_sync::<TermStore>();
    }

    #[test]
    fn stats_expose_plan_and_probe_counts() {
        let mut s = TermStore::new();
        let p = parse_program(
            &mut s,
            "e(a, b). e(b, c). t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).",
        )
        .unwrap();
        let (_, stats) = Grounder::ground_with_stats(&mut s, &p, GrounderOpts::default()).unwrap();
        // 1 plan for the base rule, 2 for the recursive rule.
        assert_eq!(stats.plans, 3);
        assert!(stats.indexes >= 2, "both join signatures indexed");
        assert!(stats.index_probes > 0);
        assert!(stats.join_candidates > 0);
        assert!(stats.rounds >= 2, "chain needs several rounds");
    }

    /// Oracle: the incremental clause set must equal a batch grounding
    /// of the merged program (modulo interning order).
    fn assert_matches_batch(store: &TermStore, k: &IncrementalGrounder, merged_src: &str) {
        let mut s2 = TermStore::new();
        let p2 = parse_program(&mut s2, merged_src).unwrap();
        let batch = Grounder::ground(&mut s2, &p2).unwrap();
        assert_eq!(
            sorted_clauses(store, k.ground_program()),
            sorted_clauses(&s2, &batch),
            "incremental vs batch divergence on: {merged_src}"
        );
    }

    #[test]
    fn incremental_extend_matches_batch_grounding() {
        let mut s = TermStore::new();
        let base = "e(a, b). t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).";
        let p = parse_program(&mut s, base).unwrap();
        let mut k = IncrementalGrounder::new(&mut s, &p, GrounderOpts::default()).unwrap();
        assert!(k.ground_program().is_finalized());
        // Extend with a chain extension: new constants, recursive cascade.
        let facts = parse_program(&mut s, "e(b, c). e(c, d).").unwrap();
        let atoms: Vec<Atom> = facts.clauses().iter().map(|c| c.head.clone()).collect();
        k.extend(&mut s, &atoms).unwrap();
        assert!(k.ground_program().is_finalized());
        assert_matches_batch(
            &s,
            &k,
            "e(a, b). t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z). e(b, c). e(c, d).",
        );
        // Duplicate extension is a no-op.
        let before = k.ground_program().clause_count();
        k.extend(&mut s, &atoms).unwrap();
        assert_eq!(k.ground_program().clause_count(), before);
        // Fact clauses are tracked for retraction.
        let eab = k
            .ground_program()
            .lookup_atom(&facts.clauses()[0].head)
            .unwrap();
        let ci = k.fact_clause_of(eab).unwrap();
        assert!(k.ground_program().clause(ci).is_fact());
    }

    #[test]
    fn incremental_add_rules_matches_batch_grounding() {
        let mut s = TermStore::new();
        let base = "e(a, b). e(b, c). r(a).";
        let p0 = parse_program(&mut s, base).unwrap();
        let mut k = IncrementalGrounder::new(&mut s, &p0, GrounderOpts::default()).unwrap();
        // Add a recursive rule after the fact base exists: the catch-up
        // full join must pick up all existing rows.
        let mut p = p0.clone();
        let add = parse_program(&mut s, "r(Y) :- r(X), e(X, Y). w(X) :- e(X, Y), ~w(Y).").unwrap();
        let first_new = p.len();
        for c in add.clauses() {
            p.push(c.clone());
        }
        k.add_rules(&mut s, &p, first_new).unwrap();
        assert_matches_batch(
            &s,
            &k,
            "e(a, b). e(b, c). r(a). r(Y) :- r(X), e(X, Y). w(X) :- e(X, Y), ~w(Y).",
        );
        // And a later fact extension still cascades through the rules
        // added above.
        let fx = parse_program(&mut s, "e(c, d).").unwrap();
        let atoms: Vec<Atom> = fx.clauses().iter().map(|c| c.head.clone()).collect();
        k.extend(&mut s, &atoms).unwrap();
        assert_matches_batch(
            &s,
            &k,
            "e(a, b). e(b, c). r(a). r(Y) :- r(X), e(X, Y). w(X) :- e(X, Y), ~w(Y). e(c, d).",
        );
    }

    #[test]
    fn incremental_universe_growth_reruns_residual_rules() {
        // p(X) :- ~q(X) enumerates X over the active domain; asserting a
        // fact with a brand-new constant must retroactively add the new
        // instance, matching a from-scratch grounding.
        let mut s = TermStore::new();
        let p0 = parse_program(&mut s, "q(a). d(a). p(X) :- ~q(X).").unwrap();
        let mut k = IncrementalGrounder::new(&mut s, &p0, GrounderOpts::default()).unwrap();
        let fx = parse_program(&mut s, "d(b).").unwrap();
        let atoms: Vec<Atom> = fx.clauses().iter().map(|c| c.head.clone()).collect();
        k.extend(&mut s, &atoms).unwrap();
        assert_matches_batch(&s, &k, "q(a). d(a). p(X) :- ~q(X). d(b).");
        // Growth via add_rules constants, too.
        let mut p = p0.clone();
        let add = parse_program(&mut s, "d(c).").unwrap();
        let first_new = p.len();
        for c in fx.clauses().iter().chain(add.clauses()) {
            p.push(c.clone());
        }
        // (fx was applied via extend; add_rules also accepts fact
        // clauses, so route the new constant c through it.)
        k.add_rules(&mut s, &p, first_new + 1).unwrap();
        assert_matches_batch(&s, &k, "q(a). d(a). p(X) :- ~q(X). d(b). d(c).");
    }

    #[test]
    fn delta_subrange_probes_stay_linear_on_chains() {
        // Regression for the indexed-candidate path: posting lists are
        // restricted to the delta/old sub-range by binary search, so a
        // linear derivation chain examines O(edges) candidates overall —
        // the old full-list filter scan (and the pre-relevance sweep of
        // every rule per round) was quadratic in the round count.
        let n = 256usize;
        let mut src = String::new();
        src.push_str("r(v0).\n");
        for i in 0..n {
            src.push_str(&format!("e(v{i}, v{}).\n", i + 1));
        }
        src.push_str("r(Y) :- r(X), e(X, Y).\n");
        let mut s = TermStore::new();
        let p = parse_program(&mut s, &src).unwrap();
        let (gp, stats) = Grounder::ground_with_stats(&mut s, &p, GrounderOpts::default()).unwrap();
        // 1 seed fact + n edge facts + n rule instances.
        assert_eq!(gp.clause_count(), 1 + n + n);
        let bound = (n as u64) * 16;
        assert!(
            stats.join_candidates <= bound,
            "chain join candidates {} exceed linear bound {bound}",
            stats.join_candidates
        );
    }
}
