//! Herbrand instantiation: compiling programs to dense ground form.
//!
//! A [`GroundProgram`] stores interned ground atoms as `u32` ids and
//! clauses as `(head, positive body, negative body)` id triples — the
//! cache-friendly representation every fixpoint engine in the workspace
//! operates on.
//!
//! [`Grounder::ground`] performs **relevant grounding**: instead of the
//! full Herbrand instantiation (Def. 1.5), which is wasteful or infinite,
//! it computes the least fixpoint of the positive-closure operator
//! (negative literals ignored) and emits only rule instances whose
//! positive bodies are potentially derivable. Rule instances pruned this
//! way can never fire in any fixpoint of `W_P`, so the well-founded model
//! restricted to derivable atoms is unchanged, and atoms never interned
//! are false in the well-founded model. Variables not bound by the
//! positive body are enumerated over the (depth-bounded) Herbrand
//! universe.

use crate::herbrand::{herbrand_universe, HerbrandOpts};
use gsls_lang::{
    match_term, Atom, FxHashMap, FxHashSet, Pred, Program, Subst, TermId, TermStore, Var,
};
use std::fmt;

/// Identity of an interned ground atom within a [`GroundProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroundAtomId(pub u32);

impl GroundAtomId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A ground clause `head ← pos₁,…,posₘ, ¬neg₁,…,¬negₖ`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroundClause {
    /// Head atom.
    pub head: GroundAtomId,
    /// Positive body atoms.
    pub pos: Box<[GroundAtomId]>,
    /// Atoms appearing negated in the body.
    pub neg: Box<[GroundAtomId]>,
}

impl GroundClause {
    /// Whether this is a fact.
    pub fn is_fact(&self) -> bool {
        self.pos.is_empty() && self.neg.is_empty()
    }

    /// Total body length.
    pub fn body_len(&self) -> usize {
        self.pos.len() + self.neg.len()
    }
}

/// A program compiled to ground form.
#[derive(Debug, Default, Clone)]
pub struct GroundProgram {
    atoms: Vec<Atom>,
    atom_ids: FxHashMap<Atom, GroundAtomId>,
    clauses: Vec<GroundClause>,
    by_head: Vec<Vec<u32>>,
}

impl GroundProgram {
    /// Creates an empty ground program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a ground atom, returning its id.
    pub fn intern_atom(&mut self, atom: Atom) -> GroundAtomId {
        if let Some(&id) = self.atom_ids.get(&atom) {
            return id;
        }
        let id = GroundAtomId(u32::try_from(self.atoms.len()).expect("ground atom overflow"));
        self.atom_ids.insert(atom.clone(), atom_id_guard(id));
        self.atoms.push(atom);
        self.by_head.push(Vec::new());
        id
    }

    /// Looks up a ground atom without interning.
    pub fn lookup_atom(&self, atom: &Atom) -> Option<GroundAtomId> {
        self.atom_ids.get(atom).copied()
    }

    /// The atom for `id`.
    pub fn atom(&self, id: GroundAtomId) -> &Atom {
        &self.atoms[id.index()]
    }

    /// Number of interned atoms.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Iterates over all atom ids.
    pub fn atom_ids(&self) -> impl Iterator<Item = GroundAtomId> {
        (0..self.atoms.len() as u32).map(GroundAtomId)
    }

    /// Adds a clause (deduplication is the grounder's responsibility).
    pub fn push_clause(&mut self, clause: GroundClause) {
        let idx = self.clauses.len() as u32;
        self.by_head[clause.head.index()].push(idx);
        self.clauses.push(clause);
    }

    /// All clauses.
    pub fn clauses(&self) -> &[GroundClause] {
        &self.clauses
    }

    /// Number of clauses.
    pub fn clause_count(&self) -> usize {
        self.clauses.len()
    }

    /// Indices of clauses with head `id`.
    pub fn clauses_for(&self, id: GroundAtomId) -> &[u32] {
        &self.by_head[id.index()]
    }

    /// The clause at `idx`.
    pub fn clause(&self, idx: u32) -> &GroundClause {
        &self.clauses[idx as usize]
    }

    /// Renders an atom.
    pub fn display_atom(&self, store: &TermStore, id: GroundAtomId) -> String {
        self.atom(id).display(store)
    }

    /// Renders the whole ground program.
    pub fn display(&self, store: &TermStore) -> String {
        let mut s = String::new();
        for c in &self.clauses {
            s.push_str(&self.display_atom(store, c.head));
            if !c.is_fact() {
                s.push_str(" :- ");
                let mut first = true;
                for &p in c.pos.iter() {
                    if !first {
                        s.push_str(", ");
                    }
                    first = false;
                    s.push_str(&self.display_atom(store, p));
                }
                for &n in c.neg.iter() {
                    if !first {
                        s.push_str(", ");
                    }
                    first = false;
                    s.push('~');
                    s.push_str(&self.display_atom(store, n));
                }
            }
            s.push_str(".\n");
        }
        s
    }
}

#[inline]
fn atom_id_guard(id: GroundAtomId) -> GroundAtomId {
    id
}

/// How clause instances are enumerated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GroundingMode {
    /// Relevant grounding: positive bodies are joined against the
    /// positive-closure fixpoint, pruning rule instances that can never
    /// fire. Smaller output, same well-founded model on derivable atoms.
    #[default]
    Relevant,
    /// Full Herbrand instantiation (Def. 1.5) over the (depth-bounded)
    /// universe: every substitution of universe terms for clause
    /// variables. Needed when the syntactic shape of *all* instances
    /// matters (ground global trees, local-stratification analyses).
    Full,
}

/// Options controlling grounding.
#[derive(Debug, Clone, Copy)]
pub struct GrounderOpts {
    /// Universe enumeration bounds (relevant only with function symbols).
    pub universe: HerbrandOpts,
    /// Hard cap on emitted ground clauses.
    pub max_clauses: usize,
    /// Instance enumeration strategy.
    pub mode: GroundingMode,
}

impl Default for GrounderOpts {
    fn default() -> Self {
        GrounderOpts {
            universe: HerbrandOpts::default(),
            max_clauses: 2_000_000,
            mode: GroundingMode::Relevant,
        }
    }
}

/// Grounding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroundingError {
    /// The `max_clauses` budget was exceeded.
    ClauseBudget(usize),
}

impl fmt::Display for GroundingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroundingError::ClauseBudget(n) => {
                write!(f, "grounding exceeded the clause budget of {n}")
            }
        }
    }
}

impl std::error::Error for GroundingError {}

/// The Herbrand instantiation engine.
pub struct Grounder<'a> {
    store: &'a mut TermStore,
    universe: Vec<TermId>,
    opts: GrounderOpts,
    /// Maximum term depth allowed in emitted atoms: heads like `e(s(X),0)`
    /// can otherwise escape the bounded universe and diverge.
    max_depth: u32,
    gp: GroundProgram,
    /// Per-predicate candidates for positive-body matching.
    index: FxHashMap<Pred, Vec<Atom>>,
    derivable: FxHashSet<Atom>,
    seen_clauses: FxHashSet<GroundClause>,
}

impl<'a> Grounder<'a> {
    /// Grounds `program` with default options.
    pub fn ground(
        store: &'a mut TermStore,
        program: &Program,
    ) -> Result<GroundProgram, GroundingError> {
        Self::ground_with(store, program, GrounderOpts::default())
    }

    /// Grounds `program` with explicit options.
    pub fn ground_with(
        store: &'a mut TermStore,
        program: &Program,
        opts: GrounderOpts,
    ) -> Result<GroundProgram, GroundingError> {
        let universe = herbrand_universe(store, program, opts.universe);
        // With function symbols the universe is depth-truncated; emitted
        // atoms must respect the same bound or grounding diverges. For
        // function-free programs terms never grow, so no bound is needed.
        let max_depth = if program.is_function_free(store) {
            u32::MAX
        } else {
            opts.universe.max_depth
        };
        let mut g = Grounder {
            store,
            universe,
            opts,
            max_depth,
            gp: GroundProgram::new(),
            index: FxHashMap::default(),
            derivable: FxHashSet::default(),
            seen_clauses: FxHashSet::default(),
        };
        g.run(program)?;
        Ok(g.gp)
    }

    fn run(&mut self, program: &Program) -> Result<(), GroundingError> {
        loop {
            let mut new_atoms: Vec<Atom> = Vec::new();
            for clause in program.clauses() {
                self.instantiate_clause(clause, &mut new_atoms)?;
            }
            if new_atoms.is_empty() {
                return Ok(());
            }
            for atom in new_atoms {
                self.index
                    .entry(atom.pred_id())
                    .or_default()
                    .push(atom.clone());
                self.derivable.insert(atom);
            }
        }
    }

    fn instantiate_clause(
        &mut self,
        clause: &gsls_lang::Clause,
        new_atoms: &mut Vec<Atom>,
    ) -> Result<(), GroundingError> {
        let mut subst = Subst::new();
        match self.opts.mode {
            GroundingMode::Relevant => {
                let pos: Vec<&Atom> = clause.pos_body().map(|l| &l.atom).collect();
                self.join(clause, &pos, 0, &mut subst, new_atoms)
            }
            GroundingMode::Full => {
                let free = clause.vars(self.store);
                self.enumerate_free(clause, &free, 0, &mut subst, new_atoms)
            }
        }
    }

    /// Matches positive body literals `pos[i..]` against derivable atoms,
    /// then enumerates residual variables and emits the instance.
    fn join(
        &mut self,
        clause: &gsls_lang::Clause,
        pos: &[&Atom],
        i: usize,
        subst: &mut Subst,
        new_atoms: &mut Vec<Atom>,
    ) -> Result<(), GroundingError> {
        if i == pos.len() {
            // Enumerate variables not bound by the positive body.
            let free: Vec<Var> = clause
                .vars(self.store)
                .into_iter()
                .filter(|&v| {
                    let vt = self.store.var_term(v);
                    let walked = subst.walk(self.store, vt);
                    self.store.as_var(walked).is_some()
                })
                .collect();
            return self.enumerate_free(clause, &free, 0, subst, new_atoms);
        }
        let pattern = pos[i];
        let Some(candidates) = self.index.get(&pattern.pred_id()) else {
            return Ok(());
        };
        // Snapshot of candidate atoms (naive-evaluation pass semantics:
        // atoms found this pass only participate from the next pass).
        let candidates: Vec<Atom> = candidates.clone();
        for cand in candidates {
            let mut local = subst.clone();
            let ok = pattern
                .args
                .iter()
                .zip(cand.args.iter())
                .all(|(&pat, &tgt)| match_term(self.store, &mut local, pat, tgt));
            if ok {
                self.join(clause, pos, i + 1, &mut local, new_atoms)?;
            }
        }
        Ok(())
    }

    fn enumerate_free(
        &mut self,
        clause: &gsls_lang::Clause,
        free: &[Var],
        j: usize,
        subst: &mut Subst,
        new_atoms: &mut Vec<Atom>,
    ) -> Result<(), GroundingError> {
        if j == free.len() {
            return self.emit(clause, subst, new_atoms);
        }
        let universe = self.universe.clone();
        for t in universe {
            let mut local = subst.clone();
            local.bind(free[j], t);
            self.enumerate_free(clause, free, j + 1, &mut local, new_atoms)?;
        }
        Ok(())
    }

    fn emit(
        &mut self,
        clause: &gsls_lang::Clause,
        subst: &Subst,
        new_atoms: &mut Vec<Atom>,
    ) -> Result<(), GroundingError> {
        let head = subst.resolve_atom(self.store, &clause.head);
        debug_assert!(head.is_ground(self.store));
        if self.exceeds_depth(&head) {
            // The instance mentions terms outside the bounded universe;
            // it belongs to a deeper prefix of the (infinite) Herbrand
            // instantiation than this grounding approximates.
            return Ok(());
        }
        let mut pos_ids = Vec::new();
        let mut neg_ids = Vec::new();
        let mut bodies: Vec<(bool, Atom)> = Vec::with_capacity(clause.body.len());
        for lit in &clause.body {
            let atom = subst.resolve_atom(self.store, &lit.atom);
            debug_assert!(atom.is_ground(self.store), "unbound variable at emit");
            if self.exceeds_depth(&atom) {
                return Ok(());
            }
            bodies.push((lit.is_pos(), atom));
        }
        let head_id = self.gp.intern_atom(head.clone());
        for (is_pos, atom) in bodies {
            let id = self.gp.intern_atom(atom);
            if is_pos {
                pos_ids.push(id);
            } else {
                neg_ids.push(id);
            }
        }
        let gc = GroundClause {
            head: head_id,
            pos: pos_ids.into(),
            neg: neg_ids.into(),
        };
        if self.seen_clauses.insert(gc.clone()) {
            if self.gp.clause_count() >= self.opts.max_clauses {
                return Err(GroundingError::ClauseBudget(self.opts.max_clauses));
            }
            self.gp.push_clause(gc);
            if !self.derivable.contains(&head) && !new_atoms.contains(&head) {
                new_atoms.push(head);
            }
        }
        Ok(())
    }

    fn exceeds_depth(&self, atom: &Atom) -> bool {
        self.max_depth != u32::MAX
            && atom
                .args
                .iter()
                .any(|&t| self.store.depth(t) > self.max_depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsls_lang::parse_program;

    fn ground(src: &str) -> (TermStore, GroundProgram) {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, src).unwrap();
        let gp = Grounder::ground(&mut s, &p).unwrap();
        (s, gp)
    }

    #[test]
    fn facts_ground_to_themselves() {
        let (s, gp) = ground("p(a). q(b).");
        assert_eq!(gp.clause_count(), 2);
        assert_eq!(gp.atom_count(), 2);
        assert!(gp.clauses().iter().all(GroundClause::is_fact));
        let text = gp.display(&s);
        assert!(text.contains("p(a)."));
    }

    #[test]
    fn positive_join_restricts_instances() {
        // p(X) :- e(X). Only e(a) derivable, so only p(a) emitted even
        // though the universe has two constants.
        let (s, gp) = ground("e(a). other(b). p(X) :- e(X).");
        let text = gp.display(&s);
        assert!(text.contains("p(a) :- e(a)."));
        assert!(!text.contains("p(b)"));
    }

    #[test]
    fn unbound_vars_enumerated_over_universe() {
        let (s, gp) = ground("q(a). q(b). p(X) :- ~q(X).");
        let text = gp.display(&s);
        assert!(text.contains("p(a) :- ~q(a)."));
        assert!(text.contains("p(b) :- ~q(b)."));
    }

    #[test]
    fn negative_atoms_interned_even_if_underivable() {
        let (s, gp) = ground("p :- ~q.");
        // q has no rules but must still get an id so engines can see the
        // body literal.
        let q = gp
            .atom_ids()
            .find(|&id| gp.display_atom(&s, id) == "q")
            .expect("q interned");
        assert!(gp.clauses_for(q).is_empty());
    }

    #[test]
    fn recursive_rules_reach_fixpoint() {
        let (s, gp) = ground("e(a, b). e(b, c). t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).");
        let text = gp.display(&s);
        assert!(text.contains("t(a, c) :- e(a, b), t(b, c)."));
        // t(a,b), t(b,c), t(a,c) derivable — no spurious t(c, _).
        assert!(!text.contains("t(c,"));
    }

    #[test]
    fn function_symbols_ground_to_depth() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "e(s(X), 0) :- e(X, 0). e(s(s(s(0))), 0).").unwrap();
        let gp = Grounder::ground_with(
            &mut s,
            &p,
            GrounderOpts {
                universe: HerbrandOpts {
                    max_depth: 6,
                    max_terms: 1000,
                },
                max_clauses: 10_000,
                mode: GroundingMode::Relevant,
            },
        )
        .unwrap();
        let text = gp.display(&s);
        assert!(text.contains("e(s(s(s(s(0)))), 0) :- e(s(s(s(0))), 0)."));
    }

    #[test]
    fn win_move_game_grounding() {
        let (s, gp) = ground("move(a, b). move(b, a). move(b, c). win(X) :- move(X, Y), ~win(Y).");
        let text = gp.display(&s);
        assert!(text.contains("win(a) :- move(a, b), ~win(b)."));
        assert!(text.contains("win(b) :- move(b, a), ~win(a)."));
        assert!(text.contains("win(b) :- move(b, c), ~win(c)."));
        // win(c) has no move: no rule instance with head win(c).
        assert!(!text.contains("win(c) :-"));
    }

    #[test]
    fn duplicate_instances_deduped() {
        let (_, gp) = ground("p(a). p(a). q :- p(a), p(a).");
        // The two p(a) facts collapse to one; the q rule appears once.
        assert_eq!(gp.clause_count(), 2);
    }

    #[test]
    fn clause_budget_enforced() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "d(a). d(b). d(c). p(X, Y, Z) :- ~q(X, Y, Z).").unwrap();
        let err = Grounder::ground_with(
            &mut s,
            &p,
            GrounderOpts {
                universe: HerbrandOpts::default(),
                max_clauses: 5,
                mode: GroundingMode::Relevant,
            },
        )
        .unwrap_err();
        assert_eq!(err, GroundingError::ClauseBudget(5));
    }

    #[test]
    fn zero_arity_program() {
        let (s, gp) = ground("p :- ~q. q :- ~p. r :- p.");
        assert_eq!(gp.clause_count(), 3);
        assert_eq!(gp.atom_count(), 3);
        let text = gp.display(&s);
        assert!(text.contains("r :- p."));
    }

    #[test]
    fn lookup_vs_intern() {
        let (mut s, mut gp) = ground("p(a).");
        let p = s.intern_symbol("p");
        let b = s.constant("b");
        let pb = Atom::new(p, vec![b]);
        assert!(gp.lookup_atom(&pb).is_none());
        let id = gp.intern_atom(pb.clone());
        assert_eq!(gp.lookup_atom(&pb), Some(id));
        assert_eq!(gp.atom(id), &pb);
    }
}
