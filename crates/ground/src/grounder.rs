//! Herbrand instantiation: compiling programs to dense ground form.
//!
//! A [`GroundProgram`] stores interned ground atoms as `u32` ids and
//! clauses in **CSR (compressed-sparse-row) form**: one flat array holds
//! every body atom of every clause (positive literals first, then
//! negative), and per-clause offset tables delimit the slices. On top of
//! the clause store, [`GroundProgram::finalize`] precomputes three CSR
//! reverse indexes — head → clauses, atom → clauses watching it
//! positively, atom → clauses watching it negatively — so fixpoint
//! engines never rebuild watch lists per call. See the crate docs for the
//! full layout contract.
//!
//! [`Grounder::ground`] performs **relevant grounding**: instead of the
//! full Herbrand instantiation (Def. 1.5), which is wasteful or infinite,
//! it computes the least fixpoint of the positive-closure operator
//! (negative literals ignored) and emits only rule instances whose
//! positive bodies are potentially derivable. Rule instances pruned this
//! way can never fire in any fixpoint of `W_P`, so the well-founded model
//! restricted to derivable atoms is unchanged, and atoms never interned
//! are false in the well-founded model. Variables not bound by the
//! positive body are enumerated over the (depth-bounded) Herbrand
//! universe.
//!
//! The relevant-grounding loop is **semi-naive**: each round joins rule
//! bodies against the *delta* (atoms first derived in the previous round)
//! through a per-predicate argument-indexed fact store, rather than
//! re-joining every rule against the full closure. Instances whose
//! positive bodies mention no delta atom were already emitted in an
//! earlier round and are never re-derived.

use crate::herbrand::{herbrand_universe, HerbrandOpts};
use gsls_lang::{
    match_term_recording, Atom, FxHashMap, FxHashSet, Pred, Program, Subst, TermId, TermStore, Var,
};
use std::fmt;

/// Identity of an interned ground atom within a [`GroundProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroundAtomId(pub u32);

impl GroundAtomId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An owned ground clause `head ← pos₁,…,posₘ, ¬neg₁,…,¬negₖ`.
///
/// This is the *builder* form: [`GroundProgram::push_clause`] copies it
/// into the CSR store, and the grounder uses it as the deduplication key.
/// Engines never see it — they work on borrowed [`ClauseRef`] views.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroundClause {
    /// Head atom.
    pub head: GroundAtomId,
    /// Positive body atoms.
    pub pos: Box<[GroundAtomId]>,
    /// Atoms appearing negated in the body.
    pub neg: Box<[GroundAtomId]>,
}

impl GroundClause {
    /// Whether this is a fact.
    pub fn is_fact(&self) -> bool {
        self.pos.is_empty() && self.neg.is_empty()
    }

    /// Total body length.
    pub fn body_len(&self) -> usize {
        self.pos.len() + self.neg.len()
    }
}

/// A borrowed view of one clause inside the CSR store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClauseRef<'a> {
    /// Head atom.
    pub head: GroundAtomId,
    /// Positive body atoms.
    pub pos: &'a [GroundAtomId],
    /// Atoms appearing negated in the body.
    pub neg: &'a [GroundAtomId],
}

impl ClauseRef<'_> {
    /// Whether this is a fact.
    pub fn is_fact(&self) -> bool {
        self.pos.is_empty() && self.neg.is_empty()
    }

    /// Total body length.
    pub fn body_len(&self) -> usize {
        self.pos.len() + self.neg.len()
    }

    /// Copies into an owned [`GroundClause`].
    pub fn to_owned(&self) -> GroundClause {
        GroundClause {
            head: self.head,
            pos: self.pos.into(),
            neg: self.neg.into(),
        }
    }
}

/// A compressed-sparse-row map from `u32` keys to lists of `u32` items:
/// row `k` is `items[off[k] .. off[k+1]]`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Csr {
    off: Vec<u32>,
    items: Vec<u32>,
}

impl Csr {
    /// Builds from `(key, item)` pairs produced by calling `each` with a
    /// sink; `n_keys` bounds the key space. Two passes: count, then fill.
    fn build(n_keys: usize, each: impl Fn(&mut dyn FnMut(u32, u32))) -> Csr {
        let mut counts = vec![0u32; n_keys + 1];
        each(&mut |k, _| counts[k as usize + 1] += 1);
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let mut items = vec![0u32; *counts.last().unwrap_or(&0) as usize];
        let mut cursor = counts.clone();
        each(&mut |k, v| {
            let c = &mut cursor[k as usize];
            items[*c as usize] = v;
            *c += 1;
        });
        Csr { off: counts, items }
    }

    /// The item list for `key`.
    #[inline]
    pub fn row(&self, key: usize) -> &[u32] {
        &self.items[self.off[key] as usize..self.off[key + 1] as usize]
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.off.len().saturating_sub(1)
    }

    /// Whether there are no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The reverse indexes precomputed by [`GroundProgram::finalize`].
#[derive(Debug, Clone)]
struct Indexes {
    /// head atom → clause indices.
    by_head: Csr,
    /// atom → clauses whose *positive* body contains it (one entry per
    /// occurrence, so counter-based propagation can decrement per watch).
    watch_pos: Csr,
    /// atom → clauses whose *negative* body contains it.
    watch_neg: Csr,
    /// predicate → interned atom ids (query-enumeration index).
    by_pred: FxHashMap<Pred, Vec<u32>>,
}

/// A program compiled to ground form (CSR clause storage).
#[derive(Debug, Clone)]
pub struct GroundProgram {
    atoms: Vec<Atom>,
    atom_ids: FxHashMap<Atom, GroundAtomId>,
    /// Clause heads, one per clause.
    heads: Vec<GroundAtomId>,
    /// Flat body store: clause `c`'s positive atoms then negative atoms.
    body: Vec<GroundAtomId>,
    /// `body_start[c] .. body_start[c+1]` delimits clause `c`'s body.
    body_start: Vec<u32>,
    /// Within that range, negatives start at `neg_start[c]`.
    neg_start: Vec<u32>,
    /// Reverse indexes; `None` until [`GroundProgram::finalize`] runs (or
    /// after any mutation, which invalidates them).
    index: Option<Indexes>,
}

impl Default for GroundProgram {
    fn default() -> Self {
        GroundProgram {
            atoms: Vec::new(),
            atom_ids: FxHashMap::default(),
            heads: Vec::new(),
            body: Vec::new(),
            body_start: vec![0],
            neg_start: Vec::new(),
            index: None,
        }
    }
}

impl GroundProgram {
    /// Creates an empty ground program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a ground atom, returning its id.
    pub fn intern_atom(&mut self, atom: Atom) -> GroundAtomId {
        let next = GroundAtomId(u32::try_from(self.atoms.len()).expect("ground atom overflow"));
        match self.atom_ids.entry(atom) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                self.atoms.push(e.key().clone());
                e.insert(next);
                // A fresh atom widens the id space the reverse indexes
                // cover; they must be rebuilt before the next fixpoint.
                self.index = None;
                next
            }
        }
    }

    /// Looks up a ground atom without interning.
    pub fn lookup_atom(&self, atom: &Atom) -> Option<GroundAtomId> {
        self.atom_ids.get(atom).copied()
    }

    /// The atom for `id`.
    pub fn atom(&self, id: GroundAtomId) -> &Atom {
        &self.atoms[id.index()]
    }

    /// Number of interned atoms.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Iterates over all atom ids.
    pub fn atom_ids(&self) -> impl Iterator<Item = GroundAtomId> {
        (0..self.atoms.len() as u32).map(GroundAtomId)
    }

    /// Adds a clause (deduplication is the grounder's responsibility).
    pub fn push_clause(&mut self, clause: GroundClause) {
        self.push_clause_parts(clause.head, &clause.pos, &clause.neg);
    }

    /// Adds a clause from borrowed parts, avoiding the boxed builder.
    pub fn push_clause_parts(
        &mut self,
        head: GroundAtomId,
        pos: &[GroundAtomId],
        neg: &[GroundAtomId],
    ) {
        self.heads.push(head);
        self.body.extend_from_slice(pos);
        self.neg_start
            .push(u32::try_from(self.body.len()).expect("ground body overflow"));
        self.body.extend_from_slice(neg);
        self.body_start
            .push(u32::try_from(self.body.len()).expect("ground body overflow"));
        self.index = None;
    }

    /// Iterates over all clauses as borrowed views.
    pub fn clauses(&self) -> impl Iterator<Item = ClauseRef<'_>> + '_ {
        (0..self.clause_count() as u32).map(move |i| self.clause(i))
    }

    /// Number of clauses.
    pub fn clause_count(&self) -> usize {
        self.heads.len()
    }

    /// The clause at `idx`.
    #[inline]
    pub fn clause(&self, idx: u32) -> ClauseRef<'_> {
        let i = idx as usize;
        let (start, end) = (self.body_start[i] as usize, self.body_start[i + 1] as usize);
        let mid = self.neg_start[i] as usize;
        ClauseRef {
            head: self.heads[i],
            pos: &self.body[start..mid],
            neg: &self.body[mid..end],
        }
    }

    /// Number of positive body atoms of clause `idx` (O(1), no slice
    /// construction — used by propagator init loops).
    #[inline]
    pub fn pos_len(&self, idx: u32) -> u32 {
        self.neg_start[idx as usize] - self.body_start[idx as usize]
    }

    /// All clause heads, indexed by clause (O(1) head access for hot
    /// propagation loops that don't need the bodies).
    #[inline]
    pub fn heads(&self) -> &[GroundAtomId] {
        &self.heads
    }

    /// The atom → positively-watching-clauses index as a raw [`Csr`],
    /// for hot loops that hoist the per-lookup indirection (same panics
    /// as [`GroundProgram::clauses_for`]).
    pub fn watch_pos_index(&self) -> &Csr {
        &self.index().watch_pos
    }

    /// Builds the reverse indexes (head → clauses and the two watch
    /// maps). Idempotent; must be re-run after any `push_clause` /
    /// fresh-atom `intern_atom`. [`Grounder::ground`] returns programs
    /// already finalized.
    pub fn finalize(&mut self) {
        if self.index.is_some() {
            return;
        }
        let n = self.atom_count();
        let by_head = Csr::build(n, |sink| {
            for (ci, &h) in self.heads.iter().enumerate() {
                sink(h.0, ci as u32);
            }
        });
        let watch_pos = Csr::build(n, |sink| {
            for ci in 0..self.heads.len() {
                let (start, mid) = (self.body_start[ci] as usize, self.neg_start[ci] as usize);
                for a in &self.body[start..mid] {
                    sink(a.0, ci as u32);
                }
            }
        });
        let watch_neg = Csr::build(n, |sink| {
            for ci in 0..self.heads.len() {
                let (mid, end) = (
                    self.neg_start[ci] as usize,
                    self.body_start[ci + 1] as usize,
                );
                for a in &self.body[mid..end] {
                    sink(a.0, ci as u32);
                }
            }
        });
        let mut by_pred: FxHashMap<Pred, Vec<u32>> = FxHashMap::default();
        for (i, atom) in self.atoms.iter().enumerate() {
            by_pred.entry(atom.pred_id()).or_default().push(i as u32);
        }
        self.index = Some(Indexes {
            by_head,
            watch_pos,
            watch_neg,
            by_pred,
        });
    }

    /// Whether the reverse indexes are current.
    pub fn is_finalized(&self) -> bool {
        self.index.is_some()
    }

    fn index(&self) -> &Indexes {
        self.index
            .as_ref()
            .expect("GroundProgram::finalize must be called after mutation")
    }

    /// Indices of clauses with head `id`.
    ///
    /// # Panics
    /// Panics if the program was mutated since the last
    /// [`GroundProgram::finalize`].
    pub fn clauses_for(&self, id: GroundAtomId) -> &[u32] {
        self.index().by_head.row(id.index())
    }

    /// Clauses whose positive body contains `id`, one entry per
    /// occurrence (same panics as [`GroundProgram::clauses_for`]).
    pub fn watch_pos(&self, id: GroundAtomId) -> &[u32] {
        self.index().watch_pos.row(id.index())
    }

    /// Clauses whose negative body contains `id`, one entry per
    /// occurrence (same panics as [`GroundProgram::clauses_for`]).
    pub fn watch_neg(&self, id: GroundAtomId) -> &[u32] {
        self.index().watch_neg.row(id.index())
    }

    /// Interned atoms of predicate `pred` (same panics as
    /// [`GroundProgram::clauses_for`]). Lets query engines enumerate
    /// candidate instances without scanning the whole atom table.
    pub fn atoms_with_pred(&self, pred: Pred) -> impl Iterator<Item = GroundAtomId> + '_ {
        self.index()
            .by_pred
            .get(&pred)
            .map_or(&[][..], |v| v.as_slice())
            .iter()
            .map(|&i| GroundAtomId(i))
    }

    /// Renders an atom.
    pub fn display_atom(&self, store: &TermStore, id: GroundAtomId) -> String {
        self.atom(id).display(store)
    }

    /// Renders the whole ground program.
    pub fn display(&self, store: &TermStore) -> String {
        let mut s = String::new();
        for c in self.clauses() {
            s.push_str(&self.display_atom(store, c.head));
            if !c.is_fact() {
                s.push_str(" :- ");
                let mut first = true;
                for &p in c.pos.iter() {
                    if !first {
                        s.push_str(", ");
                    }
                    first = false;
                    s.push_str(&self.display_atom(store, p));
                }
                for &n in c.neg.iter() {
                    if !first {
                        s.push_str(", ");
                    }
                    first = false;
                    s.push('~');
                    s.push_str(&self.display_atom(store, n));
                }
            }
            s.push_str(".\n");
        }
        s
    }
}

/// How clause instances are enumerated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GroundingMode {
    /// Relevant grounding: positive bodies are joined against the
    /// positive-closure fixpoint, pruning rule instances that can never
    /// fire. Smaller output, same well-founded model on derivable atoms.
    #[default]
    Relevant,
    /// Full Herbrand instantiation (Def. 1.5) over the (depth-bounded)
    /// universe: every substitution of universe terms for clause
    /// variables. Needed when the syntactic shape of *all* instances
    /// matters (ground global trees, local-stratification analyses).
    Full,
}

/// Options controlling grounding.
#[derive(Debug, Clone, Copy)]
pub struct GrounderOpts {
    /// Universe enumeration bounds (relevant only with function symbols).
    pub universe: HerbrandOpts,
    /// Hard cap on emitted ground clauses.
    pub max_clauses: usize,
    /// Instance enumeration strategy.
    pub mode: GroundingMode,
}

impl Default for GrounderOpts {
    fn default() -> Self {
        GrounderOpts {
            universe: HerbrandOpts::default(),
            max_clauses: 2_000_000,
            mode: GroundingMode::Relevant,
        }
    }
}

/// Grounding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroundingError {
    /// The `max_clauses` budget was exceeded.
    ClauseBudget(usize),
}

impl fmt::Display for GroundingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroundingError::ClauseBudget(n) => {
                write!(f, "grounding exceeded the clause budget of {n}")
            }
        }
    }
}

impl std::error::Error for GroundingError {}

/// Which slice of a predicate's facts a join literal ranges over —
/// the standard semi-naive split. For the rule-literal chosen as the
/// delta position, only last round's new atoms participate; literals to
/// its left see everything, literals to its right only what was known
/// *before* last round. Summed over delta positions this enumerates
/// exactly the instances that mention at least one new atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Full,
    Delta,
    Old,
}

/// Facts for one predicate, argument-indexed for join lookups.
#[derive(Debug, Default)]
struct PredFacts {
    /// All derivable atoms of this predicate; `all[old_len..]` is the
    /// delta from the most recent round.
    all: Vec<Atom>,
    old_len: usize,
    /// `(argument position, ground term) → indices into `all``.
    index: FxHashMap<(u32, TermId), Vec<u32>>,
}

impl PredFacts {
    fn push(&mut self, atom: Atom) {
        let idx = self.all.len() as u32;
        for (pos, &arg) in atom.args.iter().enumerate() {
            self.index.entry((pos as u32, arg)).or_default().push(idx);
        }
        self.all.push(atom);
    }

    fn range(&self, role: Role) -> (usize, usize) {
        match role {
            Role::Full => (0, self.all.len()),
            Role::Delta => (self.old_len, self.all.len()),
            Role::Old => (0, self.old_len),
        }
    }
}

/// The per-predicate fact store driving semi-naive evaluation.
#[derive(Debug, Default)]
struct FactStore {
    preds: FxHashMap<Pred, PredFacts>,
}

impl FactStore {
    /// Ends a round: the previous delta becomes old, `new_atoms` becomes
    /// the next delta.
    fn advance(&mut self, new_atoms: impl Iterator<Item = Atom>) {
        for pf in self.preds.values_mut() {
            pf.old_len = pf.all.len();
        }
        for atom in new_atoms {
            self.preds.entry(atom.pred_id()).or_default().push(atom);
        }
    }

    fn get(&self, pred: Pred) -> Option<&PredFacts> {
        self.preds.get(&pred)
    }
}

/// The Herbrand instantiation engine.
pub struct Grounder<'a> {
    store: &'a mut TermStore,
    universe: Vec<TermId>,
    opts: GrounderOpts,
    /// Maximum term depth allowed in emitted atoms: heads like `e(s(X),0)`
    /// can otherwise escape the bounded universe and diverge.
    max_depth: u32,
    gp: GroundProgram,
    facts: FactStore,
    /// Atoms already queued as derivable (heads of emitted instances).
    derivable: FxHashSet<Atom>,
    seen_clauses: FxHashSet<GroundClause>,
    /// Backtracking trail for join matching.
    trail: Vec<Var>,
}

impl<'a> Grounder<'a> {
    /// Grounds `program` with default options.
    pub fn ground(
        store: &'a mut TermStore,
        program: &Program,
    ) -> Result<GroundProgram, GroundingError> {
        Self::ground_with(store, program, GrounderOpts::default())
    }

    /// Grounds `program` with explicit options. The returned program is
    /// finalized (reverse indexes built).
    pub fn ground_with(
        store: &'a mut TermStore,
        program: &Program,
        opts: GrounderOpts,
    ) -> Result<GroundProgram, GroundingError> {
        let universe = herbrand_universe(store, program, opts.universe);
        // With function symbols the universe is depth-truncated; emitted
        // atoms must respect the same bound or grounding diverges. For
        // function-free programs terms never grow, so no bound is needed.
        let max_depth = if program.is_function_free(store) {
            u32::MAX
        } else {
            opts.universe.max_depth
        };
        let mut g = Grounder {
            store,
            universe,
            opts,
            max_depth,
            gp: GroundProgram::new(),
            facts: FactStore::default(),
            derivable: FxHashSet::default(),
            seen_clauses: FxHashSet::default(),
            trail: Vec::new(),
        };
        g.run(program)?;
        g.gp.finalize();
        Ok(g.gp)
    }

    fn run(&mut self, program: &Program) -> Result<(), GroundingError> {
        if self.opts.mode == GroundingMode::Full {
            // Full instantiation doesn't consult the derivable closure:
            // one enumeration pass emits everything.
            let mut ignored = Vec::new();
            for clause in program.clauses() {
                let free = clause.vars(self.store);
                let mut subst = Subst::new();
                self.enumerate_free(clause, &free, 0, &mut subst, &mut ignored)?;
            }
            return Ok(());
        }
        // Round 0: rules without positive body — their instances don't
        // depend on the closure and are emitted exactly once.
        let mut new_atoms: Vec<Atom> = Vec::new();
        for clause in program.clauses() {
            if clause.pos_body().next().is_none() {
                let free = clause.vars(self.store);
                let mut subst = Subst::new();
                self.enumerate_free(clause, &free, 0, &mut subst, &mut new_atoms)?;
            }
        }
        // Semi-naive rounds: join each rule's positive body against the
        // fact store with one literal pinned to the delta.
        while !new_atoms.is_empty() {
            self.facts.advance(new_atoms.drain(..));
            let facts = std::mem::take(&mut self.facts);
            for clause in program.clauses() {
                let pos: Vec<&Atom> = clause.pos_body().map(|l| &l.atom).collect();
                if pos.is_empty() {
                    continue;
                }
                for delta_at in 0..pos.len() {
                    let mut subst = Subst::new();
                    self.join(
                        clause,
                        &pos,
                        delta_at,
                        0,
                        &mut subst,
                        &facts,
                        &mut new_atoms,
                    )?;
                }
            }
            self.facts = facts;
        }
        Ok(())
    }

    /// Matches positive body literals `pos[i..]` against the fact store
    /// (literal `delta_at` restricted to the delta), then enumerates
    /// residual variables and emits the instance.
    #[allow(clippy::too_many_arguments)]
    fn join(
        &mut self,
        clause: &gsls_lang::Clause,
        pos: &[&Atom],
        delta_at: usize,
        i: usize,
        subst: &mut Subst,
        facts: &FactStore,
        new_atoms: &mut Vec<Atom>,
    ) -> Result<(), GroundingError> {
        if i == pos.len() {
            // Enumerate variables not bound by the positive body.
            let free: Vec<Var> = clause
                .vars(self.store)
                .into_iter()
                .filter(|&v| {
                    let vt = self.store.var_term(v);
                    let walked = subst.walk(self.store, vt);
                    self.store.as_var(walked).is_some()
                })
                .collect();
            return self.enumerate_free(clause, &free, 0, subst, new_atoms);
        }
        let role = match i.cmp(&delta_at) {
            std::cmp::Ordering::Less => Role::Full,
            std::cmp::Ordering::Equal => Role::Delta,
            std::cmp::Ordering::Greater => Role::Old,
        };
        let pattern = pos[i];
        let Some(pf) = facts.get(pattern.pred_id()) else {
            return Ok(());
        };
        let (lo, hi) = pf.range(role);
        if lo >= hi {
            return Ok(());
        }
        // Prefer an argument-index lookup: the first pattern argument
        // that is ground under the current bindings selects a (usually
        // tiny) candidate list instead of a scan.
        let mut indexed: Option<&[u32]> = None;
        for (argpos, &arg) in pattern.args.iter().enumerate() {
            let walked = subst.walk(self.store, arg);
            if self.store.is_ground(walked) {
                indexed = Some(
                    pf.index
                        .get(&(argpos as u32, walked))
                        .map_or(&[][..], |v| v.as_slice()),
                );
                break;
            }
        }
        match indexed {
            Some(list) => {
                for &idx in list {
                    let idx = idx as usize;
                    if idx >= lo && idx < hi {
                        self.try_candidate(
                            clause, pos, delta_at, i, pf, idx, subst, facts, new_atoms,
                        )?;
                    }
                }
            }
            None => {
                for idx in lo..hi {
                    self.try_candidate(clause, pos, delta_at, i, pf, idx, subst, facts, new_atoms)?;
                }
            }
        }
        Ok(())
    }

    /// Tries to match `pos[i]` against candidate `idx` of `pf`, recursing
    /// on success and undoing the bindings afterwards.
    #[allow(clippy::too_many_arguments)]
    fn try_candidate(
        &mut self,
        clause: &gsls_lang::Clause,
        pos: &[&Atom],
        delta_at: usize,
        i: usize,
        pf: &PredFacts,
        idx: usize,
        subst: &mut Subst,
        facts: &FactStore,
        new_atoms: &mut Vec<Atom>,
    ) -> Result<(), GroundingError> {
        let pattern = pos[i];
        let cand = &pf.all[idx];
        let mark = self.trail.len();
        let mut ok = true;
        for (&pat, &tgt) in pattern.args.iter().zip(cand.args.iter()) {
            if !match_term_recording(self.store, subst, pat, tgt, &mut self.trail) {
                ok = false;
                break;
            }
        }
        if ok {
            self.join(clause, pos, delta_at, i + 1, subst, facts, new_atoms)?;
        }
        while self.trail.len() > mark {
            let v = self.trail.pop().expect("trail mark within bounds");
            subst.remove(v);
        }
        Ok(())
    }

    fn enumerate_free(
        &mut self,
        clause: &gsls_lang::Clause,
        free: &[Var],
        j: usize,
        subst: &mut Subst,
        new_atoms: &mut Vec<Atom>,
    ) -> Result<(), GroundingError> {
        if j == free.len() {
            return self.emit(clause, subst, new_atoms);
        }
        for u in 0..self.universe.len() {
            let t = self.universe[u];
            subst.bind(free[j], t);
            self.enumerate_free(clause, free, j + 1, subst, new_atoms)?;
            subst.remove(free[j]);
        }
        Ok(())
    }

    fn emit(
        &mut self,
        clause: &gsls_lang::Clause,
        subst: &Subst,
        new_atoms: &mut Vec<Atom>,
    ) -> Result<(), GroundingError> {
        let head = subst.resolve_atom(self.store, &clause.head);
        debug_assert!(head.is_ground(self.store));
        if self.exceeds_depth(&head) {
            // The instance mentions terms outside the bounded universe;
            // it belongs to a deeper prefix of the (infinite) Herbrand
            // instantiation than this grounding approximates.
            return Ok(());
        }
        let mut pos_ids = Vec::new();
        let mut neg_ids = Vec::new();
        let mut bodies: Vec<(bool, Atom)> = Vec::with_capacity(clause.body.len());
        for lit in &clause.body {
            let atom = subst.resolve_atom(self.store, &lit.atom);
            debug_assert!(atom.is_ground(self.store), "unbound variable at emit");
            if self.exceeds_depth(&atom) {
                return Ok(());
            }
            bodies.push((lit.is_pos(), atom));
        }
        let head_id = self.gp.intern_atom(head.clone());
        for (is_pos, atom) in bodies {
            let id = self.gp.intern_atom(atom);
            if is_pos {
                pos_ids.push(id);
            } else {
                neg_ids.push(id);
            }
        }
        let gc = GroundClause {
            head: head_id,
            pos: pos_ids.into(),
            neg: neg_ids.into(),
        };
        if self.seen_clauses.insert(gc.clone()) {
            if self.gp.clause_count() >= self.opts.max_clauses {
                return Err(GroundingError::ClauseBudget(self.opts.max_clauses));
            }
            self.gp.push_clause(gc);
            if self.derivable.insert(head.clone()) {
                new_atoms.push(head);
            }
        }
        Ok(())
    }

    fn exceeds_depth(&self, atom: &Atom) -> bool {
        self.max_depth != u32::MAX
            && atom
                .args
                .iter()
                .any(|&t| self.store.depth(t) > self.max_depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsls_lang::parse_program;

    fn ground(src: &str) -> (TermStore, GroundProgram) {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, src).unwrap();
        let gp = Grounder::ground(&mut s, &p).unwrap();
        (s, gp)
    }

    #[test]
    fn facts_ground_to_themselves() {
        let (s, gp) = ground("p(a). q(b).");
        assert_eq!(gp.clause_count(), 2);
        assert_eq!(gp.atom_count(), 2);
        assert!(gp.clauses().all(|c| c.is_fact()));
        let text = gp.display(&s);
        assert!(text.contains("p(a)."));
    }

    #[test]
    fn positive_join_restricts_instances() {
        // p(X) :- e(X). Only e(a) derivable, so only p(a) emitted even
        // though the universe has two constants.
        let (s, gp) = ground("e(a). other(b). p(X) :- e(X).");
        let text = gp.display(&s);
        assert!(text.contains("p(a) :- e(a)."));
        assert!(!text.contains("p(b)"));
    }

    #[test]
    fn unbound_vars_enumerated_over_universe() {
        let (s, gp) = ground("q(a). q(b). p(X) :- ~q(X).");
        let text = gp.display(&s);
        assert!(text.contains("p(a) :- ~q(a)."));
        assert!(text.contains("p(b) :- ~q(b)."));
    }

    #[test]
    fn negative_atoms_interned_even_if_underivable() {
        let (s, gp) = ground("p :- ~q.");
        // q has no rules but must still get an id so engines can see the
        // body literal.
        let q = gp
            .atom_ids()
            .find(|&id| gp.display_atom(&s, id) == "q")
            .expect("q interned");
        assert!(gp.clauses_for(q).is_empty());
    }

    #[test]
    fn recursive_rules_reach_fixpoint() {
        let (s, gp) = ground("e(a, b). e(b, c). t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).");
        let text = gp.display(&s);
        assert!(text.contains("t(a, c) :- e(a, b), t(b, c)."));
        // t(a,b), t(b,c), t(a,c) derivable — no spurious t(c, _).
        assert!(!text.contains("t(c,"));
    }

    #[test]
    fn function_symbols_ground_to_depth() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "e(s(X), 0) :- e(X, 0). e(s(s(s(0))), 0).").unwrap();
        let gp = Grounder::ground_with(
            &mut s,
            &p,
            GrounderOpts {
                universe: HerbrandOpts {
                    max_depth: 6,
                    max_terms: 1000,
                },
                max_clauses: 10_000,
                mode: GroundingMode::Relevant,
            },
        )
        .unwrap();
        let text = gp.display(&s);
        assert!(text.contains("e(s(s(s(s(0)))), 0) :- e(s(s(s(0))), 0)."));
    }

    #[test]
    fn win_move_game_grounding() {
        let (s, gp) = ground("move(a, b). move(b, a). move(b, c). win(X) :- move(X, Y), ~win(Y).");
        let text = gp.display(&s);
        assert!(text.contains("win(a) :- move(a, b), ~win(b)."));
        assert!(text.contains("win(b) :- move(b, a), ~win(a)."));
        assert!(text.contains("win(b) :- move(b, c), ~win(c)."));
        // win(c) has no move: no rule instance with head win(c).
        assert!(!text.contains("win(c) :-"));
    }

    #[test]
    fn duplicate_instances_deduped() {
        let (_, gp) = ground("p(a). p(a). q :- p(a), p(a).");
        // The two p(a) facts collapse to one; the q rule appears once.
        assert_eq!(gp.clause_count(), 2);
    }

    #[test]
    fn clause_budget_enforced() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "d(a). d(b). d(c). p(X, Y, Z) :- ~q(X, Y, Z).").unwrap();
        let err = Grounder::ground_with(
            &mut s,
            &p,
            GrounderOpts {
                universe: HerbrandOpts::default(),
                max_clauses: 5,
                mode: GroundingMode::Relevant,
            },
        )
        .unwrap_err();
        assert_eq!(err, GroundingError::ClauseBudget(5));
    }

    #[test]
    fn zero_arity_program() {
        let (s, gp) = ground("p :- ~q. q :- ~p. r :- p.");
        assert_eq!(gp.clause_count(), 3);
        assert_eq!(gp.atom_count(), 3);
        let text = gp.display(&s);
        assert!(text.contains("r :- p."));
    }

    #[test]
    fn lookup_vs_intern() {
        let (mut s, mut gp) = ground("p(a).");
        let p = s.intern_symbol("p");
        let b = s.constant("b");
        let pb = Atom::new(p, vec![b]);
        assert!(gp.lookup_atom(&pb).is_none());
        let id = gp.intern_atom(pb.clone());
        assert_eq!(gp.lookup_atom(&pb), Some(id));
        assert_eq!(gp.atom(id), &pb);
    }

    #[test]
    fn csr_views_match_pushed_clauses() {
        // Round-trip: clauses pushed as owned builders come back
        // identical through the CSR views, in order.
        let mut s = TermStore::new();
        let mut gp = GroundProgram::new();
        let mut mk = |name: &str| {
            let sym = s.intern_symbol(name);
            gp.intern_atom(Atom::new(sym, Vec::new()))
        };
        let (a, b, c, d) = (mk("a"), mk("b"), mk("c"), mk("d"));
        let cls = vec![
            GroundClause {
                head: a,
                pos: vec![b, c].into(),
                neg: vec![d].into(),
            },
            GroundClause {
                head: b,
                pos: Vec::new().into(),
                neg: Vec::new().into(),
            },
            GroundClause {
                head: c,
                pos: vec![b, b].into(), // duplicate body literal survives
                neg: vec![a, d].into(),
            },
        ];
        for cl in &cls {
            gp.push_clause(cl.clone());
        }
        assert_eq!(gp.clause_count(), cls.len());
        for (i, cl) in cls.iter().enumerate() {
            let view = gp.clause(i as u32);
            assert_eq!(&view.to_owned(), cl, "clause {i}");
            assert_eq!(view.pos.len() as u32, gp.pos_len(i as u32));
        }
        // Reverse indexes agree with a brute-force scan.
        gp.finalize();
        for atom in gp.atom_ids() {
            let heads: Vec<u32> = (0..cls.len() as u32)
                .filter(|&ci| gp.clause(ci).head == atom)
                .collect();
            assert_eq!(gp.clauses_for(atom), &heads[..], "by_head {atom:?}");
            let mut pos_watch = Vec::new();
            let mut neg_watch = Vec::new();
            for ci in 0..cls.len() as u32 {
                for &p in gp.clause(ci).pos {
                    if p == atom {
                        pos_watch.push(ci);
                    }
                }
                for &q in gp.clause(ci).neg {
                    if q == atom {
                        neg_watch.push(ci);
                    }
                }
            }
            assert_eq!(gp.watch_pos(atom), &pos_watch[..], "watch_pos {atom:?}");
            assert_eq!(gp.watch_neg(atom), &neg_watch[..], "watch_neg {atom:?}");
        }
    }

    #[test]
    fn mutation_invalidates_indexes() {
        let (_, mut gp) = ground("p :- ~q.");
        assert!(gp.is_finalized());
        let p = GroundAtomId(0);
        gp.push_clause(GroundClause {
            head: p,
            pos: Vec::new().into(),
            neg: Vec::new().into(),
        });
        assert!(!gp.is_finalized());
        gp.finalize();
        assert!(gp.is_finalized());
        assert!(gp.clauses_for(p).len() >= 2 || gp.clauses_for(p).len() == 1);
    }

    #[test]
    fn semi_naive_matches_long_chain() {
        // A linear chain forces many rounds; every hop must appear.
        let mut src = String::new();
        src.push_str("r(v0).\n");
        for i in 0..12 {
            src.push_str(&format!("e(v{i}, v{}).\n", i + 1));
        }
        src.push_str("r(Y) :- r(X), e(X, Y).\n");
        let (s, gp) = ground(&src);
        let text = gp.display(&s);
        for i in 0..=12 {
            assert!(text.contains(&format!("r(v{i})")), "r(v{i}) missing");
        }
        assert!(!text.contains("r(v13)"));
    }
}
