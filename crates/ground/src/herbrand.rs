//! Herbrand universes, the augmented program, and the `term/1` transform.
//!
//! * **Herbrand universe** (Def. 1.2): all variable-free terms formed from
//!   the constants and function symbols of the program; if the program has
//!   no constants, a single extra constant is invented.
//! * **Augmented program** P′ (Def. 6.1): `P ∪ {p̂(f̂(ĉ))}` for fresh
//!   symbols `p̂`, `f̂`, `ĉ` — guarantees infinitely many ground terms not
//!   mentioned in P, resolving the *universal query problem* (Example 6.1).
//! * **`term/1` transform** (Sec. 6): adds `term(c)` facts and
//!   `term(f(X̄)) ← term(X₁),…,term(Xₙ)` rules, then guards every clause
//!   variable with a `term(X)` subgoal so no query can flounder, without
//!   changing the well-founded model of the original predicates.

use gsls_lang::{Atom, Clause, Literal, Program, Symbol, TermId, TermStore};

/// Options for Herbrand-universe enumeration.
#[derive(Debug, Clone, Copy)]
pub struct HerbrandOpts {
    /// Maximum term depth to enumerate (constants have depth 1).
    pub max_depth: u32,
    /// Hard cap on the number of terms produced.
    pub max_terms: usize,
}

impl Default for HerbrandOpts {
    fn default() -> Self {
        HerbrandOpts {
            max_depth: 4,
            max_terms: 100_000,
        }
    }
}

/// Name of the constant invented when a program has none.
pub const INVENTED_CONSTANT: &str = "herbrand_c0";

/// The constants of `program`, inventing one if necessary (Def. 1.2).
pub fn constants_with_default(store: &mut TermStore, program: &Program) -> Vec<Symbol> {
    let consts = program.constants(store);
    if consts.is_empty() {
        vec![store.intern_symbol(INVENTED_CONSTANT)]
    } else {
        consts
    }
}

/// Enumerates the Herbrand universe of `program` breadth-first by depth,
/// up to `opts.max_depth` / `opts.max_terms`.
///
/// For function-free programs this is exactly the (finite) set of
/// constants. With function symbols the universe is infinite and this is
/// the depth-bounded prefix used by the depth-bounded experiments (see
/// DESIGN.md, substitution #1).
pub fn herbrand_universe(
    store: &mut TermStore,
    program: &Program,
    opts: HerbrandOpts,
) -> Vec<TermId> {
    let consts = constants_with_default(store, program);
    let funcs = program.function_symbols(store);
    let mut universe: Vec<TermId> = consts.iter().map(|&c| store.app(c, &[])).collect();
    if funcs.is_empty() {
        universe.truncate(opts.max_terms);
        return universe;
    }
    // Layered construction: terms of depth d+1 apply a function to terms
    // of depth ≤ d with at least one argument of depth exactly d.
    let mut frontier = universe.clone();
    for _depth in 1..opts.max_depth {
        let mut next = Vec::new();
        for &(f, arity) in &funcs {
            // Enumerate argument tuples where at least one argument comes
            // from the frontier (so each term is produced exactly once).
            let mut tuple: Vec<TermId> = Vec::with_capacity(arity as usize);
            enumerate_tuples(
                store,
                f,
                arity as usize,
                &universe,
                &frontier,
                &mut tuple,
                false,
                &mut next,
                opts.max_terms.saturating_sub(universe.len()),
            );
        }
        if next.is_empty() {
            break;
        }
        universe.extend(next.iter().copied());
        if universe.len() >= opts.max_terms {
            universe.truncate(opts.max_terms);
            break;
        }
        frontier = next;
    }
    universe
}

#[allow(clippy::too_many_arguments)]
fn enumerate_tuples(
    store: &mut TermStore,
    f: Symbol,
    remaining: usize,
    universe: &[TermId],
    frontier: &[TermId],
    tuple: &mut Vec<TermId>,
    used_frontier: bool,
    out: &mut Vec<TermId>,
    budget: usize,
) {
    if out.len() >= budget {
        return;
    }
    if remaining == 0 {
        if used_frontier {
            out.push(store.app(f, tuple));
        }
        return;
    }
    // A frontier term can be distinguished by membership; frontier ⊆
    // universe, so iterate over the whole universe and track whether any
    // chosen argument is from the frontier layer.
    for &t in universe {
        let is_frontier = frontier.contains(&t);
        tuple.push(t);
        enumerate_tuples(
            store,
            f,
            remaining - 1,
            universe,
            frontier,
            tuple,
            used_frontier || is_frontier,
            out,
            budget,
        );
        tuple.pop();
        if out.len() >= budget {
            return;
        }
    }
}

/// Fresh-symbol names used by [`augment_program`].
pub const AUGMENT_PRED: &str = "p_hat";
/// Function symbol of the augmentation fact.
pub const AUGMENT_FUNC: &str = "f_hat";
/// Constant of the augmentation fact.
pub const AUGMENT_CONST: &str = "c_hat";

/// Builds the augmented program P′ = P ∪ {p̂(f̂(ĉ))} of Def. 6.1.
///
/// The fresh symbols do not occur in P (they are reserved names; the
/// parser cannot produce them because of the `_hat` suffix convention, and
/// we assert they are fresh).
pub fn augment_program(store: &mut TermStore, program: &Program) -> Program {
    let p_hat = store.intern_symbol(AUGMENT_PRED);
    let f_hat = store.intern_symbol(AUGMENT_FUNC);
    let c_hat = store.constant(AUGMENT_CONST);
    debug_assert!(
        !program.predicates().iter().any(|p| p.sym == p_hat),
        "augmentation predicate already used by the program"
    );
    let arg = store.app(f_hat, &[c_hat]);
    let mut out = Program::from_clauses(program.clauses().iter().cloned());
    out.push(Clause::fact(Atom::new(p_hat, vec![arg])));
    out
}

/// Predicate name introduced by [`term_transform`].
pub const TERM_PRED: &str = "term";

/// Applies the `term/1` transform of Sec. 6 to `program` and returns the
/// transformed program.
///
/// * For each constant `c`: adds `term(c).`
/// * For each n-ary function `f`: adds
///   `term(f(X₁,…,Xₙ)) :- term(X₁), …, term(Xₙ).`
/// * For each original clause and each variable `X` of the clause: appends
///   `term(X)` to the body.
///
/// Applying the same guard to a query (`guard_goal`) guarantees the query
/// cannot flounder, without changing the well-founded model on original
/// predicates.
pub fn term_transform(store: &mut TermStore, program: &Program) -> Program {
    let term = store.intern_symbol(TERM_PRED);
    let consts = constants_with_default(store, program);
    let funcs = program.function_symbols(store);
    let mut out = Program::new();
    // Guarded originals.
    for c in program.clauses() {
        let mut body = c.body.clone();
        for v in c.vars(store) {
            let vt = store.var_term(v);
            body.push(Literal::pos(Atom::new(term, vec![vt])));
        }
        out.push(Clause::new(c.head.clone(), body));
    }
    // term(c).
    for cst in consts {
        let t = store.app(cst, &[]);
        out.push(Clause::fact(Atom::new(term, vec![t])));
    }
    // term(f(X1..Xn)) :- term(X1), ..., term(Xn).
    for (f, arity) in funcs {
        let vars: Vec<TermId> = (0..arity)
            .map(|i| store.fresh_var(Some(&format!("X{i}"))))
            .collect();
        let head_arg = store.app(f, &vars);
        let body = vars
            .iter()
            .map(|&v| Literal::pos(Atom::new(term, vec![v])))
            .collect();
        out.push(Clause::new(Atom::new(term, vec![head_arg]), body));
    }
    out
}

/// Guards every variable of `goal` with a `term(X)` subgoal, matching
/// [`term_transform`]. The result never flounders against the transformed
/// program.
pub fn guard_goal(store: &mut TermStore, goal: &gsls_lang::Goal) -> gsls_lang::Goal {
    let term = store.intern_symbol(TERM_PRED);
    let mut lits = goal.literals().to_vec();
    for v in goal.vars(store) {
        let vt = store.var_term(v);
        lits.push(Literal::pos(Atom::new(term, vec![vt])));
    }
    gsls_lang::Goal::new(lits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsls_lang::parse_program;

    #[test]
    fn function_free_universe_is_constants() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "p(a). q(b, c).").unwrap();
        let u = herbrand_universe(&mut s, &p, HerbrandOpts::default());
        let names: Vec<String> = u.iter().map(|&t| s.display_term(t)).collect();
        assert_eq!(u.len(), 3);
        assert!(names.contains(&"a".to_owned()));
        assert!(names.contains(&"c".to_owned()));
    }

    #[test]
    fn empty_constant_set_invents_one() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "p(X) :- q(X).").unwrap();
        let u = herbrand_universe(&mut s, &p, HerbrandOpts::default());
        assert_eq!(u.len(), 1);
        assert_eq!(s.display_term(u[0]), INVENTED_CONSTANT);
    }

    #[test]
    fn unary_function_universe_by_depth() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "e(s(0), 0).").unwrap();
        let u = herbrand_universe(
            &mut s,
            &p,
            HerbrandOpts {
                max_depth: 4,
                max_terms: 1000,
            },
        );
        // 0, s(0), s(s(0)), s(s(s(0)))
        assert_eq!(u.len(), 4);
        assert_eq!(s.display_term(u[3]), "s(s(s(0)))");
        for &t in &u {
            assert!(s.depth(t) <= 4);
        }
    }

    #[test]
    fn binary_function_universe_no_duplicates() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "p(f(a, b)).").unwrap();
        let u = herbrand_universe(
            &mut s,
            &p,
            HerbrandOpts {
                max_depth: 3,
                max_terms: 10_000,
            },
        );
        let mut sorted = u.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), u.len(), "no duplicate terms");
        // depth 1: a, b. depth 2: f over {a,b}² = 4. depth 3: f over 6²-4 = 32.
        assert_eq!(u.len(), 2 + 4 + 32);
    }

    #[test]
    fn max_terms_respected() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "p(f(a, b)).").unwrap();
        let u = herbrand_universe(
            &mut s,
            &p,
            HerbrandOpts {
                max_depth: 10,
                max_terms: 17,
            },
        );
        assert!(u.len() <= 17);
    }

    #[test]
    fn augmentation_adds_one_fact() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "p(a).").unwrap();
        let p2 = augment_program(&mut s, &p);
        assert_eq!(p2.len(), 2);
        let last = p2.clause(1);
        assert!(last.is_fact());
        assert_eq!(last.display(&s), "p_hat(f_hat(c_hat)).");
        // The augmented universe is infinite: f̂ is a proper function symbol.
        assert!(!p2.is_function_free(&s));
    }

    #[test]
    fn term_transform_guards_clauses() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "p(X) :- ~q(f(X)). q(a).").unwrap();
        assert!(!p.is_allowed(&s));
        let t = term_transform(&mut s, &p);
        // p-clause now has term(X) in body, making it allowed.
        assert!(t.is_allowed(&s), "{}", t.display(&s));
        let text = t.display(&s);
        assert!(text.contains("term(a)."));
        assert!(text.contains("term(f(X0)) :- term(X0)."));
        assert!(text.contains("p(X) :- ~q(f(X)), term(X)."));
    }

    #[test]
    fn term_transform_ground_program_unchanged_modulo_terms() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "p :- ~q. q :- ~p.").unwrap();
        let t = term_transform(&mut s, &p);
        // No variables anywhere: only term(c) facts added for the invented
        // constant.
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn guard_goal_adds_term_literals() {
        let mut s = TermStore::new();
        let g = gsls_lang::parse_goal(&mut s, "?- p(X).").unwrap();
        let g2 = guard_goal(&mut s, &g);
        assert_eq!(g2.len(), 2);
        assert_eq!(g2.literals()[1].atom.pred, s.intern_symbol(TERM_PRED));
    }
}
