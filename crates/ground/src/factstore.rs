//! The semi-naive fact store: interned-id fact rows and multi-argument
//! composite indexes with sorted posting lists.
//!
//! ## Layout
//!
//! Facts of one predicate live in a flat column store: the arguments of
//! row `r` of a predicate with arity `k` occupy `cols[r·k .. (r+1)·k]`
//! as [`TermId`]s — no per-fact `Atom` allocation, no pointer chasing
//! during scans. Rows are append-only and numbered by insertion order,
//! which makes the **semi-naive role split** a pair of row bounds: `Old`
//! is `[0, old_rows)`, `Delta` is `[old_rows, rows)`, `Full` is
//! `[0, rows)` (see [`Role`]).
//!
//! ## Composite indexes
//!
//! The join planner registers the *bound-argument signatures* it will
//! probe — e.g. "predicate `e/2`, arguments `{1}` bound" — and each one
//! becomes a [`SigIndex`]: a hash map from the bound-argument value
//! tuple to a **posting list** of row numbers. Posting lists are
//! appended in row order, so they are always sorted; restricting a
//! probe to a role's `[lo, hi)` row range is a pair of binary searches
//! (`partition_point`) yielding a contiguous sub-slice — never a filter
//! scan over the full list. This is the *delta sub-range invariant* the
//! grounder's delta- and old-restricted probes rely on.
//!
//! Registration backfills an index over rows that already exist, so
//! plans may be built after the seed round has populated the store.
//!
//! Predicates and indexes are referred to by dense slot/handle numbers
//! handed out at registration, so the grounder's inner loop performs no
//! hash lookups to find them.

use crate::grounder::{GroundAtomId, GroundProgram};
use gsls_lang::fxhash::FxHasher;
use gsls_lang::{FxHashMap, Pred, TermId};
use std::hash::{Hash, Hasher};

/// Which slice of a predicate's fact rows a join literal ranges over —
/// the standard semi-naive split. For the body literal chosen as the
/// delta position, only last round's new rows participate; literals at
/// earlier body positions see everything, literals at later positions
/// only what was known *before* last round. Summed over delta positions
/// this enumerates exactly the instances that mention at least one new
/// atom, each once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Role {
    /// All rows.
    Full,
    /// Rows added by the most recent round.
    Delta,
    /// Rows that existed before the most recent round.
    Old,
}

/// An open-addressing set of `u32` ids with caller-supplied hashing and
/// equality, used to intern atoms and deduplicate clauses **without
/// materialising an owned key per probe**: the candidate's identity
/// lives wherever the caller keeps it (the atom table, the CSR clause
/// store), and this table stores only ids.
///
/// Each slot packs `(id << 32) | tag`, where the tag is the upper half
/// of the key's hash and the probe index comes from the lower half.
/// Comparing tags first means a probe walk touches only the slot array
/// — the caller's `eq` (which dereferences the backing store) runs only
/// on a tag match, i.e. almost exclusively on genuine hits.
#[derive(Debug, Clone)]
pub(crate) struct IdTable {
    /// Power-of-two slot array; `u64::MAX` marks an empty slot.
    slots: Box<[u64]>,
    len: usize,
}

const EMPTY: u64 = u64::MAX;

#[inline]
fn pack(id: u32, hash: u64) -> u64 {
    ((id as u64) << 32) | (hash >> 32)
}

impl Default for IdTable {
    fn default() -> Self {
        IdTable {
            slots: vec![EMPTY; 16].into_boxed_slice(),
            len: 0,
        }
    }
}

impl IdTable {
    /// Looks up the id whose key hashes to `hash` and satisfies `eq`.
    pub fn find(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        let mask = self.slots.len() - 1;
        let tag = hash >> 32;
        let mut i = hash as usize & mask;
        loop {
            let s = self.slots[i];
            if s == EMPTY {
                return None;
            }
            if s & 0xffff_ffff == tag {
                let id = (s >> 32) as u32;
                if eq(id) {
                    return Some(id);
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// One probe walk that either finds the existing id for this key or
    /// claims the empty slot for `candidate` (returning `None`, after
    /// which the caller commits `candidate` to the backing store).
    /// `rehash` recomputes a stored id's hash when the table grows.
    pub fn find_or_insert(
        &mut self,
        hash: u64,
        candidate: u32,
        mut eq: impl FnMut(u32) -> bool,
        rehash: impl FnMut(u32) -> u64,
    ) -> Option<u32> {
        // Grow before probing so the claimed slot stays valid.
        if (self.len + 1) * 8 >= self.slots.len() * 7 {
            self.grow(rehash);
        }
        let mask = self.slots.len() - 1;
        let tag = hash >> 32;
        let mut i = hash as usize & mask;
        loop {
            let s = self.slots[i];
            if s == EMPTY {
                self.slots[i] = pack(candidate, hash);
                self.len += 1;
                return None;
            }
            if s & 0xffff_ffff == tag {
                let id = (s >> 32) as u32;
                if eq(id) {
                    return Some(id);
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Pre-sizes the table for about `n` entries, rehashing the current
    /// contents once, so bulk loads skip the doubling cascade.
    pub fn reserve(&mut self, n: usize, rehash: impl FnMut(u32) -> u64) {
        let want = (n * 8 / 7 + 1).next_power_of_two();
        if want > self.slots.len() {
            self.grow_to(want, rehash);
        }
    }

    fn grow(&mut self, rehash: impl FnMut(u32) -> u64) {
        self.grow_to(self.slots.len() * 2, rehash);
    }

    fn grow_to(&mut self, target: usize, mut rehash: impl FnMut(u32) -> u64) {
        let mut bigger = vec![EMPTY; target].into_boxed_slice();
        let mask = bigger.len() - 1;
        for &old in self.slots.iter() {
            if old != EMPTY {
                let id = (old >> 32) as u32;
                let mut i = rehash(id) as usize & mask;
                while bigger[i] != EMPTY {
                    i = (i + 1) & mask;
                }
                bigger[i] = old;
            }
        }
        self.slots = bigger;
    }

    /// Inserts an id whose key is **known absent** (no equality probes,
    /// no duplicate check) — the bulk-load path for the parallel seed
    /// round, whose shard-local dedup already guaranteed uniqueness.
    /// `rehash` is only consulted if the insert triggers a grow.
    pub fn insert_unique(&mut self, hash: u64, id: u32, rehash: impl FnMut(u32) -> u64) {
        if (self.len + 1) * 8 >= self.slots.len() * 7 {
            self.grow(rehash);
        }
        let mask = self.slots.len() - 1;
        let mut i = hash as usize & mask;
        while self.slots[i] != EMPTY {
            i = (i + 1) & mask;
        }
        self.slots[i] = pack(id, hash);
        self.len += 1;
    }

    /// Number of stored ids.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.len
    }
}

/// Number of lock-stripeable shards in a [`ShardedIdTable`]. A fixed
/// power of two: enough that 8 workers rarely contend and each shard's
/// grow-rehash touches 1/16th of the entries, small enough that tiny
/// programs don't pay for empty tables.
pub(crate) const SHARDS: usize = 16;

/// The shard a key hashes into. Uses high hash bits: the probe index
/// comes from the low bits and the tag from bits 32..64, so shard
/// selection only narrows the tag by log₂([`SHARDS`]) bits.
#[inline]
pub(crate) fn shard_of(hash: u64) -> usize {
    ((hash >> 59) as usize) & (SHARDS - 1)
}

/// An [`IdTable`] split into [`SHARDS`] hash-disjoint shards.
///
/// Two jobs: (1) the grounder's parallel seed round deduplicates each
/// shard on a separate worker — keys of different shards can never be
/// equal, so per-shard dedup is exact; (2) even sequentially, a grow
/// rehashes one shard at a time instead of the whole table, which is
/// what turned the 10^6-atom interning profile from rehash storms into
/// amortized noise (the tables also get pre-sized from the seed round's
/// cardinality — see the grounder).
#[derive(Debug, Clone)]
pub(crate) struct ShardedIdTable {
    shards: Vec<IdTable>,
}

impl Default for ShardedIdTable {
    fn default() -> Self {
        ShardedIdTable {
            shards: (0..SHARDS).map(|_| IdTable::default()).collect(),
        }
    }
}

impl ShardedIdTable {
    /// [`IdTable::find`] on the key's shard.
    pub fn find(&self, hash: u64, eq: impl FnMut(u32) -> bool) -> Option<u32> {
        self.shards[shard_of(hash)].find(hash, eq)
    }

    /// [`IdTable::find_or_insert`] on the key's shard.
    pub fn find_or_insert(
        &mut self,
        hash: u64,
        candidate: u32,
        eq: impl FnMut(u32) -> bool,
        rehash: impl FnMut(u32) -> u64,
    ) -> Option<u32> {
        self.shards[shard_of(hash)].find_or_insert(hash, candidate, eq, rehash)
    }

    /// [`IdTable::insert_unique`] on the key's shard.
    pub fn insert_unique(&mut self, hash: u64, id: u32, rehash: impl FnMut(u32) -> u64) {
        self.shards[shard_of(hash)].insert_unique(hash, id, rehash);
    }

    /// Pre-sizes every shard for a **total** of about `n` entries,
    /// assuming the uniform key distribution a good hash gives (a small
    /// per-shard slack absorbs the variance; an unlucky shard just
    /// grows once).
    pub fn reserve(&mut self, n: usize, mut rehash: impl FnMut(u32) -> u64) {
        let per = n / SHARDS + n / (SHARDS * 4) + 8;
        for shard in &mut self.shards {
            shard.reserve(per, &mut rehash);
        }
    }

    /// Total number of stored ids.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.shards.iter().map(IdTable::len).sum()
    }
}

/// Facts of one predicate: a flat argument column store plus the
/// handles of the composite indexes that cover it.
#[derive(Debug, Default)]
struct PredFacts {
    arity: u32,
    /// Number of fact rows.
    rows: u32,
    /// Rows `[old_rows, rows)` are the delta of the most recent round.
    old_rows: u32,
    /// Row `r`'s arguments at `cols[r·arity .. (r+1)·arity]`.
    cols: Vec<TermId>,
    /// Row `r`'s interned atom id — matched positive body literals
    /// reuse it directly, so joins never re-intern a fact they matched.
    ids: Vec<GroundAtomId>,
    /// Indexes into [`FactStore::indexes`] that must absorb new rows.
    handles: Vec<u32>,
}

/// One registered composite index: bound-argument value tuple → sorted
/// posting list of row numbers.
#[derive(Debug)]
struct SigIndex {
    /// Sorted argument positions forming the key.
    argpos: Box<[u32]>,
    map: FxHashMap<Box<[TermId]>, Vec<u32>>,
}

impl SigIndex {
    /// Appends `row` (of the owning predicate) to the posting list for
    /// its key tuple. Rows arrive in increasing order, so every posting
    /// list stays sorted.
    fn push_row(&mut self, row: u32, args: &[TermId], key_buf: &mut Vec<TermId>) {
        key_buf.clear();
        for &p in self.argpos.iter() {
            key_buf.push(args[p as usize]);
        }
        if let Some(list) = self.map.get_mut(key_buf.as_slice()) {
            list.push(row);
        } else {
            self.map.insert(key_buf.as_slice().into(), vec![row]);
        }
    }
}

/// The per-predicate fact store driving semi-naive evaluation.
#[derive(Debug, Default)]
pub(crate) struct FactStore {
    slots: FxHashMap<Pred, u32>,
    preds: Vec<PredFacts>,
    indexes: Vec<SigIndex>,
    /// Deduplicates [`FactStore::register_index`] calls.
    sig_handles: FxHashMap<(u32, Box<[u32]>), u32>,
    /// Once frozen (after planning), atoms of predicates without a slot
    /// are dropped by [`FactStore::advance`]: no plan can ever join
    /// them, so storing their rows would be pure overhead.
    frozen: bool,
}

impl FactStore {
    /// The dense slot for `pred`, creating it if unknown.
    pub fn pred_slot(&mut self, pred: Pred) -> u32 {
        if let Some(&s) = self.slots.get(&pred) {
            return s;
        }
        let s = u32::try_from(self.preds.len()).expect("fact-store predicate overflow");
        self.slots.insert(pred, s);
        self.preds.push(PredFacts {
            arity: pred.arity,
            ..PredFacts::default()
        });
        s
    }

    /// The slot for `pred` if it has one.
    pub fn slot_of(&self, pred: Pred) -> Option<u32> {
        self.slots.get(&pred).copied()
    }

    /// Stops slot creation: subsequent [`FactStore::advance`] calls drop
    /// atoms of unregistered predicates (see [`FactStore::frozen`]).
    /// Called once planning has registered every joinable predicate.
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// Number of predicate slots handed out.
    pub fn pred_count(&self) -> usize {
        self.preds.len()
    }

    /// Number of composite indexes registered.
    pub fn index_count(&self) -> usize {
        self.indexes.len()
    }

    /// Approximate heap footprint in bytes: column stores, row-id
    /// arrays, and composite indexes. O(predicates + indexes) — posting
    /// lists are estimated as one entry per indexed row and key maps by
    /// their entry count, never walked — so governance can poll it
    /// every grounding round.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut bytes = self.slots.capacity() * (size_of::<Pred>() + 12);
        for p in &self.preds {
            bytes += p.cols.capacity() * size_of::<TermId>()
                + p.ids.capacity() * size_of::<GroundAtomId>();
            // Each covering index posts every row of this predicate.
            bytes += p.handles.len() * p.rows as usize * 4;
        }
        for ix in &self.indexes {
            bytes += ix.map.len() * (ix.argpos.len() * size_of::<TermId>() + 72);
        }
        bytes
    }

    /// Number of fact rows of the predicate in `slot`.
    pub fn rows(&self, slot: u32) -> u32 {
        self.preds[slot as usize].rows
    }

    /// The row range a literal with `role` ranges over.
    #[inline]
    pub fn range(&self, slot: u32, role: Role) -> (u32, u32) {
        let pf = &self.preds[slot as usize];
        match role {
            Role::Full => (0, pf.rows),
            Role::Delta => (pf.old_rows, pf.rows),
            Role::Old => (0, pf.old_rows),
        }
    }

    /// The argument tuple of fact `row` of the predicate in `slot`.
    #[inline]
    pub fn row_args(&self, slot: u32, row: u32) -> &[TermId] {
        let pf = &self.preds[slot as usize];
        let a = pf.arity as usize;
        &pf.cols[row as usize * a..(row as usize + 1) * a]
    }

    /// The interned atom id of fact `row` of the predicate in `slot`.
    #[inline]
    pub fn row_atom(&self, slot: u32, row: u32) -> GroundAtomId {
        self.preds[slot as usize].ids[row as usize]
    }

    /// Registers a composite index on `pred` keyed by the sorted
    /// argument positions `sig`, returning its handle. Idempotent per
    /// `(pred, sig)`; backfills over rows already stored.
    pub fn register_index(&mut self, pred: Pred, sig: &[u32]) -> u32 {
        debug_assert!(!sig.is_empty() && sig.windows(2).all(|w| w[0] < w[1]));
        let slot = self.pred_slot(pred);
        if let Some(&h) = self.sig_handles.get(&(slot, sig.into())) {
            return h;
        }
        let h = u32::try_from(self.indexes.len()).expect("fact-store index overflow");
        self.sig_handles.insert((slot, sig.into()), h);
        let mut idx = SigIndex {
            argpos: sig.into(),
            map: FxHashMap::default(),
        };
        let pf = &self.preds[slot as usize];
        let mut key_buf = Vec::with_capacity(sig.len());
        let a = pf.arity as usize;
        for row in 0..pf.rows {
            let args = &pf.cols[row as usize * a..(row as usize + 1) * a];
            idx.push_row(row, args, &mut key_buf);
        }
        self.indexes.push(idx);
        self.preds[slot as usize].handles.push(h);
        h
    }

    /// The full (role-unrestricted) posting list for `key` in the index
    /// `handle`; empty if the tuple was never seen. Always sorted by
    /// row number, so callers clamp it to a role range with two binary
    /// searches.
    #[inline]
    pub fn posting<'s>(&'s self, handle: u32, key: &[TermId]) -> &'s [u32] {
        self.indexes[handle as usize]
            .map
            .get(key)
            .map_or(&[][..], Vec::as_slice)
    }

    /// Ends a round: the previous delta becomes old, `new_atoms`
    /// becomes the next delta (argument tuples are copied out of the
    /// interned atoms of `gp`). Fills `grown` with the slots of
    /// predicates that gained rows.
    pub fn advance(
        &mut self,
        gp: &GroundProgram,
        new_atoms: &[GroundAtomId],
        grown: &mut Vec<u32>,
    ) {
        for pf in &mut self.preds {
            pf.old_rows = pf.rows;
        }
        let mut key_buf: Vec<TermId> = Vec::new();
        for &id in new_atoms {
            let atom = gp.atom(id);
            let slot = if self.frozen {
                match self.slots.get(&atom.pred_id()) {
                    Some(&s) => s,
                    None => continue,
                }
            } else {
                self.pred_slot(atom.pred_id())
            };
            let pf = &mut self.preds[slot as usize];
            debug_assert_eq!(atom.args.len() as u32, pf.arity);
            let row = pf.rows;
            pf.rows += 1;
            pf.cols.extend_from_slice(&atom.args);
            pf.ids.push(id);
            // `atom.args` borrows `gp`, so the disjoint-field borrows of
            // `preds` (read handles) and `indexes` (append) are clean.
            let handles = &self.preds[slot as usize].handles;
            for &h in handles {
                self.indexes[h as usize].push_row(row, &atom.args, &mut key_buf);
            }
        }
        grown.clear();
        for (s, pf) in self.preds.iter().enumerate() {
            if pf.rows > pf.old_rows {
                grown.push(s as u32);
            }
        }
    }
}

/// Hashes an atom identity `(pred, args)` with the workspace Fx hasher.
pub(crate) fn atom_hash(pred: gsls_lang::Symbol, args: &[TermId]) -> u64 {
    let mut h = FxHasher::default();
    pred.hash(&mut h);
    h.write_usize(args.len());
    for a in args {
        a.hash(&mut h);
    }
    h.finish()
}

/// Hashes a ground clause identity `(head, pos, neg)` as an id triple.
pub(crate) fn clause_hash(head: u32, pos: &[GroundAtomId], neg: &[GroundAtomId]) -> u64 {
    let mut h = FxHasher::default();
    h.write_u32(head);
    h.write_usize(pos.len());
    for p in pos {
        h.write_u32(p.0);
    }
    h.write_usize(neg.len());
    for n in neg {
        h.write_u32(n.0);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsls_lang::{parse_program, TermStore};

    fn store_with(src: &str) -> (TermStore, GroundProgram, Vec<GroundAtomId>) {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, src).unwrap();
        let mut gp = GroundProgram::new();
        let ids: Vec<GroundAtomId> = p
            .clauses()
            .iter()
            .map(|c| gp.intern_atom(c.head.clone()))
            .collect();
        (s, gp, ids)
    }

    #[test]
    fn roles_split_rows_by_round() {
        let (_, gp, ids) = store_with("e(a, b). e(b, c). e(c, d).");
        let mut fs = FactStore::default();
        let mut grown = Vec::new();
        fs.advance(&gp, &ids[..2], &mut grown);
        let e = fs.slot_of(Pred::new(gp.atom(ids[0]).pred, 2)).unwrap();
        assert_eq!(grown, vec![e]);
        assert_eq!(fs.range(e, Role::Full), (0, 2));
        assert_eq!(fs.range(e, Role::Delta), (0, 2));
        assert_eq!(fs.range(e, Role::Old), (0, 0));
        fs.advance(&gp, &ids[2..], &mut grown);
        assert_eq!(fs.range(e, Role::Full), (0, 3));
        assert_eq!(fs.range(e, Role::Delta), (2, 3));
        assert_eq!(fs.range(e, Role::Old), (0, 2));
    }

    #[test]
    fn composite_index_posting_lists_sorted_and_backfilled() {
        let (_, gp, ids) = store_with("e(a, b). e(a, c). e(b, c). e(a, d).");
        let mut fs = FactStore::default();
        let mut grown = Vec::new();
        // Backfill path: two rows exist before registration.
        fs.advance(&gp, &ids[..2], &mut grown);
        let pred = gp.atom(ids[0]).pred_id();
        let h = fs.register_index(pred, &[0]);
        assert_eq!(fs.register_index(pred, &[0]), h, "registration idempotent");
        fs.advance(&gp, &ids[2..], &mut grown);
        let a = gp.atom(ids[0]).args[0];
        let b = gp.atom(ids[2]).args[0];
        assert_eq!(fs.posting(h, &[a]), &[0, 1, 3], "sorted by insertion row");
        assert_eq!(fs.posting(h, &[b]), &[2]);
        assert!(fs.posting(h, &[TermId(999)]).is_empty());
        // Two-column signature.
        let h2 = fs.register_index(pred, &[0, 1]);
        let d = gp.atom(ids[3]).args[1];
        assert_eq!(fs.posting(h2, &[a, d]), &[3]);
    }

    #[test]
    fn sharded_table_matches_flat_semantics() {
        let keys: Vec<u64> = (0..2000u64)
            .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15))
            .collect();
        let mut flat = IdTable::default();
        let mut sharded = ShardedIdTable::default();
        sharded.reserve(keys.len(), |id| keys[id as usize]);
        for (i, &k) in keys.iter().enumerate() {
            let eq = |id: u32| keys[id as usize] == k;
            let rh = |id: u32| keys[id as usize];
            assert_eq!(flat.find_or_insert(k, i as u32, eq, rh), None);
            assert_eq!(sharded.find_or_insert(k, i as u32, eq, rh), None);
        }
        assert_eq!(sharded.len(), keys.len());
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(
                sharded.find(k, |id| keys[id as usize] == k),
                Some(i as u32),
                "key {i}"
            );
        }
    }

    #[test]
    fn insert_unique_bulk_load_then_find() {
        let keys: Vec<u64> = (0..800u64)
            .map(|i| i.wrapping_mul(0xd1b54a32d192ed03))
            .collect();
        let mut t = ShardedIdTable::default();
        // Deliberately no reserve: growth paths must stay correct.
        for (i, &k) in keys.iter().enumerate() {
            t.insert_unique(k, i as u32, |id| keys[id as usize]);
        }
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(t.find(k, |id| keys[id as usize] == k), Some(i as u32));
        }
        assert_eq!(t.len(), keys.len());
    }

    #[test]
    fn id_table_find_insert_grow() {
        let keys: Vec<u64> = (0..500u64)
            .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15))
            .collect();
        let mut t = IdTable::default();
        for (i, &k) in keys.iter().enumerate() {
            assert!(t.find(k, |id| keys[id as usize] == k).is_none());
            let inserted = t.find_or_insert(
                k,
                i as u32,
                |id| keys[id as usize] == k,
                |id| keys[id as usize],
            );
            assert_eq!(inserted, None, "key {i} fresh");
        }
        assert_eq!(t.len(), keys.len());
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(t.find(k, |id| keys[id as usize] == k), Some(i as u32));
            // A second find_or_insert is a lookup, not an insertion.
            let dup = t.find_or_insert(k, 999, |id| keys[id as usize] == k, |id| keys[id as usize]);
            assert_eq!(dup, Some(i as u32));
        }
        assert_eq!(t.len(), keys.len());
    }
}
