//! Dependency graphs, SCCs, stratification and acyclicity.
//!
//! Section 7 of the paper distinguishes program classes by how goals can
//! recurse: **stratified** / **locally stratified** programs (no recursion
//! through negation at the predicate / ground-atom level), **acyclic**
//! programs (no recursion at all in the ground atom graph — where plain
//! global SLS-resolution is effective), and general programs (where the
//! memoized engine is needed). This module implements the analyses.

use crate::grounder::GroundProgram;
use gsls_lang::{FxHashMap, Pred, Program, Sign};

/// A syntactic class of normal programs, ordered from most to least
/// restrictive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramClass {
    /// No negative body literals at all.
    Definite,
    /// Negation never occurs inside a predicate-level recursive component.
    Stratified,
    /// Negation never occurs inside a ground-atom-level recursive
    /// component (checked on the grounded program).
    LocallyStratified,
    /// Anything else; the well-founded model may have undefined atoms.
    General,
}

/// Generic iterative Tarjan SCC.
///
/// `adj[v]` lists successors of `v`. Returns components in reverse
/// topological order (every edge goes from a later component to an earlier
/// one or stays inside a component).
pub fn sccs(adj: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let n = adj.len();
    let mut index = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut out: Vec<Vec<u32>> = Vec::new();

    // Explicit DFS stack: (node, next-successor-position).
    let mut call: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if index[root as usize] != u32::MAX {
            continue;
        }
        call.push((root, 0));
        index[root as usize] = next_index;
        low[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut pos)) = call.last_mut() {
            if *pos < adj[v as usize].len() {
                let w = adj[v as usize][*pos];
                *pos += 1;
                if index[w as usize] == u32::MAX {
                    index[w as usize] = next_index;
                    low[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    call.push((w, 0));
                } else if on_stack[w as usize] {
                    low[v as usize] = low[v as usize].min(index[w as usize]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent as usize] = low[parent as usize].min(low[v as usize]);
                }
                if low[v as usize] == index[v as usize] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    out.push(comp);
                }
            }
        }
    }
    out
}

/// The predicate-level dependency graph of a program.
///
/// There is an edge `p → q` (with a sign) whenever some clause with head
/// predicate `p` has a body literal with predicate `q`.
#[derive(Debug, Clone)]
pub struct DepGraph {
    preds: Vec<Pred>,
    /// `edges[p]` = list of `(q, sign)`.
    edges: Vec<Vec<(u32, Sign)>>,
}

impl DepGraph {
    /// Builds the dependency graph of `program`.
    pub fn from_program(program: &Program) -> Self {
        let preds = program.predicates();
        let mut ids = FxHashMap::default();
        for (i, &p) in preds.iter().enumerate() {
            ids.insert(p, i as u32);
        }
        let mut edges = vec![Vec::new(); preds.len()];
        for c in program.clauses() {
            let h = ids[&c.head.pred_id()];

            for l in &c.body {
                let b = ids[&l.atom.pred_id()];
                let e = (b, l.sign);
                if !edges[h as usize].contains(&e) {
                    edges[h as usize].push(e);
                }
            }
        }
        DepGraph { preds, edges }
    }

    /// The predicates of the graph.
    pub fn preds(&self) -> &[Pred] {
        &self.preds
    }

    /// SCCs of the graph in reverse topological order.
    pub fn sccs(&self) -> Vec<Vec<Pred>> {
        let adj: Vec<Vec<u32>> = self
            .edges
            .iter()
            .map(|es| es.iter().map(|&(q, _)| q).collect())
            .collect();
        sccs(&adj)
            .into_iter()
            .map(|comp| comp.into_iter().map(|i| self.preds[i as usize]).collect())
            .collect()
    }

    /// Whether the program is stratified: no negative edge inside any SCC
    /// of the predicate dependency graph.
    pub fn is_stratified(&self) -> bool {
        self.strata().is_some()
    }

    /// Computes the minimal stratification `pred → stratum` if one exists.
    ///
    /// Constraints: `stratum(p) ≥ stratum(q)` for positive edges `p → q`,
    /// `stratum(p) > stratum(q)` for negative edges. Returns `None` when a
    /// cycle through negation makes this impossible.
    pub fn strata(&self) -> Option<FxHashMap<Pred, u32>> {
        let n = self.preds.len();
        let mut stratum = vec![0u32; n];
        // Bellman-Ford style relaxation; more than n·n relaxations in
        // total means a negative-edge cycle.
        for _round in 0..=n {
            let mut changed = false;
            for p in 0..n {
                for &(q, sign) in &self.edges[p] {
                    let need = match sign {
                        Sign::Pos => stratum[q as usize],
                        Sign::Neg => stratum[q as usize] + 1,
                    };
                    if stratum[p] < need {
                        stratum[p] = need;
                        changed = true;
                    }
                }
            }
            if !changed {
                let mut out = FxHashMap::default();
                for (i, &p) in self.preds.iter().enumerate() {
                    out.insert(p, stratum[i]);
                }
                return Some(out);
            }
        }
        None
    }

    /// A witness cycle through negation, when one exists: a sequence
    /// `[(p₀, s₀), (p₁, s₁), …, (pₖ, sₖ)]` where the edge
    /// `pᵢ →(sᵢ) pᵢ₊₁` exists for every `i` (indices mod `k+1`, so the
    /// last edge closes the cycle back to `p₀`) and at least one sign
    /// is negative. Such a cycle is exactly what makes [`DepGraph::strata`]
    /// fail; diagnostics render it as `p → not q → p`. Returns `None`
    /// for stratified programs.
    pub fn negative_cycle_witness(&self) -> Option<Vec<(Pred, Sign)>> {
        let adj: Vec<Vec<u32>> = self
            .edges
            .iter()
            .map(|es| es.iter().map(|&(q, _)| q).collect())
            .collect();
        let comps = sccs(&adj);
        let mut comp_of = vec![0u32; self.preds.len()];
        for (ci, comp) in comps.iter().enumerate() {
            for &v in comp {
                comp_of[v as usize] = ci as u32;
            }
        }
        for u in 0..self.preds.len() {
            for &(v, sign) in &self.edges[u] {
                if sign == Sign::Neg && comp_of[u] == comp_of[v as usize] {
                    let mut out = vec![(self.preds[u], Sign::Neg)];
                    out.extend(self.path_within(&comp_of, v, u as u32));
                    return Some(out);
                }
            }
        }
        None
    }

    /// BFS path `from → … → to` staying inside `from`'s SCC, as
    /// `(pred, sign-of-edge-to-next)` pairs; empty when `from == to`.
    /// Both endpoints must share an SCC (callers guarantee this), so
    /// the path always exists.
    fn path_within(&self, comp_of: &[u32], from: u32, to: u32) -> Vec<(Pred, Sign)> {
        if from == to {
            return Vec::new();
        }
        let comp = comp_of[from as usize];
        let mut prev: Vec<Option<(u32, Sign)>> = vec![None; self.preds.len()];
        let mut queue = std::collections::VecDeque::from([from]);
        'bfs: while let Some(u) = queue.pop_front() {
            for &(v, sign) in &self.edges[u as usize] {
                if comp_of[v as usize] != comp || v == from || prev[v as usize].is_some() {
                    continue;
                }
                prev[v as usize] = Some((u, sign));
                if v == to {
                    break 'bfs;
                }
                queue.push_back(v);
            }
        }
        // Walk back to `from`, collecting (node, sign of node → next).
        let mut rev: Vec<(Pred, Sign)> = Vec::new();
        let mut at = to;
        while at != from {
            let (p, sign) = prev[at as usize].expect("endpoints share an SCC");
            rev.push((self.preds[p as usize], sign));
            at = p;
        }
        rev.reverse();
        rev
    }

    /// Classifies the program at the predicate level.
    pub fn classify(&self, program: &Program) -> ProgramClass {
        if program.is_definite() {
            ProgramClass::Definite
        } else if self.is_stratified() {
            ProgramClass::Stratified
        } else {
            ProgramClass::General
        }
    }
}

/// The ground-atom-level dependency graph of a [`GroundProgram`].
#[derive(Debug, Clone)]
pub struct AtomDepGraph {
    /// `pos[a]` = atoms occurring positively in bodies of rules for `a`.
    pos: Vec<Vec<u32>>,
    /// `neg[a]` = atoms occurring negatively.
    neg: Vec<Vec<u32>>,
}

impl AtomDepGraph {
    /// Builds the atom dependency graph.
    pub fn from_ground(gp: &GroundProgram) -> Self {
        let n = gp.atom_count();
        let mut pos = vec![Vec::new(); n];
        let mut neg = vec![Vec::new(); n];
        for c in gp.clauses() {
            for &p in c.pos.iter() {
                if !pos[c.head.index()].contains(&p.0) {
                    pos[c.head.index()].push(p.0);
                }
            }
            for &q in c.neg.iter() {
                if !neg[c.head.index()].contains(&q.0) {
                    neg[c.head.index()].push(q.0);
                }
            }
        }
        AtomDepGraph { pos, neg }
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// Whether the graph has no atoms.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    fn combined_adj(&self) -> Vec<Vec<u32>> {
        self.pos
            .iter()
            .zip(&self.neg)
            .map(|(p, n)| {
                let mut v = p.clone();
                v.extend_from_slice(n);
                v
            })
            .collect()
    }

    /// SCCs over both positive and negative edges, reverse topological.
    pub fn sccs(&self) -> Vec<Vec<u32>> {
        sccs(&self.combined_adj())
    }

    /// Whether the grounded program is **locally stratified**: no cycle
    /// through a negative edge in the atom dependency graph.
    pub fn is_locally_stratified(&self) -> bool {
        let comps = self.sccs();
        let mut comp_of = vec![0u32; self.len()];
        for (ci, comp) in comps.iter().enumerate() {
            for &a in comp {
                comp_of[a as usize] = ci as u32;
            }
        }
        for (a, negs) in self.neg.iter().enumerate() {
            for &b in negs {
                if comp_of[a] == comp_of[b as usize] {
                    return false;
                }
            }
        }
        true
    }

    /// Whether the grounded program is **acyclic**: the atom dependency
    /// graph (all edges) has no cycle. Plain global SLS-resolution is
    /// effective exactly on such (depth-bounded) programs (Sec. 7).
    pub fn is_acyclic(&self) -> bool {
        let adj = self.combined_adj();
        let comps = sccs(&adj);
        comps.iter().all(|c| c.len() == 1)
            && adj
                .iter()
                .enumerate()
                .all(|(a, succ)| !succ.contains(&(a as u32)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grounder::Grounder;
    use gsls_lang::{parse_program, TermStore};

    fn dep(src: &str) -> (TermStore, Program, DepGraph) {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, src).unwrap();
        let g = DepGraph::from_program(&p);
        (s, p, g)
    }

    fn atom_graph(src: &str) -> AtomDepGraph {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, src).unwrap();
        let gp = Grounder::ground(&mut s, &p).unwrap();
        AtomDepGraph::from_ground(&gp)
    }

    fn atom_graph_full(src: &str) -> AtomDepGraph {
        use crate::grounder::{GrounderOpts, GroundingMode};
        let mut s = TermStore::new();
        let p = parse_program(&mut s, src).unwrap();
        let gp = Grounder::ground_with(
            &mut s,
            &p,
            GrounderOpts {
                mode: GroundingMode::Full,
                ..GrounderOpts::default()
            },
        )
        .unwrap();
        AtomDepGraph::from_ground(&gp)
    }

    #[test]
    fn sccs_of_simple_cycle() {
        // 0 -> 1 -> 2 -> 0, 3 isolated
        let adj = vec![vec![1], vec![2], vec![0], vec![]];
        let comps = sccs(&adj);
        assert_eq!(comps.len(), 2);
        let big = comps.iter().find(|c| c.len() == 3).unwrap();
        let mut sorted = big.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn sccs_reverse_topological() {
        // 0 -> 1, no cycles: component of 1 must come before component of 0.
        let adj = vec![vec![1], vec![]];
        let comps = sccs(&adj);
        assert_eq!(comps, vec![vec![1], vec![0]]);
    }

    #[test]
    fn sccs_large_chain_no_overflow() {
        // Deep chain exercises the iterative DFS.
        let n = 200_000;
        let adj: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                if i + 1 < n {
                    vec![(i + 1) as u32]
                } else {
                    vec![]
                }
            })
            .collect();
        let comps = sccs(&adj);
        assert_eq!(comps.len(), n);
    }

    #[test]
    fn stratified_program_detected() {
        let (_, p, g) = dep("r(a). q(X) :- r(X). p(X) :- ~q(X), r(X).");
        assert!(g.is_stratified());
        assert_eq!(g.classify(&p), ProgramClass::Stratified);
        let strata = g.strata().unwrap();
        let by_name: FxHashMap<u32, u32> = FxHashMap::default();
        drop(by_name);
        // p must sit strictly above q.
        let preds = g.preds().to_vec();
        let find = |name: &str, s: &TermStore| {
            preds
                .iter()
                .find(|pr| s.symbol_name(pr.sym) == name)
                .copied()
                .unwrap()
        };
        let mut s = TermStore::new();
        let _ = parse_program(&mut s, "r(a). q(X) :- r(X). p(X) :- ~q(X), r(X).").unwrap();
        let pp = find("p", &s);
        let qq = find("q", &s);
        assert!(strata[&pp] > strata[&qq]);
    }

    #[test]
    fn win_game_not_stratified() {
        let (_, p, g) = dep("move(a, b). win(X) :- move(X, Y), ~win(Y).");
        assert!(!g.is_stratified());
        assert_eq!(g.classify(&p), ProgramClass::General);
        assert!(g.strata().is_none());
    }

    #[test]
    fn witness_self_loop() {
        let (s, _, g) = dep("move(a, b). win(X) :- move(X, Y), ~win(Y).");
        let w = g.negative_cycle_witness().unwrap();
        assert_eq!(w.len(), 1);
        assert_eq!(s.symbol_name(w[0].0.sym), "win");
        assert_eq!(w[0].1, Sign::Neg);
    }

    #[test]
    fn witness_two_step_cycle() {
        // p → not q → p: the negative edge plus the positive closure.
        let (s, _, g) = dep("p(X) :- d(X), ~q(X). q(X) :- p(X). d(a).");
        let w = g.negative_cycle_witness().unwrap();
        assert_eq!(w.len(), 2);
        let names: Vec<&str> = w.iter().map(|(p, _)| s.symbol_name(p.sym)).collect();
        // Cycle may be reported from either entry point; both name p and q.
        assert!(names.contains(&"p") && names.contains(&"q"), "{names:?}");
        assert!(w.iter().any(|&(_, s)| s == Sign::Neg));
        // Every listed edge must exist: walk the cycle and check the next
        // pred is reachable by an edge of the recorded sign.
        for i in 0..w.len() {
            let (from, sign) = w[i];
            let (to, _) = w[(i + 1) % w.len()];
            let fi = g.preds().iter().position(|&p| p == from).unwrap();
            assert!(
                g.edges[fi]
                    .iter()
                    .any(|&(q, s)| { g.preds()[q as usize] == to && s == sign }),
                "missing edge {from:?} →{sign:?} {to:?}"
            );
        }
    }

    #[test]
    fn witness_none_when_stratified() {
        let (_, _, g) = dep("r(a). q(X) :- r(X). p(X) :- ~q(X), r(X).");
        assert!(g.negative_cycle_witness().is_none());
    }

    #[test]
    fn definite_program_classified() {
        let (_, p, g) = dep("e(a, b). t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).");
        assert_eq!(g.classify(&p), ProgramClass::Definite);
        assert!(g.is_stratified(), "definite implies stratified");
    }

    #[test]
    fn positive_recursion_is_stratified() {
        let (_, _, g) = dep("p(X) :- q(X). q(X) :- p(X). r(X) :- ~p(X), d(X). d(a).");
        assert!(g.is_stratified());
    }

    #[test]
    fn locally_stratified_but_not_stratified() {
        // even/odd over a finite chain: predicate-level cycle through
        // negation, but ground-level acyclic.
        let src = "num(0). num(s(0)). num(s(s(0))).
                   even(0).
                   even(s(X)) :- num(X), ~even(X).";
        let (_, _, g) = dep(src);
        assert!(!g.is_stratified());
        let ag = atom_graph(src);
        assert!(ag.is_locally_stratified());
    }

    #[test]
    fn win_cycle_not_locally_stratified() {
        let ag = atom_graph("move(a, b). move(b, a). win(X) :- move(X, Y), ~win(Y).");
        assert!(!ag.is_locally_stratified());
        assert!(!ag.is_acyclic());
    }

    #[test]
    fn acyclic_ground_program() {
        let ag = atom_graph("p :- ~q, r. q :- s. r. s.");
        assert!(ag.is_acyclic());
        assert!(ag.is_locally_stratified());
    }

    #[test]
    fn positive_self_loop_not_acyclic_but_locally_stratified() {
        // Relevant grounding prunes `p :- p.` entirely (p is not in the
        // positive closure); the Full instantiation keeps the loop.
        let ag = atom_graph("p :- p.");
        assert!(ag.is_acyclic(), "relevant grounding prunes the loop");
        let ag_full = atom_graph_full("p :- p.");
        assert!(!ag_full.is_acyclic());
        assert!(ag_full.is_locally_stratified());
    }

    #[test]
    fn empty_program_graphs() {
        let (_, _, g) = dep("");
        assert!(g.is_stratified());
        assert!(g.sccs().is_empty());
        let ag = atom_graph("");
        assert!(ag.is_acyclic());
        assert!(ag.is_empty());
    }
}
