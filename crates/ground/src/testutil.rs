//! Shared helpers for tests across the workspace.
//!
//! Before this module existed, ten near-identical copies of the
//! find-atom-by-text helper lived in the unit tests of `gsls-wfs` and
//! `gsls-core`. Tests in any crate that depends on `gsls-ground` should
//! use these instead of re-rolling them.

use crate::grounder::{GroundAtomId, GroundProgram};
use gsls_lang::TermStore;

/// Finds a ground atom by its rendered source text (e.g. `"win(n3)"`),
/// scanning the interned atom table.
///
/// # Panics
/// Panics with `atom {text} not found` if no interned atom renders to
/// `text` — the right behaviour for a test helper. Production code
/// should parse the text and use [`GroundProgram::lookup_atom`].
pub fn atom_id(store: &TermStore, gp: &GroundProgram, text: &str) -> GroundAtomId {
    gp.atom_ids()
        .find(|&a| gp.display_atom(store, a) == text)
        .unwrap_or_else(|| panic!("atom {text} not found"))
}

/// The clause multiset of a ground program as sorted rendered lines —
/// the clause-set identity used by the planned-vs-naive differential
/// oracles (atom ids may be assigned in a different order by different
/// join strategies, so id-level comparison would be wrong).
pub fn sorted_clauses(store: &TermStore, gp: &GroundProgram) -> Vec<String> {
    let mut lines: Vec<String> = gp.display(store).lines().map(str::to_owned).collect();
    lines.sort();
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grounder::Grounder;
    use gsls_lang::parse_program;

    #[test]
    fn finds_by_rendered_text() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "p(a). q :- p(a).").unwrap();
        let gp = Grounder::ground(&mut s, &p).unwrap();
        let a = atom_id(&s, &gp, "p(a)");
        assert_eq!(gp.display_atom(&s, a), "p(a)");
    }

    #[test]
    #[should_panic(expected = "atom nope not found")]
    fn panics_on_unknown_atom() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "p(a).").unwrap();
        let gp = Grounder::ground(&mut s, &p).unwrap();
        let _ = atom_id(&s, &gp, "nope");
    }
}
