//! Precompiled join plans for the semi-naive grounding loop.
//!
//! ## Why plans
//!
//! The grounder's inner loop joins each rule's positive body against the
//! fact store once per delta position per round. Everything that loop
//! needs but that does not change between rounds is computed **once**
//! here, when [`build_templates`] / [`build_plans`] run:
//!
//! * **Literal order (selectivity).** For each `rule × delta-position`
//!   pair, the delta literal is pinned first — the delta is the smallest
//!   relation by construction — and the remaining positive literals are
//!   appended greedily, preferring (1) the literal with the most
//!   argument positions already bound by earlier literals, then (2) the
//!   smaller predicate by observed fact-store cardinality, then (3) the
//!   original body position for determinism.
//! * **Bound signatures / index selection.** While ordering, the planner
//!   records for every literal which argument positions are guaranteed
//!   ground when the join reaches its slot: positions holding a term
//!   that is already ground, or a variable bound by an earlier literal
//!   (matching against ground facts binds every variable of a pattern).
//!   Each non-empty signature is registered as a composite index in the
//!   [`FactStore`](crate::factstore::FactStore), so at run time the
//!   literal is a hash probe for the bound-value tuple followed by a
//!   binary-searched role sub-range of the (sorted) posting list — see
//!   the fact-store docs for the delta sub-range invariant.
//! * **Dense binding slots.** Each rule's variables are numbered into
//!   consecutive slots ([`RuleTemplate::n_slots`]), and every literal
//!   argument is compiled to an [`ArgSpec`] — a slot, a ground term, or
//!   (rarely) a non-ground compound. Joining then reads and writes a
//!   flat `TermId` array instead of a hash-map substitution, and
//!   emission copies slot values straight into the interner.
//! * **Residual variables.** Variables of the clause that occur in no
//!   positive body literal are never bound by the join and must be
//!   enumerated over the Herbrand universe at completion. The slot set
//!   is static, so it is cached per rule instead of being recomputed
//!   from `clause.vars()` on every successful body match.
//!
//! Reordering literals cannot change the set of instances a join
//! enumerates (a join is a set intersection), and the semi-naive
//! `Full`/`Delta`/`Old` role of a literal is decided by its **original**
//! body position relative to the delta position, which [`PlanLiteral`]
//! carries along — so planned grounding emits exactly the clauses the
//! unplanned path did.
//!
//! The planner also builds the **relevance index**: `delta predicate →
//! plans whose delta literal has that predicate`. A round then re-joins
//! only plans whose delta actually grew, instead of sweeping every rule
//! × delta position.

use crate::factstore::FactStore;
use gsls_lang::{Atom, FxHashMap, Program, Symbol, Term, TermId, TermStore, Var};

/// Sentinel for "no composite index: scan the role's row range".
pub(crate) const NO_INDEX: u32 = u32::MAX;

/// Sentinel for an unbound binding slot.
pub(crate) const UNBOUND: TermId = TermId(u32::MAX);

/// How one literal argument is produced or matched at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ArgSpec {
    /// A variable: its value lives in the rule's binding slot.
    Slot(u32),
    /// A term that is ground at plan time.
    Ground(TermId),
    /// A non-ground compound (e.g. `s(X)`): matched/resolved
    /// structurally through [`RuleTemplate::var_slots`] — the cold path,
    /// only reachable in programs with function symbols.
    Compound(TermId),
}

/// A literal compiled to argument specs.
#[derive(Debug)]
pub(crate) struct AtomTemplate {
    pub pred: Symbol,
    pub args: Box<[ArgSpec]>,
}

impl AtomTemplate {
    fn compile(store: &TermStore, atom: &Atom, var_slots: &FxHashMap<Var, u32>) -> Self {
        let args = atom
            .args
            .iter()
            .map(|&t| {
                if store.is_ground(t) {
                    ArgSpec::Ground(t)
                } else {
                    match store.term(t) {
                        Term::Var(v) => ArgSpec::Slot(var_slots[v]),
                        Term::App(..) => ArgSpec::Compound(t),
                    }
                }
            })
            .collect();
        AtomTemplate {
            pred: atom.pred,
            args,
        }
    }
}

/// The per-rule compilation shared by all of the rule's join plans —
/// binding-slot layout and the emission templates.
#[derive(Debug)]
pub(crate) struct RuleTemplate {
    /// Number of binding slots (distinct clause variables).
    pub n_slots: u32,
    /// Variable → slot, for the compound cold paths.
    pub var_slots: FxHashMap<Var, u32>,
    /// Head emission template.
    pub head: AtomTemplate,
    /// Number of positive body literals (their interned ids come from
    /// the matched fact rows, so they need no emission template).
    pub n_pos: u32,
    /// Negative body literals in clause order.
    pub neg: Box<[AtomTemplate]>,
    /// Slots bound by no positive literal, in clause first-occurrence
    /// order; enumerated over the universe at completion. For rules
    /// without positive body this is every slot.
    pub residual: Box<[u32]>,
    /// Whether emitted instances must consult the clause-dedup table.
    ///
    /// Semi-naive exactness means one rule never enumerates the same
    /// instance twice (each tuple of fact rows is visited at exactly one
    /// `round × delta-position`, distinct tuples give distinct positive
    /// id lists, and distinct residual bindings change the head or a
    /// negative atom). Fact-shaped instances dedup by head atom. So the
    /// table is only needed when *another* rule could emit a colliding
    /// clause — i.e. when two rules share the signature `(head
    /// predicate, positive body predicates in order, negative body
    /// predicates in order)`.
    pub table_dedup: bool,
}

/// One positive body literal at its slot in a join plan.
#[derive(Debug)]
pub(crate) struct PlanLiteral {
    /// Position of this literal in the rule's positive body (decides its
    /// semi-naive role relative to the plan's delta position, and where
    /// its matched row id lands in the emission buffer).
    pub orig: u32,
    /// Fact-store slot of the literal's predicate.
    pub pred_slot: u32,
    /// Composite-index handle for [`PlanLiteral::bound`], or
    /// [`NO_INDEX`] when no argument is bound at this slot.
    pub handle: u32,
    /// The pattern's arguments as compiled specs.
    pub specs: Box<[ArgSpec]>,
    /// Sorted argument positions guaranteed ground at this slot; the
    /// probe key is their current values in this order.
    pub bound: Box<[u32]>,
}

/// A compiled join for one `rule × delta-position`.
#[derive(Debug)]
pub(crate) struct JoinPlan {
    /// Index of the rule in the source program.
    pub rule: u32,
    /// Positive-body position pinned to the delta.
    pub delta_pos: u32,
    /// Literals in execution order.
    pub literals: Box<[PlanLiteral]>,
}

/// All plans of a program plus the relevance index.
#[derive(Debug, Default)]
pub(crate) struct Planner {
    pub plans: Vec<JoinPlan>,
    /// Fact-store pred slot → indices of plans whose delta literal has
    /// that predicate. Slots created after planning (predicates that
    /// occur in no positive body) have no entry; callers must bounds-
    /// check.
    pub dependents: Vec<Vec<u32>>,
}

impl Planner {
    /// Plans triggered when the predicate in `slot` grows.
    pub fn dependents_of(&self, slot: u32) -> &[u32] {
        self.dependents
            .get(slot as usize)
            .map_or(&[][..], Vec::as_slice)
    }
}

/// The clause variables not occurring in any positive body literal, in
/// clause first-occurrence order. After a successful join every
/// positive-body variable is bound (patterns match against ground
/// facts), so exactly these remain free.
pub(crate) fn residual_vars(store: &TermStore, clause: &gsls_lang::Clause) -> Vec<Var> {
    let mut pos_vars = Vec::new();
    for lit in clause.pos_body() {
        lit.collect_vars(store, &mut pos_vars);
    }
    clause
        .vars(store)
        .into_iter()
        .filter(|v| !pos_vars.contains(v))
        .collect()
}

/// Compiles every rule of `program` to a [`RuleTemplate`] (slot layout,
/// head/negative emission templates, residual slots). Independent of
/// fact cardinalities, so the seed round can already emit through
/// templates before any plan exists.
///
/// Ground facts — the overwhelming majority of clauses in extensional
/// workloads — get `None`: they have no variables, no body and no
/// plans, so the grounder interns their head directly instead of paying
/// a template per fact.
pub(crate) fn build_templates(store: &TermStore, program: &Program) -> Vec<Option<RuleTemplate>> {
    // Count rule signatures to decide which rules can skip the clause-
    // dedup table (see `RuleTemplate::table_dedup`). Ground facts are
    // excluded: fact-shaped instances always dedup by head atom.
    type Sig = (gsls_lang::Pred, Vec<gsls_lang::Pred>, Vec<gsls_lang::Pred>);
    let mut sig_counts: FxHashMap<Sig, u32> = FxHashMap::default();
    let sig_of = |clause: &gsls_lang::Clause| -> Sig {
        (
            clause.head.pred_id(),
            clause.pos_body().map(|l| l.atom.pred_id()).collect(),
            clause.neg_body().map(|l| l.atom.pred_id()).collect(),
        )
    };
    for clause in program.clauses() {
        if clause.body.is_empty() && clause.head.is_ground(store) {
            continue;
        }
        *sig_counts.entry(sig_of(clause)).or_insert(0) += 1;
    }
    program
        .clauses()
        .iter()
        .map(|clause| template_of(store, clause, |c| sig_counts[&sig_of(c)] > 1))
        .collect()
}

/// Compiles one clause to its template (or `None` for a ground fact).
/// `table_dedup` decides the dedup-table flag for rules — the batch
/// grounder passes the signature-collision test, the session grounder
/// forces the table at emission time and passes a constant.
pub(crate) fn template_of(
    store: &TermStore,
    clause: &gsls_lang::Clause,
    table_dedup: impl Fn(&gsls_lang::Clause) -> bool,
) -> Option<RuleTemplate> {
    if clause.body.is_empty() && clause.head.is_ground(store) {
        return None;
    }
    let vars = clause.vars(store);
    let var_slots: FxHashMap<Var, u32> = vars
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as u32))
        .collect();
    let residual: Vec<u32> = residual_vars(store, clause)
        .into_iter()
        .map(|v| var_slots[&v])
        .collect();
    Some(RuleTemplate {
        n_slots: vars.len() as u32,
        head: AtomTemplate::compile(store, &clause.head, &var_slots),
        n_pos: clause.pos_body().count() as u32,
        neg: clause
            .neg_body()
            .map(|l| AtomTemplate::compile(store, &l.atom, &var_slots))
            .collect(),
        residual: residual.into(),
        var_slots,
        table_dedup: table_dedup(clause),
    })
}

/// Argument positions of `pattern` that are ground given `bound_vars`:
/// the argument term is ground, or is a variable already bound. (A
/// non-ground compound argument like `s(X)` is never counted — it is
/// matched structurally instead of probed.)
fn bound_positions(store: &TermStore, pattern: &Atom, bound_vars: &[Var]) -> Vec<u32> {
    let mut out = Vec::new();
    for (p, &arg) in pattern.args.iter().enumerate() {
        let is_bound = store.is_ground(arg)
            || matches!(store.term(arg), Term::Var(v) if bound_vars.contains(v));
        if is_bound {
            out.push(p as u32);
        }
    }
    out
}

/// Builds every `rule × delta-position` join plan for `program`,
/// registering the composite indexes each plan probes (with backfill
/// over facts already in `facts`) and the relevance index. Observed
/// cardinalities — the fact-store row counts at call time, i.e. after
/// the seed round — feed the selectivity order.
pub(crate) fn build_plans(
    store: &TermStore,
    program: &Program,
    templates: &[Option<RuleTemplate>],
    facts: &mut FactStore,
) -> Planner {
    let mut planner = Planner::default();
    append_plans(store, program, templates, facts, 0, &mut planner);
    planner
}

/// Appends the plans of `program`'s clauses from `first_rule` on into
/// an existing `planner`, registering their composite indexes
/// (backfilled over facts already stored) and extending the relevance
/// index — the session path for rules added to a live program.
pub(crate) fn append_plans(
    store: &TermStore,
    program: &Program,
    templates: &[Option<RuleTemplate>],
    facts: &mut FactStore,
    first_rule: usize,
    planner: &mut Planner,
) {
    let mut triggers: Vec<(u32, u32)> = Vec::new();
    for (ci, clause) in program.clauses().iter().enumerate().skip(first_rule) {
        let pats: Vec<&Atom> = clause.pos_body().map(|l| &l.atom).collect();
        if pats.is_empty() {
            continue;
        }
        let var_slots = &templates[ci]
            .as_ref()
            .expect("rules with a positive body always have templates")
            .var_slots;
        let cards: Vec<u32> = pats
            .iter()
            .map(|a| facts.slot_of(a.pred_id()).map_or(0, |s| facts.rows(s)))
            .collect();
        for delta_pos in 0..pats.len() {
            let mut literals = Vec::with_capacity(pats.len());
            let mut bound_vars: Vec<Var> = Vec::new();
            let mut remaining: Vec<usize> = (0..pats.len()).collect();
            let mut next = delta_pos;
            loop {
                remaining.retain(|&i| i != next);
                let pat = pats[next];
                let bound = bound_positions(store, pat, &bound_vars);
                let handle = if bound.is_empty() {
                    NO_INDEX
                } else {
                    facts.register_index(pat.pred_id(), &bound)
                };
                literals.push(PlanLiteral {
                    orig: next as u32,
                    pred_slot: facts.pred_slot(pat.pred_id()),
                    handle,
                    specs: AtomTemplate::compile(store, pat, var_slots).args,
                    bound: bound.into(),
                });
                pat.collect_vars(store, &mut bound_vars);
                let Some(&best) = remaining.iter().min_by_key(|&&i| {
                    let bc = bound_positions(store, pats[i], &bound_vars).len();
                    // Most bound positions first, then smallest relation,
                    // then original position.
                    (usize::MAX - bc, cards[i], i)
                }) else {
                    break;
                };
                next = best;
            }
            let plan_idx = planner.plans.len() as u32;
            triggers.push((literals[0].pred_slot, plan_idx));
            planner.plans.push(JoinPlan {
                rule: ci as u32,
                delta_pos: delta_pos as u32,
                literals: literals.into_boxed_slice(),
            });
        }
    }
    if planner.dependents.len() < facts.pred_count() {
        planner.dependents.resize(facts.pred_count(), Vec::new());
    }
    for (slot, plan) in triggers {
        planner.dependents[slot as usize].push(plan);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grounder::GroundProgram;
    use gsls_lang::parse_program;

    /// Builds a fact store whose cardinalities are the given per-source-
    /// fact counts, by interning each program fact once.
    fn facts_of(program: &Program) -> (GroundProgram, FactStore) {
        let mut gp = GroundProgram::new();
        let ids: Vec<_> = program
            .clauses()
            .iter()
            .filter(|c| c.is_fact())
            .map(|c| gp.intern_atom(c.head.clone()))
            .collect();
        let mut fs = FactStore::default();
        let mut grown = Vec::new();
        fs.advance(&gp, &ids, &mut grown);
        (gp, fs)
    }

    fn plans_for(src: &str) -> (TermStore, Program, Planner) {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, src).unwrap();
        let (_, mut fs) = facts_of(&p);
        let templates = build_templates(&s, &p);
        let planner = build_plans(&s, &p, &templates, &mut fs);
        (s, p, planner)
    }

    #[test]
    fn transitive_closure_plans_index_the_join_variable() {
        let (_, _, planner) =
            plans_for("e(a, b). e(b, c). t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).");
        // 1 plan for the base rule + 2 for the recursive rule.
        assert_eq!(planner.plans.len(), 3);
        let rec: Vec<&JoinPlan> = planner.plans.iter().filter(|p| p.rule == 3).collect();
        assert_eq!(rec.len(), 2);
        for plan in rec {
            // Delta literal first, no bound args there.
            assert_eq!(plan.literals[0].orig, plan.delta_pos);
            assert!(plan.literals[0].bound.is_empty());
            assert_eq!(plan.literals[0].handle, NO_INDEX);
            // Second literal probes on the shared variable Y: position 0
            // of t (when e is the delta) or position 1 of e (when t is).
            let second = &plan.literals[1];
            let want = if plan.delta_pos == 0 { [0u32] } else { [1u32] };
            assert_eq!(&second.bound[..], &want[..]);
            assert_ne!(second.handle, NO_INDEX);
        }
    }

    #[test]
    fn bound_count_outranks_cardinality() {
        // After a(X) is matched, b(X, Y) has a bound argument while the
        // (much smaller) relation c has none — b must still come first.
        let (_, _, planner) =
            plans_for("a(u). a(v). b(u, w). b(v, w). c(z). p(X) :- a(X), b(X, Y), c(Z).");
        let plan = planner
            .plans
            .iter()
            .find(|pl| pl.delta_pos == 0)
            .expect("plan for delta at a(X)");
        let order: Vec<u32> = plan.literals.iter().map(|l| l.orig).collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(&plan.literals[1].bound[..], &[0]);
        assert!(plan.literals[2].bound.is_empty(), "Z unbound when c runs");
    }

    #[test]
    fn ground_arguments_join_the_signature() {
        let (_, _, planner) = plans_for("f(a). e(a, b). q(X) :- f(X), e(a, X).");
        let plan = planner
            .plans
            .iter()
            .find(|pl| pl.delta_pos == 0)
            .expect("plan for delta at f(X)");
        // e(a, X): position 0 is the constant a, position 1 the now-bound
        // X — both in the signature.
        assert_eq!(&plan.literals[1].bound[..], &[0, 1]);
    }

    #[test]
    fn templates_slot_head_and_residual_vars() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "e(a). p(X, W) :- e(X), ~q(Z).").unwrap();
        let templates = build_templates(&s, &p);
        let t = templates[1].as_ref().expect("rule template");
        // Clause vars in first-occurrence order: X, W, Z.
        assert_eq!(t.n_slots, 3);
        assert_eq!(t.head.args[..], [ArgSpec::Slot(0), ArgSpec::Slot(1)]);
        assert_eq!(t.neg.len(), 1);
        assert_eq!(t.neg[0].args[..], [ArgSpec::Slot(2)]);
        // W and Z are bound by no positive literal.
        assert_eq!(&t.residual[..], &[1, 2]);
        assert_eq!(t.n_pos, 1);
    }

    #[test]
    fn templates_classify_ground_and_compound_args() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "e(s(X), 0) :- e(X, 0).").unwrap();
        let templates = build_templates(&s, &p);
        let t = templates[0].as_ref().expect("rule template");
        assert!(matches!(t.head.args[0], ArgSpec::Compound(_)));
        assert!(matches!(t.head.args[1], ArgSpec::Ground(_)));
    }

    #[test]
    fn relevance_index_routes_plans_by_delta_pred() {
        let (_, _, planner) = plans_for("e(a, b). r(a). r(Y) :- r(X), e(X, Y).");
        assert_eq!(planner.plans.len(), 2);
        for (i, plan) in planner.plans.iter().enumerate() {
            let slot = plan.literals[0].pred_slot;
            assert!(
                planner.dependents_of(slot).contains(&(i as u32)),
                "plan {i} reachable from its delta predicate"
            );
        }
        // A slot the planner never saw yields no dependents (and no
        // panic) even if it is created later.
        assert!(planner.dependents_of(999).is_empty());
    }
}
