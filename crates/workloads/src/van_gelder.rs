//! Van Gelder's ordinal-level program (Example 3.1 of the paper).
//!
//! Integers are numerals `sⁱ(0)`; the `e` edges order them
//! `s(0) < s²(0) < … < 0`, i.e. the constant `0` plays the ordinal ω.
//! `w(j)` holds iff there is no infinite descending sequence from `j`,
//! and `u` is the complement. The program is *not* locally stratified,
//! yet has a total well-founded model in which `w(0)` is true; the goal
//! `← w(sⁿ(0))` has level `2n` and `← w(0)` has level `ω + 2`.

use gsls_lang::{parse_program, Program, TermStore};

/// The program of Example 3.1 (reconstructed from the paper's garbled
/// listing so that its stated properties hold exactly: the transitive
/// closure of `e` orders `s(0) < s²(0) < … < 0`, `← w(sⁿ(0))` has level
/// `2n`, and `← w(0)` has level `ω + 2`):
///
/// * `e(s(X), s(s(X)))` — every positive numeral is below its successor;
/// * `e(s(0), 0)` and `e(s(X), 0) ← e(X, 0)` — every positive numeral is
///   below `0` (the ordinal ω).
pub const VAN_GELDER_SRC: &str = "
    e(s(X), s(s(X))).
    e(s(0), 0).
    e(s(X), 0) :- e(X, 0).
    w(X) :- ~u(X).
    u(X) :- e(Y, X), ~w(Y).
";

/// Parses the Van Gelder program into `store`.
pub fn van_gelder_program(store: &mut TermStore) -> Program {
    parse_program(store, VAN_GELDER_SRC).expect("static program parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsls_ground::{DepGraph, Grounder, GrounderOpts, HerbrandOpts};
    use gsls_wfs::{well_founded_model, Truth};

    #[test]
    fn program_shape() {
        let mut s = TermStore::new();
        let p = van_gelder_program(&mut s);
        assert_eq!(p.len(), 5);
        assert!(!p.is_function_free(&s));
        // Not stratified: w and u recurse through negation.
        assert!(!DepGraph::from_program(&p).is_stratified());
    }

    #[test]
    fn bounded_model_w_truths() {
        // Depth-bounded grounding: w(sⁿ(0)) is true for even n ≥ 2 …
        // actually w(j) is true iff no infinite descending sequence
        // starts at j; over the bounded universe every sⁿ(0) chain is
        // finite, so every w(sⁿ(0)) with n ≥ 1 is true; u(sⁿ(0)) false.
        let mut s = TermStore::new();
        let p = van_gelder_program(&mut s);
        let gp = Grounder::ground_with(
            &mut s,
            &p,
            GrounderOpts {
                universe: HerbrandOpts {
                    max_depth: 8,
                    max_terms: 10_000,
                },
                ..GrounderOpts::default()
            },
        )
        .unwrap();
        let m = well_founded_model(&gp);
        for n in 1..=6 {
            let name = format!("w({})", numeral(n));
            let a = gp
                .atom_ids()
                .find(|&a| gp.display_atom(&s, a) == name)
                .unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(m.truth(a), Truth::True, "{name}");
        }
    }

    fn numeral(n: usize) -> String {
        let mut t = "0".to_owned();
        for _ in 0..n {
            t = format!("s({t})");
        }
        t
    }

    #[test]
    fn w0_true_in_bounded_model() {
        // w(0) is true in the full model; in the depth-bounded model the
        // u(0) rule instances cover only the bounded universe, which
        // still yields w(0) true (every descending sequence from 0 enters
        // the finite sⁿ(0) chain).
        let mut s = TermStore::new();
        let p = van_gelder_program(&mut s);
        let gp = Grounder::ground_with(
            &mut s,
            &p,
            GrounderOpts {
                universe: HerbrandOpts {
                    max_depth: 8,
                    max_terms: 10_000,
                },
                ..GrounderOpts::default()
            },
        )
        .unwrap();
        let m = well_founded_model(&gp);
        let a = gp
            .atom_ids()
            .find(|&a| gp.display_atom(&s, a) == "w(0)")
            .expect("w(0) interned");
        assert_eq!(m.truth(a), Truth::True);
    }
}
