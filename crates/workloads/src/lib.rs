//! # gsls-workloads — program generators for experiments and benches
//!
//! * [`games`] — the win/move game (`win(X) ← move(X,Y), ¬win(Y)`), the
//!   canonical non-stratified workload: chains, cycles, complete binary
//!   trees, random graphs, and the 10^5-atom-class grid boards;
//! * [`van_gelder`] — Example 3.1's ordinal-level program family;
//! * [`stratified`] — stratified deductive-database workloads (negation
//!   over transitive closure);
//! * [`random`] — random propositional normal programs for differential
//!   testing of engines.

pub mod games;
mod prng;
pub mod random;
pub mod stratified;
pub mod van_gelder;

pub use games::{win_chain, win_cycle, win_grid, win_grid_stress, win_random, win_tree};
pub use random::{
    random_program, random_relational_program, RandomProgramOpts, RandomRelationalOpts,
};
pub use stratified::{negated_reachability, odd_even_chain};
pub use van_gelder::{van_gelder_program, VAN_GELDER_SRC};
