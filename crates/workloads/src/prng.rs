//! A small SplitMix64 generator: the workspace builds without crates.io
//! access, so `rand` is replaced by this deterministic in-tree stream.

pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; modulo bias is irrelevant for workload shapes.
    pub(crate) fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// True with probability `p`.
    pub(crate) fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}
