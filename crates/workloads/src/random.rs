//! Random propositional normal programs for differential testing.
//!
//! Engines are compared atom-by-atom on thousands of random programs
//! (experiment E7): the memoized top-down engine must agree with the
//! bottom-up alternating fixpoint everywhere, on every seed.

use crate::prng::SplitMix64;
use gsls_lang::{Atom, Clause, Literal, Program, Symbol, TermStore};

/// Parameters for [`random_program`].
#[derive(Debug, Clone, Copy)]
pub struct RandomProgramOpts {
    /// Number of propositional atoms (`p0 … p(n−1)`).
    pub atoms: usize,
    /// Number of clauses.
    pub clauses: usize,
    /// Maximum body length (uniform in `0..=max_body`).
    pub max_body: usize,
    /// Probability that a body literal is negative.
    pub neg_prob: f64,
}

impl Default for RandomProgramOpts {
    fn default() -> Self {
        RandomProgramOpts {
            atoms: 12,
            clauses: 20,
            max_body: 3,
            neg_prob: 0.5,
        }
    }
}

/// Generates a random propositional normal program (deterministic per
/// seed).
pub fn random_program(store: &mut TermStore, opts: RandomProgramOpts, seed: u64) -> Program {
    let mut rng = SplitMix64::new(seed);
    let syms: Vec<Symbol> = (0..opts.atoms)
        .map(|i| store.intern_symbol(&format!("p{i}")))
        .collect();
    let mut prog = Program::new();
    for _ in 0..opts.clauses {
        let head = Atom::new(syms[rng.below(syms.len())], Vec::new());
        let blen = rng.below(opts.max_body + 1);
        let mut body = Vec::with_capacity(blen);
        for _ in 0..blen {
            let atom = Atom::new(syms[rng.below(syms.len())], Vec::new());
            if rng.chance(opts.neg_prob) {
                body.push(Literal::neg(atom));
            } else {
                body.push(Literal::pos(atom));
            }
        }
        prog.push(Clause::new(head, body));
    }
    prog
}

/// Parameters for [`random_relational_program`].
#[derive(Debug, Clone, Copy)]
pub struct RandomRelationalOpts {
    /// Universe size (`c0 … c(n−1)`).
    pub constants: usize,
    /// Number of relations (`r0 … r(n−1)`), each with a random arity in
    /// `1..=max_arity`.
    pub preds: usize,
    /// Maximum relation arity.
    pub max_arity: usize,
    /// Number of ground facts.
    pub facts: usize,
    /// Number of rules.
    pub rules: usize,
    /// Body length range (inclusive); `min_body ≥ 1` keeps every rule
    /// joinable.
    pub min_body: usize,
    /// See [`RandomRelationalOpts::min_body`].
    pub max_body: usize,
    /// Variable pool size per rule — small pools force shared join
    /// variables across body literals.
    pub vars: usize,
    /// Probability that a body literal is negative.
    pub neg_prob: f64,
}

impl Default for RandomRelationalOpts {
    fn default() -> Self {
        RandomRelationalOpts {
            constants: 4,
            preds: 3,
            max_arity: 2,
            facts: 8,
            rules: 5,
            min_body: 1,
            max_body: 3,
            vars: 3,
            neg_prob: 0.3,
        }
    }
}

/// Generates a random **function-free relational** normal program
/// (deterministic per seed): ground facts over a small constant
/// universe plus rules whose body literals share variables from a small
/// per-rule pool. The grounder's join planner is exercised by exactly
/// this shape — wide positive bodies with shared variables — so these
/// programs drive the planned-vs-naive and relevant-vs-full
/// differential properties.
///
/// Head arguments are drawn from the rule's variable pool with a bias
/// toward variables that appear in the positive body (keeping most
/// rules range-restricted), but unbound head/negative variables do
/// occur and exercise the residual-enumeration path.
pub fn random_relational_program(
    store: &mut TermStore,
    opts: RandomRelationalOpts,
    seed: u64,
) -> Program {
    let mut rng = SplitMix64::new(seed);
    let consts: Vec<_> = (0..opts.constants.max(1))
        .map(|i| store.constant(&format!("c{i}")))
        .collect();
    let arities: Vec<usize> = (0..opts.preds.max(1))
        .map(|_| 1 + rng.below(opts.max_arity.max(1)))
        .collect();
    let syms: Vec<Symbol> = (0..opts.preds.max(1))
        .map(|i| store.intern_symbol(&format!("r{i}")))
        .collect();
    let mut prog = Program::new();
    for _ in 0..opts.facts {
        let p = rng.below(syms.len());
        let args: Vec<_> = (0..arities[p])
            .map(|_| consts[rng.below(consts.len())])
            .collect();
        prog.push(Clause::fact(Atom::new(syms[p], args)));
    }
    for _ in 0..opts.rules {
        let vars: Vec<_> = (0..opts.vars.max(1))
            .map(|i| store.fresh_var(Some(&format!("V{i}"))))
            .collect();
        let blen = opts.min_body + rng.below(opts.max_body.saturating_sub(opts.min_body) + 1);
        let mut body = Vec::with_capacity(blen);
        let mut pos_var_mask = vec![false; vars.len()];
        for _ in 0..blen {
            let p = rng.below(syms.len());
            let neg = rng.chance(opts.neg_prob);
            let args: Vec<_> = (0..arities[p])
                .map(|_| {
                    // Mostly variables (forcing joins), sometimes constants.
                    if rng.chance(0.8) {
                        let v = rng.below(vars.len());
                        if !neg {
                            pos_var_mask[v] = true;
                        }
                        vars[v]
                    } else {
                        consts[rng.below(consts.len())]
                    }
                })
                .collect();
            let atom = Atom::new(syms[p], args);
            body.push(if neg {
                Literal::neg(atom)
            } else {
                Literal::pos(atom)
            });
        }
        let hp = rng.below(syms.len());
        let bound: Vec<_> = (0..vars.len()).filter(|&v| pos_var_mask[v]).collect();
        let head_args: Vec<_> = (0..arities[hp])
            .map(|_| {
                if !bound.is_empty() && rng.chance(0.85) {
                    vars[bound[rng.below(bound.len())]]
                } else if rng.chance(0.5) {
                    consts[rng.below(consts.len())]
                } else {
                    vars[rng.below(vars.len())]
                }
            })
            .collect();
        prog.push(Clause::new(Atom::new(syms[hp], head_args), body));
    }
    prog
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut s1 = TermStore::new();
        let p1 = random_program(&mut s1, RandomProgramOpts::default(), 7);
        let mut s2 = TermStore::new();
        let p2 = random_program(&mut s2, RandomProgramOpts::default(), 7);
        assert_eq!(p1.display(&s1), p2.display(&s2));
    }

    #[test]
    fn respects_shape_parameters() {
        let mut s = TermStore::new();
        let opts = RandomProgramOpts {
            atoms: 5,
            clauses: 30,
            max_body: 2,
            neg_prob: 1.0,
        };
        let p = random_program(&mut s, opts, 3);
        assert_eq!(p.len(), 30);
        for c in p.clauses() {
            assert!(c.body.len() <= 2);
            assert!(c.body.iter().all(Literal::is_neg));
        }
    }

    #[test]
    fn zero_negation_gives_definite() {
        let mut s = TermStore::new();
        let opts = RandomProgramOpts {
            neg_prob: 0.0,
            ..RandomProgramOpts::default()
        };
        let p = random_program(&mut s, opts, 9);
        assert!(p.is_definite());
    }

    #[test]
    fn relational_deterministic_and_function_free() {
        let mut s1 = TermStore::new();
        let p1 = random_relational_program(&mut s1, RandomRelationalOpts::default(), 11);
        let mut s2 = TermStore::new();
        let p2 = random_relational_program(&mut s2, RandomRelationalOpts::default(), 11);
        assert_eq!(p1.display(&s1), p2.display(&s2));
        assert!(p1.is_function_free(&s1));
        assert_eq!(p1.len(), 8 + 5);
    }

    #[test]
    fn relational_wide_rules_share_variables() {
        let mut s = TermStore::new();
        let opts = RandomRelationalOpts {
            rules: 20,
            min_body: 4,
            max_body: 6,
            vars: 4,
            ..RandomRelationalOpts::default()
        };
        let p = random_relational_program(&mut s, opts, 3);
        let wide = p
            .clauses()
            .iter()
            .filter(|c| !c.is_fact())
            .filter(|c| c.body.len() >= 4)
            .count();
        assert_eq!(wide, 20, "every rule respects min_body");
        // With 4 variables and ≥4 literals of arity ≥1, rules share
        // variables across literals somewhere in the program.
        let shares = p.clauses().iter().filter(|c| !c.is_fact()).any(|c| {
            let mut seen = Vec::new();
            let mut shared = false;
            for l in c.body.iter().filter(|l| l.is_pos()) {
                for v in l.atom.vars(&s) {
                    if seen.contains(&v) {
                        shared = true;
                    }
                    seen.push(v);
                }
            }
            shared
        });
        assert!(shares, "expected at least one shared join variable");
    }
}
