//! Random propositional normal programs for differential testing.
//!
//! Engines are compared atom-by-atom on thousands of random programs
//! (experiment E7): the memoized top-down engine must agree with the
//! bottom-up alternating fixpoint everywhere, on every seed.

use crate::prng::SplitMix64;
use gsls_lang::{Atom, Clause, Literal, Program, Symbol, TermStore};

/// Parameters for [`random_program`].
#[derive(Debug, Clone, Copy)]
pub struct RandomProgramOpts {
    /// Number of propositional atoms (`p0 … p(n−1)`).
    pub atoms: usize,
    /// Number of clauses.
    pub clauses: usize,
    /// Maximum body length (uniform in `0..=max_body`).
    pub max_body: usize,
    /// Probability that a body literal is negative.
    pub neg_prob: f64,
}

impl Default for RandomProgramOpts {
    fn default() -> Self {
        RandomProgramOpts {
            atoms: 12,
            clauses: 20,
            max_body: 3,
            neg_prob: 0.5,
        }
    }
}

/// Generates a random propositional normal program (deterministic per
/// seed).
pub fn random_program(store: &mut TermStore, opts: RandomProgramOpts, seed: u64) -> Program {
    let mut rng = SplitMix64::new(seed);
    let syms: Vec<Symbol> = (0..opts.atoms)
        .map(|i| store.intern_symbol(&format!("p{i}")))
        .collect();
    let mut prog = Program::new();
    for _ in 0..opts.clauses {
        let head = Atom::new(syms[rng.below(syms.len())], Vec::new());
        let blen = rng.below(opts.max_body + 1);
        let mut body = Vec::with_capacity(blen);
        for _ in 0..blen {
            let atom = Atom::new(syms[rng.below(syms.len())], Vec::new());
            if rng.chance(opts.neg_prob) {
                body.push(Literal::neg(atom));
            } else {
                body.push(Literal::pos(atom));
            }
        }
        prog.push(Clause::new(head, body));
    }
    prog
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut s1 = TermStore::new();
        let p1 = random_program(&mut s1, RandomProgramOpts::default(), 7);
        let mut s2 = TermStore::new();
        let p2 = random_program(&mut s2, RandomProgramOpts::default(), 7);
        assert_eq!(p1.display(&s1), p2.display(&s2));
    }

    #[test]
    fn respects_shape_parameters() {
        let mut s = TermStore::new();
        let opts = RandomProgramOpts {
            atoms: 5,
            clauses: 30,
            max_body: 2,
            neg_prob: 1.0,
        };
        let p = random_program(&mut s, opts, 3);
        assert_eq!(p.len(), 30);
        for c in p.clauses() {
            assert!(c.body.len() <= 2);
            assert!(c.body.iter().all(Literal::is_neg));
        }
    }

    #[test]
    fn zero_negation_gives_definite() {
        let mut s = TermStore::new();
        let opts = RandomProgramOpts {
            neg_prob: 0.0,
            ..RandomProgramOpts::default()
        };
        let p = random_program(&mut s, opts, 9);
        assert!(p.is_definite());
    }
}
