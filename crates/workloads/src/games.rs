//! Win/move game generators.
//!
//! `win(X) ← move(X, Y), ¬win(Y)` over various board graphs. The game is
//! the canonical workload for the well-founded semantics: positions with
//! a move to a lost position are won, positions whose moves all reach won
//! positions are lost, and positions caught in drawing cycles are
//! *undefined* — exactly the three truth values.

use crate::prng::SplitMix64;
use gsls_lang::{Atom, Clause, Literal, Program, TermStore};

/// Builds the game program over explicit move edges `(from, to)`,
/// numbering positions `n0, n1, …`.
pub fn win_game(store: &mut TermStore, edges: &[(usize, usize)]) -> Program {
    let mv = store.intern_symbol("move");
    let win = store.intern_symbol("win");
    let mut prog = Program::new();
    for &(a, b) in edges {
        let ta = store.constant(&format!("n{a}"));
        let tb = store.constant(&format!("n{b}"));
        prog.push(Clause::fact(Atom::new(mv, vec![ta, tb])));
    }
    let x = store.fresh_var(Some("X"));
    let y = store.fresh_var(Some("Y"));
    prog.push(Clause::new(
        Atom::new(win, vec![x]),
        vec![
            Literal::pos(Atom::new(mv, vec![x, y])),
            Literal::neg(Atom::new(win, vec![y])),
        ],
    ));
    prog
}

/// A chain `n0 → n1 → … → n(n−1)`: win/lose alternates from the dead end,
/// every position defined. `n` is the number of positions.
pub fn win_chain(store: &mut TermStore, n: usize) -> Program {
    let edges: Vec<(usize, usize)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    win_game(store, &edges)
}

/// A cycle over `n` positions: every position is a draw (undefined) when
/// `n` is even; odd cycles are undefined too (no escape).
pub fn win_cycle(store: &mut TermStore, n: usize) -> Program {
    let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    win_game(store, &edges)
}

/// A complete binary tree of depth `depth` with edges toward the leaves;
/// positions: `2^(depth+1) − 1`.
pub fn win_tree(store: &mut TermStore, depth: u32) -> Program {
    let mut edges = Vec::new();
    let internal = (1usize << depth) - 1;
    for i in 0..internal {
        edges.push((i, 2 * i + 1));
        edges.push((i, 2 * i + 2));
    }
    win_game(store, &edges)
}

/// A `w × h` grid board — the ROADMAP's 10^5-atom-class win/move
/// workload (positions plus move facts ground to roughly `3·w·h`
/// atoms, so `w = h = 200` already exceeds 10^5).
///
/// Structure, chosen so all three truth values are guaranteed at every
/// scale and the alternating fixpoint needs many delta-sized rounds
/// (the shape the difference-driven restarts exist for):
///
/// * every position moves right and down — long alternation chains
///   radiating from the bottom-right corner, which is the unique
///   terminal (lost) position, so its row neighbour is won;
/// * every row `j ≡ 1 (mod 3)` except the last also moves left,
///   creating local cycles (the last row must stay cycle-free or the
///   corner gains an escape, no position is ever terminal, and the
///   whole board degenerates to undefined in two rounds);
/// * each cycle row exits on the right into a dedicated two-position
///   **draw pocket** (`a ↔ b` with no other moves), whose positions are
///   undefined in the well-founded model.
pub fn win_grid(store: &mut TermStore, w: usize, h: usize) -> Program {
    assert!(w >= 2 && h >= 2, "grid must be at least 2×2");
    let id = |i: usize, j: usize| j * w + i;
    let mut edges = Vec::new();
    let mut next_pocket = w * h;
    for j in 0..h {
        for i in 0..w {
            if i + 1 < w {
                edges.push((id(i, j), id(i + 1, j)));
            }
            if j + 1 < h {
                edges.push((id(i, j), id(i, j + 1)));
            }
            if j % 3 == 1 && j + 1 < h {
                if i > 0 {
                    edges.push((id(i, j), id(i - 1, j)));
                }
                if i + 1 == w {
                    let (a, b) = (next_pocket, next_pocket + 1);
                    next_pocket += 2;
                    edges.push((id(i, j), a));
                    edges.push((a, b));
                    edges.push((b, a));
                }
            }
        }
    }
    win_game(store, &edges)
}

/// The 10^6-atom-class stress profile from the ROADMAP: a 600×600 grid
/// board (~1.2·10^6 ground atoms, ~1.7·10^6 ground clauses). Gated
/// behind `--stress` in `perf_report` so the default bench stays fast.
pub fn win_grid_stress(store: &mut TermStore) -> Program {
    win_grid(store, 600, 600)
}

/// A random game graph: `n` positions, each with out-degree sampled from
/// `0..=max_degree` (degree 0 makes lost positions, cycles make draws).
pub fn win_random(store: &mut TermStore, n: usize, max_degree: usize, seed: u64) -> Program {
    let mut rng = SplitMix64::new(seed);
    let mut edges = Vec::new();
    for i in 0..n {
        let deg = rng.below(max_degree + 1);
        for _ in 0..deg {
            let j = rng.below(n);
            edges.push((i, j));
        }
    }
    win_game(store, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsls_ground::Grounder;
    use gsls_wfs::{well_founded_model, Truth};

    fn truth_of(store: &TermStore, prog: &Program, name: &str) -> Truth {
        let mut s2 = store.clone();
        let gp = Grounder::ground(&mut s2, prog).unwrap();
        let m = well_founded_model(&gp);
        let a = gp
            .atom_ids()
            .find(|&a| gp.display_atom(&s2, a) == name)
            .unwrap_or_else(|| panic!("{name} missing"));
        m.truth(a)
    }

    #[test]
    fn chain_alternates() {
        let mut s = TermStore::new();
        let p = win_chain(&mut s, 4); // n0→n1→n2→n3
        assert_eq!(truth_of(&s, &p, "win(n3)"), Truth::False);
        assert_eq!(truth_of(&s, &p, "win(n2)"), Truth::True);
        assert_eq!(truth_of(&s, &p, "win(n1)"), Truth::False);
        assert_eq!(truth_of(&s, &p, "win(n0)"), Truth::True);
    }

    #[test]
    fn cycle_all_draws() {
        let mut s = TermStore::new();
        let p = win_cycle(&mut s, 3);
        for i in 0..3 {
            assert_eq!(truth_of(&s, &p, &format!("win(n{i})")), Truth::Undefined);
        }
    }

    #[test]
    fn tree_root_wins() {
        // Leaves lose (no moves); internal nodes above leaves win; root
        // of depth 2: children win ⇒ root... all moves reach winning
        // positions ⇒ root loses; depth 1: root wins.
        let mut s = TermStore::new();
        let p = win_tree(&mut s, 1);
        assert_eq!(truth_of(&s, &p, "win(n0)"), Truth::True);
        let mut s2 = TermStore::new();
        let p2 = win_tree(&mut s2, 2);
        assert_eq!(truth_of(&s2, &p2, "win(n0)"), Truth::False);
    }

    #[test]
    fn grid_has_all_three_truth_values() {
        let w = 4;
        let h = 4;
        let mut s = TermStore::new();
        let p = win_grid(&mut s, w, h);
        // Bottom-right corner (3,3) = n15 is the unique terminal: lost.
        assert_eq!(truth_of(&s, &p, "win(n15)"), Truth::False);
        // Its row neighbour moves into it: won.
        assert_eq!(truth_of(&s, &p, "win(n14)"), Truth::True);
        // The cycle row (j = 1) exits into the draw pocket n16 ↔ n17.
        assert_eq!(truth_of(&s, &p, "win(n16)"), Truth::Undefined);
        assert_eq!(truth_of(&s, &p, "win(n17)"), Truth::Undefined);
        // A height whose last row would be a cycle row (4 ≡ 1 mod 3)
        // must still keep the corner terminal, hence lost.
        let mut s2 = TermStore::new();
        let p2 = win_grid(&mut s2, 4, 5);
        assert_eq!(truth_of(&s2, &p2, "win(n19)"), Truth::False);
    }

    #[test]
    fn grid_scales_to_roadmap_sizes() {
        // Clause count only — actually grounding 10^5 atoms is the perf
        // harness's job, not a unit test's.
        let mut s = TermStore::new();
        let p = win_grid(&mut s, 10, 10);
        // ~2 edges per position + cycle rows + pockets + 1 rule.
        assert!(p.len() > 2 * 10 * 10);
        let mut s2 = TermStore::new();
        let p2 = win_grid(&mut s2, 20, 10);
        assert!(p2.len() > 2 * p.len() - 40, "clauses scale with area");
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut s1 = TermStore::new();
        let p1 = win_random(&mut s1, 20, 3, 42);
        let mut s2 = TermStore::new();
        let p2 = win_random(&mut s2, 20, 3, 42);
        assert_eq!(p1.display(&s1), p2.display(&s2));
        let mut s3 = TermStore::new();
        let p3 = win_random(&mut s3, 20, 3, 43);
        assert_ne!(p1.display(&s1), p3.display(&s3));
    }

    #[test]
    fn sizes_scale() {
        let mut s = TermStore::new();
        let p = win_chain(&mut s, 100);
        assert_eq!(p.len(), 100); // 99 edges + 1 rule
        let t = win_tree(&mut s, 3);
        assert_eq!(t.len(), 2 * ((1 << 3) - 1) + 1);
    }
}
