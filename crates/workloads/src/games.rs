//! Win/move game generators.
//!
//! `win(X) ← move(X, Y), ¬win(Y)` over various board graphs. The game is
//! the canonical workload for the well-founded semantics: positions with
//! a move to a lost position are won, positions whose moves all reach won
//! positions are lost, and positions caught in drawing cycles are
//! *undefined* — exactly the three truth values.

use crate::prng::SplitMix64;
use gsls_lang::{Atom, Clause, Literal, Program, TermStore};

/// Builds the game program over explicit move edges `(from, to)`,
/// numbering positions `n0, n1, …`.
pub fn win_game(store: &mut TermStore, edges: &[(usize, usize)]) -> Program {
    let mv = store.intern_symbol("move");
    let win = store.intern_symbol("win");
    let mut prog = Program::new();
    for &(a, b) in edges {
        let ta = store.constant(&format!("n{a}"));
        let tb = store.constant(&format!("n{b}"));
        prog.push(Clause::fact(Atom::new(mv, vec![ta, tb])));
    }
    let x = store.fresh_var(Some("X"));
    let y = store.fresh_var(Some("Y"));
    prog.push(Clause::new(
        Atom::new(win, vec![x]),
        vec![
            Literal::pos(Atom::new(mv, vec![x, y])),
            Literal::neg(Atom::new(win, vec![y])),
        ],
    ));
    prog
}

/// A chain `n0 → n1 → … → n(n−1)`: win/lose alternates from the dead end,
/// every position defined. `n` is the number of positions.
pub fn win_chain(store: &mut TermStore, n: usize) -> Program {
    let edges: Vec<(usize, usize)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    win_game(store, &edges)
}

/// A cycle over `n` positions: every position is a draw (undefined) when
/// `n` is even; odd cycles are undefined too (no escape).
pub fn win_cycle(store: &mut TermStore, n: usize) -> Program {
    let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    win_game(store, &edges)
}

/// A complete binary tree of depth `depth` with edges toward the leaves;
/// positions: `2^(depth+1) − 1`.
pub fn win_tree(store: &mut TermStore, depth: u32) -> Program {
    let mut edges = Vec::new();
    let internal = (1usize << depth) - 1;
    for i in 0..internal {
        edges.push((i, 2 * i + 1));
        edges.push((i, 2 * i + 2));
    }
    win_game(store, &edges)
}

/// A random game graph: `n` positions, each with out-degree sampled from
/// `0..=max_degree` (degree 0 makes lost positions, cycles make draws).
pub fn win_random(store: &mut TermStore, n: usize, max_degree: usize, seed: u64) -> Program {
    let mut rng = SplitMix64::new(seed);
    let mut edges = Vec::new();
    for i in 0..n {
        let deg = rng.below(max_degree + 1);
        for _ in 0..deg {
            let j = rng.below(n);
            edges.push((i, j));
        }
    }
    win_game(store, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsls_ground::Grounder;
    use gsls_wfs::{well_founded_model, Truth};

    fn truth_of(store: &TermStore, prog: &Program, name: &str) -> Truth {
        let mut s2 = store.clone();
        let gp = Grounder::ground(&mut s2, prog).unwrap();
        let m = well_founded_model(&gp);
        let a = gp
            .atom_ids()
            .find(|&a| gp.display_atom(&s2, a) == name)
            .unwrap_or_else(|| panic!("{name} missing"));
        m.truth(a)
    }

    #[test]
    fn chain_alternates() {
        let mut s = TermStore::new();
        let p = win_chain(&mut s, 4); // n0→n1→n2→n3
        assert_eq!(truth_of(&s, &p, "win(n3)"), Truth::False);
        assert_eq!(truth_of(&s, &p, "win(n2)"), Truth::True);
        assert_eq!(truth_of(&s, &p, "win(n1)"), Truth::False);
        assert_eq!(truth_of(&s, &p, "win(n0)"), Truth::True);
    }

    #[test]
    fn cycle_all_draws() {
        let mut s = TermStore::new();
        let p = win_cycle(&mut s, 3);
        for i in 0..3 {
            assert_eq!(truth_of(&s, &p, &format!("win(n{i})")), Truth::Undefined);
        }
    }

    #[test]
    fn tree_root_wins() {
        // Leaves lose (no moves); internal nodes above leaves win; root
        // of depth 2: children win ⇒ root... all moves reach winning
        // positions ⇒ root loses; depth 1: root wins.
        let mut s = TermStore::new();
        let p = win_tree(&mut s, 1);
        assert_eq!(truth_of(&s, &p, "win(n0)"), Truth::True);
        let mut s2 = TermStore::new();
        let p2 = win_tree(&mut s2, 2);
        assert_eq!(truth_of(&s2, &p2, "win(n0)"), Truth::False);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut s1 = TermStore::new();
        let p1 = win_random(&mut s1, 20, 3, 42);
        let mut s2 = TermStore::new();
        let p2 = win_random(&mut s2, 20, 3, 42);
        assert_eq!(p1.display(&s1), p2.display(&s2));
        let mut s3 = TermStore::new();
        let p3 = win_random(&mut s3, 20, 3, 43);
        assert_ne!(p1.display(&s1), p3.display(&s3));
    }

    #[test]
    fn sizes_scale() {
        let mut s = TermStore::new();
        let p = win_chain(&mut s, 100);
        assert_eq!(p.len(), 100); // 99 edges + 1 rule
        let t = win_tree(&mut s, 3);
        assert_eq!(t.len(), 2 * ((1 << 3) - 1) + 1);
    }
}
