//! Stratified deductive-database workloads.

use gsls_lang::{parse_program, Program, TermStore};
use std::fmt::Write as _;

/// `unreach(X,Y) ← n(X), n(Y), ¬t(X,Y)` over the transitive closure `t`
/// of a chain of `n` nodes — the classic stratified negation query.
pub fn negated_reachability(store: &mut TermStore, n: usize) -> Program {
    let mut src = String::new();
    for i in 0..n {
        let _ = writeln!(src, "n(v{i}).");
    }
    for i in 0..n.saturating_sub(1) {
        let _ = writeln!(src, "e(v{i}, v{}).", i + 1);
    }
    src.push_str(
        "t(X, Y) :- e(X, Y).
         t(X, Z) :- e(X, Y), t(Y, Z).
         unreach(X, Y) :- n(X), n(Y), ~t(X, Y).",
    );
    parse_program(store, &src).expect("generated program parses")
}

/// A negation chain `a0 ← ¬a1. a1 ← ¬a2. … a(n−1) ← ¬an. an.` — strictly
/// stratified, depth-n negation nesting, alternating truth values.
pub fn odd_even_chain(store: &mut TermStore, n: usize) -> Program {
    let mut src = String::new();
    for i in 0..n {
        let _ = writeln!(src, "a{i} :- ~a{}.", i + 1);
    }
    let _ = writeln!(src, "a{n}.");
    parse_program(store, &src).expect("generated program parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsls_ground::{DepGraph, Grounder};
    use gsls_wfs::{well_founded_model, Truth};

    #[test]
    fn reachability_is_stratified() {
        let mut s = TermStore::new();
        let p = negated_reachability(&mut s, 5);
        assert!(DepGraph::from_program(&p).is_stratified());
    }

    #[test]
    fn reachability_model_total_and_correct() {
        let mut s = TermStore::new();
        let p = negated_reachability(&mut s, 4);
        let gp = Grounder::ground(&mut s, &p).unwrap();
        let m = well_founded_model(&gp);
        let find = |name: &str| {
            gp.atom_ids()
                .find(|&a| gp.display_atom(&s, a) == name)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        assert_eq!(m.truth(find("t(v0, v3)")), Truth::True);
        assert_eq!(m.truth(find("unreach(v3, v0)")), Truth::True);
        assert_eq!(m.truth(find("unreach(v0, v3)")), Truth::False);
    }

    #[test]
    fn chain_alternates_strictly() {
        let mut s = TermStore::new();
        let p = odd_even_chain(&mut s, 5);
        assert!(DepGraph::from_program(&p).is_stratified());
        let gp = Grounder::ground(&mut s, &p).unwrap();
        let m = well_founded_model(&gp);
        assert!(m.is_total());
        for i in 0..=5 {
            let a = gp
                .atom_ids()
                .find(|&x| gp.display_atom(&s, x) == format!("a{i}"))
                .unwrap();
            let expect = if (5 - i) % 2 == 0 {
                Truth::True
            } else {
                Truth::False
            };
            assert_eq!(m.truth(a), expect, "a{i}");
        }
    }
}
