//! SLDNF-resolution with a safe computation rule.
//!
//! Negation as failure (Clark): a ground negative subgoal `¬A` succeeds
//! when the subsidiary SLDNF-tree for `← A` finitely fails, and fails when
//! it succeeds. The computation rule is **safe** (Def. 3.1): it never
//! selects a nonground negative literal — if only nonground negative
//! literals remain the goal **flounders**.
//!
//! Section 7 of the paper: SLDNF with a safe rule is *sound* w.r.t. the
//! well-founded semantics, but *incomplete* — it does not treat infinite
//! branches as failed, so `p ← p` makes `← ¬p` loop instead of succeed.
//! The explicit [`SldnfOutcome::Budget`] outcome surfaces exactly those
//! nonterminating searches.

use gsls_lang::{rename::variant, unify_atoms, Goal, Literal, Program, Subst, TermStore, Var};

/// Budgets for the SLDNF search.
#[derive(Debug, Clone, Copy)]
pub struct SldnfOpts {
    /// Maximum derivation depth per tree (main or subsidiary).
    pub max_depth: u32,
    /// Global budget on expanded goals across all subsidiary trees.
    pub max_nodes: usize,
}

impl Default for SldnfOpts {
    fn default() -> Self {
        SldnfOpts {
            max_depth: 256,
            max_nodes: 200_000,
        }
    }
}

/// Outcome of an SLDNF query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SldnfOutcome {
    /// At least one SLDNF-refutation found.
    Success,
    /// The SLDNF-tree finitely failed.
    Fail,
    /// A nonground negative literal had to be selected. Takes precedence
    /// over [`SldnfOutcome::Budget`] when both occur: floundering is a
    /// structural property of the query (no budget increase can fix it),
    /// while a budget hit merely says "ran out of fuel".
    Floundered,
    /// A depth/node budget was hit before the tree was exhausted — the
    /// search may diverge (SLDNF's incompleteness made observable).
    Budget,
}

/// Result of an SLDNF query.
#[derive(Debug, Clone)]
pub struct SldnfResult {
    /// The overall outcome.
    pub outcome: SldnfOutcome,
    /// Answer substitutions (nonempty iff `outcome == Success`).
    pub answers: Vec<Subst>,
    /// Goals expanded across all trees.
    pub nodes: usize,
}

/// Runs SLDNF-resolution on `goal` against `program` with a safe,
/// leftmost-selectable computation rule.
pub fn sldnf_solve(
    store: &mut TermStore,
    program: &Program,
    goal: &Goal,
    opts: SldnfOpts,
) -> SldnfResult {
    let goal_vars = goal.vars(store);
    let mut search = Search {
        store,
        program,
        opts,
        nodes: 0,
    };
    let mut answers = Vec::new();
    let status = search.expand(goal, &Subst::new(), 0, &goal_vars, &mut answers);
    let outcome = match status {
        Status::Ok => {
            if answers.is_empty() {
                SldnfOutcome::Fail
            } else {
                SldnfOutcome::Success
            }
        }
        // Some branch floundered/budgeted but another produced an
        // answer: report success (answers are still sound).
        Status::Floundered if answers.is_empty() => SldnfOutcome::Floundered,
        Status::Budget if answers.is_empty() => SldnfOutcome::Budget,
        Status::Floundered | Status::Budget => SldnfOutcome::Success,
    };
    SldnfResult {
        outcome,
        answers,
        nodes: search.nodes,
    }
}

/// Internal search status: did every branch resolve, or did some branch
/// flounder / hit a budget (poisoning claims of finite failure)?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ok,
    Floundered,
    Budget,
}

impl Status {
    /// Combines branch statuses. **Precedence (deliberate):**
    /// `Floundered > Budget > Ok`. A goal that both flounders and
    /// exhausts its budget reports `Floundered`, because floundering is
    /// the stronger diagnosis — the query sits outside the allowed
    /// (safe-rule) fragment and re-running with a larger budget cannot
    /// help, whereas `Budget` invites exactly that retry. Either
    /// non-`Ok` status poisons claims of finite failure equally.
    /// Pinned by `precedence` tests here and in `sldnf_soundness.rs`.
    fn worst(self, other: Status) -> Status {
        use Status::*;
        match (self, other) {
            (Floundered, _) | (_, Floundered) => Floundered,
            (Budget, _) | (_, Budget) => Budget,
            _ => Ok,
        }
    }
}

struct Search<'a> {
    store: &'a mut TermStore,
    program: &'a Program,
    opts: SldnfOpts,
    nodes: usize,
}

impl Search<'_> {
    /// Selects per the safe rule: the leftmost positive literal if any,
    /// otherwise the leftmost *ground* negative literal.
    fn select(&self, goal: &Goal) -> Option<usize> {
        if let Some(i) = goal.literals().iter().position(Literal::is_pos) {
            return Some(i);
        }
        goal.literals().iter().position(|l| l.is_ground(self.store))
    }

    fn expand(
        &mut self,
        goal: &Goal,
        subst: &Subst,
        depth: u32,
        goal_vars: &[Var],
        answers: &mut Vec<Subst>,
    ) -> Status {
        if goal.is_empty() {
            answers.push(subst.restricted_to(self.store, goal_vars));
            return Status::Ok;
        }
        if depth >= self.opts.max_depth || self.nodes >= self.opts.max_nodes {
            return Status::Budget;
        }
        self.nodes += 1;
        let Some(idx) = self.select(goal) else {
            return Status::Floundered;
        };
        let selected = goal.literals()[idx].clone();
        if selected.is_pos() {
            let pred = selected.atom.pred_id();
            let clause_idxs: Vec<usize> = self.program.clauses_for(pred).to_vec();
            let mut status = Status::Ok;
            for ci in clause_idxs {
                let clause = variant(self.store, self.program.clause(ci));
                let mut local = subst.clone();
                let goal_atom = local.resolve_atom(self.store, &selected.atom);
                if unify_atoms(self.store, &mut local, &goal_atom, &clause.head) {
                    let child = goal.resolve_at(idx, &clause.body);
                    let child = local.resolve_goal(self.store, &child);
                    status =
                        status.worst(self.expand(&child, &local, depth + 1, goal_vars, answers));
                }
            }
            status
        } else {
            // Ground negative literal: subsidiary tree for the complement.
            let sub_goal = Goal::new(vec![selected.complement()]);
            let mut sub_answers = Vec::new();
            let sub_status =
                self.expand(&sub_goal, &Subst::new(), depth + 1, &[], &mut sub_answers);
            if !sub_answers.is_empty() {
                // ¬A fails because A succeeded (sound even under budget).
                return Status::Ok;
            }
            match sub_status {
                Status::Ok => {
                    // Finite failure of A: ¬A succeeds.
                    let child = goal.resolve_at(idx, &[]);
                    self.expand(&child, subst, depth + 1, goal_vars, answers)
                }
                // Floundered or budget inside the subsidiary tree: we can
                // conclude nothing about ¬A.
                other => other,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsls_lang::{parse_goal, parse_program};

    fn solve(src: &str, goal: &str) -> (TermStore, SldnfResult) {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, src).unwrap();
        let g = parse_goal(&mut s, goal).unwrap();
        let r = sldnf_solve(&mut s, &p, &g, SldnfOpts::default());
        (s, r)
    }

    #[test]
    fn negation_as_failure_success() {
        let (_, r) = solve("p(a).", "?- ~p(b).");
        assert_eq!(r.outcome, SldnfOutcome::Success);
    }

    #[test]
    fn negation_as_failure_fail() {
        let (_, r) = solve("p(a).", "?- ~p(a).");
        assert_eq!(r.outcome, SldnfOutcome::Fail);
    }

    #[test]
    fn stratified_composition() {
        let (s, r) = solve(
            "bird(tweety). bird(sam). penguin(sam). flies(X) :- bird(X), ~penguin(X).",
            "?- flies(X).",
        );
        assert_eq!(r.outcome, SldnfOutcome::Success);
        assert_eq!(r.answers.len(), 1);
        assert_eq!(r.answers[0].display(&s), "{X = tweety}");
    }

    #[test]
    fn floundering_detected() {
        // Only a nonground negative literal remains.
        let (_, r) = solve("q(a).", "?- ~q(X).");
        assert_eq!(r.outcome, SldnfOutcome::Floundered);
    }

    #[test]
    fn safe_rule_delays_negative_literal() {
        // ~q(X) becomes ground after p(X) binds X; safe rule must postpone.
        let (_, r) = solve("p(a). q(b).", "?- ~q(X), p(X).");
        assert_eq!(r.outcome, SldnfOutcome::Success);
    }

    #[test]
    fn floundering_outranks_budget() {
        // One branch flounders (nonground negative literal), the other
        // diverges into the budget. The combined verdict must be
        // Floundered: that diagnosis survives any budget increase.
        let (_, r) = solve("r :- ~q(X). r :- p. p :- p. q(a).", "?- r.");
        assert_eq!(r.outcome, SldnfOutcome::Floundered);
        // Same program with the branches swapped — order must not matter.
        let (_, r2) = solve("r :- p. r :- ~q(X). p :- p. q(a).", "?- r.");
        assert_eq!(r2.outcome, SldnfOutcome::Floundered);
    }

    #[test]
    fn positive_loop_budget_not_failure() {
        // Sec. 7: SLDNF cannot fail infinite branches. WFS says ¬p, but
        // the subsidiary tree for p loops.
        let (_, r) = solve("p :- p.", "?- ~p.");
        assert_eq!(r.outcome, SldnfOutcome::Budget);
    }

    #[test]
    fn recursion_through_negation_budget() {
        // win cycle: WFS leaves both undefined; SLDNF recurses forever.
        let (_, r) = solve(
            "move(a, b). move(b, a). win(X) :- move(X, Y), ~win(Y).",
            "?- win(a).",
        );
        assert_eq!(r.outcome, SldnfOutcome::Budget);
    }

    #[test]
    fn sldnf_agrees_on_terminating_win_game() {
        let (_, r) = solve(
            "move(a, b). move(b, c). win(X) :- move(X, Y), ~win(Y).",
            "?- win(b).",
        );
        assert_eq!(r.outcome, SldnfOutcome::Success);
        let (_, r2) = solve(
            "move(a, b). move(b, c). win(X) :- move(X, Y), ~win(Y).",
            "?- win(a).",
        );
        assert_eq!(r2.outcome, SldnfOutcome::Fail);
    }

    #[test]
    fn double_negation() {
        let (_, r) = solve("p. q :- ~r. r :- ~p.", "?- q.");
        // r :- ~p fails (p succeeds), so ~r succeeds, so q succeeds.
        assert_eq!(r.outcome, SldnfOutcome::Success);
    }

    #[test]
    fn nodes_counted() {
        let (_, r) = solve("p(a).", "?- p(a).");
        assert!(r.nodes >= 1);
    }
}
