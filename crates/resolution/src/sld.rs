//! SLD-resolution for definite programs.
//!
//! Depth-first search over the SLD-tree with leftmost literal selection,
//! bounded by depth and node budgets so nontermination surfaces as an
//! explicit `exhausted = false` rather than a hang.

use gsls_lang::{rename::variant, unify_atoms, Goal, Literal, Program, Subst, TermStore, Var};

/// Budgets for the SLD search.
#[derive(Debug, Clone, Copy)]
pub struct SldOpts {
    /// Maximum derivation depth (resolution steps on one branch).
    pub max_depth: u32,
    /// Maximum number of goals expanded in total.
    pub max_nodes: usize,
    /// Stop after this many answers (`usize::MAX` = all).
    pub max_answers: usize,
}

impl Default for SldOpts {
    fn default() -> Self {
        SldOpts {
            max_depth: 512,
            max_nodes: 1_000_000,
            max_answers: usize::MAX,
        }
    }
}

/// Result of an SLD search.
#[derive(Debug, Clone)]
pub struct SldResult {
    /// Answer substitutions, restricted to the goal's variables.
    pub answers: Vec<Subst>,
    /// Whether the SLD-tree was explored exhaustively. `false` means some
    /// branch hit a depth/node budget, so failure is *not* finite failure.
    pub exhausted: bool,
    /// Number of goals expanded.
    pub nodes: usize,
}

impl SldResult {
    /// Whether at least one answer was found.
    pub fn succeeded(&self) -> bool {
        !self.answers.is_empty()
    }

    /// Whether the goal finitely failed (exhaustive search, no answers).
    pub fn finitely_failed(&self) -> bool {
        self.answers.is_empty() && self.exhausted
    }
}

struct Search<'a> {
    store: &'a mut TermStore,
    program: &'a Program,
    opts: SldOpts,
    goal_vars: Vec<Var>,
    answers: Vec<Subst>,
    nodes: usize,
    exhausted: bool,
}

/// Runs SLD-resolution on `goal` against `program`.
///
/// # Panics
/// Panics if the goal contains a negative literal — use
/// [`crate::sldnf::sldnf_solve`] for normal goals.
pub fn sld_solve(
    store: &mut TermStore,
    program: &Program,
    goal: &Goal,
    opts: SldOpts,
) -> SldResult {
    assert!(
        goal.literals().iter().all(Literal::is_pos),
        "SLD-resolution handles positive goals only"
    );
    let goal_vars = goal.vars(store);
    let mut search = Search {
        store,
        program,
        opts,
        goal_vars,
        answers: Vec::new(),
        nodes: 0,
        exhausted: true,
    };
    search.expand(goal, &Subst::new(), 0);
    SldResult {
        answers: search.answers,
        exhausted: search.exhausted,
        nodes: search.nodes,
    }
}

impl Search<'_> {
    fn expand(&mut self, goal: &Goal, subst: &Subst, depth: u32) {
        if self.answers.len() >= self.opts.max_answers {
            return;
        }
        if goal.is_empty() {
            let ans = subst.restricted_to(self.store, &self.goal_vars);
            self.answers.push(ans);
            return;
        }
        if depth >= self.opts.max_depth || self.nodes >= self.opts.max_nodes {
            self.exhausted = false;
            return;
        }
        self.nodes += 1;
        // Leftmost selection.
        let selected = &goal.literals()[0];
        let pred = selected.atom.pred_id();
        let clause_idxs: Vec<usize> = self.program.clauses_for(pred).to_vec();
        for ci in clause_idxs {
            let clause = variant(self.store, self.program.clause(ci));
            let mut local = subst.clone();
            let goal_atom = local.resolve_atom(self.store, &selected.atom);
            if unify_atoms(self.store, &mut local, &goal_atom, &clause.head) {
                let child = goal.resolve_at(0, &clause.body);
                let child = local.resolve_goal(self.store, &child);
                self.expand(&child, &local, depth + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsls_lang::{parse_goal, parse_program};

    fn solve(src: &str, goal: &str) -> (TermStore, SldResult) {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, src).unwrap();
        let g = parse_goal(&mut s, goal).unwrap();
        let r = sld_solve(&mut s, &p, &g, SldOpts::default());
        (s, r)
    }

    #[test]
    fn fact_lookup() {
        let (_, r) = solve("p(a). p(b).", "?- p(a).");
        assert!(r.succeeded());
        assert_eq!(r.answers.len(), 1);
        assert!(r.exhausted);
    }

    #[test]
    fn all_answers_enumerated() {
        let (s, r) = solve("p(a). p(b). p(c).", "?- p(X).");
        assert_eq!(r.answers.len(), 3);
        let rendered: Vec<String> = r.answers.iter().map(|a| a.display(&s)).collect();
        assert!(rendered.contains(&"{X = a}".to_owned()));
        assert!(rendered.contains(&"{X = c}".to_owned()));
    }

    #[test]
    fn conjunction_join() {
        let (s, r) = solve(
            "e(a, b). e(b, c). path(X, Z) :- e(X, Z). path(X, Z) :- e(X, Y), path(Y, Z).",
            "?- path(a, Z).",
        );
        assert_eq!(r.answers.len(), 2);
        let rendered: Vec<String> = r.answers.iter().map(|a| a.display(&s)).collect();
        assert!(rendered.contains(&"{Z = b}".to_owned()));
        assert!(rendered.contains(&"{Z = c}".to_owned()));
    }

    #[test]
    fn finite_failure() {
        let (_, r) = solve("p(a).", "?- p(b).");
        assert!(r.finitely_failed());
    }

    #[test]
    fn infinite_branch_hits_budget() {
        let (_, r) = solve("p :- p.", "?- p.");
        assert!(!r.succeeded());
        assert!(!r.exhausted, "loop is not finite failure");
        assert!(!r.finitely_failed());
    }

    #[test]
    fn function_symbols_and_recursion() {
        let (_, r) = solve("nat(0). nat(s(X)) :- nat(X).", "?- nat(s(s(0))).");
        assert!(r.succeeded());
        assert!(r.exhausted);
    }

    #[test]
    fn nonground_answer_kept_general() {
        let (s, r) = solve("p(X, X).", "?- p(Y, Z).");
        assert_eq!(r.answers.len(), 1);
        // Y and Z are unified with each other (both bound to the same
        // variable), not instantiated to any ground term.
        let ans = &r.answers[0];
        let bindings: Vec<_> = ans.iter().map(|(_, t)| t).collect();
        assert_eq!(bindings.len(), 2, "{}", ans.display(&s));
        assert_eq!(bindings[0], bindings[1], "same representative variable");
        assert!(!s.is_ground(bindings[0]));
    }

    #[test]
    fn max_answers_cutoff() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "nat(0). nat(s(X)) :- nat(X).").unwrap();
        let g = parse_goal(&mut s, "?- nat(N).").unwrap();
        let r = sld_solve(
            &mut s,
            &p,
            &g,
            SldOpts {
                max_answers: 5,
                ..SldOpts::default()
            },
        );
        assert_eq!(r.answers.len(), 5);
    }

    #[test]
    #[should_panic(expected = "positive goals only")]
    fn negative_goal_rejected() {
        let _ = solve("p(a).", "?- ~p(a).");
    }

    #[test]
    fn empty_goal_succeeds_immediately() {
        let (_, r) = solve("p(a).", "?- .");
        assert_eq!(r.answers.len(), 1);
        assert!(r.answers[0].is_empty());
    }
}
