//! # gsls-resolution — baseline procedural semantics
//!
//! The three resolution procedures the paper positions global
//! SLS-resolution against:
//!
//! * [`sld`] — SLD-resolution for definite programs and positive goals
//!   (Van Emden & Kowalski; the substrate Clark built negation-as-failure
//!   on);
//! * [`sldnf`] — SLDNF-resolution with a *safe* computation rule: sound
//!   with respect to the well-founded semantics for all programs (Sec. 7)
//!   but incomplete — it cannot treat infinite branches as failed, which
//!   experiment E8 demonstrates;
//! * [`sls`] — SLS-resolution for stratified programs (Przymusinski):
//!   top-down search whose negative subgoals are answered by the perfect
//!   model, computed stratum by stratum ([`sls::perfect_model`]).

pub mod sld;
pub mod sldnf;
pub mod sls;

pub use sld::{sld_solve, SldOpts, SldResult};
pub use sldnf::{sldnf_solve, SldnfOpts, SldnfOutcome, SldnfResult};
pub use sls::{perfect_model, sls_solve, SlsError, SlsOpts, SlsResult};
