//! SLS-resolution for stratified programs (Przymusinski).
//!
//! SLS-resolution is an *ideal* procedure: infinite branches count as
//! failed, which no terminating search can do directly. For stratified
//! programs, however, the perfect model is computed stratum by stratum,
//! and a negative subgoal `¬A` at stratum `k` only depends on strata
//! `< k`. We realise SLS-resolution the way the paper describes its
//! relationship to the perfect model semantics: the top-down search
//! resolves positive literals by SLD steps and answers ground negative
//! subgoals from the (lower-stratum) perfect model — the oracle that the
//! level mapping of SLS-trees presupposes.
//!
//! The perfect-model computation itself ([`perfect_model`]) is the
//! textbook iterated fixpoint over the stratification.

use gsls_ground::{DepGraph, GroundProgram, Grounder, GrounderOpts};
use gsls_lang::{
    rename::variant, unify_atoms, FxHashMap, Goal, Literal, Pred, Program, Subst, TermStore, Var,
};
use gsls_wfs::{lfp_with, BitSet, Interp};
use std::fmt;

/// Errors from the SLS engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlsError {
    /// The program is not stratified; SLS-resolution is undefined for it.
    NotStratified,
    /// Grounding failed (budget).
    Grounding(String),
}

impl fmt::Display for SlsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlsError::NotStratified => write!(f, "program is not stratified"),
            SlsError::Grounding(e) => write!(f, "grounding failed: {e}"),
        }
    }
}

impl std::error::Error for SlsError {}

/// Computes the perfect model of a stratified program by the iterated
/// least fixpoint over its stratification.
///
/// Returns the ground program together with the (total, on derivable
/// atoms) model. For stratified programs this coincides with the
/// well-founded model — experiment E10 asserts exactly that.
pub fn perfect_model(
    store: &mut TermStore,
    program: &Program,
) -> Result<(GroundProgram, Interp), SlsError> {
    let dg = DepGraph::from_program(program);
    let strata = dg.strata().ok_or(SlsError::NotStratified)?;
    let gp = Grounder::ground_with(store, program, GrounderOpts::default())
        .map_err(|e| SlsError::Grounding(e.to_string()))?;
    let max_stratum = strata.values().copied().max().unwrap_or(0);

    // Pred → stratum lookup for ground atoms.
    let stratum_of = |gp: &GroundProgram, a: gsls_ground::GroundAtomId| -> u32 {
        let pred: Pred = gp.atom(a).pred_id();
        strata.get(&pred).copied().unwrap_or(0)
    };

    let n = gp.atom_count();
    let mut true_set = BitSet::new(n);
    for k in 0..=max_stratum {
        // Evaluate stratum k: fixpoint over clauses whose head is at
        // stratum ≤ k, with negative literals answered by lower strata
        // (or, equivalently, by the accumulating true_set — sound because
        // a stratum-k head never negatively depends on stratum ≥ k).
        let snapshot = true_set.clone();
        let derived = lfp_with(&gp, |q| !snapshot.contains(q.index()));
        for a in derived.iter() {
            if stratum_of(&gp, gsls_ground::GroundAtomId(a as u32)) <= k {
                true_set.insert(a);
            }
        }
    }
    let false_set = true_set.complement();
    Ok((gp, Interp::from_parts(true_set, false_set)))
}

/// Result of an SLS query.
#[derive(Debug, Clone)]
pub struct SlsResult {
    /// Answer substitutions for the goal's variables.
    pub answers: Vec<Subst>,
    /// Whether some branch floundered (nonground negative literal with no
    /// positive literal left to select).
    pub floundered: bool,
    /// Goals expanded.
    pub nodes: usize,
}

impl SlsResult {
    /// Whether at least one answer exists.
    pub fn succeeded(&self) -> bool {
        !self.answers.is_empty()
    }
}

/// Budgets for the top-down phase (positive recursion can still diverge
/// with function symbols; stratified ≠ terminating).
#[derive(Debug, Clone, Copy)]
pub struct SlsOpts {
    /// Maximum derivation depth.
    pub max_depth: u32,
    /// Maximum goals expanded.
    pub max_nodes: usize,
}

impl Default for SlsOpts {
    fn default() -> Self {
        SlsOpts {
            max_depth: 512,
            max_nodes: 1_000_000,
        }
    }
}

/// Runs SLS-resolution on `goal` against the stratified `program`.
pub fn sls_solve(
    store: &mut TermStore,
    program: &Program,
    goal: &Goal,
    opts: SlsOpts,
) -> Result<SlsResult, SlsError> {
    let (gp, model) = perfect_model(store, program)?;
    let goal_vars = goal.vars(store);
    let mut search = Search {
        store,
        program,
        gp: &gp,
        model: &model,
        opts,
        nodes: 0,
        floundered: false,
        answers: Vec::new(),
        memo: FxHashMap::default(),
    };
    search.expand(goal, &Subst::new(), 0, &goal_vars);
    Ok(SlsResult {
        answers: search.answers,
        floundered: search.floundered,
        nodes: search.nodes,
    })
}

struct Search<'a> {
    store: &'a mut TermStore,
    program: &'a Program,
    gp: &'a GroundProgram,
    model: &'a Interp,
    opts: SlsOpts,
    nodes: usize,
    floundered: bool,
    answers: Vec<Subst>,
    /// Memo of ground negative-literal verdicts (true = ¬A succeeds).
    memo: FxHashMap<gsls_lang::Atom, bool>,
}

impl Search<'_> {
    fn neg_succeeds(&mut self, atom: &gsls_lang::Atom) -> bool {
        if let Some(&v) = self.memo.get(atom) {
            return v;
        }
        // ¬A succeeds iff A is false in the perfect model. Atoms the
        // grounder never interned are underivable, hence false.
        let v = match self.gp.lookup_atom(atom) {
            Some(id) => self.model.is_false(id),
            None => true,
        };
        self.memo.insert(atom.clone(), v);
        v
    }

    fn expand(&mut self, goal: &Goal, subst: &Subst, depth: u32, goal_vars: &[Var]) {
        if goal.is_empty() {
            let ans = subst.restricted_to(self.store, goal_vars);
            self.answers.push(ans);
            return;
        }
        if depth >= self.opts.max_depth || self.nodes >= self.opts.max_nodes {
            return;
        }
        self.nodes += 1;
        // Positivistic, safe selection.
        let idx = match goal.literals().iter().position(Literal::is_pos) {
            Some(i) => i,
            None => match goal.literals().iter().position(|l| l.is_ground(self.store)) {
                Some(i) => i,
                None => {
                    self.floundered = true;
                    return;
                }
            },
        };
        let selected = goal.literals()[idx].clone();
        if selected.is_pos() {
            let pred = selected.atom.pred_id();
            let clause_idxs: Vec<usize> = self.program.clauses_for(pred).to_vec();
            for ci in clause_idxs {
                let clause = variant(self.store, self.program.clause(ci));
                let mut local = subst.clone();
                let goal_atom = local.resolve_atom(self.store, &selected.atom);
                if unify_atoms(self.store, &mut local, &goal_atom, &clause.head) {
                    let child = goal.resolve_at(idx, &clause.body);
                    let child = local.resolve_goal(self.store, &child);
                    self.expand(&child, &local, depth + 1, goal_vars);
                }
            }
        } else {
            let atom = subst.resolve_atom(self.store, &selected.atom);
            if self.neg_succeeds(&atom) {
                let child = goal.resolve_at(idx, &[]);
                self.expand(&child, subst, depth + 1, goal_vars);
            }
            // else: this branch fails.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsls_lang::{parse_goal, parse_program};
    use gsls_wfs::well_founded_model;

    fn solve(src: &str, goal: &str) -> (TermStore, SlsResult) {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, src).unwrap();
        let g = parse_goal(&mut s, goal).unwrap();
        let r = sls_solve(&mut s, &p, &g, SlsOpts::default()).unwrap();
        (s, r)
    }

    #[test]
    fn rejects_unstratified() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "win(X) :- move(X, Y), ~win(Y). move(a, b).").unwrap();
        let g = parse_goal(&mut s, "?- win(a).").unwrap();
        assert_eq!(
            sls_solve(&mut s, &p, &g, SlsOpts::default()).unwrap_err(),
            SlsError::NotStratified
        );
    }

    #[test]
    fn perfect_model_equals_wfm_on_stratified() {
        for src in [
            "r(a). r(b). q(X) :- r(X). p(X) :- r(X), ~q(X).",
            "b(1). b(2). e(1). odd(X) :- b(X), ~e(X).",
            "p :- ~q. q :- ~r. r.",
        ] {
            let mut s = TermStore::new();
            let prog = parse_program(&mut s, src).unwrap();
            let (gp, pm) = perfect_model(&mut s, &prog).unwrap();
            let wfm = well_founded_model(&gp);
            assert_eq!(pm, wfm, "perfect model ≠ WFM for {src}");
            assert!(pm.is_total());
        }
    }

    #[test]
    fn stratified_query_answers() {
        let (s, r) = solve(
            "bird(tweety). bird(sam). penguin(sam). flies(X) :- bird(X), ~penguin(X).",
            "?- flies(X).",
        );
        assert_eq!(r.answers.len(), 1);
        assert_eq!(r.answers[0].display(&s), "{X = tweety}");
        assert!(!r.floundered);
    }

    #[test]
    fn double_negation_through_strata() {
        let (_, r) = solve("p. q :- ~r. r :- ~p.", "?- q.");
        assert!(r.succeeded());
    }

    #[test]
    fn failing_query() {
        let (_, r) = solve("p. q :- ~p.", "?- q.");
        assert!(!r.succeeded());
        assert!(!r.floundered);
    }

    #[test]
    fn floundering_reported() {
        let (_, r) = solve("q(a).", "?- ~q(X).");
        assert!(r.floundered);
        assert!(!r.succeeded());
    }

    #[test]
    fn transitive_closure_complement() {
        // unreachable(X,Y) over a finite graph — the classic stratified
        // deductive-database query.
        let src = "e(a, b). e(b, c). n(a). n(b). n(c).
                   t(X, Y) :- e(X, Y).
                   t(X, Z) :- e(X, Y), t(Y, Z).
                   unreach(X, Y) :- n(X), n(Y), ~t(X, Y).";
        let (_, r) = solve(src, "?- unreach(c, a).");
        assert!(r.succeeded());
        let (_, r2) = solve(src, "?- unreach(a, c).");
        assert!(!r2.succeeded());
    }

    #[test]
    fn enumeration_with_negation() {
        let (_, r) = solve(
            "d(a). d(b). d(c). bad(b). good(X) :- d(X), ~bad(X).",
            "?- good(X).",
        );
        assert_eq!(r.answers.len(), 2);
    }
}
