//! Property-based tests for the bottom-up semantics: model-theoretic
//! invariants over random ground programs.

use gsls_ground::{Grounder, GroundProgram};
use gsls_lang::{Atom, Clause, Literal, Program, TermStore};
use gsls_wfs::{
    fitting_model, greatest_unfounded, is_unfounded_set, vp_iteration, well_founded_model,
    wp_iteration, Interp,
};
use proptest::prelude::*;

/// Builds a random propositional program from proptest-chosen clauses.
fn program_strategy() -> impl Strategy<Value = Vec<(u8, Vec<(u8, bool)>)>> {
    prop::collection::vec(
        (
            0u8..8,
            prop::collection::vec(((0u8..8), any::<bool>()), 0..4),
        ),
        1..16,
    )
}

fn realise(clauses: &[(u8, Vec<(u8, bool)>)]) -> (TermStore, GroundProgram) {
    let mut store = TermStore::new();
    let mut prog = Program::new();
    for (head, body) in clauses {
        let h = Atom::new(store.intern_symbol(&format!("p{head}")), Vec::new());
        let body = body
            .iter()
            .map(|(a, positive)| {
                let atom = Atom::new(store.intern_symbol(&format!("p{a}")), Vec::new());
                if *positive {
                    Literal::pos(atom)
                } else {
                    Literal::neg(atom)
                }
            })
            .collect();
        prog.push(Clause::new(h, body));
    }
    let gp = Grounder::ground_with(
        &mut store,
        &prog,
        gsls_ground::GrounderOpts {
            mode: gsls_ground::GroundingMode::Full,
            ..Default::default()
        },
    )
    .unwrap();
    (store, gp)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The well-founded model satisfies every clause (it is a partial
    /// model — footnote 2 of the paper defers to [31] for this).
    #[test]
    fn wfm_is_a_partial_model(clauses in program_strategy()) {
        let (_, gp) = realise(&clauses);
        let wfm = well_founded_model(&gp);
        prop_assert!(wfm.satisfies(&gp));
    }

    /// All three fixpoint formulations compute the same model.
    #[test]
    fn three_formulations_agree(clauses in program_strategy()) {
        let (_, gp) = realise(&clauses);
        let alt = well_founded_model(&gp);
        prop_assert_eq!(&alt, &vp_iteration(&gp).model);
        prop_assert_eq!(&alt, &wp_iteration(&gp).model);
    }

    /// The greatest unfounded set w.r.t. the empty interpretation is an
    /// unfounded set (Def. 2.2's parenthetical remark), and adding any
    /// single non-member breaks unfoundedness-maximality downward:
    /// removing a member keeps it unfounded only sometimes, but the GUS
    /// itself must always verify Def. 2.1.
    #[test]
    fn gus_is_unfounded(clauses in program_strategy()) {
        let (_, gp) = realise(&clauses);
        let empty = Interp::new(gp.atom_count());
        let gus = greatest_unfounded(&gp, &empty);
        prop_assert!(is_unfounded_set(&gp, &empty, &gus));
    }

    /// The GUS w.r.t. the WFM itself contains exactly the false atoms
    /// (the fixpoint property of W_P).
    #[test]
    fn gus_at_fixpoint_is_false_set(clauses in program_strategy()) {
        let (_, gp) = realise(&clauses);
        let wfm = well_founded_model(&gp);
        let gus = greatest_unfounded(&gp, &wfm);
        for a in gp.atom_ids() {
            if wfm.is_false(a) {
                prop_assert!(gus.contains(a.index()), "false atom must stay unfounded");
            }
            if wfm.is_true(a) {
                prop_assert!(!gus.contains(a.index()), "true atom cannot be unfounded");
            }
        }
    }

    /// Fitting's model never knows more than the well-founded model.
    #[test]
    fn fitting_below_wfs(clauses in program_strategy()) {
        let (_, gp) = realise(&clauses);
        prop_assert!(fitting_model(&gp).leq(&well_founded_model(&gp)));
    }

    /// Stages are consistent: every defined literal has a stage, every
    /// undefined one has none, and stages are ≥ 1.
    #[test]
    fn stage_bookkeeping(clauses in program_strategy()) {
        let (_, gp) = realise(&clauses);
        let staged = vp_iteration(&gp);
        for a in gp.atom_ids() {
            match staged.model.truth(a) {
                gsls_wfs::Truth::True => {
                    let s = staged.stage_of_true(a);
                    prop_assert!(s.is_some_and(|s| s >= 1));
                    prop_assert!(staged.stage_of_false(a).is_none());
                }
                gsls_wfs::Truth::False => {
                    let s = staged.stage_of_false(a);
                    prop_assert!(s.is_some_and(|s| s >= 1));
                    prop_assert!(staged.stage_of_true(a).is_none());
                }
                gsls_wfs::Truth::Undefined => {
                    prop_assert!(staged.stage_of_true(a).is_none());
                    prop_assert!(staged.stage_of_false(a).is_none());
                }
            }
        }
    }
}
