//! Property-based tests for the bottom-up semantics: model-theoretic
//! invariants over random ground programs.

use gsls_ground::{GroundAtomId, GroundClause, GroundProgram, Grounder};
use gsls_lang::{Atom, Clause, Literal, Program, TermStore};
use gsls_wfs::{
    fitting_model, greatest_unfounded, is_unfounded_set, vp_iteration, well_founded_model,
    well_founded_model_rebuild, well_founded_model_scratch, wp_iteration, BitSet, IncrementalLfp,
    Interp, NegMode, Propagator,
};
use proptest::prelude::*;

/// Builds a random propositional program from proptest-chosen clauses.
fn program_strategy() -> impl Strategy<Value = Vec<(u8, Vec<(u8, bool)>)>> {
    prop::collection::vec(
        (
            0u8..8,
            prop::collection::vec(((0u8..8), any::<bool>()), 0..4),
        ),
        1..16,
    )
}

/// The specification-level ω-iteration of `T̄_P` with a fixed negative
/// context: iterate "some rule fires (positives derived, negatives in
/// `neg_true`)" to a fixpoint. Quadratic, obviously correct — the oracle
/// for the linear-time propagator.
fn naive_tp_bar_omega(gp: &GroundProgram, neg_true: &BitSet) -> BitSet {
    let mut truth = BitSet::new(gp.atom_count());
    loop {
        let mut changed = false;
        for c in gp.clauses() {
            if truth.contains(c.head.index()) {
                continue;
            }
            let fires = c.pos.iter().all(|&a| truth.contains(a.index()))
                && c.neg.iter().all(|&a| neg_true.contains(a.index()));
            if fires && truth.insert(c.head.index()) {
                changed = true;
            }
        }
        if !changed {
            return truth;
        }
    }
}

fn realise(clauses: &[(u8, Vec<(u8, bool)>)]) -> (TermStore, GroundProgram) {
    let mut store = TermStore::new();
    let mut prog = Program::new();
    for (head, body) in clauses {
        let h = Atom::new(store.intern_symbol(&format!("p{head}")), Vec::new());
        let body = body
            .iter()
            .map(|(a, positive)| {
                let atom = Atom::new(store.intern_symbol(&format!("p{a}")), Vec::new());
                if *positive {
                    Literal::pos(atom)
                } else {
                    Literal::neg(atom)
                }
            })
            .collect();
        prog.push(Clause::new(h, body));
    }
    let gp = Grounder::ground_with(
        &mut store,
        &prog,
        gsls_ground::GrounderOpts {
            mode: gsls_ground::GroundingMode::Full,
            ..Default::default()
        },
    )
    .unwrap();
    (store, gp)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The well-founded model satisfies every clause (it is a partial
    /// model — footnote 2 of the paper defers to [31] for this).
    #[test]
    fn wfm_is_a_partial_model(clauses in program_strategy()) {
        let (_, gp) = realise(&clauses);
        let wfm = well_founded_model(&gp);
        prop_assert!(wfm.satisfies(&gp));
    }

    /// All three fixpoint formulations compute the same model.
    #[test]
    fn three_formulations_agree(clauses in program_strategy()) {
        let (_, gp) = realise(&clauses);
        let alt = well_founded_model(&gp);
        prop_assert_eq!(&alt, &vp_iteration(&gp).model);
        prop_assert_eq!(&alt, &wp_iteration(&gp).model);
    }

    /// The greatest unfounded set w.r.t. the empty interpretation is an
    /// unfounded set (Def. 2.2's parenthetical remark), and adding any
    /// single non-member breaks unfoundedness-maximality downward:
    /// removing a member keeps it unfounded only sometimes, but the GUS
    /// itself must always verify Def. 2.1.
    #[test]
    fn gus_is_unfounded(clauses in program_strategy()) {
        let (_, gp) = realise(&clauses);
        let empty = Interp::new(gp.atom_count());
        let gus = greatest_unfounded(&gp, &empty);
        prop_assert!(is_unfounded_set(&gp, &empty, &gus));
    }

    /// The GUS w.r.t. the WFM itself contains exactly the false atoms
    /// (the fixpoint property of W_P).
    #[test]
    fn gus_at_fixpoint_is_false_set(clauses in program_strategy()) {
        let (_, gp) = realise(&clauses);
        let wfm = well_founded_model(&gp);
        let gus = greatest_unfounded(&gp, &wfm);
        for a in gp.atom_ids() {
            if wfm.is_false(a) {
                prop_assert!(gus.contains(a.index()), "false atom must stay unfounded");
            }
            if wfm.is_true(a) {
                prop_assert!(!gus.contains(a.index()), "true atom cannot be unfounded");
            }
        }
    }

    /// Fitting's model never knows more than the well-founded model.
    #[test]
    fn fitting_below_wfs(clauses in program_strategy()) {
        let (_, gp) = realise(&clauses);
        prop_assert!(fitting_model(&gp).leq(&well_founded_model(&gp)));
    }

    /// The reusable propagator's reduct fixpoint agrees with a naive
    /// `T̄_P` ω-iteration (Lemma 4.2's direct reading) for arbitrary
    /// negative contexts — and stays correct across reuses of the same
    /// scratch.
    #[test]
    fn lfp_into_agrees_with_naive_omega(
        clauses in program_strategy(),
        neg_bits in any::<u64>(),
    ) {
        let (_, gp) = realise(&clauses);
        let n = gp.atom_count();
        let mut neg_true = BitSet::new(n);
        for b in 0..n.min(64) {
            if neg_bits & (1 << b) != 0 {
                neg_true.insert(b);
            }
        }
        let mut prop = Propagator::new(&gp);
        let mut fast = BitSet::new(n);
        // Exercise scratch reuse: a throwaway call with a different
        // context first, then the measured one.
        prop.lfp_into(&gp, |_| true, &mut fast);
        let count = prop.lfp_into(&gp, |q| neg_true.contains(q.index()), &mut fast);
        let naive = naive_tp_bar_omega(&gp, &neg_true);
        prop_assert_eq!(&fast, &naive);
        prop_assert_eq!(count, naive.count());
    }

    /// The alternating fixpoint on the difference-driven substrate
    /// equals both the full-recompute propagator baseline and the
    /// rebuild-per-call baseline it replaced.
    #[test]
    fn propagator_wfm_equals_rebuild_wfm(clauses in program_strategy()) {
        let (_, gp) = realise(&clauses);
        let incremental = well_founded_model(&gp);
        prop_assert_eq!(&incremental, &well_founded_model_scratch(&gp));
        prop_assert_eq!(&incremental, &well_founded_model_rebuild(&gp));
    }

    /// An [`IncrementalLfp`] driven through an arbitrary (non-monotone)
    /// walk of contexts agrees with the from-scratch propagator at every
    /// step — revival, retraction, and rederivation all exact, in both
    /// context readings (a shrinking context retracts under
    /// `SatisfiedInside` exactly where it revives under
    /// `SatisfiedOutside`, so both deletion paths get exercised).
    #[test]
    fn incremental_lfp_tracks_scratch_on_context_walks(
        clauses in program_strategy(),
        walk in prop::collection::vec(any::<u8>(), 1..24),
    ) {
        let (_, gp) = realise(&clauses);
        let n = gp.atom_count();
        for mode in [NegMode::SatisfiedOutside, NegMode::SatisfiedInside] {
            let mut inc = IncrementalLfp::new(&gp, mode);
            let mut prop_ = Propagator::new(&gp);
            let mut ctx = BitSet::new(n);
            let mut oracle = BitSet::new(n);
            for (step, &flip) in walk.iter().enumerate() {
                if n > 0 {
                    let a = flip as usize % n;
                    if ctx.contains(a) {
                        ctx.remove(a);
                    } else {
                        ctx.insert(a);
                    }
                }
                let count = inc.evaluate(&gp, &ctx);
                prop_.lfp_into(
                    &gp,
                    |q| ctx.contains(q.index()) == (mode == NegMode::SatisfiedInside),
                    &mut oracle,
                );
                prop_assert_eq!(inc.out(), &oracle, "step {} ({:?})", step, mode);
                prop_assert_eq!(count, oracle.count(), "step {} ({:?})", step, mode);
            }
        }
    }

    /// CSR storage round-trips clause contents identically: pushing
    /// arbitrary owned clauses and reading them back through the views
    /// preserves heads, bodies (order and duplicates), and the reverse
    /// indexes match a brute-force scan.
    #[test]
    fn csr_round_trips_clauses(raw in program_strategy()) {
        let mut gp = GroundProgram::new();
        let mut store = TermStore::new();
        // Intern one atom per mentioned id.
        let mut ids: Vec<GroundAtomId> = Vec::new();
        for k in 0u8..8 {
            let sym = store.intern_symbol(&format!("p{k}"));
            ids.push(gp.intern_atom(Atom::new(sym, Vec::new())));
        }
        let clauses: Vec<GroundClause> = raw
            .iter()
            .map(|(head, body)| GroundClause {
                head: ids[*head as usize],
                pos: body
                    .iter()
                    .filter(|(_, positive)| *positive)
                    .map(|(a, _)| ids[*a as usize])
                    .collect(),
                neg: body
                    .iter()
                    .filter(|(_, positive)| !*positive)
                    .map(|(a, _)| ids[*a as usize])
                    .collect(),
            })
            .collect();
        for c in &clauses {
            gp.push_clause(c.clone());
        }
        prop_assert_eq!(gp.clause_count(), clauses.len());
        for (i, c) in clauses.iter().enumerate() {
            prop_assert_eq!(&gp.clause(i as u32).to_owned(), c);
        }
        gp.finalize();
        for &a in &ids {
            let by_head: Vec<u32> = (0..clauses.len() as u32)
                .filter(|&ci| clauses[ci as usize].head == a)
                .collect();
            prop_assert_eq!(gp.clauses_for(a), &by_head[..]);
            let mut wp = Vec::new();
            let mut wn = Vec::new();
            for (ci, c) in clauses.iter().enumerate() {
                wp.extend(c.pos.iter().filter(|&&p| p == a).map(|_| ci as u32));
                wn.extend(c.neg.iter().filter(|&&q| q == a).map(|_| ci as u32));
            }
            prop_assert_eq!(gp.watch_pos(a), &wp[..]);
            prop_assert_eq!(gp.watch_neg(a), &wn[..]);
        }
    }

    /// Stages are consistent: every defined literal has a stage, every
    /// undefined one has none, and stages are ≥ 1.
    #[test]
    fn stage_bookkeeping(clauses in program_strategy()) {
        let (_, gp) = realise(&clauses);
        let staged = vp_iteration(&gp);
        for a in gp.atom_ids() {
            match staged.model.truth(a) {
                gsls_wfs::Truth::True => {
                    let s = staged.stage_of_true(a);
                    prop_assert!(s.is_some_and(|s| s >= 1));
                    prop_assert!(staged.stage_of_false(a).is_none());
                }
                gsls_wfs::Truth::False => {
                    let s = staged.stage_of_false(a);
                    prop_assert!(s.is_some_and(|s| s >= 1));
                    prop_assert!(staged.stage_of_true(a).is_none());
                }
                gsls_wfs::Truth::Undefined => {
                    prop_assert!(staged.stage_of_true(a).is_none());
                    prop_assert!(staged.stage_of_false(a).is_none());
                }
            }
        }
    }
}
