//! The immediate-consequence operators `T_P`, `T̄_P` and reduct least
//! fixpoints (Def. 2.3 of the paper).
//!
//! The least-fixpoint entry points here are convenience wrappers over
//! [`crate::propagator::Propagator`], which owns the reusable scratch;
//! engines making many reduct calls (alternating fixpoint, stable-model
//! enumeration, staged iterations, the tabled engine) hold a `Propagator`
//! directly so no per-call allocation happens. [`lfp_with_rebuild`] keeps
//! the old rebuild-everything-per-call implementation as the measured
//! baseline for the perf harness.

use crate::bitset::BitSet;
use crate::interp::Interp;
use crate::propagator::Propagator;
use gsls_ground::{GroundAtomId, GroundProgram};

/// One application of `T_P` to a partial interpretation: `p ∈ T_P(I)` iff
/// some rule for `p` has every body literal in `I` (positive literals true
/// in `I`, negated atoms false in `I`).
pub fn tp(gp: &GroundProgram, i: &Interp) -> BitSet {
    let mut out = BitSet::new(gp.atom_count());
    tp_into(gp, i, &mut out);
    out
}

/// [`tp`] into a caller-provided set (cleared first) — the
/// allocation-free form for iterated callers.
pub fn tp_into(gp: &GroundProgram, i: &Interp, out: &mut BitSet) {
    out.clear();
    for c in gp.clauses() {
        let fires = c.pos.iter().all(|&a| i.is_true(a)) && c.neg.iter().all(|&a| i.is_false(a));
        if fires {
            out.insert(c.head.index());
        }
    }
}

/// `T̄_P(I) = T_P(I) ∪ I` restricted to the positive side: applies one
/// step and unions with the positive part of `i`.
pub fn tp_bar(gp: &GroundProgram, i: &Interp) -> BitSet {
    let mut out = tp(gp, i);
    out.union_with(i.pos());
    out
}

/// The ω-iteration `⋃ₖ T̄_P^k(S⁻)` of Lemma 4.2(1): the least fixpoint of
/// positive derivation where a negated atom `¬q` holds iff `q ∈ neg_true`,
/// computed in linear time (Dowling–Gallier counter propagation).
///
/// Returns the set of derivable atoms.
pub fn tp_omega(gp: &GroundProgram, neg_true: &BitSet) -> BitSet {
    lfp_with(gp, |a| neg_true.contains(a.index()))
}

/// Least fixpoint of positive derivation where a body literal `¬q` is
/// considered satisfied iff `neg_sat(q)`.
///
/// This single primitive expresses the Gelfond–Lifschitz reduct fixpoint
/// `A(S)` (with `neg_sat(q) = q ∉ S`) used by the alternating fixpoint,
/// as well as the `T̄^ω(S⁻)` iteration of Lemma 4.2 (with
/// `neg_sat(q) = ¬q ∈ S⁻`).
///
/// Convenience form allocating fresh scratch; hot paths reuse a
/// [`Propagator`] and call [`Propagator::lfp_into`].
pub fn lfp_with(gp: &GroundProgram, neg_sat: impl Fn(GroundAtomId) -> bool) -> BitSet {
    let mut prop = Propagator::new(gp);
    let mut out = BitSet::new(gp.atom_count());
    prop.lfp_into(gp, neg_sat, &mut out);
    out
}

/// The pre-CSR baseline: identical semantics to [`lfp_with`], but
/// rebuilds the entire watch structure (`vec![Vec::new(); n]`) on every
/// call, as the engines did before the reusable propagator existed. Kept
/// only so the perf harness can quantify the win; do not use in engines.
pub fn lfp_with_rebuild(gp: &GroundProgram, neg_sat: impl Fn(GroundAtomId) -> bool) -> BitSet {
    let n = gp.atom_count();
    let mut truth = BitSet::new(n);
    // Per-clause count of unsatisfied positive body atoms.
    let mut missing: Vec<u32> = Vec::with_capacity(gp.clause_count());
    // Clause watch lists: clauses containing atom positively in the body.
    let mut watchers: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut queue: Vec<GroundAtomId> = Vec::new();

    for (ci, c) in gp.clauses().enumerate() {
        let ci = ci as u32;
        if !c.neg.iter().all(|&q| neg_sat(q)) {
            // A negative body literal is unsatisfied: the clause is
            // deleted by the reduct and can never fire.
            missing.push(u32::MAX);
            continue;
        }
        missing.push(c.pos.len() as u32);
        if c.pos.is_empty() {
            if truth.insert(c.head.index()) {
                queue.push(c.head);
            }
        } else {
            for &a in c.pos.iter() {
                watchers[a.index()].push(ci);
            }
        }
    }

    while let Some(a) = queue.pop() {
        // Move the watcher list out to appease the borrow checker; atom
        // `a` is true forever, so its watchers are needed only once.
        let ws = std::mem::take(&mut watchers[a.index()]);
        for ci in ws {
            let m = &mut missing[ci as usize];
            if *m == u32::MAX {
                continue;
            }
            // A clause may watch the same atom twice (duplicate body
            // literal); decrement once per watcher entry, which matches
            // the number of watch registrations.
            *m -= 1;
            if *m == 0 {
                let head = gp.clause(ci).head;
                if truth.insert(head.index()) {
                    queue.push(head);
                }
            }
        }
    }
    truth
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsls_ground::testutil::atom_id;
    use gsls_ground::Grounder;
    use gsls_lang::{parse_program, TermStore};

    fn ground(src: &str) -> (TermStore, GroundProgram) {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, src).unwrap();
        let gp = Grounder::ground(&mut s, &p).unwrap();
        (s, gp)
    }

    use atom_id as id;

    #[test]
    fn tp_single_step() {
        let (s, gp) = ground("p :- q. q.");
        let q = id(&s, &gp, "q");
        let p = id(&s, &gp, "p");
        let empty = Interp::new(gp.atom_count());
        let t1 = tp(&gp, &empty);
        assert!(t1.contains(q.index()), "fact fires immediately");
        assert!(!t1.contains(p.index()), "p needs q true first");
        let mut i = Interp::new(gp.atom_count());
        i.set_true(q);
        let t2 = tp(&gp, &i);
        assert!(t2.contains(p.index()));
    }

    #[test]
    fn tp_uses_negative_info() {
        let (s, gp) = ground("p :- ~q. q :- r.");
        let p = id(&s, &gp, "p");
        let q = id(&s, &gp, "q");
        let empty = Interp::new(gp.atom_count());
        assert!(!tp(&gp, &empty).contains(p.index()), "~q not yet known");
        let mut i = Interp::new(gp.atom_count());
        i.set_false(q);
        assert!(tp(&gp, &i).contains(p.index()));
    }

    #[test]
    fn tp_bar_accumulates() {
        let (s, gp) = ground("p :- q. q.");
        let q = id(&s, &gp, "q");
        let mut i = Interp::new(gp.atom_count());
        i.set_true(q);
        let t = tp_bar(&gp, &i);
        assert!(t.contains(q.index()), "T̄ keeps old atoms");
    }

    #[test]
    fn lfp_definite_chain() {
        let (s, gp) = ground("p0. p1 :- p0. p2 :- p1. p3 :- p2.");
        let out = lfp_with(&gp, |_| false);
        assert_eq!(out.count(), 4);
        let p3 = id(&s, &gp, "p3");
        assert!(out.contains(p3.index()));
    }

    #[test]
    fn lfp_respects_reduct_deletion() {
        let (s, gp) = ground("p :- ~q. q.");
        let p = id(&s, &gp, "p");
        let q = id(&s, &gp, "q");
        // neg_sat(q) = false: the p-rule is deleted.
        let out = lfp_with(&gp, |_| false);
        assert!(!out.contains(p.index()));
        assert!(out.contains(q.index()));
        // neg_sat(q) = true: both derivable.
        let out2 = lfp_with(&gp, |_| true);
        assert!(out2.contains(p.index()));
    }

    #[test]
    fn lfp_positive_loop_not_derived() {
        // Full instantiation keeps the a/b loop (relevant grounding would
        // prune it as never-derivable).
        use gsls_ground::{GrounderOpts, GroundingMode};
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "a :- b. b :- a. c.").unwrap();
        let gp = Grounder::ground_with(
            &mut s,
            &p,
            GrounderOpts {
                mode: GroundingMode::Full,
                ..GrounderOpts::default()
            },
        )
        .unwrap();
        let a = id(&s, &gp, "a");
        let out = lfp_with(&gp, |_| true);
        assert!(!out.contains(a.index()), "positive loop stays underived");
        assert_eq!(out.count(), 1);
    }

    #[test]
    fn lfp_duplicate_body_literal() {
        // A clause mentioning q twice positively must still fire exactly
        // when q is derived.
        let (s, gp) = ground("p :- q, q. q.");
        let p = id(&s, &gp, "p");
        let out = lfp_with(&gp, |_| false);
        assert!(out.contains(p.index()));
    }

    #[test]
    fn tp_omega_matches_lemma_4_2_direction() {
        // p :- ~q. with ¬q ∈ S⁻: p derivable by T̄^ω(S⁻).
        let (s, gp) = ground("p :- ~q. r :- p.");
        let q = id(&s, &gp, "q");
        let p = id(&s, &gp, "p");
        let r = id(&s, &gp, "r");
        let mut sneg = BitSet::new(gp.atom_count());
        sneg.insert(q.index());
        let out = tp_omega(&gp, &sneg);
        assert!(out.contains(p.index()));
        assert!(out.contains(r.index()), "chained through p");
    }

    #[test]
    fn rebuild_baseline_agrees_with_propagator() {
        for src in [
            "p0. p1 :- p0. p2 :- p1.",
            "p :- ~q. q. r :- p, ~s.",
            "a :- b, ~c. b :- ~d. d.",
        ] {
            let (_, gp) = ground(src);
            for flag in [false, true] {
                assert_eq!(
                    lfp_with(&gp, |_| flag),
                    lfp_with_rebuild(&gp, |_| flag),
                    "{src} / neg_sat={flag}"
                );
            }
        }
    }
}
