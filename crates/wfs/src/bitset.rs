//! A fixed-capacity bit set over dense ground-atom ids.
//!
//! The fixpoint engines spend their time in membership tests and
//! insertions over `GroundAtomId`s, so a `Vec<u64>` bitset (rather than a
//! hash set) keeps them cache-friendly.

/// A fixed-capacity set of `u32` indices backed by 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty set with capacity for indices `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The capacity (number of representable indices).
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Whether `i` is in the set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Inserts `i`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Removes `i`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let present = *w & mask != 0;
        *w &= !mask;
        present
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Inserts every index in `0..capacity`.
    pub fn fill(&mut self) {
        self.words.fill(u64::MAX);
        self.trim();
    }

    fn trim(&mut self) {
        let extra = self.words.len() * 64 - self.len;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }

    /// Number of elements.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// `self ∪= other` (capacities must match).
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self ∩= other` (capacities must match).
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Whether `self ∩ other = ∅`.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// The complement within `0..capacity`.
    pub fn complement(&self) -> BitSet {
        let mut out = BitSet {
            words: self.words.iter().map(|&w| !w).collect(),
            len: self.len,
        };
        out.trim();
        out
    }

    /// Complements in place within `0..capacity` — the allocation-free
    /// form used by the reusable fixpoint scratch.
    pub fn complement_in_place(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.trim();
    }

    /// Copies `other`'s contents into `self` (capacities must match);
    /// reuses the existing allocation.
    pub fn copy_from(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        self.words.copy_from_slice(&other.words);
    }

    /// The raw backing words, read-only. Lets the incremental fixpoint
    /// engines diff two same-capacity sets word-by-word instead of
    /// probing every index.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Grows the capacity to `new_len`, preserving the current members.
    /// No-op when `new_len` is not larger than the current capacity —
    /// a bitset never shrinks, so ids handed out earlier stay valid.
    /// This is the resize hook the session engines use when a commit
    /// appends ground atoms.
    pub fn grow(&mut self, new_len: usize) {
        if new_len <= self.len {
            return;
        }
        self.words.resize(new_len.div_ceil(64), 0);
        self.len = new_len;
    }

    /// Builds a set with explicit capacity `cap` from an iterator of
    /// member indices.
    ///
    /// This is the only iterator constructor: sizing a set to its
    /// largest member (as a `FromIterator` impl once did) silently
    /// violates the capacity-equality contract every binary operation
    /// (`union_with`, `is_subset`, …) debug-asserts the moment such a
    /// set meets a program-sized one.
    pub fn from_indices(cap: usize, iter: impl IntoIterator<Item = usize>) -> Self {
        let mut s = BitSet::new(cap);
        for i in iter {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(100);
        assert!(!s.contains(63));
        assert!(s.insert(63));
        assert!(!s.insert(63));
        assert!(s.contains(63));
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert!(!s.contains(63));
    }

    #[test]
    fn word_boundaries() {
        let mut s = BitSet::new(129);
        for i in [0, 63, 64, 127, 128] {
            s.insert(i);
        }
        assert_eq!(s.count(), 5);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![0, 63, 64, 127, 128]);
    }

    #[test]
    fn fill_and_complement_respect_capacity() {
        let mut s = BitSet::new(70);
        s.fill();
        assert_eq!(s.count(), 70);
        let c = s.complement();
        assert!(c.is_empty());
        let empty = BitSet::new(70);
        assert_eq!(empty.complement().count(), 70);
    }

    #[test]
    fn union_intersect_subset() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        a.insert(1);
        a.insert(2);
        b.insert(2);
        b.insert(3);
        assert!(!a.is_subset(&b));
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), 3);
        assert!(a.is_subset(&u));
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn disjointness() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        a.insert(1);
        b.insert(2);
        assert!(a.is_disjoint(&b));
        b.insert(1);
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn from_indices_respects_requested_capacity() {
        let s = BitSet::from_indices(100, [3usize, 5, 9]);
        assert_eq!(s.capacity(), 100);
        assert_eq!(s.count(), 3);
        assert!(s.contains(9));
        // The whole point: it can meet a program-sized set without
        // tripping the capacity-equality contract.
        let mut program_sized = BitSet::new(100);
        program_sized.insert(64);
        program_sized.union_with(&s);
        assert_eq!(program_sized.count(), 4);
        assert!(s.is_subset(&program_sized));
    }

    #[test]
    fn zero_capacity() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert!(s.iter().next().is_none());
    }
}
