//! Stable models (Gelfond–Lifschitz) for comparison with the WFS.
//!
//! Section 1 of the paper situates the well-founded semantics among its
//! competitors; the classical relationships tested by experiment E11 are:
//!
//! * every stable model extends the well-founded partial model;
//! * if the well-founded model is total it is the unique stable model;
//! * programs like `p ← ¬p` have no stable model, while the WFS still
//!   assigns (undefined) meaning.
//!
//! The enumerator prunes with the WFM first and then runs
//! **branch-and-propagate** over the remaining undefined atoms: branch
//! one atom at a time, and at every node bound all completions of the
//! partial assignment by two reduct fixpoints — `lfp` w.r.t. the
//! smallest consistent candidate over-approximates what any completion
//! can derive, `lfp` w.r.t. the largest under-approximates what every
//! completion must derive. Candidates whose bounds already contradict
//! the assignment are pruned, and forced atoms are propagated without
//! branching. Unlike the `2^k` candidate-mask loop this replaces (which
//! hard-panicked above 26 undefined atoms), the residue size only
//! bounds the branching *depth*; time is spent per surviving branch,
//! not per subset.

use crate::alternating::well_founded_model;
use crate::bitset::BitSet;
use crate::incremental::{IncrementalLfp, NegMode};
use crate::interp::Interp;
use crate::tp::lfp_with;
use gsls_ground::GroundProgram;

/// Whether the two-valued interpretation with true-set `s` is a stable
/// model of `gp`: `s = lfp(T_{P^s})` for the Gelfond–Lifschitz reduct
/// `P^s`.
pub fn is_stable_model(gp: &GroundProgram, s: &BitSet) -> bool {
    lfp_with(gp, |q| !s.contains(q.index())) == *s
}

/// Enumerates up to `limit` stable models (as true-sets over the atom
/// space of `gp`), in a deterministic (but otherwise unspecified) order.
///
/// Works for any undefined-residue size: the search branches atom by
/// atom and prunes with reduct-fixpoint bounds, so programs whose WFM
/// leaves hundreds of atoms undefined enumerate fine as long as the
/// requested number of models (and the genuinely ambiguous branching)
/// stays manageable.
pub fn stable_models(gp: &GroundProgram, limit: usize) -> Vec<BitSet> {
    if limit == 0 {
        return Vec::new();
    }
    let wfm = well_founded_model(gp);
    let n = gp.atom_count();
    // Stable models agree with the WFM on its defined part: true atoms
    // seed the candidate, false atoms are excluded outright, and the
    // search space is the undefined residue only.
    let mut search = StableSearch {
        gp,
        in_set: BitSet::from_indices(n, wfm.iter_true().map(|a| a.index())),
        out_set: BitSet::from_indices(n, wfm.iter_false().map(|a| a.index())),
        free: wfm.iter_undefined().map(|a| a.index()).collect(),
        upper: IncrementalLfp::new(gp, NegMode::SatisfiedOutside),
        lower: IncrementalLfp::new(gp, NegMode::SatisfiedInside),
        trail: Vec::new(),
        models: Vec::new(),
        limit,
    };
    search.dfs();
    search.models
}

/// State of the branch-and-propagate enumeration.
struct StableSearch<'a> {
    gp: &'a GroundProgram,
    /// WFM-true atoms plus atoms decided/forced true on this branch.
    in_set: BitSet,
    /// WFM-false atoms plus atoms decided/forced false on this branch.
    out_set: BitSet,
    /// The undefined residue (ascending atom index — branch order).
    free: Vec<usize>,
    /// `lfp` w.r.t. the smallest candidate `in_set` — an upper bound on
    /// what any completion derives (antimonotonicity of the reduct).
    /// Difference-driven: along the DFS, consecutive contexts differ by
    /// the few atoms assigned or undone between nodes, so each bound
    /// update costs delta work, not a program rescan.
    upper: IncrementalLfp,
    /// `lfp` w.r.t. the largest candidate `¬out_set` — a lower bound on
    /// what every completion derives (`¬q` satisfied iff `q ∈ out_set`).
    lower: IncrementalLfp,
    /// Atoms assigned since the search began, for backtracking: the
    /// bool records which side (`true` = `in_set`).
    trail: Vec<(usize, bool)>,
    models: Vec<BitSet>,
    limit: usize,
}

impl StableSearch<'_> {
    fn dfs(&mut self) {
        if self.models.len() >= self.limit {
            return;
        }
        let mark = self.trail.len();
        if self.propagate() {
            match self.first_unassigned() {
                None => {
                    // Complete assignment that survived the bound
                    // checks: upper == in_set == lfp of its own reduct,
                    // i.e. a stable model.
                    debug_assert!(is_stable_model(self.gp, &self.in_set));
                    self.models.push(self.in_set.clone());
                }
                Some(a) => {
                    // This node's forced assignments (made by propagate
                    // above) stay in place for both branches; only the
                    // branch decision itself is undone in between.
                    let branch_mark = self.trail.len();
                    // False branch first (the old mask loop also started
                    // from the all-false candidate).
                    self.assign(a, false);
                    self.dfs();
                    self.undo(branch_mark);
                    if self.models.len() < self.limit {
                        self.assign(a, true);
                        self.dfs();
                        self.undo(branch_mark);
                    }
                }
            }
        }
        self.undo(mark);
    }

    fn first_unassigned(&self) -> Option<usize> {
        self.free
            .iter()
            .copied()
            .find(|&a| !self.in_set.contains(a) && !self.out_set.contains(a))
    }

    fn assign(&mut self, a: usize, truth: bool) {
        if truth {
            self.in_set.insert(a);
        } else {
            self.out_set.insert(a);
        }
        self.trail.push((a, truth));
    }

    fn undo(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let (a, truth) = self.trail.pop().expect("trail underflow");
            if truth {
                self.in_set.remove(a);
            } else {
                self.out_set.remove(a);
            }
        }
    }

    /// Tightens the partial assignment to its bound-implied closure.
    /// Returns `false` if the branch is contradictory (no completion of
    /// the assignment can be stable).
    fn propagate(&mut self) -> bool {
        loop {
            // Any completion S satisfies in_set ⊆ S ⊆ ¬out_set, and the
            // reduct fixpoint is antimonotone in S, so
            //   lower = lfp(P^{¬out_set}) ⊆ lfp(P^S) ⊆ lfp(P^{in_set}) = upper
            // while a stable S must equal lfp(P^S).
            self.upper.evaluate(self.gp, &self.in_set);
            if !self.in_set.is_subset(self.upper.out()) {
                return false; // an atom decided true can never be derived
            }
            self.lower.evaluate(self.gp, &self.out_set);
            if !self.lower.out().is_disjoint(&self.out_set) {
                return false; // an atom decided false is always derived
            }
            // Unit propagation: forced verdicts on still-free atoms.
            let mut changed = false;
            for i in 0..self.free.len() {
                let a = self.free[i];
                if self.in_set.contains(a) || self.out_set.contains(a) {
                    continue;
                }
                if self.lower.out().contains(a) {
                    self.assign(a, true);
                    changed = true;
                } else if !self.upper.out().contains(a) {
                    self.assign(a, false);
                    changed = true;
                }
            }
            if !changed {
                return true;
            }
        }
    }
}

/// The intersection of all stable models, if any exist.
pub fn stable_intersection(gp: &GroundProgram) -> Option<BitSet> {
    let models = stable_models(gp, usize::MAX);
    let mut iter = models.into_iter();
    let mut acc = iter.next()?;
    for m in iter {
        acc.intersect_with(&m);
    }
    Some(acc)
}

/// Checks the classical containment: the WFM's true atoms are true in
/// every stable model and its false atoms are false in every stable model.
pub fn wfm_within_all_stable(gp: &GroundProgram, wfm: &Interp) -> bool {
    stable_models(gp, usize::MAX).iter().all(|s| {
        wfm.iter_true().all(|a| s.contains(a.index()))
            && wfm.iter_false().all(|a| !s.contains(a.index()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsls_ground::Grounder;
    use gsls_lang::{parse_program, TermStore};

    fn ground(src: &str) -> (TermStore, GroundProgram) {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, src).unwrap();
        let gp = Grounder::ground(&mut s, &p).unwrap();
        (s, gp)
    }

    use gsls_ground::testutil::atom_id as id;

    #[test]
    fn mutual_negation_two_stable_models() {
        let (s, gp) = ground("p :- ~q. q :- ~p.");
        let models = stable_models(&gp, 10);
        assert_eq!(models.len(), 2);
        let p = id(&s, &gp, "p");
        let q = id(&s, &gp, "q");
        // {p} and {q}.
        assert!(models
            .iter()
            .any(|m| m.contains(p.index()) && !m.contains(q.index())));
        assert!(models
            .iter()
            .any(|m| m.contains(q.index()) && !m.contains(p.index())));
    }

    #[test]
    fn odd_loop_no_stable_model() {
        let (_, gp) = ground("p :- ~p.");
        assert!(stable_models(&gp, 10).is_empty());
        assert!(stable_intersection(&gp).is_none());
    }

    #[test]
    fn total_wfm_unique_stable_model() {
        let (s, gp) = ground("q. p :- ~q. r :- ~p.");
        let models = stable_models(&gp, 10);
        assert_eq!(models.len(), 1);
        let m = &models[0];
        assert!(m.contains(id(&s, &gp, "q").index()));
        assert!(m.contains(id(&s, &gp, "r").index()));
        assert!(!m.contains(id(&s, &gp, "p").index()));
    }

    #[test]
    fn wfm_contained_in_every_stable_model() {
        for src in [
            "p :- ~q. q :- ~p. r :- ~r. s.",
            "q. p :- ~q.",
            "a :- ~b. b :- ~a. c :- a. c :- b.",
        ] {
            let (_, gp) = ground(src);
            let wfm = well_founded_model(&gp);
            assert!(wfm_within_all_stable(&gp, &wfm), "{src}");
        }
    }

    #[test]
    fn stable_checker_rejects_non_minimal() {
        let (s, gp) = ground("p :- p.");
        // grounded relevant mode prunes; build by full check instead:
        // {} is stable (reduct p:-p has lfp ∅); {p} is not (lfp ∅ ≠ {p}).
        let n = gp.atom_count();
        let empty = BitSet::new(n.max(1));
        if n > 0 {
            assert!(is_stable_model(&gp, &BitSet::new(n)));
            let mut withp = BitSet::new(n);
            if let Some(p) = gp.atom_ids().find(|&a| gp.display_atom(&s, a) == "p") {
                withp.insert(p.index());
                assert!(!is_stable_model(&gp, &withp));
            }
        } else {
            assert!(empty.is_empty());
        }
    }

    /// Oracle: enumerate all 2^n subsets and keep the stable ones —
    /// feasible only for tiny programs, but implementation-independent.
    fn brute_force_stable(gp: &GroundProgram) -> Vec<BitSet> {
        let n = gp.atom_count();
        assert!(n <= 12, "oracle is exponential");
        let mut out = Vec::new();
        for mask in 0u32..(1 << n) {
            let s = BitSet::from_indices(n, (0..n).filter(|b| mask & (1 << b) != 0));
            if is_stable_model(gp, &s) {
                out.push(s);
            }
        }
        out
    }

    #[test]
    fn branch_and_propagate_matches_brute_force() {
        for src in [
            "p :- ~q. q :- ~p.",
            "p :- ~p.",
            "a :- ~b. b :- ~a. c :- a. c :- b. d :- c, ~e. e :- ~d.",
            "p :- ~q, ~r. q :- r, ~p. r :- p, ~q. s :- ~p, ~q, ~r.",
            "x :- ~y. y :- ~z. z :- ~x.",
            "q. p :- ~q. r :- ~p.",
        ] {
            let (_, gp) = ground(src);
            let mut found = stable_models(&gp, usize::MAX);
            let mut oracle = brute_force_stable(&gp);
            let key = |s: &BitSet| s.iter().collect::<Vec<_>>();
            found.sort_by_key(key);
            oracle.sort_by_key(key);
            assert_eq!(found, oracle, "{src}");
        }
    }

    #[test]
    fn large_undefined_residue_no_panic() {
        // 15 mutual-negation pairs: 30 undefined atoms, 2^15 stable
        // models. The old mask loop asserted k <= 26 and would have
        // needed 2^30 candidate checks below that; branch-and-propagate
        // spends time only on surviving branches.
        let mut src = String::new();
        for i in 0..15 {
            src.push_str(&format!("a{i} :- ~b{i}. b{i} :- ~a{i}. "));
        }
        let (_, gp) = ground(&src);
        let wfm = well_founded_model(&gp);
        assert!(
            wfm.iter_undefined().count() >= 30,
            "workload must exceed the old 26-atom panic threshold"
        );
        // A bounded request returns promptly.
        let some = stable_models(&gp, 100);
        assert_eq!(some.len(), 100);
        for m in &some {
            assert!(is_stable_model(&gp, m));
        }
        // Exhaustive enumeration completes and has the right count.
        let all = stable_models(&gp, usize::MAX);
        assert_eq!(all.len(), 1 << 15);
        // Each pair contributes exactly one of {a_i, b_i} per model, so
        // the intersection of all stable models is empty — and the WFM
        // (all-undefined) is trivially within all of them.
        let inter = stable_intersection(&gp).expect("models exist");
        assert!(inter.is_empty());
        assert!(wfm_within_all_stable(&gp, &wfm));
    }

    #[test]
    fn forced_propagation_skips_hopeless_branches() {
        // A long chain q0 :- ~q1. … with a fact at the end is totally
        // defined (unique stable model) — the enumerator must find it
        // without branching at all.
        let mut src = String::from("q40.\n");
        for i in (0..40).rev() {
            src.push_str(&format!("q{} :- ~q{}.\n", i, i + 1));
        }
        let (_, gp) = ground(&src);
        let models = stable_models(&gp, usize::MAX);
        assert_eq!(models.len(), 1);
        assert!(is_stable_model(&gp, &models[0]));
    }

    #[test]
    fn intersection_includes_shared_consequences() {
        let (s, gp) = ground("a :- ~b. b :- ~a. c :- a. c :- b.");
        // c true in both stable models; intersection = {c}.
        let inter = stable_intersection(&gp).unwrap();
        assert!(inter.contains(id(&s, &gp, "c").index()));
        assert!(!inter.contains(id(&s, &gp, "a").index()));
        // The WFS leaves c undefined — stable-intersection is strictly
        // stronger here (the classical gap between the two semantics).
        let wfm = well_founded_model(&gp);
        assert!(wfm.is_undefined(id(&s, &gp, "c")));
    }
}
