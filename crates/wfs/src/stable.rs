//! Stable models (Gelfond–Lifschitz) for comparison with the WFS.
//!
//! Section 1 of the paper situates the well-founded semantics among its
//! competitors; the classical relationships tested by experiment E11 are:
//!
//! * every stable model extends the well-founded partial model;
//! * if the well-founded model is total it is the unique stable model;
//! * programs like `p ← ¬p` have no stable model, while the WFS still
//!   assigns (undefined) meaning.
//!
//! The enumerator prunes with the WFM first and then branches on the
//! remaining undefined atoms — exponential only in the undefined residue,
//! which is what small-model comparisons need.

use crate::alternating::well_founded_model;
use crate::bitset::BitSet;
use crate::interp::Interp;
use crate::propagator::Propagator;
use crate::tp::lfp_with;
use gsls_ground::GroundProgram;

/// Whether the two-valued interpretation with true-set `s` is a stable
/// model of `gp`: `s = lfp(T_{P^s})` for the Gelfond–Lifschitz reduct
/// `P^s`.
pub fn is_stable_model(gp: &GroundProgram, s: &BitSet) -> bool {
    lfp_with(gp, |q| !s.contains(q.index())) == *s
}

/// Enumerates up to `limit` stable models (as true-sets over the atom
/// space of `gp`), in a deterministic order.
pub fn stable_models(gp: &GroundProgram, limit: usize) -> Vec<BitSet> {
    let wfm = well_founded_model(gp);
    let undefined: Vec<usize> = wfm.iter_undefined().map(|a| a.index()).collect();
    let mut out = Vec::new();
    // Branch over the undefined residue only: stable models agree with the
    // WFM on its defined part.
    let base: BitSet = {
        let mut b = BitSet::new(gp.atom_count());
        for a in wfm.iter_true() {
            b.insert(a.index());
        }
        b
    };
    let k = undefined.len();
    assert!(k <= 26, "undefined residue too large to enumerate ({k})");
    // One propagator and one scratch set serve every candidate check.
    let mut prop = Propagator::new(gp);
    let mut lfp = BitSet::new(gp.atom_count());
    for mask in 0u64..(1u64 << k) {
        if out.len() >= limit {
            break;
        }
        let mut s = base.clone();
        for (bit, &a) in undefined.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                s.insert(a);
            }
        }
        prop.lfp_into(gp, |q| !s.contains(q.index()), &mut lfp);
        if lfp == s {
            out.push(s);
        }
    }
    out
}

/// The intersection of all stable models, if any exist.
pub fn stable_intersection(gp: &GroundProgram) -> Option<BitSet> {
    let models = stable_models(gp, usize::MAX);
    let mut iter = models.into_iter();
    let mut acc = iter.next()?;
    for m in iter {
        acc.intersect_with(&m);
    }
    Some(acc)
}

/// Checks the classical containment: the WFM's true atoms are true in
/// every stable model and its false atoms are false in every stable model.
pub fn wfm_within_all_stable(gp: &GroundProgram, wfm: &Interp) -> bool {
    stable_models(gp, usize::MAX).iter().all(|s| {
        wfm.iter_true().all(|a| s.contains(a.index()))
            && wfm.iter_false().all(|a| !s.contains(a.index()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsls_ground::{GroundAtomId, Grounder};
    use gsls_lang::{parse_program, TermStore};

    fn ground(src: &str) -> (TermStore, GroundProgram) {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, src).unwrap();
        let gp = Grounder::ground(&mut s, &p).unwrap();
        (s, gp)
    }

    fn id(store: &TermStore, gp: &GroundProgram, text: &str) -> GroundAtomId {
        gp.atom_ids()
            .find(|&a| gp.display_atom(store, a) == text)
            .unwrap_or_else(|| panic!("atom {text} not found"))
    }

    #[test]
    fn mutual_negation_two_stable_models() {
        let (s, gp) = ground("p :- ~q. q :- ~p.");
        let models = stable_models(&gp, 10);
        assert_eq!(models.len(), 2);
        let p = id(&s, &gp, "p");
        let q = id(&s, &gp, "q");
        // {p} and {q}.
        assert!(models
            .iter()
            .any(|m| m.contains(p.index()) && !m.contains(q.index())));
        assert!(models
            .iter()
            .any(|m| m.contains(q.index()) && !m.contains(p.index())));
    }

    #[test]
    fn odd_loop_no_stable_model() {
        let (_, gp) = ground("p :- ~p.");
        assert!(stable_models(&gp, 10).is_empty());
        assert!(stable_intersection(&gp).is_none());
    }

    #[test]
    fn total_wfm_unique_stable_model() {
        let (s, gp) = ground("q. p :- ~q. r :- ~p.");
        let models = stable_models(&gp, 10);
        assert_eq!(models.len(), 1);
        let m = &models[0];
        assert!(m.contains(id(&s, &gp, "q").index()));
        assert!(m.contains(id(&s, &gp, "r").index()));
        assert!(!m.contains(id(&s, &gp, "p").index()));
    }

    #[test]
    fn wfm_contained_in_every_stable_model() {
        for src in [
            "p :- ~q. q :- ~p. r :- ~r. s.",
            "q. p :- ~q.",
            "a :- ~b. b :- ~a. c :- a. c :- b.",
        ] {
            let (_, gp) = ground(src);
            let wfm = well_founded_model(&gp);
            assert!(wfm_within_all_stable(&gp, &wfm), "{src}");
        }
    }

    #[test]
    fn stable_checker_rejects_non_minimal() {
        let (s, gp) = ground("p :- p.");
        // grounded relevant mode prunes; build by full check instead:
        // {} is stable (reduct p:-p has lfp ∅); {p} is not (lfp ∅ ≠ {p}).
        let n = gp.atom_count();
        let empty = BitSet::new(n.max(1));
        if n > 0 {
            assert!(is_stable_model(&gp, &BitSet::new(n)));
            let mut withp = BitSet::new(n);
            if let Some(p) = gp.atom_ids().find(|&a| gp.display_atom(&s, a) == "p") {
                withp.insert(p.index());
                assert!(!is_stable_model(&gp, &withp));
            }
        } else {
            assert!(empty.is_empty());
        }
    }

    #[test]
    fn intersection_includes_shared_consequences() {
        let (s, gp) = ground("a :- ~b. b :- ~a. c :- a. c :- b.");
        // c true in both stable models; intersection = {c}.
        let inter = stable_intersection(&gp).unwrap();
        assert!(inter.contains(id(&s, &gp, "c").index()));
        assert!(!inter.contains(id(&s, &gp, "a").index()));
        // The WFS leaves c undefined — stable-intersection is strictly
        // stronger here (the classical gap between the two semantics).
        let wfm = well_founded_model(&gp);
        assert!(wfm.is_undefined(id(&s, &gp, "c")));
    }
}
