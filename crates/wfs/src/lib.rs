//! # gsls-wfs — the well-founded semantics, bottom-up
//!
//! Ground-level fixpoint machinery for the well-founded semantics of
//! Van Gelder, Ross & Schlipf, as summarised in Section 2 of Ross's
//! global-SLS paper:
//!
//! * [`interp`] — three-valued partial interpretations (Def. 1.7);
//! * [`propagator`] — the **reusable Dowling–Gallier propagation
//!   context** every engine's least fixpoints run through;
//! * [`incremental`] — the **difference-driven** mode of that substrate:
//!   reduct fixpoints maintained across a chain of nearby contexts, with
//!   work proportional to the context *delta* (revive / delete-and-
//!   rederive through `watch_neg`), backing the alternating fixpoint and
//!   the `V_P` stages;
//! * [`tp`] — the immediate-consequence operators `T_P`, `T̄_P` and the
//!   linear-time reduct least fixpoint (convenience wrappers over the
//!   propagator, plus the rebuild-per-call baseline for the perf
//!   harness);
//! * [`unfounded`] — greatest unfounded sets `U_P(I)` (Def. 2.1/2.2);
//! * [`wp`] — the `W_P` and `V_P` iterations with per-literal **stages**
//!   (Def. 2.3/2.4), the quantity Theorem 4.5 equates with global-tree
//!   levels;
//! * [`alternating`] — the efficient alternating-fixpoint algorithm used
//!   as the bottom-up baseline in every benchmark;
//! * [`fitting`] — Fitting's Kripke–Kleene semantics (comparison);
//! * [`stable`] — stable-model enumeration (comparison).
//!
//! All engines operate on **finalized** [`gsls_ground::GroundProgram`]s
//! (CSR clause storage + precomputed watch indexes).
//!
//! ## Propagator reuse contract
//!
//! A [`Propagator`] is created once per ground program and owns all
//! propagation scratch (missing-literal counters, queue, liveness
//! stamps). Hot paths — the alternating fixpoint, stable-model
//! enumeration, `W_P`/`V_P` stages, and the tabled engine's SCC-local
//! fixpoints in `gsls-core` — hold one propagator plus caller-owned
//! output bitsets and therefore perform **zero heap allocation per
//! reduct call** after warm-up (verified by the `perf_report` harness
//! with a counting allocator). The convenience functions ([`lfp_with`],
//! [`greatest_unfounded`], …) allocate fresh scratch per call and exist
//! for tests and one-shot callers; see [`propagator`] for the full
//! contract, including the pre-clearing rule for
//! [`Propagator::lfp_restricted`].

pub mod alternating;
pub mod bitset;
pub mod fitting;
pub mod incremental;
pub mod interp;
pub mod propagator;
pub mod stable;
pub mod tp;
pub mod unfounded;
pub mod wp;

pub use alternating::{
    well_founded_model, well_founded_model_rebuild, well_founded_model_scratch,
    well_founded_model_with_stats, well_founded_refresh, well_founded_refresh_governed,
    AlternatingStats,
};
pub use bitset::BitSet;
pub use fitting::{fitting_model, phi};
pub use incremental::{IncStats, IncrementalLfp, NegMode};
pub use interp::{Interp, Truth};
pub use propagator::Propagator;
pub use stable::{is_stable_model, stable_intersection, stable_models, wfm_within_all_stable};
pub use tp::{lfp_with, lfp_with_rebuild, tp, tp_bar, tp_into, tp_omega};
pub use unfounded::{greatest_unfounded, is_unfounded_set, unfounded_into};
pub use wp::{vp_iteration, wp_iteration, StagedModel};
