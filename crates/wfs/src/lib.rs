//! # gsls-wfs — the well-founded semantics, bottom-up
//!
//! Ground-level fixpoint machinery for the well-founded semantics of
//! Van Gelder, Ross & Schlipf, as summarised in Section 2 of Ross's
//! global-SLS paper:
//!
//! * [`interp`] — three-valued partial interpretations (Def. 1.7);
//! * [`tp`] — the immediate-consequence operators `T_P`, `T̄_P` and the
//!   linear-time reduct least fixpoint (Dowling–Gallier);
//! * [`unfounded`] — greatest unfounded sets `U_P(I)` (Def. 2.1/2.2);
//! * [`wp`] — the `W_P` and `V_P` iterations with per-literal **stages**
//!   (Def. 2.3/2.4), the quantity Theorem 4.5 equates with global-tree
//!   levels;
//! * [`alternating`] — the efficient alternating-fixpoint algorithm used
//!   as the bottom-up baseline in every benchmark;
//! * [`fitting`] — Fitting's Kripke–Kleene semantics (comparison);
//! * [`stable`] — stable-model enumeration (comparison).
//!
//! All engines operate on [`gsls_ground::GroundProgram`]s.

pub mod alternating;
pub mod bitset;
pub mod fitting;
pub mod interp;
pub mod stable;
pub mod tp;
pub mod unfounded;
pub mod wp;

pub use alternating::{well_founded_model, well_founded_model_with_stats, AlternatingStats};
pub use bitset::BitSet;
pub use fitting::{fitting_model, phi};
pub use interp::{Interp, Truth};
pub use stable::{is_stable_model, stable_intersection, stable_models, wfm_within_all_stable};
pub use tp::{lfp_with, tp, tp_bar, tp_omega};
pub use unfounded::{greatest_unfounded, is_unfounded_set};
pub use wp::{vp_iteration, wp_iteration, StagedModel};
