//! Three-valued (partial) interpretations — Def. 1.7 of the paper.

use crate::bitset::BitSet;
use gsls_ground::{GroundAtomId, GroundProgram};
use gsls_lang::TermStore;
use std::fmt;

/// Truth value of a ground atom in a partial interpretation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Truth {
    /// The atom is in the interpretation.
    True,
    /// The atom's negation is in the interpretation.
    False,
    /// Neither the atom nor its negation is in the interpretation.
    Undefined,
}

impl fmt::Display for Truth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Truth::True => write!(f, "true"),
            Truth::False => write!(f, "false"),
            Truth::Undefined => write!(f, "undefined"),
        }
    }
}

/// A consistent set of literals over a dense ground-atom space: a pair of
/// disjoint bitsets (`pos`, `neg`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interp {
    pos: BitSet,
    neg: BitSet,
}

impl Interp {
    /// The empty interpretation over `n` atoms.
    pub fn new(n: usize) -> Self {
        Interp {
            pos: BitSet::new(n),
            neg: BitSet::new(n),
        }
    }

    /// Builds an interpretation from explicit positive/negative sets.
    ///
    /// # Panics
    /// Panics if the sets intersect (inconsistent, Def. 1.6).
    pub fn from_parts(pos: BitSet, neg: BitSet) -> Self {
        assert!(pos.is_disjoint(&neg), "inconsistent interpretation");
        Interp { pos, neg }
    }

    /// Capacity (number of atoms in the Herbrand base slice).
    pub fn capacity(&self) -> usize {
        self.pos.capacity()
    }

    /// The truth value of `a`.
    #[inline]
    pub fn truth(&self, a: GroundAtomId) -> Truth {
        if self.pos.contains(a.index()) {
            Truth::True
        } else if self.neg.contains(a.index()) {
            Truth::False
        } else {
            Truth::Undefined
        }
    }

    /// Whether `a` is true.
    #[inline]
    pub fn is_true(&self, a: GroundAtomId) -> bool {
        self.pos.contains(a.index())
    }

    /// Whether `a` is false.
    #[inline]
    pub fn is_false(&self, a: GroundAtomId) -> bool {
        self.neg.contains(a.index())
    }

    /// Whether `a` is undefined.
    #[inline]
    pub fn is_undefined(&self, a: GroundAtomId) -> bool {
        !self.pos.contains(a.index()) && !self.neg.contains(a.index())
    }

    /// Marks `a` true. Returns `true` if newly added.
    ///
    /// # Panics
    /// Panics (debug) if `a` is already false.
    pub fn set_true(&mut self, a: GroundAtomId) -> bool {
        debug_assert!(!self.neg.contains(a.index()), "inconsistent insert");
        self.pos.insert(a.index())
    }

    /// Marks `a` false. Returns `true` if newly added.
    pub fn set_false(&mut self, a: GroundAtomId) -> bool {
        debug_assert!(!self.pos.contains(a.index()), "inconsistent insert");
        self.neg.insert(a.index())
    }

    /// Resets to the all-undefined interpretation, keeping allocations.
    pub fn clear(&mut self) {
        self.pos.clear();
        self.neg.clear();
    }

    /// The positive part (set of true atoms).
    pub fn pos(&self) -> &BitSet {
        &self.pos
    }

    /// The negative part (set of false atoms).
    pub fn neg(&self) -> &BitSet {
        &self.neg
    }

    /// Iterates over true atoms.
    pub fn iter_true(&self) -> impl Iterator<Item = GroundAtomId> + '_ {
        self.pos.iter().map(|i| GroundAtomId(i as u32))
    }

    /// Iterates over false atoms.
    pub fn iter_false(&self) -> impl Iterator<Item = GroundAtomId> + '_ {
        self.neg.iter().map(|i| GroundAtomId(i as u32))
    }

    /// Iterates over undefined atoms.
    pub fn iter_undefined(&self) -> impl Iterator<Item = GroundAtomId> + '_ {
        (0..self.capacity() as u32)
            .map(GroundAtomId)
            .filter(|&a| self.is_undefined(a))
    }

    /// Number of true atoms.
    pub fn count_true(&self) -> usize {
        self.pos.count()
    }

    /// Number of false atoms.
    pub fn count_false(&self) -> usize {
        self.neg.count()
    }

    /// Number of undefined atoms.
    pub fn count_undefined(&self) -> usize {
        self.capacity() - self.count_true() - self.count_false()
    }

    /// Whether the interpretation is total (two-valued).
    pub fn is_total(&self) -> bool {
        self.count_undefined() == 0
    }

    /// Information ordering: whether `self ⊆ other` as sets of literals.
    pub fn leq(&self, other: &Interp) -> bool {
        self.pos.is_subset(&other.pos) && self.neg.is_subset(&other.neg)
    }

    /// Whether the interpretation **satisfies** every clause of `gp`
    /// in the three-valued sense used for partial models: no clause has a
    /// body all-true and head false (strong violation witness), using
    /// Przymusinski-style truth ordering false < undefined < true:
    /// `value(head) ≥ min value of body`.
    pub fn satisfies(&self, gp: &GroundProgram) -> bool {
        fn rank(t: Truth) -> u8 {
            match t {
                Truth::False => 0,
                Truth::Undefined => 1,
                Truth::True => 2,
            }
        }
        gp.clauses().all(|c| {
            let body_min = c
                .pos
                .iter()
                .map(|&a| rank(self.truth(a)))
                .chain(c.neg.iter().map(|&a| 2 - rank(self.truth(a))))
                .min()
                .unwrap_or(2);
            rank(self.truth(c.head)) >= body_min
        })
    }

    /// Renders the interpretation as `{p, ~q, r?}` (`?` marks undefined),
    /// sorted by atom id.
    pub fn display(&self, store: &TermStore, gp: &GroundProgram) -> String {
        let mut s = String::from("{");
        let mut first = true;
        for a in gp.atom_ids() {
            let part = match self.truth(a) {
                Truth::True => String::new(),
                Truth::False => "~".to_owned(),
                Truth::Undefined => {
                    let mut t = gp.display_atom(store, a);
                    t.push('?');
                    if !first {
                        s.push_str(", ");
                    }
                    first = false;
                    s.push_str(&t);
                    continue;
                }
            };
            if !first {
                s.push_str(", ");
            }
            first = false;
            s.push_str(&part);
            s.push_str(&gp.display_atom(store, a));
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsls_ground::Grounder;
    use gsls_lang::parse_program;

    fn tiny() -> (TermStore, GroundProgram) {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "p :- ~q. q :- ~p. r :- p.").unwrap();
        let gp = Grounder::ground(&mut s, &p).unwrap();
        (s, gp)
    }

    fn id(gp: &GroundProgram, store: &mut TermStore, name: &str) -> GroundAtomId {
        let sym = store.intern_symbol(name);
        gp.lookup_atom(&gsls_lang::Atom::new(sym, Vec::new()))
            .unwrap()
    }

    #[test]
    fn truth_transitions() {
        let (mut s, gp) = tiny();
        let p = id(&gp, &mut s, "p");
        let q = id(&gp, &mut s, "q");
        let mut i = Interp::new(gp.atom_count());
        assert_eq!(i.truth(p), Truth::Undefined);
        assert!(i.set_true(p));
        assert!(!i.set_true(p));
        assert!(i.set_false(q));
        assert_eq!(i.truth(p), Truth::True);
        assert_eq!(i.truth(q), Truth::False);
        assert_eq!(i.count_undefined(), 1);
        assert!(!i.is_total());
    }

    #[test]
    fn leq_information_ordering() {
        let (_, gp) = tiny();
        let mut small = Interp::new(gp.atom_count());
        let mut big = Interp::new(gp.atom_count());
        small.set_true(GroundAtomId(0));
        big.set_true(GroundAtomId(0));
        big.set_false(GroundAtomId(1));
        assert!(small.leq(&big));
        assert!(!big.leq(&small));
    }

    #[test]
    fn satisfies_total_model() {
        let (mut s, gp) = tiny();
        let p = id(&gp, &mut s, "p");
        let q = id(&gp, &mut s, "q");
        let r = id(&gp, &mut s, "r");
        // {p, ~q, r} is a (total, stable) model of p:-~q. q:-~p. r:-p.
        let mut i = Interp::new(gp.atom_count());
        i.set_true(p);
        i.set_false(q);
        i.set_true(r);
        assert!(i.satisfies(&gp));
        // {p, ~q, ~r} violates r :- p.
        let mut bad = Interp::new(gp.atom_count());
        bad.set_true(p);
        bad.set_false(q);
        bad.set_false(r);
        assert!(!bad.satisfies(&gp));
    }

    #[test]
    fn all_undefined_satisfies_symmetric_program() {
        let (_, gp) = tiny();
        let i = Interp::new(gp.atom_count());
        // undefined everywhere: head(undef) >= min(body)=undef for every
        // clause; facts would break this but there are none here.
        assert!(i.satisfies(&gp));
    }

    #[test]
    fn facts_require_truth() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "p.").unwrap();
        let gp = Grounder::ground(&mut s, &p).unwrap();
        let i = Interp::new(gp.atom_count());
        assert!(!i.satisfies(&gp), "fact must be true");
    }

    #[test]
    fn display_marks_statuses() {
        let (mut s, gp) = tiny();
        let p = id(&gp, &mut s, "p");
        let q = id(&gp, &mut s, "q");
        let mut i = Interp::new(gp.atom_count());
        i.set_true(p);
        i.set_false(q);
        let text = i.display(&s, &gp);
        assert!(text.contains("p"));
        assert!(text.contains("~q"));
        assert!(text.contains("r?"));
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn from_parts_rejects_overlap() {
        let mut a = BitSet::new(4);
        let mut b = BitSet::new(4);
        a.insert(2);
        b.insert(2);
        let _ = Interp::from_parts(a, b);
    }

    #[test]
    fn iterators() {
        let (_, gp) = tiny();
        let mut i = Interp::new(gp.atom_count());
        i.set_true(GroundAtomId(0));
        i.set_false(GroundAtomId(2));
        assert_eq!(i.iter_true().collect::<Vec<_>>(), vec![GroundAtomId(0)]);
        assert_eq!(i.iter_false().collect::<Vec<_>>(), vec![GroundAtomId(2)]);
        assert_eq!(
            i.iter_undefined().collect::<Vec<_>>(),
            vec![GroundAtomId(1)]
        );
    }
}
