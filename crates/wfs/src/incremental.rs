//! Difference-driven reduct least fixpoints — the incremental mode of
//! the propagation substrate.
//!
//! The alternating fixpoint, the `V_P` stages, and every other engine
//! that iterates `A(S)` evaluate long chains of reduct fixpoints whose
//! negative contexts differ in only a few atoms. The full-recompute path
//! ([`crate::propagator::Propagator::lfp_into`]) pays O(program) per
//! call regardless: it template-copies every counter and rescans every
//! clause with negative literals. [`IncrementalLfp`] instead keeps the
//! previous call's state alive — the missing-positive counters, the
//! derived set, and an owned copy of the context — and on the next call
//! diffs the new context against the stored one word-by-word,
//! re-enqueueing only the clauses reachable from *changed* atoms through
//! the `watch_neg` CSR index:
//!
//! * a clause whose blockers all left the context is **revived**: its
//!   counter is recomputed against the live derived set and, when
//!   already complete, its head re-enters the work queue;
//! * a clause whose blocker entered the context is **re-deleted**; if it
//!   was satisfied, the derivation it provided is invalidated and the
//!   dependent cone is retracted by delete-and-rederive: overdelete
//!   through `watch_pos` (removing every atom whose derivation used a
//!   retracted atom, which correctly kills positive support cycles that
//!   reference counting alone would keep alive), then re-derive the
//!   overdeleted atoms that still have surviving support.
//!
//! The result equals a from-scratch `lfp_into` on every call (the
//! workspace property tests compare them on random programs and random
//! context walks); the work per call is proportional to the *change*
//! between contexts plus the size of the affected cone, not to program
//! size. After the first (priming) call, `evaluate` performs zero heap
//! allocation once its scratch vectors have reached steady capacity.
//!
//! Both readings of a negative literal are supported ([`NegMode`]), so
//! one type serves the Gelfond–Lifschitz chains (`A(S)`, blockers are
//! context members) and the `T̄^ω(S⁻)` chains of the `V_P` iteration
//! (blockers are context non-members).

use crate::bitset::BitSet;
use gsls_ground::{GroundAtomId, GroundProgram};
use gsls_par::govern::{Guard, InterruptCause};

/// Sentinel marking a clause deleted under the current context.
const DEAD: u32 = u32::MAX;

/// How a negative body literal `¬q` reads the context set `S`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NegMode {
    /// `¬q` is satisfied iff `q ∉ S` — the Gelfond–Lifschitz reduct
    /// `A(S)` of the alternating fixpoint.
    SatisfiedOutside,
    /// `¬q` is satisfied iff `q ∈ S` — the `T̄^ω(S⁻)` reading of
    /// Lemma 4.2, where `S` is a set of already-false atoms.
    SatisfiedInside,
}

/// Work counters for one [`IncrementalLfp`] across its lifetime.
///
/// `clause_checks` is the comparable unit between the incremental and
/// full-recompute paths: the full path examines every clause with
/// negative literals on every call, the incremental path only those
/// reachable from context changes through `watch_neg`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncStats {
    /// Number of `evaluate` calls.
    pub evaluations: u64,
    /// Clause liveness (re)evaluations, including the priming scan.
    pub clause_checks: u64,
    /// Atoms pushed onto a work queue (derivation or retraction).
    pub enqueues: u64,
    /// Clauses revived from `DEAD` (context change or re-enable).
    pub revives: u64,
    /// Atoms overdeleted by delete-and-rederive cascades — the summed
    /// retraction cone size.
    pub retraction_cone: u64,
}

impl IncStats {
    /// Field-wise `self - earlier`, saturating — the per-call (or
    /// per-commit) work when `earlier` was captured before it.
    pub fn delta_since(&self, earlier: &IncStats) -> IncStats {
        IncStats {
            evaluations: self.evaluations.saturating_sub(earlier.evaluations),
            clause_checks: self.clause_checks.saturating_sub(earlier.clause_checks),
            enqueues: self.enqueues.saturating_sub(earlier.enqueues),
            revives: self.revives.saturating_sub(earlier.revives),
            retraction_cone: self.retraction_cone.saturating_sub(earlier.retraction_cone),
        }
    }
}

/// A reduct least fixpoint maintained incrementally across a chain of
/// nearby contexts.
#[derive(Debug, Clone)]
pub struct IncrementalLfp {
    mode: NegMode,
    /// The context the current state reflects (owned copy; diffed
    /// against the caller's set on each call).
    s: BitSet,
    /// The least fixpoint of the reduct w.r.t. `s`.
    out: BitSet,
    out_count: usize,
    /// Per-clause count of positive body occurrences not yet in `out`
    /// (`DEAD` = deleted under the current context). Invariant between
    /// calls, for alive clauses: `missing[ci]` = number of positive
    /// occurrences whose atom is outside `out`.
    missing: Vec<u32>,
    /// Derivation work queue (atoms inserted into `out`, not yet
    /// propagated).
    queue: Vec<u32>,
    /// Atoms retracted during the current call, in retraction order;
    /// doubles as the overdeletion queue (cursor-driven) and the
    /// re-derivation candidate list.
    retracted: Vec<u32>,
    /// Scratch: atoms whose toggle makes them block watching clauses.
    now_blocking: Vec<u32>,
    /// Scratch: atoms whose toggle unblocks watching clauses.
    now_unblocked: Vec<u32>,
    /// Scratch: heads of clauses revived complete (inserted after all
    /// revival counters are computed, so counts never see pending
    /// queue entries).
    revived_heads: Vec<u32>,
    /// Session-level clause switch: a disabled clause is treated as
    /// absent regardless of the context (fact retraction). Distinct
    /// from the `DEAD` counter sentinel, which also encodes
    /// "context-blocked" — a context change must never revive a clause
    /// the session has switched off.
    disabled: Vec<bool>,
    primed: bool,
    stats: IncStats,
    n_atoms: usize,
    /// Governance guard for the current evaluation (ungoverned outside
    /// [`Self::evaluate_governed`]).
    guard: Guard,
    /// Work-tick counter feeding [`Guard::tick`].
    tick: u32,
}

impl IncrementalLfp {
    /// Creates an engine sized to `gp` (which must stay finalized and
    /// unchanged for this engine's lifetime).
    pub fn new(gp: &GroundProgram, mode: NegMode) -> Self {
        assert!(
            gp.is_finalized(),
            "IncrementalLfp requires a finalized GroundProgram"
        );
        let n = gp.atom_count();
        IncrementalLfp {
            mode,
            s: BitSet::new(n),
            out: BitSet::new(n),
            out_count: 0,
            missing: vec![0; gp.clause_count()],
            queue: Vec::new(),
            retracted: Vec::new(),
            now_blocking: Vec::new(),
            now_unblocked: Vec::new(),
            revived_heads: Vec::new(),
            disabled: vec![false; gp.clause_count()],
            primed: false,
            stats: IncStats::default(),
            n_atoms: n,
            guard: Guard::none(),
            tick: 0,
        }
    }

    /// The current fixpoint (valid after the first [`Self::evaluate`];
    /// empty before).
    pub fn out(&self) -> &BitSet {
        &self.out
    }

    /// Number of atoms in the current fixpoint.
    pub fn count(&self) -> usize {
        self.out_count
    }

    /// Lifetime work counters.
    pub fn stats(&self) -> IncStats {
        self.stats
    }

    /// Consumes the engine, returning the fixpoint set (for final model
    /// construction without a copy).
    pub fn into_out(self) -> BitSet {
        self.out
    }

    #[inline]
    fn sat(s: &BitSet, mode: NegMode, q: GroundAtomId) -> bool {
        s.contains(q.index()) == (mode == NegMode::SatisfiedInside)
    }

    /// Brings the fixpoint to the reduct of `gp` w.r.t. `context` and
    /// returns its cardinality. The first call computes from scratch;
    /// every later call re-enqueues only clauses reachable from the
    /// context delta through `watch_neg`.
    pub fn evaluate(&mut self, gp: &GroundProgram, context: &BitSet) -> usize {
        self.guard = Guard::none();
        self.evaluate_inner(gp, context)
            .expect("an ungoverned evaluation cannot be interrupted")
    }

    /// [`Self::evaluate`] under a governance [`Guard`]: the fixpoint
    /// loops check the guard every [`gsls_par::govern::TICK_INTERVAL`]
    /// work units and bail out with the trip cause. An interrupted
    /// engine is left **unprimed** — its partial counters are
    /// inconsistent, so the next evaluation re-primes from scratch; the
    /// engine is never poisoned.
    pub fn evaluate_governed(
        &mut self,
        gp: &GroundProgram,
        context: &BitSet,
        guard: &Guard,
    ) -> Result<usize, InterruptCause> {
        self.guard = guard.clone();
        let r = self.evaluate_inner(gp, context);
        self.guard = Guard::none();
        if r.is_err() {
            self.primed = false;
        }
        r
    }

    fn evaluate_inner(
        &mut self,
        gp: &GroundProgram,
        context: &BitSet,
    ) -> Result<usize, InterruptCause> {
        debug_assert_eq!(self.missing.len(), gp.clause_count(), "program changed");
        debug_assert_eq!(self.n_atoms, gp.atom_count(), "program changed");
        debug_assert_eq!(context.capacity(), self.n_atoms);
        self.stats.evaluations += 1;
        if !self.primed {
            self.prime(gp, context)?;
        } else {
            self.update(gp, context)?;
        }
        Ok(self.out_count)
    }

    /// The from-scratch first call: identical structure to
    /// `Propagator::lfp_into`, but leaves counters/out/context alive for
    /// the incremental calls that follow.
    fn prime(&mut self, gp: &GroundProgram, context: &BitSet) -> Result<(), InterruptCause> {
        self.s.copy_from(context);
        self.out.clear();
        self.out_count = 0;
        self.queue.clear();
        self.stats.clause_checks += gp.clause_count() as u64;
        for (ci, c) in gp.clauses().enumerate() {
            self.guard.tick(&mut self.tick)?;
            if !self.disabled[ci] && c.neg.iter().all(|&q| Self::sat(&self.s, self.mode, q)) {
                self.missing[ci] = c.pos.len() as u32;
                if c.pos.is_empty() {
                    self.insert(c.head);
                }
            } else {
                self.missing[ci] = DEAD;
            }
        }
        self.propagate(gp)?;
        self.primed = true;
        Ok(())
    }

    /// One delta step: diff the stored context against `context`, flip
    /// clause liveness through `watch_neg`, retract the cone of broken
    /// derivations, revive and re-derive, then drain the queue.
    fn update(&mut self, gp: &GroundProgram, context: &BitSet) -> Result<(), InterruptCause> {
        // Phase 1: word-wise diff into "now blocks its watchers" /
        // "no longer blocks its watchers" atom lists.
        self.now_blocking.clear();
        self.now_unblocked.clear();
        let inside = self.mode == NegMode::SatisfiedInside;
        for (wi, (&sw, &nw)) in self.s.words().iter().zip(context.words()).enumerate() {
            let mut diff = sw ^ nw;
            while diff != 0 {
                let bit = diff.trailing_zeros();
                diff &= diff - 1;
                let a = (wi * 64) as u32 + bit;
                let now_in = nw & (1u64 << bit) != 0;
                if now_in != inside {
                    self.now_blocking.push(a);
                } else {
                    self.now_unblocked.push(a);
                }
            }
        }
        self.s.copy_from(context);
        if self.now_blocking.is_empty() && self.now_unblocked.is_empty() {
            return Ok(());
        }

        // Phase 2: re-delete clauses that gained a blocker. A deleted
        // clause that was satisfied invalidates one derivation of its
        // head: overdelete the head and cascade through watch_pos
        // (delete-and-rederive; support counting alone would keep
        // positive cycles alive).
        self.retracted.clear();
        let heads = gp.heads();
        for i in 0..self.now_blocking.len() {
            let q = self.now_blocking[i];
            self.guard.tick(&mut self.tick)?;
            for &ci in gp.watch_neg(GroundAtomId(q)) {
                let m = self.missing[ci as usize];
                if m == DEAD {
                    continue;
                }
                self.stats.clause_checks += 1;
                self.missing[ci as usize] = DEAD;
                if m == 0 {
                    self.retract(heads[ci as usize]);
                }
            }
        }
        self.cascade_retractions(gp)?;

        // Phase 3a: revive clauses that lost their last blocker,
        // recomputing counters against the (post-retraction) derived
        // set. No insertions happen here: counters computed from `out`
        // must never see atoms that are pending in the queue, or the
        // later queue drain would decrement them twice.
        self.revived_heads.clear();
        for i in 0..self.now_unblocked.len() {
            let q = self.now_unblocked[i];
            self.guard.tick(&mut self.tick)?;
            for &ci in gp.watch_neg(GroundAtomId(q)) {
                if self.missing[ci as usize] != DEAD || self.disabled[ci as usize] {
                    continue;
                }
                self.stats.clause_checks += 1;
                let c = gp.clause(ci);
                if !c.neg.iter().all(|&b| Self::sat(&self.s, self.mode, b)) {
                    continue; // still blocked by another context atom
                }
                let m = c
                    .pos
                    .iter()
                    .filter(|&&p| !self.out.contains(p.index()))
                    .count() as u32;
                self.missing[ci as usize] = m;
                self.stats.revives += 1;
                if m == 0 {
                    self.revived_heads.push(c.head.0);
                }
            }
        }
        // Phase 3b: insert the heads of complete revived clauses.
        for i in 0..self.revived_heads.len() {
            let h = self.revived_heads[i];
            self.insert(GroundAtomId(h));
        }

        self.rederive_retracted(gp)?;

        // Phase 5: drain the derivation queue.
        self.propagate(gp)
    }

    /// Overdeletes the dependent cone of everything on `self.retracted`
    /// (cursor-driven, so retractions enqueued mid-walk are processed
    /// too) — the delete half of delete-and-rederive.
    fn cascade_retractions(&mut self, gp: &GroundProgram) -> Result<(), InterruptCause> {
        let heads = gp.heads();
        let watch_pos = gp.watch_pos_index();
        let mut cursor = 0;
        while cursor < self.retracted.len() {
            let a = self.retracted[cursor];
            cursor += 1;
            self.guard.tick(&mut self.tick)?;
            for &ci in watch_pos.row(a as usize) {
                let m = &mut self.missing[ci as usize];
                if *m == DEAD {
                    continue;
                }
                let was_satisfied = *m == 0;
                *m += 1;
                if was_satisfied {
                    self.retract(heads[ci as usize]);
                }
            }
        }
        Ok(())
    }

    /// Re-derives overdeleted atoms with surviving support — an alive
    /// clause whose counter is zero derives its head outright; the rest
    /// (re)complete during propagation, if at all.
    fn rederive_retracted(&mut self, gp: &GroundProgram) -> Result<(), InterruptCause> {
        for i in 0..self.retracted.len() {
            let a = self.retracted[i];
            self.guard.tick(&mut self.tick)?;
            if self.out.contains(a as usize) {
                continue;
            }
            if gp
                .clauses_for(GroundAtomId(a))
                .iter()
                .any(|&ci| self.missing[ci as usize] == 0)
            {
                self.insert(GroundAtomId(a));
            }
        }
        Ok(())
    }

    /// Absorbs program growth: `gp` may have appended atoms and clauses
    /// since the last call (earlier ids and clause indices must be
    /// unchanged — the grounder's append-only contract). New clauses
    /// come up enabled; their liveness is evaluated against the stored
    /// context and the fixpoint is re-closed, so the state invariant
    /// ("`out` is the reduct lfp of `gp` w.r.t. the stored context")
    /// holds again on return. Callers must still present contexts of
    /// the *new* atom capacity to subsequent [`Self::evaluate`] calls.
    pub fn grow(&mut self, gp: &GroundProgram) {
        assert!(
            gp.is_finalized(),
            "IncrementalLfp::grow requires a finalized GroundProgram"
        );
        let n = gp.atom_count();
        let nc = gp.clause_count();
        assert!(
            n >= self.n_atoms && nc >= self.missing.len(),
            "GroundProgram shrank under an IncrementalLfp"
        );
        let old_nc = self.missing.len();
        self.s.grow(n);
        self.out.grow(n);
        self.n_atoms = n;
        self.missing.resize(nc, 0);
        self.disabled.resize(nc, false);
        if !self.primed || old_nc == nc {
            return;
        }
        // Two-phase like revival: compute every new counter against the
        // pre-insertion `out`, then insert complete heads, then
        // propagate — counters must never see pending queue entries.
        self.revived_heads.clear();
        for ci in old_nc as u32..nc as u32 {
            self.stats.clause_checks += 1;
            let c = gp.clause(ci);
            if c.neg.iter().all(|&q| Self::sat(&self.s, self.mode, q)) {
                let m = c
                    .pos
                    .iter()
                    .filter(|&&p| !self.out.contains(p.index()))
                    .count() as u32;
                self.missing[ci as usize] = m;
                if m == 0 {
                    self.revived_heads.push(c.head.0);
                }
            } else {
                self.missing[ci as usize] = DEAD;
            }
        }
        for i in 0..self.revived_heads.len() {
            let h = self.revived_heads[i];
            self.insert(GroundAtomId(h));
        }
        // `grow` runs between evaluations, where the guard is always
        // unset (both `evaluate_governed` paths reset it).
        self.propagate(gp)
            .expect("an ungoverned propagation cannot be interrupted");
    }

    /// Switches clauses off (`disable`) and back on (`enable`) — the
    /// session's fact-retraction hook, though any clause index works.
    /// Disabling an alive satisfied clause retracts its head's
    /// derivation through the same delete-and-rederive cascade a
    /// context change uses; enabling re-evaluates the clause against
    /// the stored context. Indices may repeat; a disable and enable of
    /// the same clause in one call resolves to its `enable` membership.
    pub fn set_clauses_enabled(&mut self, gp: &GroundProgram, disable: &[u32], enable: &[u32]) {
        for &ci in disable {
            self.disabled[ci as usize] = true;
        }
        for &ci in enable {
            self.disabled[ci as usize] = false;
        }
        if !self.primed {
            return; // prime() reads `disabled` directly
        }
        self.retracted.clear();
        let heads = gp.heads();
        for &ci in disable {
            if !self.disabled[ci as usize] {
                continue; // re-enabled later in the same batch
            }
            let m = self.missing[ci as usize];
            if m == DEAD {
                continue; // already context-blocked (or doubly listed)
            }
            self.stats.clause_checks += 1;
            self.missing[ci as usize] = DEAD;
            if m == 0 {
                self.retract(heads[ci as usize]);
            }
        }
        // Like `grow`, clause switching runs between evaluations with
        // the guard unset, so the fallible internals cannot trip.
        self.cascade_retractions(gp)
            .expect("an ungoverned cascade cannot be interrupted");
        self.revived_heads.clear();
        for &ci in enable {
            if self.disabled[ci as usize] || self.missing[ci as usize] != DEAD {
                continue; // still off, or already alive
            }
            self.stats.clause_checks += 1;
            let c = gp.clause(ci);
            if !c.neg.iter().all(|&b| Self::sat(&self.s, self.mode, b)) {
                continue; // blocked by the context, not the switch
            }
            let m = c
                .pos
                .iter()
                .filter(|&&p| !self.out.contains(p.index()))
                .count() as u32;
            self.missing[ci as usize] = m;
            self.stats.revives += 1;
            if m == 0 {
                self.revived_heads.push(c.head.0);
            }
        }
        for i in 0..self.revived_heads.len() {
            let h = self.revived_heads[i];
            self.insert(GroundAtomId(h));
        }
        self.rederive_retracted(gp)
            .expect("an ungoverned re-derivation cannot be interrupted");
        self.propagate(gp)
            .expect("an ungoverned propagation cannot be interrupted");
    }

    #[inline]
    fn insert(&mut self, a: GroundAtomId) {
        if self.out.insert(a.index()) {
            self.out_count += 1;
            self.stats.enqueues += 1;
            self.queue.push(a.0);
        }
    }

    #[inline]
    fn retract(&mut self, a: GroundAtomId) {
        if self.out.remove(a.index()) {
            self.out_count -= 1;
            self.stats.enqueues += 1;
            self.stats.retraction_cone += 1;
            self.retracted.push(a.0);
        }
    }

    /// Standard counter-decrement drain over `watch_pos`.
    fn propagate(&mut self, gp: &GroundProgram) -> Result<(), InterruptCause> {
        let watch = gp.watch_pos_index();
        let heads = gp.heads();
        while let Some(a) = self.queue.pop() {
            self.guard.tick(&mut self.tick)?;
            for &ci in watch.row(a as usize) {
                let m = &mut self.missing[ci as usize];
                if *m == DEAD {
                    continue;
                }
                debug_assert!(*m > 0, "over-decrement in incremental propagation");
                *m -= 1;
                if *m == 0 {
                    let head = heads[ci as usize];
                    if self.out.insert(head.index()) {
                        self.out_count += 1;
                        self.stats.enqueues += 1;
                        self.queue.push(head.0);
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagator::Propagator;
    use gsls_ground::testutil::atom_id;
    use gsls_ground::Grounder;
    use gsls_lang::{parse_program, TermStore};

    fn ground(src: &str) -> (TermStore, GroundProgram) {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, src).unwrap();
        let gp = Grounder::ground(&mut s, &p).unwrap();
        (s, gp)
    }

    #[test]
    fn incremental_state_is_send() {
        // `Clone` is the clone-for-worker constructor: a worker owning
        // an `IncrementalLfp` clone shares only the immutable program.
        fn assert_send<T: Send>() {}
        assert_send::<IncrementalLfp>();
    }

    /// Oracle: from-scratch propagator fixpoint for the same context.
    fn scratch(gp: &GroundProgram, s: &BitSet, mode: NegMode) -> BitSet {
        let mut prop = Propagator::new(gp);
        let mut out = BitSet::new(gp.atom_count());
        match mode {
            NegMode::SatisfiedOutside => prop.lfp_into(gp, |q| !s.contains(q.index()), &mut out),
            NegMode::SatisfiedInside => prop.lfp_into(gp, |q| s.contains(q.index()), &mut out),
        };
        out
    }

    #[test]
    fn revival_grows_the_fixpoint() {
        let (s, gp) = ground("p :- ~q. r :- p. q :- ~z. t.");
        let n = gp.atom_count();
        let mut inc = IncrementalLfp::new(&gp, NegMode::SatisfiedOutside);
        // Context {q}: p's clause deleted.
        let mut ctx = BitSet::new(n);
        ctx.insert(atom_id(&s, &gp, "q").index());
        inc.evaluate(&gp, &ctx);
        assert!(!inc.out().contains(atom_id(&s, &gp, "p").index()));
        // q leaves the context: p and r revive incrementally.
        ctx.clear();
        let count = inc.evaluate(&gp, &ctx);
        assert!(inc.out().contains(atom_id(&s, &gp, "p").index()));
        assert!(inc.out().contains(atom_id(&s, &gp, "r").index()));
        assert_eq!(&scratch(&gp, &ctx, NegMode::SatisfiedOutside), inc.out());
        assert_eq!(count, inc.out().count());
    }

    #[test]
    fn deletion_retracts_the_cone() {
        let (s, gp) = ground("p :- ~q. r :- p. u :- r. t. q :- ~z. z :- ~w.");
        let n = gp.atom_count();
        let mut inc = IncrementalLfp::new(&gp, NegMode::SatisfiedOutside);
        // Empty context: everything is derivable.
        let mut ctx = BitSet::new(n);
        inc.evaluate(&gp, &ctx);
        assert!(inc.out().contains(atom_id(&s, &gp, "u").index()));
        // q enters the context: the whole p→r→u cone must retract,
        // while the unrelated t/q/z derivations survive.
        ctx.insert(atom_id(&s, &gp, "q").index());
        inc.evaluate(&gp, &ctx);
        assert!(!inc.out().contains(atom_id(&s, &gp, "p").index()));
        assert!(!inc.out().contains(atom_id(&s, &gp, "r").index()));
        assert!(!inc.out().contains(atom_id(&s, &gp, "u").index()));
        assert!(inc.out().contains(atom_id(&s, &gp, "t").index()));
        assert!(inc.out().contains(atom_id(&s, &gp, "z").index()));
        assert_eq!(&scratch(&gp, &ctx, NegMode::SatisfiedOutside), inc.out());
    }

    #[test]
    fn positive_cycle_support_dies_with_its_base() {
        // a and b support each other positively; the only external base
        // is a :- ~q. Blocking it must retract the whole cycle — the
        // case plain reference counting gets wrong.
        use gsls_ground::{GrounderOpts, GroundingMode};
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "a :- b. b :- a. a :- ~q. q :- ~z.").unwrap();
        let gp = Grounder::ground_with(
            &mut s,
            &p,
            GrounderOpts {
                mode: GroundingMode::Full,
                ..GrounderOpts::default()
            },
        )
        .unwrap();
        let n = gp.atom_count();
        let mut inc = IncrementalLfp::new(&gp, NegMode::SatisfiedOutside);
        let ctx = BitSet::new(n);
        inc.evaluate(&gp, &ctx);
        assert!(inc.out().contains(atom_id(&s, &gp, "a").index()));
        assert!(inc.out().contains(atom_id(&s, &gp, "b").index()));
        let mut ctx2 = BitSet::new(n);
        ctx2.insert(atom_id(&s, &gp, "q").index());
        inc.evaluate(&gp, &ctx2);
        assert!(!inc.out().contains(atom_id(&s, &gp, "a").index()));
        assert!(!inc.out().contains(atom_id(&s, &gp, "b").index()));
        assert_eq!(&scratch(&gp, &ctx2, NegMode::SatisfiedOutside), inc.out());
    }

    #[test]
    fn retraction_keeps_alternative_support() {
        // c has two independent derivations; killing one keeps c.
        let (s, gp) = ground("c :- a. c :- b. a :- ~p. b :- ~q. p :- ~z0. q :- ~z1. d :- c.");
        let n = gp.atom_count();
        let mut inc = IncrementalLfp::new(&gp, NegMode::SatisfiedOutside);
        let mut ctx = BitSet::new(n);
        ctx.insert(atom_id(&s, &gp, "p").index());
        ctx.insert(atom_id(&s, &gp, "q").index());
        inc.evaluate(&gp, &ctx);
        // Unblock both a and b.
        ctx.clear();
        inc.evaluate(&gp, &ctx);
        assert!(inc.out().contains(atom_id(&s, &gp, "c").index()));
        // Re-block a only: c survives via b, d survives via c.
        ctx.insert(atom_id(&s, &gp, "p").index());
        inc.evaluate(&gp, &ctx);
        assert!(!inc.out().contains(atom_id(&s, &gp, "a").index()));
        assert!(inc.out().contains(atom_id(&s, &gp, "b").index()));
        assert!(inc.out().contains(atom_id(&s, &gp, "c").index()));
        assert!(inc.out().contains(atom_id(&s, &gp, "d").index()));
        assert_eq!(&scratch(&gp, &ctx, NegMode::SatisfiedOutside), inc.out());
    }

    #[test]
    fn mixed_delta_revive_and_delete_in_one_call() {
        let (s, gp) = ground("p :- ~q. r :- ~w. x :- p, r. q :- ~z0. w :- ~z1.");
        let n = gp.atom_count();
        let q = atom_id(&s, &gp, "q").index();
        let w = atom_id(&s, &gp, "w").index();
        let mut inc = IncrementalLfp::new(&gp, NegMode::SatisfiedOutside);
        let mut ctx = BitSet::new(n);
        ctx.insert(q);
        inc.evaluate(&gp, &ctx);
        // One call: q leaves (revives p), w enters (kills r).
        ctx.clear();
        ctx.insert(w);
        inc.evaluate(&gp, &ctx);
        assert!(inc.out().contains(atom_id(&s, &gp, "p").index()));
        assert!(!inc.out().contains(atom_id(&s, &gp, "r").index()));
        assert!(!inc.out().contains(atom_id(&s, &gp, "x").index()));
        assert_eq!(&scratch(&gp, &ctx, NegMode::SatisfiedOutside), inc.out());
    }

    #[test]
    fn inside_mode_matches_scratch() {
        let (s, gp) = ground("p :- ~q. t :- p, ~r. u :- t.");
        let n = gp.atom_count();
        let mut inc = IncrementalLfp::new(&gp, NegMode::SatisfiedInside);
        let mut ctx = BitSet::new(n);
        inc.evaluate(&gp, &ctx);
        assert_eq!(&scratch(&gp, &ctx, NegMode::SatisfiedInside), inc.out());
        // q becomes known-false: p derivable.
        ctx.insert(atom_id(&s, &gp, "q").index());
        inc.evaluate(&gp, &ctx);
        assert!(inc.out().contains(atom_id(&s, &gp, "p").index()));
        assert!(!inc.out().contains(atom_id(&s, &gp, "t").index()));
        ctx.insert(atom_id(&s, &gp, "r").index());
        inc.evaluate(&gp, &ctx);
        assert!(inc.out().contains(atom_id(&s, &gp, "u").index()));
        assert_eq!(&scratch(&gp, &ctx, NegMode::SatisfiedInside), inc.out());
    }

    #[test]
    fn random_context_walk_matches_scratch() {
        // A deterministic pseudo-random walk over contexts, including
        // non-monotone flips, duplicate negative literals, and facts —
        // run in both modes so both retraction paths are exercised.
        let (_, gp) = ground(
            "f. p :- ~a, ~a. q :- p, ~b. r :- q, ~c. s :- ~p. \
             t :- s, r. a :- ~d. b :- ~e. c :- f, ~g.",
        );
        let n = gp.atom_count();
        for mode in [NegMode::SatisfiedOutside, NegMode::SatisfiedInside] {
            let mut inc = IncrementalLfp::new(&gp, mode);
            let mut ctx = BitSet::new(n);
            let mut state = 0x9e3779b97f4a7c15u64;
            for step in 0..200 {
                // Flip 1–3 pseudo-random atoms.
                for _ in 0..(1 + step % 3) {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let a = (state >> 33) as usize % n;
                    if ctx.contains(a) {
                        ctx.remove(a);
                    } else {
                        ctx.insert(a);
                    }
                }
                let count = inc.evaluate(&gp, &ctx);
                let oracle = scratch(&gp, &ctx, mode);
                assert_eq!(inc.out(), &oracle, "step {step} ({mode:?})");
                assert_eq!(count, oracle.count(), "step {step} ({mode:?})");
            }
        }
    }

    #[test]
    fn unchanged_context_is_a_no_op() {
        let (_, gp) = ground("p :- ~q. r :- p.");
        let n = gp.atom_count();
        let mut inc = IncrementalLfp::new(&gp, NegMode::SatisfiedOutside);
        let ctx = BitSet::new(n);
        let c1 = inc.evaluate(&gp, &ctx);
        let checks_after_prime = inc.stats().clause_checks;
        let c2 = inc.evaluate(&gp, &ctx);
        assert_eq!(c1, c2);
        assert_eq!(
            inc.stats().clause_checks,
            checks_after_prime,
            "no clause may be re-checked for an identical context"
        );
    }

    #[test]
    fn interrupted_evaluation_reprimes_cleanly() {
        use gsls_par::govern::{Guard, InterruptCause};
        // Enough clauses that the priming scan crosses a tick interval
        // and performs a real guard check.
        let mut src = String::new();
        for i in 0..1500 {
            src.push_str(&format!("f{i}.\n"));
        }
        src.push_str("p :- ~q, f0. r :- p.");
        let (s, gp) = ground(&src);
        let ctx = BitSet::new(gp.atom_count());
        let mut inc = IncrementalLfp::new(&gp, NegMode::SatisfiedOutside);
        let tripping = Guard::builder().fuel(0).build();
        assert_eq!(
            inc.evaluate_governed(&gp, &ctx, &tripping),
            Err(InterruptCause::Cancelled)
        );
        // The engine re-primes on the next call instead of trusting the
        // torn counters — both governed (with ample fuel) and plain
        // evaluations must match the scratch oracle.
        let roomy = Guard::builder().fuel(u64::MAX - 1).build();
        let count = inc.evaluate_governed(&gp, &ctx, &roomy).unwrap();
        let oracle = scratch(&gp, &ctx, NegMode::SatisfiedOutside);
        assert_eq!(inc.out(), &oracle);
        assert_eq!(count, oracle.count());
        assert!(inc.out().contains(atom_id(&s, &gp, "r").index()));
        let count2 = inc.evaluate(&gp, &ctx);
        assert_eq!(count2, count);
    }

    #[test]
    fn grow_absorbs_appended_clauses_and_atoms() {
        // Start from a small program, prime, then append clauses (and a
        // fresh atom) the way the session grounder does, grow, and
        // compare against a scratch solve of the grown program at every
        // context — including contexts touching the new atoms.
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "p :- ~q. r :- p.").unwrap();
        let mut gp = Grounder::ground(&mut s, &p).unwrap();
        let n0 = gp.atom_count();
        let mut inc = IncrementalLfp::new(&gp, NegMode::SatisfiedOutside);
        let ctx = BitSet::new(n0);
        inc.evaluate(&gp, &ctx);
        // Append: new fact t., new rule u :- r, ~w. (w is a new atom).
        let t = gp.intern_atom(gsls_lang::Atom::new(s.intern_symbol("t"), Vec::new()));
        let u = gp.intern_atom(gsls_lang::Atom::new(s.intern_symbol("u"), Vec::new()));
        let w = gp.intern_atom(gsls_lang::Atom::new(s.intern_symbol("w"), Vec::new()));
        let r = atom_id(&s, &gp, "r");
        gp.push_clause_parts(t, &[], &[]);
        gp.push_clause_parts(u, &[r], &[w]);
        gp.finalize();
        inc.grow(&gp);
        let n = gp.atom_count();
        assert!(n > n0);
        // The grown state must already be the fixpoint for the grown
        // program under the (grown) stored context.
        assert_eq!(
            &scratch(&gp, &BitSet::new(n), NegMode::SatisfiedOutside),
            inc.out()
        );
        assert!(inc.out().contains(t.index()));
        assert!(inc.out().contains(u.index()));
        // And later evaluations — including ones flipping new atoms —
        // keep matching scratch.
        let mut ctx = BitSet::new(n);
        ctx.insert(w.index());
        inc.evaluate(&gp, &ctx);
        assert!(!inc.out().contains(u.index()));
        assert_eq!(&scratch(&gp, &ctx, NegMode::SatisfiedOutside), inc.out());
        ctx.insert(atom_id(&s, &gp, "q").index());
        ctx.remove(w.index());
        inc.evaluate(&gp, &ctx);
        assert_eq!(&scratch(&gp, &ctx, NegMode::SatisfiedOutside), inc.out());
    }

    /// Scratch oracle over a program with some clauses disabled: solve a
    /// copy with the disabled clauses omitted, mapped back by identical
    /// atom ids.
    fn scratch_disabled(gp: &GroundProgram, s: &BitSet, mode: NegMode, disabled: &[u32]) -> BitSet {
        let mut copy = GroundProgram::new();
        for a in gp.atom_ids() {
            copy.intern_atom(gp.atom(a).clone());
        }
        for (ci, c) in gp.clauses().enumerate() {
            if !disabled.contains(&(ci as u32)) {
                copy.push_clause_parts(c.head, c.pos, c.neg);
            }
        }
        copy.finalize();
        scratch(&copy, s, mode)
    }

    #[test]
    fn disable_and_enable_clauses_track_scratch() {
        let (s, gp) =
            ground("f. p :- f, ~a. q :- p, ~b. r :- q. c :- c2. c2 :- c. c :- p. a :- ~d.");
        let n = gp.atom_count();
        // Clause 0 is the fact f. — the retraction target.
        assert!(gp.clause(0).is_fact());
        let mut inc = IncrementalLfp::new(&gp, NegMode::SatisfiedOutside);
        let mut ctx = BitSet::new(n);
        inc.evaluate(&gp, &ctx);
        assert!(inc.out().contains(atom_id(&s, &gp, "r").index()));
        assert!(inc.out().contains(atom_id(&s, &gp, "c2").index()));
        // Retract f: the whole p→q→r cone and the c/c2 positive cycle
        // fed by p must die (the reference-counting trap).
        inc.set_clauses_enabled(&gp, &[0], &[]);
        assert_eq!(
            &scratch_disabled(&gp, &ctx, NegMode::SatisfiedOutside, &[0]),
            inc.out()
        );
        assert!(!inc.out().contains(atom_id(&s, &gp, "c2").index()));
        // Context changes while the clause is off must not revive it.
        ctx.insert(atom_id(&s, &gp, "a").index());
        inc.evaluate(&gp, &ctx);
        assert_eq!(
            &scratch_disabled(&gp, &ctx, NegMode::SatisfiedOutside, &[0]),
            inc.out()
        );
        ctx.clear();
        inc.evaluate(&gp, &ctx);
        assert_eq!(
            &scratch_disabled(&gp, &ctx, NegMode::SatisfiedOutside, &[0]),
            inc.out()
        );
        assert!(!inc.out().contains(atom_id(&s, &gp, "f").index()));
        // Re-assert f: everything comes back.
        inc.set_clauses_enabled(&gp, &[], &[0]);
        assert_eq!(&scratch(&gp, &ctx, NegMode::SatisfiedOutside), inc.out());
        assert!(inc.out().contains(atom_id(&s, &gp, "r").index()));
        // Disable+enable in one call resolves to enabled.
        inc.set_clauses_enabled(&gp, &[0], &[0]);
        assert_eq!(&scratch(&gp, &ctx, NegMode::SatisfiedOutside), inc.out());
    }

    #[test]
    fn disable_before_priming_respected() {
        let (s, gp) = ground("f. p :- f.");
        let mut inc = IncrementalLfp::new(&gp, NegMode::SatisfiedOutside);
        inc.set_clauses_enabled(&gp, &[0], &[]);
        let ctx = BitSet::new(gp.atom_count());
        inc.evaluate(&gp, &ctx);
        assert!(!inc.out().contains(atom_id(&s, &gp, "p").index()));
        assert_eq!(
            &scratch_disabled(&gp, &ctx, NegMode::SatisfiedOutside, &[0]),
            inc.out()
        );
    }

    #[test]
    #[should_panic(expected = "finalized")]
    fn unfinalized_program_rejected() {
        let mut gp = GroundProgram::new();
        let mut s = TermStore::new();
        let sym = s.intern_symbol("x");
        gp.intern_atom(gsls_lang::Atom::new(sym, Vec::new()));
        let _ = IncrementalLfp::new(&gp, NegMode::SatisfiedOutside);
    }
}
