//! Fitting's Kripke–Kleene semantics (three-valued completion).
//!
//! Included as a comparison semantics (Sec. 1 of the paper): the Fitting
//! operator `Φ_P` makes an atom true when some rule body is true, false
//! when *every* rule body is false — it does not detect unfounded positive
//! loops, so `p ← p` is *undefined* under Fitting but *false* under the
//! well-founded semantics. Experiment E11 exercises exactly this gap.

use crate::interp::{Interp, Truth};
use gsls_ground::{ClauseRef, GroundProgram};

fn body_truth(c: ClauseRef<'_>, i: &Interp) -> Truth {
    let mut any_undef = false;
    for &a in c.pos.iter() {
        match i.truth(a) {
            Truth::False => return Truth::False,
            Truth::Undefined => any_undef = true,
            Truth::True => {}
        }
    }
    for &a in c.neg.iter() {
        match i.truth(a) {
            Truth::True => return Truth::False,
            Truth::Undefined => any_undef = true,
            Truth::False => {}
        }
    }
    if any_undef {
        Truth::Undefined
    } else {
        Truth::True
    }
}

/// Reusable scratch for iterated `Φ_P` application.
#[derive(Debug, Default)]
struct PhiScratch {
    has_true: Vec<bool>,
    all_false: Vec<bool>,
}

fn phi_into(gp: &GroundProgram, i: &Interp, out: &mut Interp, scratch: &mut PhiScratch) {
    let n = gp.atom_count();
    out.clear();
    // Truth per atom: true if some body true; false if all bodies false
    // (vacuously, for atoms with no rules).
    scratch.has_true.clear();
    scratch.has_true.resize(n, false);
    scratch.all_false.clear();
    scratch.all_false.resize(n, true);
    for c in gp.clauses() {
        match body_truth(c, i) {
            Truth::True => {
                scratch.has_true[c.head.index()] = true;
                scratch.all_false[c.head.index()] = false;
            }
            Truth::Undefined => scratch.all_false[c.head.index()] = false,
            Truth::False => {}
        }
    }
    for a in gp.atom_ids() {
        if scratch.has_true[a.index()] {
            out.set_true(a);
        } else if scratch.all_false[a.index()] {
            out.set_false(a);
        }
    }
}

/// One application of the Fitting operator `Φ_P`.
pub fn phi(gp: &GroundProgram, i: &Interp) -> Interp {
    let mut out = Interp::new(gp.atom_count());
    phi_into(gp, i, &mut out, &mut PhiScratch::default());
    out
}

/// The Kripke–Kleene (Fitting) model: least fixpoint of `Φ_P` under the
/// information ordering, reached by iterating from the all-undefined
/// interpretation. Two interpretation buffers and one scratch pair are
/// allocated up front and reused across all iterations.
pub fn fitting_model(gp: &GroundProgram) -> Interp {
    let n = gp.atom_count();
    let mut i = Interp::new(n);
    let mut next = Interp::new(n);
    let mut scratch = PhiScratch::default();
    loop {
        phi_into(gp, &i, &mut next, &mut scratch);
        if next == i {
            return i;
        }
        debug_assert!(i.leq(&next), "Φ must be inflationary from ∅");
        std::mem::swap(&mut i, &mut next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alternating::well_founded_model;
    use gsls_ground::{Grounder, GrounderOpts, GroundingMode};
    use gsls_lang::{parse_program, TermStore};

    fn models(src: &str) -> (TermStore, GroundProgram, Interp, Interp) {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, src).unwrap();
        let gp = Grounder::ground_with(
            &mut s,
            &p,
            GrounderOpts {
                mode: GroundingMode::Full,
                ..GrounderOpts::default()
            },
        )
        .unwrap();
        let f = fitting_model(&gp);
        let w = well_founded_model(&gp);
        (s, gp, f, w)
    }

    use gsls_ground::testutil::atom_id as id;

    #[test]
    fn positive_loop_separates_fitting_from_wfs() {
        let (s, gp, f, w) = models("p :- p.");
        let p = id(&s, &gp, "p");
        assert_eq!(f.truth(p), Truth::Undefined, "Fitting: undefined");
        assert_eq!(w.truth(p), Truth::False, "WFS: false (unfounded)");
    }

    #[test]
    fn fitting_below_wfs_in_information_order() {
        for src in [
            "p :- p.",
            "q. p :- ~q. r :- ~p.",
            "p :- ~q. q :- ~p.",
            "a :- b. b :- a. c :- ~a.",
        ] {
            let (_, _, f, w) = models(src);
            assert!(f.leq(&w), "Fitting ⊆ WFS must hold: {src}");
        }
    }

    #[test]
    fn agree_on_stratified_without_positive_loops() {
        let (_, _, f, w) = models("q. p :- ~q. r :- ~p.");
        assert_eq!(f, w);
    }

    #[test]
    fn atom_without_rules_false() {
        let (s, gp, f, _) = models("p :- ~q.");
        assert_eq!(f.truth(id(&s, &gp, "q")), Truth::False);
        assert_eq!(f.truth(id(&s, &gp, "p")), Truth::True);
    }

    #[test]
    fn phi_single_step_semantics() {
        let (s, gp, _, _) = models("p :- q, ~r. q.");
        let mut i = Interp::new(gp.atom_count());
        i.set_true(id(&s, &gp, "q"));
        i.set_false(id(&s, &gp, "r"));
        let next = phi(&gp, &i);
        assert_eq!(next.truth(id(&s, &gp, "p")), Truth::True);
    }

    #[test]
    fn mutual_negation_undefined_in_both() {
        let (s, gp, f, w) = models("p :- ~q. q :- ~p.");
        let p = id(&s, &gp, "p");
        assert_eq!(f.truth(p), Truth::Undefined);
        assert_eq!(w.truth(p), Truth::Undefined);
    }
}
