//! The alternating fixpoint: the polynomial bottom-up baseline.
//!
//! Van Gelder's alternating-fixpoint characterisation of the well-founded
//! model (the bottom-up algorithm the paper's footnote 5 cites as [32]):
//! let `A(S)` be the least fixpoint of the Gelfond–Lifschitz reduct of `P`
//! w.r.t. `S` (a negated atom `¬q` holds iff `q ∉ S`). `A` is
//! antimonotone, so `A∘A` is monotone; iterating
//!
//! ```text
//! T₀ = ∅,  U₀ = A(T₀),  Tᵢ₊₁ = A(Uᵢ),  Uᵢ₊₁ = A(Tᵢ₊₁)
//! ```
//!
//! converges with `T∞ ⊆ U∞`. Then `M_WF(P)` has true atoms `T∞`, false
//! atoms `H ∖ U∞`, undefined `U∞ ∖ T∞`. Each `A` call is linear in program
//! size, and the iteration count is bounded by the number of atoms, giving
//! the quadratic worst case (typically a handful of rounds).

use crate::bitset::BitSet;
use crate::incremental::{IncrementalLfp, NegMode};
use crate::interp::Interp;
use crate::propagator::Propagator;
use crate::tp::lfp_with_rebuild;
use gsls_ground::GroundProgram;
use gsls_par::govern::{Guard, InterruptCause};

/// Statistics from an alternating-fixpoint run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlternatingStats {
    /// Number of `A(·)` evaluations performed.
    pub reduct_calls: u32,
    /// Number of outer rounds until the fixpoint.
    pub rounds: u32,
    /// Clause liveness (re)checks across all `A(·)` evaluations. The
    /// from-scratch path would pay `reduct_calls × #clauses`; the
    /// difference-driven path pays the two priming scans plus only the
    /// clauses reachable from context changes through `watch_neg`.
    pub clause_checks: u64,
    /// Atoms enqueued (derived or retracted) across all evaluations.
    pub enqueues: u64,
}

/// Computes the well-founded model of `gp`.
pub fn well_founded_model(gp: &GroundProgram) -> Interp {
    well_founded_model_with_stats(gp).0
}

/// [`well_founded_model`] plus iteration statistics.
///
/// **Difference-driven:** the `T`-chain contexts (`U₀ ⊇ U₁ ⊇ …`) and
/// `U`-chain contexts (`T₀ ⊆ T₁ ⊆ …`) each change by a few atoms per
/// round, so each chain keeps its own [`IncrementalLfp`] and every
/// `A(S)` after the first two re-enqueues only the clauses whose
/// negative context actually changed (revivals on the growing `T`-chain,
/// retractions on the shrinking `U`-chain) instead of template-copying
/// all counters and rescanning every clause. After the two priming
/// scans, per-round work is proportional to the *delta*, and no heap is
/// allocated once the scratch queues reach steady capacity.
///
/// Fixpoint detection uses derivation *counts*: along the alternating
/// iteration `T` grows and `U` shrinks monotonically, so unchanged
/// cardinalities imply unchanged sets.
pub fn well_founded_model_with_stats(gp: &GroundProgram) -> (Interp, AlternatingStats) {
    let mut t_chain = IncrementalLfp::new(gp, NegMode::SatisfiedOutside);
    let mut u_chain = IncrementalLfp::new(gp, NegMode::SatisfiedOutside);

    // U₀ = A(T₀) with T₀ = ∅ (the t-chain's not-yet-primed empty out).
    let mut reduct_calls = 1u32;
    let mut t_count = 0usize;
    let mut u_count = u_chain.evaluate(gp, t_chain.out());
    let mut rounds = 1u32;
    loop {
        reduct_calls += 2;
        let tc = t_chain.evaluate(gp, u_chain.out());
        let uc = u_chain.evaluate(gp, t_chain.out());
        let stable = tc == t_count && uc == u_count;
        t_count = tc;
        u_count = uc;
        if stable {
            break;
        }
        rounds += 1;
    }
    let stats = AlternatingStats {
        reduct_calls,
        rounds,
        clause_checks: t_chain.stats().clause_checks + u_chain.stats().clause_checks,
        enqueues: t_chain.stats().enqueues + u_chain.stats().enqueues,
    };
    let t = t_chain.into_out();
    let mut false_set = u_chain.into_out();
    debug_assert!(
        t.is_subset(&false_set),
        "alternating fixpoint order violated"
    );
    false_set.complement_in_place();
    (Interp::from_parts(t, false_set), stats)
}

/// Recomputes the well-founded model of `gp` on **warm** chains — the
/// session maintenance path. The same alternating iteration as
/// [`well_founded_model`] runs from `T₀ = ∅`, but the two
/// [`IncrementalLfp`] chains carry their state across calls (and across
/// program growth via [`IncrementalLfp::grow`] and clause switching via
/// [`IncrementalLfp::set_clauses_enabled`]), so no priming scan is ever
/// repeated: every reduct evaluation diffs against the chain's stored
/// context and pays for the change cone, not for program size.
///
/// `empty` must be an empty bitset of `gp.atom_count()` capacity (the
/// caller keeps it around and [`BitSet::grow`]s it with the program so
/// the refresh itself allocates nothing).
///
/// Correctness note: warm starts do not perturb the iteration — each
/// `evaluate` is exact for the presented context, and the presented
/// contexts are the alternating sequence from `∅`, whose `T`-results
/// grow and `U`-results shrink monotonically; equal consecutive
/// cardinalities therefore still imply the fixpoint.
pub fn well_founded_refresh(
    gp: &GroundProgram,
    t_chain: &mut IncrementalLfp,
    u_chain: &mut IncrementalLfp,
    empty: &BitSet,
) -> Interp {
    well_founded_refresh_governed(gp, t_chain, u_chain, empty, &Guard::none())
        .expect("an ungoverned refresh cannot be interrupted")
}

/// [`well_founded_refresh`] under a governance [`Guard`]: every reduct
/// evaluation runs governed ([`IncrementalLfp::evaluate_governed`]) and
/// the outer alternation checks the guard once per round, so a
/// cancellation, deadline, or fuel trip surfaces within one tick
/// interval of work. On interruption the chains are left unprimed (they
/// re-prime on next use — see `evaluate_governed`) and the error
/// carries the trip cause; callers that must restore exact warm-chain
/// state rebuild the chains, as the session rollback path does.
pub fn well_founded_refresh_governed(
    gp: &GroundProgram,
    t_chain: &mut IncrementalLfp,
    u_chain: &mut IncrementalLfp,
    empty: &BitSet,
    guard: &Guard,
) -> Result<Interp, InterruptCause> {
    debug_assert_eq!(empty.capacity(), gp.atom_count());
    debug_assert!(empty.is_empty());
    let mut t_count = 0usize;
    let mut u_count = u_chain.evaluate_governed(gp, empty, guard)?;
    loop {
        guard.check()?;
        let tc = t_chain.evaluate_governed(gp, u_chain.out(), guard)?;
        let uc = u_chain.evaluate_governed(gp, t_chain.out(), guard)?;
        let stable = tc == t_count && uc == u_count;
        t_count = tc;
        u_count = uc;
        if stable {
            break;
        }
    }
    let t = t_chain.out().clone();
    let mut false_set = u_chain.out().clone();
    debug_assert!(
        t.is_subset(&false_set),
        "alternating fixpoint order violated"
    );
    false_set.complement_in_place();
    Ok(Interp::from_parts(t, false_set))
}

/// The full-recompute alternating fixpoint of PR 1: every `A(·)` runs
/// through one shared [`Propagator`] from scratch (template-copied
/// counters, full negative-clause rescan). Zero allocation per reduct
/// call, but O(program) work per call regardless of how little the
/// context moved. Kept as the measured baseline for the perf harness
/// and as the differential-testing oracle for the incremental path.
pub fn well_founded_model_scratch(gp: &GroundProgram) -> Interp {
    let n = gp.atom_count();
    let mut prop = Propagator::new(gp);
    let mut t = BitSet::new(n);
    let mut u = BitSet::new(n);
    let mut t_next = BitSet::new(n);
    let mut u_next = BitSet::new(n);

    let mut t_count = 0usize;
    let mut u_count = prop.lfp_into(gp, |q| !t.contains(q.index()), &mut u);
    loop {
        let tc = prop.lfp_into(gp, |q| !u.contains(q.index()), &mut t_next);
        let uc = prop.lfp_into(gp, |q| !t_next.contains(q.index()), &mut u_next);
        debug_assert!(t.is_subset(&t_next), "T must grow monotonically");
        debug_assert!(u_next.is_subset(&u), "U must shrink monotonically");
        let stable = tc == t_count && uc == u_count;
        std::mem::swap(&mut t, &mut t_next);
        std::mem::swap(&mut u, &mut u_next);
        t_count = tc;
        u_count = uc;
        if stable {
            break;
        }
    }
    debug_assert!(t.is_subset(&u), "alternating fixpoint order violated");
    u.complement_in_place();
    Interp::from_parts(t, u)
}

/// The pre-propagator baseline: identical semantics to
/// [`well_founded_model`], but every `A(·)` call rebuilds its watch
/// structure from scratch ([`lfp_with_rebuild`]). Kept only so the perf
/// harness can quantify the substrate win end-to-end.
pub fn well_founded_model_rebuild(gp: &GroundProgram) -> Interp {
    let n = gp.atom_count();
    let a = |s: &BitSet| lfp_with_rebuild(gp, |q| !s.contains(q.index()));
    let mut t = BitSet::new(n);
    let mut u = a(&t);
    loop {
        let t_next = a(&u);
        let u_next = a(&t_next);
        let stable = t_next == t && u_next == u;
        t = t_next;
        u = u_next;
        if stable {
            break;
        }
    }
    let false_set = u.complement();
    Interp::from_parts(t, false_set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Truth;
    use crate::wp::{vp_iteration, wp_iteration};
    use gsls_ground::testutil::atom_id as id;
    use gsls_ground::Grounder;
    use gsls_lang::{parse_program, TermStore};

    fn wfm(src: &str) -> (TermStore, GroundProgram, Interp) {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, src).unwrap();
        let gp = Grounder::ground(&mut s, &p).unwrap();
        let m = well_founded_model(&gp);
        (s, gp, m)
    }

    #[test]
    fn definite_program_two_valued() {
        let (s, gp, m) = wfm("e(a, b). e(b, c). t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).");
        assert!(m.is_total());
        assert_eq!(m.truth(id(&s, &gp, "t(a, c)")), Truth::True);
    }

    #[test]
    fn mutual_negation_undefined() {
        let (s, gp, m) = wfm("p :- ~q. q :- ~p.");
        assert_eq!(m.truth(id(&s, &gp, "p")), Truth::Undefined);
        assert_eq!(m.truth(id(&s, &gp, "q")), Truth::Undefined);
    }

    #[test]
    fn odd_loop_undefined() {
        let (s, gp, m) = wfm("p :- ~p.");
        assert_eq!(m.truth(id(&s, &gp, "p")), Truth::Undefined);
    }

    #[test]
    fn agrees_with_wp_and_vp_iterations() {
        for src in [
            "q. p :- ~q. r :- ~p.",
            "p :- ~q. q :- ~p. r :- ~s. s.",
            "p :- ~q, ~r. q :- r, ~p. r :- p, ~q. s :- ~p, ~q, ~r.",
            "p :- ~p. q :- ~s, ~p. s :- ~q.",
            "move(a, b). move(b, a). move(b, c). win(X) :- move(X, Y), ~win(Y).",
            "e(a, b). t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).",
        ] {
            let mut s = TermStore::new();
            let p = parse_program(&mut s, src).unwrap();
            let gp = Grounder::ground(&mut s, &p).unwrap();
            let alt = well_founded_model(&gp);
            assert_eq!(alt, vp_iteration(&gp).model, "vp mismatch: {src}");
            assert_eq!(alt, wp_iteration(&gp).model, "wp mismatch: {src}");
        }
    }

    #[test]
    fn wfm_is_a_partial_model() {
        for src in [
            "q. p :- ~q. r :- ~p.",
            "p :- ~q. q :- ~p.",
            "move(a, b). move(b, a). win(X) :- move(X, Y), ~win(Y).",
        ] {
            let (_, gp, m) = wfm(src);
            assert!(m.satisfies(&gp), "WFM must satisfy the program: {src}");
        }
    }

    #[test]
    fn stats_reported() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "p :- ~q. q :- ~p.").unwrap();
        let gp = Grounder::ground(&mut s, &p).unwrap();
        let (_, stats) = well_founded_model_with_stats(&gp);
        assert!(stats.reduct_calls >= 3);
        assert!(stats.rounds >= 1);
        assert!(stats.clause_checks >= 2 * gp.clause_count() as u64);
    }

    #[test]
    fn incremental_equals_scratch_and_rebuild() {
        for src in [
            "q. p :- ~q. r :- ~p.",
            "p :- ~q. q :- ~p. r :- ~s. s.",
            "p :- ~q, ~r. q :- r, ~p. r :- p, ~q. s :- ~p, ~q, ~r.",
            "p :- ~p. q :- ~s, ~p. s :- ~q.",
            "move(a, b). move(b, a). move(b, c). win(X) :- move(X, Y), ~win(Y).",
            "e(a, b). t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).",
        ] {
            let mut s = TermStore::new();
            let p = parse_program(&mut s, src).unwrap();
            let gp = Grounder::ground(&mut s, &p).unwrap();
            let inc = well_founded_model(&gp);
            assert_eq!(inc, well_founded_model_scratch(&gp), "scratch: {src}");
            assert_eq!(inc, well_founded_model_rebuild(&gp), "rebuild: {src}");
        }
    }

    #[test]
    fn deep_chain_does_delta_sized_rounds() {
        // a_i :- ~a_{i+1}: the alternating iteration takes many rounds,
        // each changing O(1) atoms — exactly the shape the incremental
        // path exists for. Total clause checks must stay far below
        // reduct_calls × clauses.
        let mut src = String::from("a40.\n");
        for i in (0..40).rev() {
            src.push_str(&format!("a{} :- ~a{}.\n", i, i + 1));
        }
        let mut s = TermStore::new();
        let p = parse_program(&mut s, &src).unwrap();
        let gp = Grounder::ground(&mut s, &p).unwrap();
        let (m, stats) = well_founded_model_with_stats(&gp);
        assert!(m.is_total());
        let scratch_checks = stats.reduct_calls as u64 * gp.clause_count() as u64;
        assert!(
            stats.clause_checks < scratch_checks / 4,
            "incremental checks {} vs scratch-equivalent {}",
            stats.clause_checks,
            scratch_checks
        );
    }

    #[test]
    fn refresh_tracks_growth_and_switching() {
        use crate::bitset::BitSet;
        use crate::incremental::{IncrementalLfp, NegMode};
        let mut s = TermStore::new();
        let p = parse_program(
            &mut s,
            "move(a, b). move(b, a). move(b, c). win(X) :- move(X, Y), ~win(Y).",
        )
        .unwrap();
        let mut gp = Grounder::ground(&mut s, &p).unwrap();
        let mut t_chain = IncrementalLfp::new(&gp, NegMode::SatisfiedOutside);
        let mut u_chain = IncrementalLfp::new(&gp, NegMode::SatisfiedOutside);
        let mut empty = BitSet::new(gp.atom_count());
        let m0 = well_founded_refresh(&gp, &mut t_chain, &mut u_chain, &empty);
        assert_eq!(m0, well_founded_model(&gp));
        // Grow: give c an escape move back to a, plus its win rule
        // instance — flips the board's values.
        let mv = s.intern_symbol("move");
        let win = s.intern_symbol("win");
        let (a, c) = (s.constant("a"), s.constant("c"));
        let mca = gp.intern_atom(gsls_lang::Atom::new(mv, vec![c, a]));
        let wc = gp.intern_atom(gsls_lang::Atom::new(win, vec![c]));
        let wa = gp.lookup_atom(&gsls_lang::Atom::new(win, vec![a])).unwrap();
        gp.push_clause_parts(mca, &[], &[]);
        gp.push_clause_parts(wc, &[mca], &[wa]);
        gp.finalize();
        t_chain.grow(&gp);
        u_chain.grow(&gp);
        empty.grow(gp.atom_count());
        let m1 = well_founded_refresh(&gp, &mut t_chain, &mut u_chain, &empty);
        assert_eq!(m1, well_founded_model(&gp), "after growth");
        // Switch the new move fact off again on both chains: the model
        // must return to the original board's verdicts on old atoms.
        let fact_ci = (gp.clause_count() - 2) as u32;
        t_chain.set_clauses_enabled(&gp, &[fact_ci], &[]);
        u_chain.set_clauses_enabled(&gp, &[fact_ci], &[]);
        let m2 = well_founded_refresh(&gp, &mut t_chain, &mut u_chain, &empty);
        for atom in [("win(a)"), ("win(b)"), ("win(c)")] {
            let old = gsls_ground::testutil::atom_id(&s, &gp, atom);
            assert_eq!(m2.truth(old), m0.truth(old), "{atom} after switch-off");
        }
    }

    #[test]
    fn deep_negation_chain() {
        // a_i :- ~a_{i+1}; a_n fact. Alternating values down the chain.
        let mut src = String::from("a10.\n");
        for i in (0..10).rev() {
            src.push_str(&format!("a{} :- ~a{}.\n", i, i + 1));
        }
        let (s, gp, m) = wfm(&src);
        assert!(m.is_total());
        // a10 true, a9 false, a8 true, ...
        for i in 0..=10 {
            let expect = if (10 - i) % 2 == 0 {
                Truth::True
            } else {
                Truth::False
            };
            assert_eq!(m.truth(id(&s, &gp, &format!("a{i}"))), expect, "a{i}");
        }
    }
}
