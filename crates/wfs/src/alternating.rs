//! The alternating fixpoint: the polynomial bottom-up baseline.
//!
//! Van Gelder's alternating-fixpoint characterisation of the well-founded
//! model (the bottom-up algorithm the paper's footnote 5 cites as [32]):
//! let `A(S)` be the least fixpoint of the Gelfond–Lifschitz reduct of `P`
//! w.r.t. `S` (a negated atom `¬q` holds iff `q ∉ S`). `A` is
//! antimonotone, so `A∘A` is monotone; iterating
//!
//! ```text
//! T₀ = ∅,  U₀ = A(T₀),  Tᵢ₊₁ = A(Uᵢ),  Uᵢ₊₁ = A(Tᵢ₊₁)
//! ```
//!
//! converges with `T∞ ⊆ U∞`. Then `M_WF(P)` has true atoms `T∞`, false
//! atoms `H ∖ U∞`, undefined `U∞ ∖ T∞`. Each `A` call is linear in program
//! size, and the iteration count is bounded by the number of atoms, giving
//! the quadratic worst case (typically a handful of rounds).

use crate::bitset::BitSet;
use crate::interp::Interp;
use crate::tp::lfp_with;
use gsls_ground::GroundProgram;

/// Statistics from an alternating-fixpoint run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlternatingStats {
    /// Number of `A(·)` evaluations performed.
    pub reduct_calls: u32,
    /// Number of outer rounds until the fixpoint.
    pub rounds: u32,
}

/// Computes the well-founded model of `gp`.
pub fn well_founded_model(gp: &GroundProgram) -> Interp {
    well_founded_model_with_stats(gp).0
}

/// [`well_founded_model`] plus iteration statistics.
pub fn well_founded_model_with_stats(gp: &GroundProgram) -> (Interp, AlternatingStats) {
    let n = gp.atom_count();
    let mut reduct_calls = 0u32;
    let mut a = |s: &BitSet| {
        reduct_calls += 1;
        lfp_with(gp, |q| !s.contains(q.index()))
    };
    let mut t = BitSet::new(n);
    let mut u = a(&t);
    let mut rounds = 1u32;
    loop {
        let t_next = a(&u);
        let u_next = a(&t_next);
        let stable = t_next == t && u_next == u;
        t = t_next;
        u = u_next;
        if stable {
            break;
        }
        rounds += 1;
    }
    debug_assert!(t.is_subset(&u), "alternating fixpoint order violated");
    let false_set = u.complement();
    (
        Interp::from_parts(t, false_set),
        AlternatingStats {
            reduct_calls,
            rounds,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Truth;
    use crate::wp::{vp_iteration, wp_iteration};
    use gsls_ground::{GroundAtomId, Grounder};
    use gsls_lang::{parse_program, TermStore};

    fn wfm(src: &str) -> (TermStore, GroundProgram, Interp) {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, src).unwrap();
        let gp = Grounder::ground(&mut s, &p).unwrap();
        let m = well_founded_model(&gp);
        (s, gp, m)
    }

    fn id(store: &TermStore, gp: &GroundProgram, text: &str) -> GroundAtomId {
        gp.atom_ids()
            .find(|&a| gp.display_atom(store, a) == text)
            .unwrap_or_else(|| panic!("atom {text} not found"))
    }

    #[test]
    fn definite_program_two_valued() {
        let (s, gp, m) = wfm("e(a, b). e(b, c). t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).");
        assert!(m.is_total());
        assert_eq!(m.truth(id(&s, &gp, "t(a, c)")), Truth::True);
    }

    #[test]
    fn mutual_negation_undefined() {
        let (s, gp, m) = wfm("p :- ~q. q :- ~p.");
        assert_eq!(m.truth(id(&s, &gp, "p")), Truth::Undefined);
        assert_eq!(m.truth(id(&s, &gp, "q")), Truth::Undefined);
    }

    #[test]
    fn odd_loop_undefined() {
        let (s, gp, m) = wfm("p :- ~p.");
        assert_eq!(m.truth(id(&s, &gp, "p")), Truth::Undefined);
    }

    #[test]
    fn agrees_with_wp_and_vp_iterations() {
        for src in [
            "q. p :- ~q. r :- ~p.",
            "p :- ~q. q :- ~p. r :- ~s. s.",
            "p :- ~q, ~r. q :- r, ~p. r :- p, ~q. s :- ~p, ~q, ~r.",
            "p :- ~p. q :- ~s, ~p. s :- ~q.",
            "move(a, b). move(b, a). move(b, c). win(X) :- move(X, Y), ~win(Y).",
            "e(a, b). t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).",
        ] {
            let mut s = TermStore::new();
            let p = parse_program(&mut s, src).unwrap();
            let gp = Grounder::ground(&mut s, &p).unwrap();
            let alt = well_founded_model(&gp);
            assert_eq!(alt, vp_iteration(&gp).model, "vp mismatch: {src}");
            assert_eq!(alt, wp_iteration(&gp).model, "wp mismatch: {src}");
        }
    }

    #[test]
    fn wfm_is_a_partial_model() {
        for src in [
            "q. p :- ~q. r :- ~p.",
            "p :- ~q. q :- ~p.",
            "move(a, b). move(b, a). win(X) :- move(X, Y), ~win(Y).",
        ] {
            let (_, gp, m) = wfm(src);
            assert!(m.satisfies(&gp), "WFM must satisfy the program: {src}");
        }
    }

    #[test]
    fn stats_reported() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "p :- ~q. q :- ~p.").unwrap();
        let gp = Grounder::ground(&mut s, &p).unwrap();
        let (_, stats) = well_founded_model_with_stats(&gp);
        assert!(stats.reduct_calls >= 3);
        assert!(stats.rounds >= 1);
    }

    #[test]
    fn deep_negation_chain() {
        // a_i :- ~a_{i+1}; a_n fact. Alternating values down the chain.
        let mut src = String::from("a10.\n");
        for i in (0..10).rev() {
            src.push_str(&format!("a{} :- ~a{}.\n", i, i + 1));
        }
        let (s, gp, m) = wfm(&src);
        assert!(m.is_total());
        // a10 true, a9 false, a8 true, ...
        for i in 0..=10 {
            let expect = if (10 - i) % 2 == 0 { Truth::True } else { Truth::False };
            assert_eq!(m.truth(id(&s, &gp, &format!("a{i}"))), expect, "a{i}");
        }
    }
}
