//! Greatest unfounded sets (Def. 2.1 / 2.2 of the paper).
//!
//! `A ⊆ H` is *unfounded w.r.t. I* when every rule for every `p ∈ A` has a
//! **witness of unusability**: either (1) some body literal's complement
//! is in `I`, or (2) some positive body literal is in `A` itself. The
//! greatest unfounded set `U_P(I)` is the union of all unfounded sets.
//!
//! Computation: `U_P(I)` is the complement of the least set `X` of atoms
//! that are *externally supported*: `p ∈ X` iff some rule for `p` is not
//! blocked by condition (1) and has all its positive body atoms in `X`.
//! That least fixpoint is exactly [`crate::tp::lfp_with`] over the rules
//! surviving condition (1).
//!
//! The entry points here stay on the full-recompute substrate: blocking
//! condition (1) involves *positive* literals being false as well as
//! negative ones being true, which is not a pure `watch_neg` condition,
//! so the difference-driven mode does not apply directly. The `V_P`
//! iteration sidesteps this by evaluating its unfounded pass as a
//! Gelfond–Lifschitz chain against the growing true set (see
//! [`crate::wp::vp_iteration`]), which *is* incremental.

use crate::bitset::BitSet;
use crate::interp::Interp;
use crate::propagator::Propagator;
use gsls_ground::{ClauseRef, GroundProgram};

/// Whether clause `c` is *blocked* w.r.t. `I` by condition (1): some body
/// literal's complement is in `I`.
fn blocked(c: ClauseRef<'_>, i: &Interp) -> bool {
    c.pos.iter().any(|&a| i.is_false(a)) || c.neg.iter().any(|&a| i.is_true(a))
}

/// Computes the greatest unfounded set `U_P(I)` of `gp` w.r.t. `i`.
///
/// Convenience form allocating fresh scratch; iterated callers (`W_P` /
/// `V_P` stages) reuse a [`Propagator`] via [`unfounded_into`].
pub fn greatest_unfounded(gp: &GroundProgram, i: &Interp) -> BitSet {
    let mut prop = Propagator::new(gp);
    let mut out = BitSet::new(gp.atom_count());
    unfounded_into(&mut prop, gp, i, &mut out);
    out
}

/// [`greatest_unfounded`] into reusable scratch: computes the externally
/// supported closure with `prop` (see [`Propagator::supported_into`]) and
/// complements it in place. Zero heap allocation after warm-up.
pub fn unfounded_into(prop: &mut Propagator, gp: &GroundProgram, i: &Interp, out: &mut BitSet) {
    // X = least fixpoint of "some unblocked rule with positive body ⊆ X";
    // U_P(I) is the complement of X.
    prop.supported_into(gp, i, out);
    out.complement_in_place();
}

/// Checks Def. 2.1 directly: is `set` an unfounded set w.r.t. `i`?
/// Used as a test oracle for [`greatest_unfounded`].
pub fn is_unfounded_set(gp: &GroundProgram, i: &Interp, set: &BitSet) -> bool {
    for p in set.iter() {
        for &ci in gp.clauses_for(gsls_ground::GroundAtomId(p as u32)) {
            let c = gp.clause(ci);
            let witness = blocked(c, i) || c.pos.iter().any(|&a| set.contains(a.index()));
            if !witness {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsls_ground::Grounder;
    use gsls_lang::{parse_program, TermStore};

    fn ground(src: &str) -> (TermStore, GroundProgram) {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, src).unwrap();
        let gp = Grounder::ground(&mut s, &p).unwrap();
        (s, gp)
    }

    use gsls_ground::testutil::atom_id as id;

    #[test]
    fn atom_without_rules_is_unfounded() {
        let (s, gp) = ground("p :- ~q.");
        let q = id(&s, &gp, "q");
        let i = Interp::new(gp.atom_count());
        let u = greatest_unfounded(&gp, &i);
        assert!(u.contains(q.index()), "q has no rules");
    }

    #[test]
    fn fact_never_unfounded() {
        let (s, gp) = ground("p. q :- p.");
        let i = Interp::new(gp.atom_count());
        let u = greatest_unfounded(&gp, &i);
        assert!(!u.contains(id(&s, &gp, "p").index()));
        assert!(!u.contains(id(&s, &gp, "q").index()));
    }

    #[test]
    fn positive_loop_is_unfounded() {
        // Manual ground program: a :- b. b :- a. (relevant grounding would
        // prune it, so build it directly).
        let mut s = TermStore::new();
        let mut gp = GroundProgram::new();
        let asym = s.intern_symbol("a");
        let bsym = s.intern_symbol("b");
        let a = gp.intern_atom(gsls_lang::Atom::new(asym, Vec::new()));
        let b = gp.intern_atom(gsls_lang::Atom::new(bsym, Vec::new()));
        gp.push_clause(gsls_ground::GroundClause {
            head: a,
            pos: vec![b].into(),
            neg: Vec::new().into(),
        });
        gp.push_clause(gsls_ground::GroundClause {
            head: b,
            pos: vec![a].into(),
            neg: Vec::new().into(),
        });
        gp.finalize();
        let i = Interp::new(gp.atom_count());
        let u = greatest_unfounded(&gp, &i);
        assert!(u.contains(a.index()) && u.contains(b.index()));
        assert!(is_unfounded_set(&gp, &i, &u));
    }

    #[test]
    fn win_cycle_not_unfounded_wrt_empty() {
        // win(a)/win(b) depend on each other only through negation, which
        // condition (2) ignores — so neither is unfounded w.r.t. ∅.
        let (s, gp) = ground("move(a, b). move(b, a). win(X) :- move(X, Y), ~win(Y).");
        let i = {
            // Make the move facts true so they don't block anything.
            let mut i = Interp::new(gp.atom_count());
            i.set_true(id(&s, &gp, "move(a, b)"));
            i.set_true(id(&s, &gp, "move(b, a)"));
            i
        };
        let u = greatest_unfounded(&gp, &i);
        assert!(!u.contains(id(&s, &gp, "win(a)").index()));
        assert!(!u.contains(id(&s, &gp, "win(b)").index()));
    }

    #[test]
    fn blocked_rules_make_head_unfounded() {
        let (s, gp) = ground("p :- q. q :- ~r. r.");
        let mut i = Interp::new(gp.atom_count());
        i.set_true(id(&s, &gp, "r"));
        let u = greatest_unfounded(&gp, &i);
        // q's rule has complement r ∈ I → q unfounded; p follows via (2).
        assert!(u.contains(id(&s, &gp, "q").index()));
        assert!(u.contains(id(&s, &gp, "p").index()));
        assert!(is_unfounded_set(&gp, &i, &u));
    }

    #[test]
    fn gus_is_maximal() {
        // Every unfounded set is contained in the GUS: check against the
        // brute-force enumeration on a small program.
        let (_, gp) = ground("p :- ~q. q :- ~p. r :- p, q.");
        let i = Interp::new(gp.atom_count());
        let gus = greatest_unfounded(&gp, &i);
        let n = gp.atom_count();
        for mask in 0u32..(1 << n) {
            let mut set = BitSet::new(n);
            for b in 0..n {
                if mask & (1 << b) != 0 {
                    set.insert(b);
                }
            }
            if is_unfounded_set(&gp, &i, &set) {
                assert!(set.is_subset(&gus), "unfounded set {mask:b} not within GUS");
            }
        }
        assert!(is_unfounded_set(&gp, &i, &gus));
    }

    #[test]
    fn oracle_rejects_non_unfounded() {
        let (s, gp) = ground("p. q :- p.");
        let i = Interp::new(gp.atom_count());
        let mut set = BitSet::new(gp.atom_count());
        set.insert(id(&s, &gp, "p").index());
        assert!(!is_unfounded_set(&gp, &i, &set), "fact has no witness");
    }
}
