//! The reusable Dowling–Gallier propagation context.
//!
//! Every bottom-up engine in this crate — the alternating fixpoint, the
//! stable-model check, unfounded-set computation, the staged `W_P`/`V_P`
//! iterations, and the tabled engine's SCC-local fixpoints in
//! `gsls-core` — bottoms out in the same linear-time least-fixpoint
//! computation over a [`GroundProgram`]. A [`Propagator`] owns all the
//! scratch that computation needs so that repeated calls perform **zero
//! heap allocation** after the first: the watch lists come from the CSR
//! reverse indexes precomputed by [`GroundProgram::finalize`], and the
//! per-clause state is reset by a bulk copy from a precomputed template,
//! not reallocated.
//!
//! Beyond scratch reuse, [`Propagator::new`] precomputes the
//! reduct-independent structure once per program:
//!
//! * `missing_template` — each clause's positive-body count, restored
//!   per call with one `copy_from_slice`;
//! * `fact_heads` — heads of definite facts, which seed every call's
//!   queue unconditionally;
//! * a flattened side table of the clauses that *have* negative
//!   literals, so the per-call Gelfond–Lifschitz deletion scan touches
//!   only those clauses instead of the whole program.
//!
//! ## Reuse contract
//!
//! * A `Propagator` is sized to one program at [`Propagator::new`] and
//!   may only be used with that program (same atom and clause counts);
//!   debug assertions enforce this.
//! * The program must stay finalized; mutating it invalidates the CSR
//!   indexes and the next call panics.
//! * `lfp_into`/`lfp_alive`/`supported_into` clear the output set
//!   themselves. [`Propagator::lfp_restricted`] is the subset form: the
//!   caller pre-clears exactly the bits its clause subset can set (its
//!   heads) and the call touches no other bits — that is what lets the
//!   tabled engine keep one global-sized scratch set across thousands of
//!   tiny SCC fixpoints without an O(atoms) clear per SCC.
//!
//! Subset liveness uses epoch stamping: each restricted call bumps a
//! counter and stamps its live clauses; stale stamps read as dead, so no
//! O(clauses) reset is ever needed. Full-program calls instead mark
//! reduct-deleted clauses with a `u32::MAX` sentinel in the (freshly
//! template-copied) counter array.
//!
//! Every call here recomputes from scratch (O(program) even for a
//! context that barely moved). Engines that evaluate a *chain* of
//! nearby contexts — the alternating fixpoint, the `V_P` stages — use
//! the substrate's difference-driven mode instead:
//! [`crate::incremental::IncrementalLfp`].
//!
//! ## Parallel workers
//!
//! A `Propagator` holds no interior mutability and no references into
//! the program, so it is `Send` (pinned by a compile-time test): the
//! parallel tabled engine's contract is one **clone per worker** over
//! the shared immutable `GroundProgram` (`Sync`), with `Clone` as the
//! clone-for-worker constructor — cloned scratch is warm-sized, never
//! aliased.

use crate::bitset::BitSet;
use crate::interp::Interp;
use gsls_ground::{ClauseRef, GroundAtomId, GroundProgram};

/// Sentinel marking a clause deleted for the current full-program call.
const DEAD: u32 = u32::MAX;

/// One entry of the negative-literal side table: a clause index plus the
/// range of its negative literals in [`Propagator::neg_lits`].
#[derive(Debug, Clone, Copy)]
struct NegClause {
    ci: u32,
    start: u32,
    end: u32,
    /// Cached `pos_len == 0`: when the negatives are satisfied, such a
    /// clause seeds the queue directly.
    no_pos: bool,
}

/// Reusable scratch for linear-time least-fixpoint propagation.
#[derive(Debug, Clone)]
pub struct Propagator {
    /// Positive-body count per clause — the per-call reset template.
    missing_template: Vec<u32>,
    /// Heads of definite facts (no body at all): unconditional seeds.
    fact_heads: Vec<u32>,
    /// Clauses with at least one negative literal.
    neg_clauses: Vec<NegClause>,
    /// Their negative literals, flattened for sequential scanning.
    neg_lits: Vec<GroundAtomId>,
    /// Per-clause count of not-yet-true tracked positive literals
    /// (`DEAD` = deleted this call).
    missing: Vec<u32>,
    /// Work queue of newly-true atoms.
    queue: Vec<u32>,
    /// Clause liveness stamps for the restricted (subset) mode.
    epoch: Vec<u32>,
    cur: u32,
    n_atoms: usize,
}

impl Propagator {
    /// Creates a propagator sized to `gp` (which must be finalized).
    pub fn new(gp: &GroundProgram) -> Self {
        assert!(
            gp.is_finalized(),
            "Propagator requires a finalized GroundProgram"
        );
        let n_clauses = gp.clause_count();
        let mut missing_template = Vec::with_capacity(n_clauses);
        let mut fact_heads = Vec::new();
        let mut neg_clauses = Vec::new();
        let mut neg_lits = Vec::new();
        for (ci, c) in gp.clauses().enumerate() {
            let pos_len = c.pos.len() as u32;
            debug_assert!(pos_len < DEAD, "clause body too large");
            missing_template.push(pos_len);
            if c.body_len() == 0 {
                fact_heads.push(c.head.0);
            }
            if !c.neg.is_empty() {
                let start = neg_lits.len() as u32;
                neg_lits.extend_from_slice(c.neg);
                neg_clauses.push(NegClause {
                    ci: ci as u32,
                    start,
                    end: neg_lits.len() as u32,
                    no_pos: pos_len == 0,
                });
            }
        }
        Propagator {
            missing_template,
            fact_heads,
            neg_clauses,
            neg_lits,
            missing: vec![0; n_clauses],
            queue: Vec::new(),
            epoch: vec![0; n_clauses],
            cur: 0,
            n_atoms: gp.atom_count(),
        }
    }

    /// The atom capacity this propagator was sized for.
    pub fn atom_capacity(&self) -> usize {
        self.n_atoms
    }

    fn check(&self, gp: &GroundProgram, out: &BitSet) {
        debug_assert_eq!(self.missing.len(), gp.clause_count(), "program changed");
        debug_assert_eq!(self.n_atoms, gp.atom_count(), "program changed");
        debug_assert_eq!(out.capacity(), self.n_atoms);
    }

    /// Least fixpoint of positive derivation where a body literal `¬q` is
    /// considered satisfied iff `neg_sat(q)` — the Gelfond–Lifschitz
    /// reduct fixpoint `A(S)` (with `neg_sat(q) = q ∉ S`) and the
    /// `T̄^ω(S⁻)` iteration of Lemma 4.2 (with `neg_sat(q) = ¬q ∈ S⁻`).
    ///
    /// Clears `out`, fills it with the derivable atoms, and returns their
    /// number. Zero heap allocation (after queue warm-up): counters are
    /// template-copied and only clauses with negative literals are
    /// scanned for reduct deletion.
    pub fn lfp_into(
        &mut self,
        gp: &GroundProgram,
        neg_sat: impl Fn(GroundAtomId) -> bool,
        out: &mut BitSet,
    ) -> usize {
        self.check(gp, out);
        out.clear();
        self.queue.clear();
        self.missing.copy_from_slice(&self.missing_template);
        let mut inserted = 0usize;
        for &h in &self.fact_heads {
            if out.insert(h as usize) {
                inserted += 1;
                self.queue.push(h);
            }
        }
        let heads = gp.heads();
        for nc in &self.neg_clauses {
            let negs = &self.neg_lits[nc.start as usize..nc.end as usize];
            if negs.iter().all(|&q| neg_sat(q)) {
                if nc.no_pos {
                    let head = heads[nc.ci as usize];
                    if out.insert(head.index()) {
                        inserted += 1;
                        self.queue.push(head.0);
                    }
                }
            } else {
                // Deleted by the reduct.
                self.missing[nc.ci as usize] = DEAD;
            }
        }
        inserted + self.propagate_full(gp, out)
    }

    /// The general full-program form: least fixpoint of positive
    /// derivation over the clauses `alive` admits (negative literals are
    /// the caller's business — they only influence liveness). Clears
    /// `out`, fills it, returns the number of derived atoms. Scans every
    /// clause; prefer [`Propagator::lfp_into`] when liveness is a pure
    /// negative-literal condition.
    pub fn lfp_alive(
        &mut self,
        gp: &GroundProgram,
        mut alive: impl FnMut(ClauseRef<'_>) -> bool,
        out: &mut BitSet,
    ) -> usize {
        self.check(gp, out);
        out.clear();
        self.queue.clear();
        self.missing.copy_from_slice(&self.missing_template);
        let mut inserted = 0usize;
        for ci in 0..gp.clause_count() as u32 {
            let c = gp.clause(ci);
            if !alive(c) {
                self.missing[ci as usize] = DEAD;
            } else if c.pos.is_empty() && out.insert(c.head.index()) {
                inserted += 1;
                self.queue.push(c.head.0);
            }
        }
        inserted + self.propagate_full(gp, out)
    }

    /// The externally-supported closure underlying greatest unfounded
    /// sets: least set `X` with `p ∈ X` iff some rule for `p` is not
    /// blocked w.r.t. `i` (no body literal's complement in `i`) and has
    /// all positive body atoms in `X`. `U_P(i)` is its complement.
    pub fn supported_into(&mut self, gp: &GroundProgram, i: &Interp, out: &mut BitSet) -> usize {
        self.lfp_alive(
            gp,
            |c| !c.pos.iter().any(|&a| i.is_false(a)) && !c.neg.iter().any(|&a| i.is_true(a)),
            out,
        )
    }

    /// Least fixpoint restricted to a clause subset (e.g. one SCC of the
    /// tabled engine). `classify` maps each clause view to `None` (clause
    /// deleted for this pass) or `Some(k)` where `k` is the number of
    /// **tracked** positive body occurrences — those whose atoms the
    /// propagation itself must derive into `out`. Positive literals
    /// already known true externally are simply not counted.
    ///
    /// Contract: the caller pre-clears the `out` bits for every head in
    /// `clauses`; the call reads/writes only those bits, so `out` may be
    /// a long-lived global-sized scratch set.
    pub fn lfp_restricted(
        &mut self,
        gp: &GroundProgram,
        clauses: &[u32],
        mut classify: impl FnMut(ClauseRef<'_>) -> Option<u32>,
        out: &mut BitSet,
    ) -> usize {
        self.check(gp, out);
        self.queue.clear();
        if self.cur == u32::MAX {
            self.epoch.fill(0);
            self.cur = 0;
        }
        self.cur += 1;
        let cur = self.cur;
        let mut inserted = 0usize;
        for &ci in clauses {
            let c = gp.clause(ci);
            let Some(m) = classify(c) else {
                continue;
            };
            self.epoch[ci as usize] = cur;
            self.missing[ci as usize] = m;
            if m == 0 && out.insert(c.head.index()) {
                inserted += 1;
                self.queue.push(c.head.0);
            }
        }
        inserted + self.propagate_restricted(gp, out)
    }

    /// Queue drain for full-program calls: deadness is the `DEAD`
    /// counter sentinel. The watch index and head table are hoisted out
    /// of the loop — this is the hottest path in the workspace.
    fn propagate_full(&mut self, gp: &GroundProgram, out: &mut BitSet) -> usize {
        let watch = gp.watch_pos_index();
        let heads = gp.heads();
        let mut inserted = 0usize;
        while let Some(a) = self.queue.pop() {
            for &ci in watch.row(a as usize) {
                let m = &mut self.missing[ci as usize];
                if *m == DEAD {
                    continue;
                }
                debug_assert!(*m > 0, "over-decrement in propagation");
                *m -= 1;
                if *m == 0 {
                    let head = heads[ci as usize];
                    if out.insert(head.index()) {
                        inserted += 1;
                        self.queue.push(head.0);
                    }
                }
            }
        }
        inserted
    }

    /// Queue drain for restricted calls: deadness is a stale epoch.
    fn propagate_restricted(&mut self, gp: &GroundProgram, out: &mut BitSet) -> usize {
        let watch = gp.watch_pos_index();
        let heads = gp.heads();
        let mut inserted = 0usize;
        while let Some(a) = self.queue.pop() {
            for &ci in watch.row(a as usize) {
                if self.epoch[ci as usize] != self.cur {
                    continue;
                }
                let m = &mut self.missing[ci as usize];
                debug_assert!(*m > 0, "over-decrement in propagation");
                *m -= 1;
                if *m == 0 {
                    let head = heads[ci as usize];
                    if out.insert(head.index()) {
                        inserted += 1;
                        self.queue.push(head.0);
                    }
                }
            }
        }
        inserted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsls_ground::testutil::atom_id as id;
    use gsls_ground::Grounder;
    use gsls_lang::{parse_program, TermStore};

    fn ground(src: &str) -> (TermStore, GroundProgram) {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, src).unwrap();
        let gp = Grounder::ground(&mut s, &p).unwrap();
        (s, gp)
    }

    #[test]
    fn reuse_across_calls_gives_same_results() {
        let (s, gp) = ground("p :- ~q. q. r :- p. t :- q.");
        let mut prop = Propagator::new(&gp);
        let mut out = BitSet::new(gp.atom_count());
        // Call 1: all negations satisfied.
        let n1 = prop.lfp_into(&gp, |_| true, &mut out);
        assert!(out.contains(id(&s, &gp, "p").index()));
        assert!(out.contains(id(&s, &gp, "r").index()));
        assert_eq!(n1, out.count());
        // Call 2 on the same scratch: no negations satisfied.
        let n2 = prop.lfp_into(&gp, |_| false, &mut out);
        assert!(!out.contains(id(&s, &gp, "p").index()));
        assert!(out.contains(id(&s, &gp, "q").index()));
        assert!(out.contains(id(&s, &gp, "t").index()));
        assert_eq!(n2, 2);
        // Call 3: back to all satisfied — identical to call 1.
        let n3 = prop.lfp_into(&gp, |_| true, &mut out);
        assert_eq!(n3, n1);
    }

    #[test]
    fn alive_and_neg_sat_forms_agree() {
        let (_, gp) = ground("p :- ~q. q :- r. r. s :- r, ~p. t.");
        let mut prop = Propagator::new(&gp);
        let mut a = BitSet::new(gp.atom_count());
        let mut b = BitSet::new(gp.atom_count());
        for flag in [false, true] {
            prop.lfp_into(&gp, |_| flag, &mut a);
            prop.lfp_alive(&gp, |c| c.neg.is_empty() || flag, &mut b);
            assert_eq!(a, b, "neg_sat={flag}");
        }
    }

    #[test]
    fn restricted_only_touches_subset_heads() {
        let (s, gp) = ground("a. b :- a. c :- b. d :- ~z.");
        let a = id(&s, &gp, "a");
        let b = id(&s, &gp, "b");
        let c = id(&s, &gp, "c");
        let d = id(&s, &gp, "d");
        let mut prop = Propagator::new(&gp);
        let mut out = BitSet::new(gp.atom_count());
        // Pretend d is already known from an earlier pass; it must
        // survive a restricted call over the a/b clauses untouched.
        out.insert(d.index());
        let sub: Vec<u32> = gp
            .clauses_for(a)
            .iter()
            .chain(gp.clauses_for(b))
            .copied()
            .collect();
        let n = prop.lfp_restricted(&gp, &sub, |cl| Some(cl.pos.len() as u32), &mut out);
        assert_eq!(n, 2);
        assert!(out.contains(a.index()) && out.contains(b.index()));
        assert!(!out.contains(c.index()), "c's clause not in the subset");
        assert!(out.contains(d.index()), "unrelated bits preserved");
    }

    #[test]
    fn restricted_untracked_literals_pre_satisfied() {
        // b :- ext, a.  With `ext` external-true (untracked), b needs
        // only a.
        let (s, gp) = ground("ext. a. b :- ext, a.");
        let a = id(&s, &gp, "a");
        let b = id(&s, &gp, "b");
        let ext = id(&s, &gp, "ext");
        let mut prop = Propagator::new(&gp);
        let mut out = BitSet::new(gp.atom_count());
        let sub: Vec<u32> = gp
            .clauses_for(a)
            .iter()
            .chain(gp.clauses_for(b))
            .copied()
            .collect();
        prop.lfp_restricted(
            &gp,
            &sub,
            |cl| {
                // Track only non-ext positives.
                Some(cl.pos.iter().filter(|&&p| p != ext).count() as u32)
            },
            &mut out,
        );
        assert!(out.contains(b.index()), "externally satisfied literal");
        assert!(!out.contains(ext.index()), "ext never inserted");
    }

    #[test]
    fn full_and_restricted_modes_interleave() {
        let (s, gp) = ground("a. b :- a, ~z. c :- b.");
        let b = id(&s, &gp, "b");
        let mut prop = Propagator::new(&gp);
        let mut out = BitSet::new(gp.atom_count());
        let full1 = prop.lfp_into(&gp, |_| true, &mut out);
        let all: Vec<u32> = (0..gp.clause_count() as u32).collect();
        let mut out2 = BitSet::new(gp.atom_count());
        let restricted = prop.lfp_restricted(
            &gp,
            &all,
            |cl| Some(cl.pos.len() as u32), // all negs treated satisfied
            &mut out2,
        );
        assert_eq!(full1, restricted);
        assert_eq!(out, out2);
        // And a full call after a restricted one still works.
        let full2 = prop.lfp_into(&gp, |_| true, &mut out);
        assert_eq!(full1, full2);
        assert!(out.contains(b.index()));
    }

    #[test]
    fn duplicate_body_occurrences_counted_per_watch() {
        let (s, gp) = ground("p :- q, q. q.");
        let mut prop = Propagator::new(&gp);
        let mut out = BitSet::new(gp.atom_count());
        prop.lfp_into(&gp, |_| false, &mut out);
        assert!(out.contains(id(&s, &gp, "p").index()));
    }

    #[test]
    fn worker_contract_types_are_send() {
        // The shared-CSR + per-worker-state contract: workers receive a
        // Propagator clone by value and share the program by reference.
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Propagator>();
        assert_send::<BitSet>();
        assert_sync::<GroundProgram>();
        assert_sync::<Propagator>();
    }

    #[test]
    #[should_panic(expected = "finalized")]
    fn unfinalized_program_rejected() {
        let mut gp = GroundProgram::new();
        let mut s = TermStore::new();
        let sym = s.intern_symbol("x");
        gp.intern_atom(gsls_lang::Atom::new(sym, Vec::new()));
        let _ = Propagator::new(&gp);
    }
}
