//! The `W_P` and `V_P` iterations with stage tracking (Def. 2.3 / 2.4,
//! Lemma 2.1 of the paper).
//!
//! `W_P(I) = T_P(I) ∪ ¬·U_P(I)` iterated from ∅ gives the well-founded
//! partial model `M_WF(P)`. The coarser `V_P` iteration — one `T̄^ω` burst
//! for positives plus one `U_P` application for negatives per stage —
//! reaches the same fixpoint (Lemma 2.1) and defines the **stage** of each
//! literal, which Theorem 4.5 equates with the level of the corresponding
//! goal in the ground global tree. Stages are what the level/stage
//! correspondence experiments (E6) measure.

use crate::bitset::BitSet;
use crate::incremental::{IncrementalLfp, NegMode};
use crate::interp::Interp;
use crate::propagator::Propagator;
use crate::tp::tp_into;
use gsls_ground::{GroundAtomId, GroundProgram};

/// Result of a staged fixpoint iteration.
#[derive(Debug, Clone)]
pub struct StagedModel {
    /// The well-founded partial model.
    pub model: Interp,
    /// `stage_pos[a]` = iteration (1-based) at which atom `a` became true.
    pub stage_pos: Vec<Option<u32>>,
    /// `stage_neg[a]` = iteration at which atom `a` became false.
    pub stage_neg: Vec<Option<u32>>,
    /// Number of iterations to reach the fixpoint.
    pub iterations: u32,
}

impl StagedModel {
    /// The stage of the positive literal `a` (Def. 2.4), if true.
    pub fn stage_of_true(&self, a: GroundAtomId) -> Option<u32> {
        self.stage_pos[a.index()]
    }

    /// The stage of the negative literal `¬a`, if false.
    pub fn stage_of_false(&self, a: GroundAtomId) -> Option<u32> {
        self.stage_neg[a.index()]
    }
}

/// Iterates `V_P` from ∅ per Def. 2.4, recording stages:
/// `I_{α+1} = ⋃ₖT̄^k(neg(I_α)) ∪ ¬·U_P(pos(I_α))` (Lemma 4.4).
///
/// Both per-stage fixpoints run **difference-driven**: the positive
/// burst's context (the model's false set) and the unfounded pass's
/// context (the model's true set) each only grow along the iteration,
/// so every stage after the first re-enqueues only clauses whose
/// negative context changed (revivals on the `T̄^ω` chain, retractions
/// on the `U_P` chain) instead of rescanning the program.
pub fn vp_iteration(gp: &GroundProgram) -> StagedModel {
    let n = gp.atom_count();
    let mut model = Interp::new(n);
    let mut stage_pos = vec![None; n];
    let mut stage_neg = vec![None; n];
    let mut iterations = 0u32;
    // T̄^ω(neg(I_α)): ¬q satisfied iff q already false — context is the
    // false set, blockers are its non-members.
    let mut pos_chain = IncrementalLfp::new(gp, NegMode::SatisfiedInside);
    // U_P(pos(I_α)) via the externally-supported closure: a clause is
    // blocked exactly when a negated atom is true in the model — the
    // Gelfond–Lifschitz reading against the growing true set.
    let mut neg_chain = IncrementalLfp::new(gp, NegMode::SatisfiedOutside);
    loop {
        let stage = iterations + 1;
        pos_chain.evaluate(gp, model.neg());
        neg_chain.evaluate(gp, model.pos());
        let mut changed = false;
        for a in pos_chain.out().iter() {
            if stage_pos[a].is_none() {
                stage_pos[a] = Some(stage);
                model.set_true(GroundAtomId(a as u32));
                changed = true;
            }
        }
        // The unfounded set is the complement of the supported closure.
        let supported = neg_chain.out();
        for a in 0..n {
            if !supported.contains(a) && stage_neg[a].is_none() {
                debug_assert!(stage_pos[a].is_none(), "V_P produced inconsistency");
                stage_neg[a] = Some(stage);
                model.set_false(GroundAtomId(a as u32));
                changed = true;
            }
        }
        iterations = stage;
        if !changed {
            break;
        }
    }
    StagedModel {
        model,
        stage_pos,
        stage_neg,
        iterations,
    }
}

/// Iterates `W_P` from ∅ (Def. 2.3), recording the finer-grained stages.
/// Reaches the same fixpoint as [`vp_iteration`] (Lemma 2.1) but needs
/// more iterations; kept as a cross-check and for the ablation bench.
/// Stays on the full-recompute substrate deliberately: its `U_P` pass
/// blocks clauses on *positive* literals being false as well as negative
/// ones being true (see [`Propagator::supported_into`]), which is not a
/// pure `watch_neg` condition, and as the oracle it should share as
/// little machinery as possible with the incremental path it checks.
pub fn wp_iteration(gp: &GroundProgram) -> StagedModel {
    let n = gp.atom_count();
    let mut model = Interp::new(n);
    let mut stage_pos = vec![None; n];
    let mut stage_neg = vec![None; n];
    let mut iterations = 0u32;
    let mut prop = Propagator::new(gp);
    let mut pos_next = BitSet::new(n);
    let mut neg_next = BitSet::new(n);
    loop {
        let stage = iterations + 1;
        tp_into(gp, &model, &mut pos_next);
        prop.supported_into(gp, &model, &mut neg_next);
        neg_next.complement_in_place();
        let mut changed = false;
        for a in pos_next.iter() {
            if stage_pos[a].is_none() && stage_neg[a].is_none() {
                stage_pos[a] = Some(stage);
                model.set_true(GroundAtomId(a as u32));
                changed = true;
            }
        }
        for a in neg_next.iter() {
            if stage_neg[a].is_none() && stage_pos[a].is_none() {
                stage_neg[a] = Some(stage);
                model.set_false(GroundAtomId(a as u32));
                changed = true;
            }
        }
        iterations = stage;
        if !changed {
            break;
        }
    }
    StagedModel {
        model,
        stage_pos,
        stage_neg,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Truth;
    use gsls_ground::testutil::atom_id as id;
    use gsls_ground::Grounder;
    use gsls_lang::{parse_program, TermStore};

    fn staged(src: &str) -> (TermStore, GroundProgram, StagedModel) {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, src).unwrap();
        let gp = Grounder::ground(&mut s, &p).unwrap();
        let m = vp_iteration(&gp);
        (s, gp, m)
    }

    #[test]
    fn stratified_example() {
        let (s, gp, m) = staged("q. p :- ~q. r :- ~p.");
        assert_eq!(m.model.truth(id(&s, &gp, "q")), Truth::True);
        assert_eq!(m.model.truth(id(&s, &gp, "p")), Truth::False);
        assert_eq!(m.model.truth(id(&s, &gp, "r")), Truth::True);
        assert!(m.model.is_total());
    }

    #[test]
    fn mutual_negation_undefined() {
        let (s, gp, m) = staged("p :- ~q. q :- ~p.");
        assert_eq!(m.model.truth(id(&s, &gp, "p")), Truth::Undefined);
        assert_eq!(m.model.truth(id(&s, &gp, "q")), Truth::Undefined);
    }

    #[test]
    fn example_3_2_model() {
        // Paper Example 3.2 (Przymusinska & Przymusinski): the cyclic
        // program whose well-founded model is {s, ¬p, ¬q, ¬r} — p, q, r
        // form a positive loop guarded by negation, hence unfounded.
        let src = "p :- q, ~r. q :- r, ~p. r :- p, ~q. s :- ~p, ~q, ~r.";
        let (s, gp, m) = staged(src);
        assert_eq!(m.model.truth(id(&s, &gp, "s")), Truth::True);
        for a in ["p", "q", "r"] {
            assert_eq!(m.model.truth(id(&s, &gp, a)), Truth::False, "{a}");
        }
    }

    #[test]
    fn example_3_3_model() {
        // Paper Example 3.3 (function-free analogue, see EXPERIMENTS.md):
        // WFM = {s, ¬q} with p undefined. The rule for q has two negative
        // subgoals; only parallel expansion sees the failing ¬s.
        let src = "p :- ~p. q :- ~p, ~s. s.";
        let (s, gp, m) = staged(src);
        assert_eq!(m.model.truth(id(&s, &gp, "s")), Truth::True);
        assert_eq!(m.model.truth(id(&s, &gp, "q")), Truth::False);
        assert_eq!(m.model.truth(id(&s, &gp, "p")), Truth::Undefined);
    }

    #[test]
    fn stages_increase_along_dependencies() {
        let (s, gp, m) = staged("a :- ~b. b :- ~c. c :- ~d. d :- ~e. e.");
        let stage = |x: &str| {
            let a = id(&s, &gp, x);
            m.stage_of_true(a).or(m.stage_of_false(a)).unwrap()
        };
        assert_eq!(stage("e"), 1);
        assert!(stage("d") <= stage("c"));
        assert!(stage("c") <= stage("b"));
        assert!(stage("b") <= stage("a"));
        assert!(stage("a") >= 2);
    }

    #[test]
    fn wp_and_vp_agree() {
        for src in [
            "q. p :- ~q. r :- ~p.",
            "p :- ~q. q :- ~p.",
            "p :- ~q, ~r. q :- r, ~p. r :- p, ~q. s :- ~p, ~q, ~r.",
            "move(a, b). move(b, a). move(b, c). win(X) :- move(X, Y), ~win(Y).",
        ] {
            let mut s = TermStore::new();
            let p = parse_program(&mut s, src).unwrap();
            let gp = Grounder::ground(&mut s, &p).unwrap();
            let v = vp_iteration(&gp);
            let w = wp_iteration(&gp);
            assert_eq!(v.model, w.model, "program: {src}");
            // V_P stages are never larger than W_P stages (Lemma 2.1's
            // I_α ⊆ I'_{ωα} comparison runs the other way: V is coarser).
            assert!(v.iterations <= w.iterations);
        }
    }

    #[test]
    fn win_game_chain() {
        // a→b→c, c terminal: win(b) true (move to c), win(a)... a moves to
        // b which wins, so win(a) false? a→b only; win(a) :- move(a,b),
        // ~win(b) = ~true = false. win(c): no moves → false.
        let (s, gp, m) = staged("move(a, b). move(b, c). win(X) :- move(X, Y), ~win(Y).");
        assert_eq!(m.model.truth(id(&s, &gp, "win(c)")), Truth::False);
        assert_eq!(m.model.truth(id(&s, &gp, "win(b)")), Truth::True);
        assert_eq!(m.model.truth(id(&s, &gp, "win(a)")), Truth::False);
    }

    #[test]
    fn win_game_with_draw_cycle() {
        // a↔b cycle plus b→c: win(c) false, win(b) true, win(a) undefined?
        // a→b: win(a) :- ~win(b) = false... win(b) :- ~win(a) or ~win(c);
        // ~win(c)=true so win(b) true; win(a) :- ~win(b) = false. Total.
        let (s, gp, m) =
            staged("move(a, b). move(b, a). move(b, c). win(X) :- move(X, Y), ~win(Y).");
        assert_eq!(m.model.truth(id(&s, &gp, "win(b)")), Truth::True);
        assert_eq!(m.model.truth(id(&s, &gp, "win(a)")), Truth::False);
        // Pure 2-cycle without escape: both undefined.
        let (s2, gp2, m2) = staged("move(a, b). move(b, a). win(X) :- move(X, Y), ~win(Y).");
        assert_eq!(m2.model.truth(id(&s2, &gp2, "win(a)")), Truth::Undefined);
        assert_eq!(m2.model.truth(id(&s2, &gp2, "win(b)")), Truth::Undefined);
    }

    #[test]
    fn stage_one_for_facts_and_no_rule_atoms() {
        let (s, gp, m) = staged("p. q :- ~r.");
        assert_eq!(m.stage_of_true(id(&s, &gp, "p")), Some(1));
        assert_eq!(m.stage_of_false(id(&s, &gp, "r")), Some(1));
        assert_eq!(m.stage_of_true(id(&s, &gp, "q")), Some(2));
    }
}
