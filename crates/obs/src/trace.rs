//! Span-based tracing into a bounded per-session event ring.
//!
//! A [`SpanGuard`] samples the monotonic clock when it is created and
//! pushes one [`TraceEvent`] when it drops — so spans record even when
//! the guarded code unwinds or returns early through an interrupt.
//! The ring is bounded: once full, the oldest event is evicted, and
//! because capacity is reserved up front the steady state allocates
//! nothing on the hot path (labels are `&'static str`; the optional
//! `detail` string is reserved for cold paths like guard trips).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json_escape;
use crate::metrics::Histogram;

/// One entry in the trace ring. Timestamps are nanosecond offsets from
/// the tracer's epoch (session construction), so events from one
/// session order totally even across threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number within this tracer (monotone, gap-free
    /// until the ring evicts).
    pub seq: u64,
    /// Start offset from the tracer epoch, in nanoseconds.
    pub at_ns: u64,
    /// Span duration in nanoseconds; 0 for instantaneous events.
    pub dur_ns: u64,
    /// Static label, e.g. `"commit.ground"`.
    pub label: &'static str,
    /// Optional cold-path payload (e.g. guard-trip readings).
    pub detail: Option<String>,
}

impl TraceEvent {
    /// Renders the event as one JSON object, following the
    /// `gsls-analyze` diagnostic conventions.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"seq\": {}, \"at_ns\": {}, \"dur_ns\": {}, \"label\": \"{}\"",
            self.seq,
            self.at_ns,
            self.dur_ns,
            json_escape(self.label)
        );
        if let Some(d) = &self.detail {
            out.push_str(&format!(", \"detail\": \"{}\"", json_escape(d)));
        }
        out.push('}');
        out
    }
}

struct Ring {
    events: VecDeque<TraceEvent>,
    cap: usize,
}

/// A bounded ring of [`TraceEvent`]s with a monotonic epoch.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

struct TracerInner {
    on: Arc<AtomicBool>,
    epoch: Instant,
    seq: AtomicU64,
    ring: Mutex<Ring>,
}

impl Tracer {
    pub(crate) fn with_flag(on: Arc<AtomicBool>, cap: usize) -> Self {
        let cap = cap.max(1);
        Tracer {
            inner: Arc::new(TracerInner {
                on,
                epoch: Instant::now(),
                seq: AtomicU64::new(0),
                ring: Mutex::new(Ring {
                    events: VecDeque::with_capacity(cap),
                    cap,
                }),
            }),
        }
    }

    /// Ring capacity (events beyond this evict the oldest).
    pub fn capacity(&self) -> usize {
        self.inner.ring.lock().unwrap().cap
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.ring.lock().unwrap().events.len()
    }

    /// Whether the ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains and returns the buffered events, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.inner.ring.lock().unwrap().events.drain(..).collect()
    }

    /// Starts an RAII span; the event is pushed when the guard drops.
    /// While recording is disabled the guard is inert (no clock reads).
    pub fn span<'a>(&'a self, label: &'static str, hist: Option<&'a Histogram>) -> SpanGuard<'a> {
        let start = if self.inner.on.load(Ordering::Relaxed) {
            Some(Instant::now())
        } else {
            None
        };
        SpanGuard {
            tracer: self,
            label,
            start,
            hist,
        }
    }

    /// Records an instantaneous event (cold paths: guard trips,
    /// recovery fallbacks). `detail` may allocate; keep it off hot
    /// paths.
    pub fn event(&self, label: &'static str, detail: Option<String>) {
        if !self.inner.on.load(Ordering::Relaxed) {
            return;
        }
        let at_ns = self.inner.epoch.elapsed().as_nanos() as u64;
        self.push(label, at_ns, 0, detail);
    }

    /// Records a completed span measured by the caller (for phases
    /// whose duration is derived, e.g. ground-minus-finalize).
    pub fn span_event(&self, label: &'static str, start: Instant, dur_ns: u64) {
        if !self.inner.on.load(Ordering::Relaxed) {
            return;
        }
        let at_ns = start
            .checked_duration_since(self.inner.epoch)
            .map_or(0, |d| d.as_nanos() as u64);
        self.push(label, at_ns, dur_ns, None);
    }

    fn push(&self, label: &'static str, at_ns: u64, dur_ns: u64, detail: Option<String>) {
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.inner.ring.lock().unwrap();
        if ring.events.len() == ring.cap {
            ring.events.pop_front();
        }
        ring.events.push_back(TraceEvent {
            seq,
            at_ns,
            dur_ns,
            label,
            detail,
        });
    }
}

/// RAII span timer from [`Tracer::span`] / the [`span!`](crate::span)
/// macro: drop pushes a [`TraceEvent`] and, when a histogram was
/// attached, records the duration there too.
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    label: &'static str,
    start: Option<Instant>,
    hist: Option<&'a Histogram>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur_ns = start.elapsed().as_nanos() as u64;
        if let Some(h) = self.hist {
            h.record(dur_ns);
        }
        self.tracer.span_event(self.label, start, dur_ns);
    }
}
