//! `gsls-obs` — unified tracing, metrics, and profiling for the engine.
//!
//! Every other crate's telemetry funnels through two primitives defined
//! here:
//!
//! * a [`Registry`] of named [`Counter`]s, [`Gauge`]s, and log-linear
//!   latency [`Histogram`]s (p50/p90/p99 extraction), recorded into by
//!   lock-free atomic handles that are cheap enough to leave on in
//!   production builds; and
//! * a [`Tracer`] whose RAII spans ([`SpanGuard`], usually via the
//!   [`span!`] macro) land in a bounded per-session ring of
//!   [`TraceEvent`]s with monotonic timestamps, so a slow or
//!   interrupted commit can be reconstructed post-hoc without a rerun.
//!
//! [`Obs`] bundles the two behind one shared enable flag: recording
//! handles stay valid across [`Obs::set_enabled`], which lets the bench
//! harness measure the instrumented-vs-dark delta in-process on the
//! exact same session (the BENCH overhead assertion).
//!
//! The crate is a dependency leaf — std only, no engine types — so any
//! layer (grounder, WFS chains, WAL, scheduler, session) can register
//! into the same registry without dependency cycles. JSON rendering
//! follows the `gsls-analyze` diagnostic conventions: hand-rolled
//! objects, sorted keys, `json_escape`-compatible string escaping.

mod metrics;
mod trace;

pub use metrics::{
    render_prometheus, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry,
    HISTOGRAM_MAX_NS,
};
pub use trace::{SpanGuard, TraceEvent, Tracer};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Default capacity of the per-session trace-event ring.
pub const DEFAULT_RING_CAPACITY: usize = 256;

/// One session's observability bundle: a metrics [`Registry`] and a
/// [`Tracer`] sharing a single enable flag. Cloning is cheap (two `Arc`
/// bumps) and every clone sees the same data, so a snapshot can be
/// taken from another thread mid-commit.
#[derive(Clone)]
pub struct Obs {
    on: Arc<AtomicBool>,
    registry: Registry,
    tracer: Tracer,
}

impl Obs {
    /// An enabled bundle with the [`DEFAULT_RING_CAPACITY`] event ring.
    pub fn new() -> Self {
        Self::with_ring_capacity(DEFAULT_RING_CAPACITY)
    }

    /// An enabled bundle with an event ring bounded at `cap` entries.
    pub fn with_ring_capacity(cap: usize) -> Self {
        let on = Arc::new(AtomicBool::new(true));
        Obs {
            registry: Registry::with_flag(on.clone()),
            tracer: Tracer::with_flag(on.clone(), cap),
            on,
        }
    }

    /// A dark bundle: handles exist but every record is a single
    /// relaxed load-and-branch. This is the overhead baseline.
    pub fn disabled() -> Self {
        let obs = Self::new();
        obs.set_enabled(false);
        obs
    }

    /// Flips recording at runtime. Existing handles observe the change
    /// immediately; data already recorded is kept.
    pub fn set_enabled(&self, on: bool) {
        self.on.store(on, Ordering::Relaxed);
    }

    /// Whether recording is currently on.
    pub fn is_enabled(&self) -> bool {
        self.on.load(Ordering::Relaxed)
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The trace-event ring.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Consistent view of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Starts an RAII span: on drop it pushes a [`TraceEvent`] and, when
    /// `hist` is given, records the duration into that histogram too.
    pub fn span<'a>(&'a self, label: &'static str, hist: Option<&'a Histogram>) -> SpanGuard<'a> {
        self.tracer.span(label, hist)
    }
}

impl Default for Obs {
    fn default() -> Self {
        Self::new()
    }
}

/// Starts an RAII timing span on an [`Obs`] bundle.
///
/// `span!(obs, "commit.ground")` records only a trace event;
/// `span!(obs, "commit.ground", hist)` also records the duration into
/// the histogram handle `hist`.
#[macro_export]
macro_rules! span {
    ($obs:expr, $label:expr) => {
        $obs.span($label, None)
    };
    ($obs:expr, $label:expr, $hist:expr) => {
        $obs.span($label, Some($hist))
    };
}

/// Escapes `s` for embedding in a JSON string literal, following the
/// `gsls-analyze` diagnostic-output conventions.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn counters_record_and_snapshot() {
        let obs = Obs::new();
        let c = obs.registry().counter("test.hits");
        c.add(3);
        c.add(4);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("test.hits"), Some(7));
        assert_eq!(snap.counter("test.misses"), None);
    }

    #[test]
    fn disabled_handles_record_nothing() {
        let obs = Obs::disabled();
        let c = obs.registry().counter("dark.hits");
        let h = obs.registry().histogram("dark.lat");
        c.add(10);
        h.record(1_000);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("dark.hits"), Some(0));
        assert_eq!(snap.histogram("dark.lat").unwrap().count, 0);
        // Re-enabling makes the same handles live.
        obs.set_enabled(true);
        c.add(10);
        assert_eq!(obs.snapshot().counter("dark.hits"), Some(10));
    }

    #[test]
    fn gauge_tracks_set_and_add() {
        let obs = Obs::new();
        let g = obs.registry().gauge("test.depth");
        g.set(5);
        g.add(-2);
        assert_eq!(obs.snapshot().gauge("test.depth"), Some(3));
    }

    #[test]
    fn histogram_percentiles_are_order_of_magnitude_right() {
        let obs = Obs::new();
        let h = obs.registry().histogram("test.lat");
        for v in 1..=1000u64 {
            h.record(v * 1_000); // 1µs .. 1ms
        }
        let snap = obs.snapshot();
        let hs = snap.histogram("test.lat").unwrap();
        assert_eq!(hs.count, 1000);
        assert_eq!(hs.sum, (1..=1000u64).map(|v| v * 1_000).sum::<u64>());
        // Log-linear buckets with 8 sub-buckets per octave: ≤ 12.5%
        // quantization plus the bucket-upper-bound convention.
        let p50 = hs.p50 as f64;
        assert!((400_000.0..=650_000.0).contains(&p50), "p50={p50}");
        let p99 = hs.p99 as f64;
        assert!((900_000.0..=1_200_000.0).contains(&p99), "p99={p99}");
        assert!(hs.max >= 1_000_000 && hs.max <= HISTOGRAM_MAX_NS);
    }

    #[test]
    fn histogram_handles_extremes() {
        let obs = Obs::new();
        let h = obs.registry().histogram("test.ext");
        h.record(0);
        h.record(u64::MAX);
        let snap = obs.snapshot();
        let hs = snap.histogram("test.ext").unwrap();
        assert_eq!(hs.count, 2);
        assert_eq!(hs.max, u64::MAX);
        assert!(hs.p99 <= HISTOGRAM_MAX_NS);
    }

    #[test]
    fn span_records_event_and_histogram() {
        let obs = Obs::new();
        let h = obs.registry().histogram("test.span");
        {
            let _s = span!(obs, "test.span", &h);
            std::thread::sleep(Duration::from_millis(1));
        }
        let hs = obs.snapshot();
        let hist = hs.histogram("test.span").unwrap();
        assert_eq!(hist.count, 1);
        assert!(hist.sum >= 500_000, "span recorded {}ns", hist.sum);
        let events = obs.tracer().drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].label, "test.span");
        assert!(events[0].dur_ns >= 500_000);
        // Drain empties the ring.
        assert!(obs.tracer().drain().is_empty());
    }

    #[test]
    fn ring_is_bounded_and_ordered() {
        let obs = Obs::with_ring_capacity(16);
        for _ in 0..100 {
            let _s = span!(obs, "tick");
        }
        let events = obs.tracer().drain();
        assert_eq!(events.len(), 16);
        // Oldest entries were evicted; seq and timestamps are monotone.
        for w in events.windows(2) {
            assert!(w[1].seq > w[0].seq);
            assert!(w[1].at_ns >= w[0].at_ns);
        }
        assert_eq!(events.last().unwrap().seq, 99);
    }

    #[test]
    fn registry_is_get_or_register() {
        let obs = Obs::new();
        let a = obs.registry().counter("same.name");
        let b = obs.registry().counter("same.name");
        a.add(1);
        b.add(1);
        assert_eq!(obs.snapshot().counter("same.name"), Some(2));
    }

    #[test]
    fn snapshot_json_is_well_formed_ish() {
        let obs = Obs::new();
        obs.registry().counter("a.hits").add(2);
        obs.registry().gauge("b.depth").set(-1);
        obs.registry().histogram("c.lat").record(42);
        let json = obs.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a.hits\": 2"));
        assert!(json.contains("\"b.depth\": -1"));
        assert!(json.contains("\"c.lat\""));
        assert!(json.contains("\"p99_ns\""));
    }

    #[test]
    fn trip_event_carries_detail() {
        let obs = Obs::new();
        obs.tracer()
            .event("guard.trip", Some("phase=ground cause=deadline".into()));
        let events = obs.tracer().drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].dur_ns, 0);
        assert_eq!(
            events[0].detail.as_deref(),
            Some("phase=ground cause=deadline")
        );
        assert!(events[0].to_json().contains("phase=ground"));
    }

    #[test]
    fn json_escape_matches_analyzer_conventions() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn cross_thread_snapshot_sees_monotone_counters() {
        let obs = Obs::new();
        let c = obs.registry().counter("mt.hits");
        let reader = {
            let obs = obs.clone();
            std::thread::spawn(move || {
                let mut last = 0u64;
                for _ in 0..1000 {
                    let v = obs.snapshot().counter("mt.hits").unwrap();
                    assert!(v >= last, "counter went backwards: {v} < {last}");
                    last = v;
                }
            })
        };
        for _ in 0..10_000 {
            c.add(1);
        }
        reader.join().unwrap();
        assert_eq!(obs.snapshot().counter("mt.hits"), Some(10_000));
    }
}
