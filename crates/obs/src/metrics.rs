//! Metric primitives and the named registry.
//!
//! Recording handles ([`Counter`], [`Gauge`], [`Histogram`]) are
//! resolved once from the [`Registry`] and then record lock-free: each
//! operation is one relaxed atomic load (the shared enable flag) plus,
//! when enabled, one or two relaxed RMWs. Registration takes a mutex,
//! but it happens once per name, not per record — hot paths hold
//! pre-resolved handles.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::json_escape;

const RELAXED: Ordering = Ordering::Relaxed;

/// A monotone event counter.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
    on: Arc<AtomicBool>,
}

impl Counter {
    /// A handle wired to nothing (recording disabled). Useful as a
    /// default before a subsystem is attached to a registry.
    pub fn detached() -> Self {
        Counter {
            cell: Arc::new(AtomicU64::new(0)),
            on: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Adds `n` to the counter (no-op while recording is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if self.on.load(RELAXED) {
            self.cell.fetch_add(n, RELAXED);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(RELAXED)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::detached()
    }
}

/// A signed instantaneous value.
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
    on: Arc<AtomicBool>,
}

impl Gauge {
    /// A handle wired to nothing (recording disabled).
    pub fn detached() -> Self {
        Gauge {
            cell: Arc::new(AtomicI64::new(0)),
            on: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Sets the gauge (no-op while recording is disabled).
    #[inline]
    pub fn set(&self, v: i64) {
        if self.on.load(RELAXED) {
            self.cell.store(v, RELAXED);
        }
    }

    /// Adjusts the gauge by `d` (no-op while recording is disabled).
    #[inline]
    pub fn add(&self, d: i64) {
        if self.on.load(RELAXED) {
            self.cell.fetch_add(d, RELAXED);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.cell.load(RELAXED)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::detached()
    }
}

/// Log-linear bucketing: values `0..8` get exact buckets, then 8
/// sub-buckets per power of two (≤ 12.5% quantization error) up to
/// [`HISTOGRAM_MAX_NS`], above which values saturate into the last
/// bucket. `sum` and `max` are exact regardless of bucketing.
const SUB_BITS: u32 = 3;
const MAX_MSB: u32 = 40;
const N_BUCKETS: usize = (((MAX_MSB - SUB_BITS) as usize + 1) << SUB_BITS) + (1 << SUB_BITS);

/// Values at or above this (≈ 36 minutes in nanoseconds) land in the
/// histogram's saturation bucket; percentiles never exceed it.
pub const HISTOGRAM_MAX_NS: u64 = 1 << (MAX_MSB + 1);

#[inline]
fn bucket_of(v: u64) -> usize {
    if v < (1 << SUB_BITS) {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    if msb > MAX_MSB {
        return N_BUCKETS - 1;
    }
    let sub = (v >> (msb - SUB_BITS)) & ((1 << SUB_BITS) - 1);
    ((((msb - SUB_BITS) as usize + 1) << SUB_BITS) + sub as usize).min(N_BUCKETS - 1)
}

/// Upper bound of bucket `i` — the value percentiles report.
fn bucket_upper(i: usize) -> u64 {
    if i < (1 << SUB_BITS) {
        return i as u64;
    }
    if i >= N_BUCKETS - 1 {
        return HISTOGRAM_MAX_NS;
    }
    let msb = (i >> SUB_BITS) as u32 + SUB_BITS - 1;
    let sub = (i & ((1 << SUB_BITS) - 1)) as u64;
    (1u64 << msb) + ((sub + 1) << (msb - SUB_BITS)) - 1
}

struct HistCell {
    buckets: Box<[AtomicU64; N_BUCKETS]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistCell {
    fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        HistCell {
            buckets: buckets.try_into().unwrap_or_else(|_| unreachable!()),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; N_BUCKETS];
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            counts[i] = b.load(RELAXED);
            count += counts[i];
        }
        let percentile = |p: u64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((count * p).div_ceil(100)).max(1);
            let mut cum = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                cum += c;
                if cum >= rank {
                    return bucket_upper(i);
                }
            }
            bucket_upper(N_BUCKETS - 1)
        };
        HistogramSnapshot {
            count,
            sum: self.sum.load(RELAXED),
            max: self.max.load(RELAXED),
            p50: percentile(50),
            p90: percentile(90),
            p99: percentile(99),
        }
    }
}

/// A latency histogram over nanosecond values.
#[derive(Clone)]
pub struct Histogram {
    cell: Arc<HistCell>,
    on: Arc<AtomicBool>,
}

impl Histogram {
    /// A handle wired to nothing (recording disabled).
    pub fn detached() -> Self {
        Histogram {
            cell: Arc::new(HistCell::new()),
            on: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Records one value (no-op while recording is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if !self.on.load(RELAXED) {
            return;
        }
        self.cell.buckets[bucket_of(v)].fetch_add(1, RELAXED);
        self.cell.sum.fetch_add(v, RELAXED);
        self.cell.max.fetch_max(v, RELAXED);
    }

    /// Records a duration as nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Point-in-time summary of this histogram alone.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.cell.snapshot()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::detached()
    }
}

/// Summary of one histogram: exact count/sum/max plus bucket-resolution
/// percentiles (values in nanoseconds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Exact sum of recorded values.
    pub sum: u64,
    /// Exact maximum recorded value.
    pub max: u64,
    /// Median (bucket upper bound, ≤ 12.5% over).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Exact mean of the recorded values, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named metric registry. Cloning shares the underlying map; handle
/// resolution takes a mutex, recording through handles does not.
#[derive(Clone)]
pub struct Registry {
    on: Arc<AtomicBool>,
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Registry {
    /// A standalone enabled registry with its own flag.
    pub fn new() -> Self {
        Self::with_flag(Arc::new(AtomicBool::new(true)))
    }

    /// A registry whose handles observe the shared `on` flag.
    pub(crate) fn with_flag(on: Arc<AtomicBool>) -> Self {
        Registry {
            on,
            metrics: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// Get-or-register the counter named `name`. If the name is already
    /// taken by a different metric kind, returns a detached handle.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.metrics.lock().unwrap();
        match map.entry(name.to_string()).or_insert_with(|| {
            Metric::Counter(Counter {
                cell: Arc::new(AtomicU64::new(0)),
                on: self.on.clone(),
            })
        }) {
            Metric::Counter(c) => c.clone(),
            _ => {
                debug_assert!(false, "metric {name:?} registered with another kind");
                Counter::detached()
            }
        }
    }

    /// Get-or-register the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.metrics.lock().unwrap();
        match map.entry(name.to_string()).or_insert_with(|| {
            Metric::Gauge(Gauge {
                cell: Arc::new(AtomicI64::new(0)),
                on: self.on.clone(),
            })
        }) {
            Metric::Gauge(g) => g.clone(),
            _ => {
                debug_assert!(false, "metric {name:?} registered with another kind");
                Gauge::detached()
            }
        }
    }

    /// Get-or-register the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.metrics.lock().unwrap();
        match map.entry(name.to_string()).or_insert_with(|| {
            Metric::Histogram(Histogram {
                cell: Arc::new(HistCell::new()),
                on: self.on.clone(),
            })
        }) {
            Metric::Histogram(h) => h.clone(),
            _ => {
                debug_assert!(false, "metric {name:?} registered with another kind");
                Histogram::detached()
            }
        }
    }

    /// Consistent point-in-time view of every registered metric,
    /// sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.metrics.lock().unwrap();
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snap
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time view of every metric in a [`Registry`], sorted by
/// name within each kind.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, summary)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of the counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// Value of the gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.gauges[i].1)
    }

    /// Summary of the histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.histograms[i].1)
    }

    /// Sum of every counter whose name starts with `prefix` — e.g.
    /// `prefix_sum("guard.trips.")` for total trips across phase×cause.
    pub fn prefix_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Renders the snapshot as a single JSON object, following the
    /// `gsls-analyze` diagnostic conventions (sorted keys, escaped
    /// strings, nanosecond-suffixed duration fields).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", json_escape(name), v));
        }
        out.push_str("}, \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", json_escape(name), v));
        }
        out.push_str("}, \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\"{}\": {{\"count\": {}, \"sum_ns\": {}, \"max_ns\": {}, \
                 \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}}}",
                json_escape(name),
                h.count,
                h.sum,
                h.max,
                h.p50,
                h.p90,
                h.p99
            ));
        }
        out.push_str("}}");
        out
    }
}

/// Renders a registry in the Prometheus text exposition format
/// (version 0.0.4): counters and gauges as single samples, histograms
/// as summaries with `quantile` labels plus `_sum`/`_count` series.
/// Metric names are prefixed `gsls_` and dots become underscores
/// (`wal.group_syncs` → `gsls_wal_group_syncs`); any other character
/// outside `[a-zA-Z0-9_:]` is replaced with `_` too, so every emitted
/// name is valid regardless of what was registered.
pub fn render_prometheus(registry: &Registry) -> String {
    let snap = registry.snapshot();
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
    }
    for (name, h) in &snap.histograms {
        let n = prom_name(name);
        out.push_str(&format!(
            "# TYPE {n} summary\n\
             {n}{{quantile=\"0.5\"}} {}\n\
             {n}{{quantile=\"0.9\"}} {}\n\
             {n}{{quantile=\"0.99\"}} {}\n\
             {n}_sum {}\n\
             {n}_count {}\n",
            h.p50, h.p90, h.p99, h.sum, h.count
        ));
    }
    out
}

fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("gsls_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        let mut last = 0;
        for v in 0..100_000u64 {
            let b = bucket_of(v);
            assert!(b >= last, "bucket_of({v}) regressed");
            assert!(v <= bucket_upper(b), "v={v} above upper of its bucket");
            last = b;
        }
        assert_eq!(bucket_of(u64::MAX), N_BUCKETS - 1);
        assert_eq!(bucket_upper(N_BUCKETS - 1), HISTOGRAM_MAX_NS);
    }

    #[test]
    fn bucket_upper_error_is_bounded() {
        for v in [100u64, 1_000, 10_000, 1_000_000, 1_000_000_000] {
            let upper = bucket_upper(bucket_of(v));
            assert!(upper >= v);
            assert!((upper - v) as f64 <= v as f64 * 0.13, "v={v} upper={upper}");
        }
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let reg = Registry::new();
        reg.counter("wal.group_syncs").add(3);
        reg.gauge("conns.active").set(-2);
        let h = reg.histogram("commit.total");
        h.record(1_000);
        h.record(2_000);
        let text = render_prometheus(&reg);
        assert!(text.contains("# TYPE gsls_wal_group_syncs counter\ngsls_wal_group_syncs 3\n"));
        assert!(text.contains("# TYPE gsls_conns_active gauge\ngsls_conns_active -2\n"));
        assert!(text.contains("# TYPE gsls_commit_total summary\n"));
        assert!(text.contains("gsls_commit_total{quantile=\"0.99\"}"));
        assert!(text.contains("gsls_commit_total_count 2\n"));
        // Every emitted name is a valid Prometheus identifier.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split(['{', ' ']).next().unwrap();
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad name {name}"
            );
            assert!(!name.chars().next().unwrap().is_ascii_digit());
        }
    }
}
