//! A minimal, dependency-free property-testing harness exposing the
//! subset of the `proptest` API this workspace's tests use.
//!
//! The build container has no access to crates.io, so the real proptest
//! cannot be a dependency. Test sources keep their `use
//! proptest::prelude::*;` imports unchanged; dependent crates alias this
//! package as `proptest` via a path dependency rename.
//!
//! Differences from real proptest: no shrinking (a failing case panics
//! with the plain assert message), and generation is deterministic per
//! test name (a SplitMix64 stream seeded from the test's name), so
//! failures reproduce exactly across runs.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an explicit value.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seeds deterministically from a test's name.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)` (n > 0). Modulo bias is irrelevant for tests.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// A random boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }

    /// Builds a recursive strategy: `recurse` receives a strategy for the
    /// smaller structure and returns one that may embed it. `depth`
    /// bounds the nesting; the size-tuning parameters of real proptest
    /// are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(current).boxed();
            let leaf = leaf.clone();
            current = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                // Mostly branch, sometimes bottom out early: keeps the
                // generated structures varied in depth.
                if rng.below(4) == 0 {
                    leaf.generate(rng)
                } else {
                    branch.generate(rng)
                }
            }));
        }
        current
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed alternatives — the engine of
/// [`prop_oneof!`].
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds from a non-empty list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for vectors with uniformly chosen length.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` values, length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Namespace mirror of proptest's `prop` module.
pub mod prop {
    pub use crate::collection;
}

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Declares property tests. Each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` looping over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for __case in 0..config.cases {
                let __case: u32 = __case;
                $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![ $( $crate::Strategy::boxed($arm) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let v = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (5usize..=7).generate(&mut rng);
            assert!((5..=7).contains(&w));
        }
    }

    #[test]
    fn determinism_per_name() {
        let mut a = TestRng::for_test("t");
        let mut b = TestRng::for_test("t");
        let s = prop::collection::vec(0u32..100, 1..8);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn oneof_and_map_compose() {
        let s = prop_oneof![
            (0u8..4).prop_map(|v| (false, v)),
            (10u8..14).prop_map(|v| (true, v)),
        ];
        let mut rng = TestRng::new(7);
        let mut saw = [false, false];
        for _ in 0..100 {
            let (hi, v) = s.generate(&mut rng);
            if hi {
                assert!((10..14).contains(&v));
                saw[1] = true;
            } else {
                assert!(v < 4);
                saw[0] = true;
            }
        }
        assert!(saw[0] && saw[1], "both arms must be exercised");
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = (0u8..4)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 3, |inner| {
                prop::collection::vec(inner, 1..3).prop_map(Tree::Node)
            });
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            assert!(depth(&s.generate(&mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: args bind and the body runs per case.
        #[test]
        fn macro_binds_args(x in 0u32..10, flag in any::<bool>()) {
            prop_assert!(x < 10);
            let _ = flag;
            prop_assert_eq!(x / 10, 0);
        }
    }
}
