//! The dependency-graph (wavefront) scheduler.
//!
//! A [`TaskDag`] holds `n` tasks, each task's in-degree, and the
//! reverse edges (`dependents`). [`TaskDag::run`] executes every task
//! exactly once, never before all of its dependencies: zero-in-degree
//! tasks seed the worker deques round-robin, and when a task completes
//! its worker decrements each dependent's in-degree with an `AcqRel`
//! read-modify-write, pushing those that reach zero onto its **own**
//! deque (they are the cache-hot continuation of the work just done;
//! idle workers steal them if the owner is saturated).
//!
//! ## Memory ordering
//!
//! A task's writes happen-before every dependent task: the completing
//! worker's `fetch_sub(AcqRel)` on the dependent's counter joins the
//! counter's release sequence, the final decrementer therefore observes
//! all earlier decrementers' writes, and the deque `Mutex` orders the
//! push against the pop that hands the dependent to its executor. So a
//! task body may read anything its dependencies wrote through plain
//! (or, for belt-and-braces, `Acquire`) loads.
//!
//! ## Contract
//!
//! The graph must be acyclic: a cycle's tasks never reach in-degree
//! zero and `run` would park forever waiting for completions that
//! cannot come (debug builds assert the run completed). Clients
//! schedule *condensations* — SCC DAGs — which are acyclic by
//! construction.

use crate::govern::{Guard, InterruptCause};
use crate::pool::StealQueues;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

/// A directed acyclic graph of `u32` tasks plus the scheduling state
/// needed to run it ([`TaskDag::run`]).
#[derive(Debug, Clone, Default)]
pub struct TaskDag {
    /// `dependents[d]` = tasks that must wait for `d`.
    dependents: Vec<Vec<u32>>,
    /// Number of dependencies per task.
    in_deg: Vec<u32>,
}

impl TaskDag {
    /// Creates a DAG of `n` tasks and no edges.
    pub fn new(n: usize) -> Self {
        TaskDag {
            dependents: vec![Vec::new(); n],
            in_deg: vec![0; n],
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.in_deg.len()
    }

    /// Whether the DAG has no tasks.
    pub fn is_empty(&self) -> bool {
        self.in_deg.is_empty()
    }

    /// Declares that `task` must not start before `dep` completes.
    /// Duplicate edges are the caller's to avoid (each one counts).
    pub fn add_dep(&mut self, task: u32, dep: u32) {
        debug_assert_ne!(task, dep, "self-dependency would deadlock");
        self.in_deg[task as usize] += 1;
        self.dependents[dep as usize].push(task);
    }

    /// Runs every task once, respecting dependencies. `init(worker)`
    /// builds each worker's private state on its own thread (it need
    /// not be `Send`); `step(state, task)` executes one task.
    ///
    /// `n_threads <= 1` runs inline on the calling thread in a
    /// deterministic Kahn order with no spawns and no atomics.
    pub fn run<S>(
        &self,
        n_threads: usize,
        init: impl Fn(usize) -> S + Sync,
        step: impl Fn(&mut S, u32) + Sync,
    ) {
        self.run_governed(n_threads, &Guard::none(), init, step)
            .expect("an ungoverned run cannot be interrupted");
    }

    /// [`TaskDag::run`] under a [`Guard`]: each worker polls the guard
    /// before every task, and the first trip aborts the queues — which
    /// wakes every parked sibling immediately — so all workers drain
    /// and return. On interruption some tasks have run and some have
    /// not; the caller owns whatever partial state `step` built and is
    /// expected to discard or rebuild it.
    pub fn run_governed<S>(
        &self,
        n_threads: usize,
        guard: &Guard,
        init: impl Fn(usize) -> S + Sync,
        step: impl Fn(&mut S, u32) + Sync,
    ) -> Result<(), InterruptCause> {
        let n = self.len();
        if n == 0 {
            return Ok(());
        }
        if n_threads <= 1 {
            let mut state = init(0);
            let mut in_deg = self.in_deg.clone();
            let mut ready: Vec<u32> = (0..n as u32).filter(|&t| in_deg[t as usize] == 0).collect();
            let mut done = 0usize;
            while let Some(t) = ready.pop() {
                guard.check()?;
                step(&mut state, t);
                done += 1;
                for &d in &self.dependents[t as usize] {
                    in_deg[d as usize] -= 1;
                    if in_deg[d as usize] == 0 {
                        ready.push(d);
                    }
                }
            }
            debug_assert_eq!(done, n, "cycle in TaskDag");
            return Ok(());
        }
        let workers = n_threads.min(n);
        let queues = StealQueues::new(workers, n);
        let in_deg: Vec<AtomicU32> = self.in_deg.iter().map(|&d| AtomicU32::new(d)).collect();
        let mut seeded = 0usize;
        for t in 0..n as u32 {
            if self.in_deg[t as usize] == 0 {
                queues.push(seeded % workers, t);
                seeded += 1;
            }
        }
        debug_assert!(seeded > 0, "cycle in TaskDag: no roots");
        // First interruption cause wins; later trips see the queues
        // already aborted.
        let tripped: Mutex<Option<InterruptCause>> = Mutex::new(None);
        // A task panic must propagate, not deadlock: the dying worker's
        // guard aborts the queues so its siblings stop drawing tasks and
        // the scope join re-raises the panic.
        struct AbortOnPanic<'a>(&'a StealQueues);
        impl Drop for AbortOnPanic<'_> {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    self.0.abort();
                }
            }
        }
        let work = |w: usize| {
            let _panic_guard = AbortOnPanic(&queues);
            let mut state = init(w);
            while let Some(t) = queues.next_task(w) {
                if let Err(cause) = guard.check() {
                    tripped
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .get_or_insert(cause);
                    queues.abort();
                    return;
                }
                step(&mut state, t);
                for &d in &self.dependents[t as usize] {
                    if in_deg[d as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                        queues.push(w, d);
                    }
                }
                queues.complete_one();
            }
        };
        std::thread::scope(|s| {
            for w in 1..workers {
                let work = &work;
                s.spawn(move || work(w));
            }
            work(0);
        });
        if let Some(cause) = tripped.into_inner().unwrap_or_else(|e| e.into_inner()) {
            return Err(cause);
        }
        assert!(
            queues.is_done() && !queues.is_aborted(),
            "TaskDag run did not complete"
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    /// Runs `dag` and checks every task executes exactly once, after
    /// all of its dependencies.
    fn check_run(dag: &TaskDag, threads: usize) {
        let log: Mutex<Vec<u32>> = Mutex::new(Vec::new());
        dag.run(threads, |_| (), |_, t| log.lock().unwrap().push(t));
        let order = log.into_inner().unwrap();
        assert_eq!(order.len(), dag.len(), "every task ran once");
        let mut seen: HashSet<u32> = HashSet::new();
        let mut pos = vec![usize::MAX; dag.len()];
        for (i, &t) in order.iter().enumerate() {
            assert!(seen.insert(t), "task {t} ran twice");
            pos[t as usize] = i;
        }
        for (dep, tasks) in dag.dependents.iter().enumerate() {
            for &t in tasks {
                assert!(
                    pos[dep] < pos[t as usize],
                    "task {t} ran before its dependency {dep}"
                );
            }
        }
    }

    #[test]
    fn diamond_respects_order() {
        // 0 -> {1, 2} -> 3
        let mut dag = TaskDag::new(4);
        dag.add_dep(1, 0);
        dag.add_dep(2, 0);
        dag.add_dep(3, 1);
        dag.add_dep(3, 2);
        for threads in [1, 2, 4] {
            check_run(&dag, threads);
        }
    }

    #[test]
    fn empty_and_edgeless() {
        TaskDag::new(0).run(4, |_| (), |_, _| panic!("no tasks"));
        check_run(&TaskDag::new(37), 4);
    }

    #[test]
    fn layered_random_dag() {
        // Pseudorandom layered DAG: edges only point to earlier layers,
        // so it is acyclic by construction.
        let layers = 8usize;
        let width = 25usize;
        let n = layers * width;
        let mut dag = TaskDag::new(n);
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for l in 1..layers {
            for i in 0..width {
                let t = (l * width + i) as u32;
                for _ in 0..(rng() % 4) {
                    let dl = (rng() as usize) % l;
                    let di = (rng() as usize) % width;
                    dag.add_dep(t, (dl * width + di) as u32);
                }
            }
        }
        for threads in [1, 2, 4, 8] {
            check_run(&dag, threads);
        }
    }

    #[test]
    fn task_panic_propagates_instead_of_deadlocking() {
        // A panicking task used to strand the sibling workers in the
        // park-timeout loop (the run could never reach `total`); the
        // abort guard must surface the panic through the scope join.
        let mut dag = TaskDag::new(16);
        for t in 1..16u32 {
            dag.add_dep(t, t - 1);
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dag.run(
                4,
                |_| (),
                |_, t| {
                    if t == 7 {
                        panic!("task 7 exploded");
                    }
                },
            );
        }));
        assert!(result.is_err(), "panic must propagate out of run");
    }

    #[test]
    fn governed_run_cancels_and_drains() {
        let mut dag = TaskDag::new(64);
        for t in 1..64u32 {
            dag.add_dep(t, t - 1);
        }
        for threads in [1, 3] {
            // Fuel of 5 guard checks: the run trips partway through the
            // chain and every worker returns cleanly.
            let guard = Guard::builder().fuel(5).build();
            let ran = Mutex::new(0usize);
            let r = dag.run_governed(threads, &guard, |_| (), |_, _| *ran.lock().unwrap() += 1);
            assert_eq!(r, Err(InterruptCause::Cancelled));
            assert!(*ran.lock().unwrap() < 64, "trip must stop the run");
        }
        // An untripped governed run completes normally.
        let guard = Guard::builder().build();
        dag.run_governed(2, &guard, |_| (), |_, _| ()).unwrap();
    }

    #[test]
    fn worker_state_is_private() {
        // Each worker's state counts its own tasks; totals must add up.
        let mut dag = TaskDag::new(200);
        for t in 1..200u32 {
            dag.add_dep(t, t - 1);
        }
        let totals: Mutex<usize> = Mutex::new(0);
        dag.run(3, |_| 0usize, |count, _| *count += 1);
        // A chain is fully sequential; just make sure it terminates and
        // the parallel run above did not deadlock. Now check totals via
        // a fan-out DAG.
        let wide = TaskDag::new(64);
        wide.run(
            4,
            |_| 0usize,
            |count, _| {
                *count += 1;
                *totals.lock().unwrap() += 1;
            },
        );
        assert_eq!(*totals.lock().unwrap(), 64);
    }
}
