//! # gsls-par — a dependency-free work-stealing parallel runtime
//!
//! The workspace's two heaviest stages — SCC-by-SCC evaluation of the
//! well-founded model and the grounder's seed round — are both
//! embarrassingly parallel once their data dependencies are made
//! explicit: independent SCCs of the atom dependency graph's
//! condensation are semantically independent, and seed facts intern
//! into hash-disjoint shards. This crate provides the scheduling
//! substrate both clients run on, using **only `std::thread` and
//! `std::sync`** (matching the workspace's offline-shim policy: no
//! rayon, no crossbeam).
//!
//! * [`pool`] — per-worker deques with stealing ([`StealQueues`]) and
//!   the flat data-parallel helpers [`par_map`] / [`par_chunks`];
//! * [`dag`] — [`TaskDag`]: a dependency-graph scheduler that runs a
//!   DAG of tasks on the deques, decrementing dependents' in-degrees as
//!   tasks complete and enqueueing newly-ready ones (the wavefront
//!   pattern used by subsumption-style layered controllers, where
//!   independent layers run concurrently under a fixed arbitration
//!   order);
//! * [`govern`] — [`Guard`]: the engine-wide cancellation / deadline /
//!   memory-budget token every hot loop polls, wired into the deques'
//!   abort protocol by [`TaskDag::run_governed`].
//!
//! ## Thread-count policy
//!
//! Callers pass an explicit thread count; `1` always means "run inline
//! on the calling thread, no spawns, bit-identical to the sequential
//! code". The conventional way to pick a count is [`threads`], which
//! honours the `GSLS_THREADS` environment override and falls back to
//! [`std::thread::available_parallelism`].
//!
//! ## Determinism contract
//!
//! The runtime never makes results depend on scheduling: [`TaskDag`]
//! guarantees a task runs only after all of its dependencies, so a task
//! whose output is a pure function of its dependencies' outputs
//! produces the same value at every thread count, and [`par_map`] /
//! [`par_chunks`] return results in task order regardless of which
//! worker computed them. The `parallel_diff` suite pins this end to end
//! for the tabled engine and the grounder.

pub mod dag;
pub mod govern;
pub mod pool;

pub use dag::TaskDag;
pub use govern::{Guard, GuardBuilder, InterruptCause, InterruptHandle, TICK_INTERVAL};
pub use pool::{par_chunks, par_map, pool_totals, PoolTotals, StealQueues};

/// Hard cap on accepted thread counts; a `GSLS_THREADS` typo should not
/// try to spawn a million workers.
const MAX_THREADS: usize = 256;

/// The worker count to use: the `GSLS_THREADS` environment variable if
/// it parses to a positive integer, otherwise
/// [`std::thread::available_parallelism`] (1 if unavailable).
pub fn threads() -> usize {
    threads_from(std::env::var("GSLS_THREADS").ok().as_deref())
}

/// [`threads`] with the environment read factored out, so the override
/// parsing is unit-testable without mutating process state.
pub fn threads_from(raw: Option<&str>) -> usize {
    if let Some(s) = raw {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n.min(MAX_THREADS);
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_override_parses() {
        assert_eq!(threads_from(Some("4")), 4);
        assert_eq!(threads_from(Some(" 2 ")), 2);
        assert_eq!(threads_from(Some("1")), 1);
        assert_eq!(threads_from(Some("100000")), MAX_THREADS);
    }

    #[test]
    fn bad_override_falls_back_to_hardware() {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        for raw in [None, Some(""), Some("0"), Some("-3"), Some("lots")] {
            assert_eq!(threads_from(raw), hw, "raw={raw:?}");
        }
    }
}
